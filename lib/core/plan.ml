(** Per-schema execution plan for Castor.

    The plan precomputes the inclusion classes, the chase links and
    their column positions — the information the paper's
    implementation bakes into a per-schema stored procedure
    (Section 7.5.2). Building a plan once and reusing it across
    bottom-clause constructions is Castor's "with stored procedures"
    configuration; Table 13 measures the cost of rebuilding it on
    every call. *)

open Castor_relational

type chase_link = {
  link : Inclusion.link;
  src_pos : int list;  (** positions of the join attrs in the source *)
  dst_pos : int list;  (** positions of the join attrs in the target *)
}

type t = {
  schema : Schema.t;
  inclusion : Inclusion.t;
  mode : Inclusion.mode;
  join_limit : int;  (** max joining tuples fetched per IND per tuple *)
  chase : (string, chase_link list) Hashtbl.t;
}

(** [build ?mode ?join_limit schema] precomputes the chase metadata.
    [join_limit] is the paper's cap of 10 joining tuples. *)
let build ?(mode : Inclusion.mode = `Equality_only) ?(join_limit = 10) schema =
  let inclusion = Inclusion.build ~mode schema in
  let chase = Hashtbl.create 16 in
  List.iter
    (fun (r : Schema.relation) ->
      let links = Inclusion.links inclusion r.Schema.rname in
      let entries =
        List.map
          (fun l ->
            let src_pos, dst_pos = Inclusion.link_positions inclusion l in
            { link = l; src_pos; dst_pos })
          links
      in
      Hashtbl.replace chase r.Schema.rname entries)
    schema.Schema.relations;
  { schema; inclusion; mode; join_limit; chase }

let chase_links t rel = Option.value ~default:[] (Hashtbl.find_opt t.chase rel)

(** [expand t inst rel tuple] returns the tuples joining with [tuple]
    through the inclusion-class INDs — the IND chase of Section 7.1.

    The chase reconstructs the joined row(s) the class's relations
    decompose: it walks the class's IND links breadth-first but visits
    every {e relation} at most once per chase (a traversal of the join
    tree, which exists because the class's join is acyclic —
    Proposition 7.4). Without the once-per-relation rule the chase
    would wander the data graph transitively (director → movie →
    another director → ...) and drag in unrelated rows. Up to
    [join_limit] partners are fetched per link per tuple. *)
let expand t inst rel (tuple : Tuple.t) =
  (* the chase's join probes read through the backend seam, like every
     other clause-evaluation path *)
  let module B = (val Backend.of_instance inst : Backend.S) in
  let seen = Hashtbl.create 16 in
  let key r tu = r ^ Fmt.str "%a" Tuple.pp tu in
  Hashtbl.replace seen (key rel tuple) ();
  let out = ref [] in
  let fetched : (string, Tuple.t list ref) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.replace fetched rel (ref [ tuple ]);
  let visited_rel : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.replace visited_rel rel ();
  let frontier = ref [ rel ] in
  while !frontier <> [] do
    (* open one BFS level of the relation join tree: links from the
       frontier relations to not-yet-visited relations *)
    let level_links =
      List.concat_map
        (fun r ->
          List.filter_map
            (fun cl ->
              if Hashtbl.mem visited_rel cl.link.Inclusion.dst then None
              else Some (r, cl))
            (chase_links t r))
        !frontier
    in
    let next = ref [] in
    List.iter
      (fun (_, cl) ->
        let d = cl.link.Inclusion.dst in
        if not (Hashtbl.mem visited_rel d) then begin
          Hashtbl.replace visited_rel d ();
          next := d :: !next
        end)
      level_links;
    List.iter
      (fun (r, cl) ->
        let d = cl.link.Inclusion.dst in
        let sources =
          match Hashtbl.find_opt fetched r with Some b -> !b | None -> []
        in
        List.iter
          (fun (tu : Tuple.t) ->
            let bindings =
              List.map2 (fun sp dp -> (dp, tu.(sp))) cl.src_pos cl.dst_pos
            in
            let matches = B.find_matching d bindings in
            let rec take n = function
              | [] -> ()
              | m :: rest ->
                  if n <= 0 then ()
                  else begin
                    let k = key d m in
                    if not (Hashtbl.mem seen k) then begin
                      Hashtbl.replace seen k ();
                      out := (d, m) :: !out;
                      let bucket =
                        match Hashtbl.find_opt fetched d with
                        | Some b -> b
                        | None ->
                            let b = ref [] in
                            Hashtbl.replace fetched d b;
                            b
                      in
                      bucket := m :: !bucket
                    end;
                    take (n - 1) rest
                  end
            in
            take t.join_limit matches)
          sources)
      level_links;
    frontier := List.rev !next
  done;
  List.rev !out
