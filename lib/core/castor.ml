(** Castor — the paper's schema independent bottom-up relational
    learner (Section 7, Algorithm 4).

    Castor follows ProGolem's beam-searched covering strategy but
    integrates the schema's inclusion dependencies at every step:

    - {b bottom-clause construction} chases INDs so every joining
      tuple enters the clause together with its partners, and stops on
      a distinct-variable budget rather than a depth (Section 7.1,
      Lemma 7.5);
    - the bottom clause is {b minimized} by θ-reduction
      (Section 7.5.5);
    - {b ARMG} re-establishes the INDs after each blocking-atom
      removal (Section 7.2.1, Lemma 7.7);
    - {b negative reduction} removes whole inclusion-class instances
      (Algorithm 5, Lemma 7.8);
    - optional {b safe mode} guarantees safe clauses (Section 7.3);
    - coverage tests reuse earlier results and can run across domains
      (Sections 7.5.3-7.5.4).

    Together these make the learned definitions equivalent across
    composition/decomposition of the schema. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Castor_learners
module Obs = Castor_obs.Obs

let span_learn = Obs.Span.create "learner.castor"

type params = {
  sample : int;  (** K — positives sampled per generalization round *)
  beam : int;  (** N — beam width *)
  min_precision : float;  (** minprec *)
  minpos : int;
  max_clauses : int;
  max_terms : int;  (** distinct-constant budget of the bottom clause *)
  depth : int;  (** iteration cap of bottom-clause construction *)
  join_limit : int;  (** tuples chased per IND per tuple (paper: 10) *)
  mode : Inclusion.mode;  (** IND usage: equality-only or subset too *)
  safe : bool;  (** emit only safe clauses (Section 7.3) *)
  minimize_bottom : bool;  (** θ-reduce bottom clauses (Section 7.5.5) *)
  reuse_plan : bool;  (** stored-procedure emulation (Section 7.5.2) *)
  domains : int;  (** parallel coverage-test domains *)
}

let default_params =
  {
    sample = 5;
    beam = 2;
    min_precision = 0.67;
    minpos = 2;
    max_clauses = 30;
    max_terms = 60;
    depth = 2;
    join_limit = 10;
    mode = `Equality_only;
    safe = false;
    minimize_bottom = true;
    reuse_plan = true;
    domains = 1;
  }

(** [bottom_params ?base prm] — the saturation parameters Castor uses,
    with the variable-budget stop condition. The frontier filter is
    inherited from [base] (the problem's saturation parameters). *)
let bottom_params ?(base = Bottom.default_params) prm =
  {
    Bottom.depth = prm.depth;
    max_terms = Some prm.max_terms;
    per_relation_cap = prm.join_limit;
    no_expand_domains = base.Bottom.no_expand_domains;
    const_domains = base.Bottom.const_domains;
  }

(** [expand_hook ?params schema] builds the IND-chase hook to thread
    into saturations (both Castor's own bottom clauses and the
    coverage saturations of a {!Castor_learners.Problem}). *)
let expand_hook ?(params = default_params) instance =
  let plan = Plan.build ~mode:params.mode ~join_limit:params.join_limit
      (Instance.schema instance)
  in
  fun rel tuple -> Plan.expand plan instance rel tuple

let learn_clause (prm : params) (plan : Plan.t option ref) (p : Problem.t)
    uncovered =
  let get_plan () =
    match prm.reuse_plan, !plan with
    | true, Some pl -> pl
    | _ ->
        let pl =
          Plan.build ~mode:prm.mode ~join_limit:prm.join_limit
            (Instance.schema p.Problem.instance)
        in
        if prm.reuse_plan then plan := Some pl;
        pl
  in
  let bottom e =
    let params = bottom_params ~base:p.Problem.bottom_params prm in
    (* without plan reuse ("no stored procedures"), the chase metadata
       is re-derived on every database interaction, as when the
       bottom-clause logic is re-interpreted per call (Section 7.5.2) *)
    let expand r tu = Plan.expand (get_plan ()) p.Problem.instance r tu in
    (* the analysis pruner drops θ-subsumed literals before ARMG; it is
       a sound prefix of the θ-reduction below, so with minimization on
       the resulting clause is identical and only the counters move *)
    let bc =
      Bottom.bottom_clause ~expand ~prune:true ~params p.Problem.instance e
    in
    if prm.minimize_bottom then Minimize.reduce bc else bc
  in
  let armg_repair c = Ind_repair.repair (get_plan ()) c in
  let reduce c =
    (* negative reduction over inclusion-class instances, then
       θ-minimization so the emitted clause is concise (Section 7.5.5:
       "Castor also minimizes learned clauses before adding them to
       the definition") *)
    let c = Reduction.reduce (get_plan ()) ~safe:prm.safe p.Problem.neg_cov c in
    if prm.minimize_bottom then Minimize.reduce ~exact_below:80 c else c
  in
  let progolem_params =
    {
      Progolem.sample = prm.sample;
      beam = prm.beam;
      min_precision = prm.min_precision;
      minpos = prm.minpos;
      max_clauses = prm.max_clauses;
      require_safe = prm.safe;
    }
  in
  Progolem.learn_clause_generic ~bottom ~armg_repair ~reduce progolem_params p
    uncovered

(** [learn ?params p] runs Castor's covering loop on problem [p].

    For full schema independence the problem's coverage saturations
    should be built with {!expand_hook} so that they, too, are
    equivalent across schemas. *)
let learn ?(params = default_params) (p : Problem.t) =
  Obs.Span.with_span span_learn @@ fun () ->
  let plan = ref None in
  Coverage.set_domains p.Problem.pos_cov params.domains;
  Coverage.set_domains p.Problem.neg_cov params.domains;
  let outcome =
    Covering.run
      ~target:p.Problem.target.Schema.rname
      ~learn_clause:(fun uncovered -> learn_clause params plan p uncovered)
      ~max_clauses:params.max_clauses
      (Examples.n_pos p.Problem.train)
  in
  Coverage.set_domains p.Problem.pos_cov 1;
  Coverage.set_domains p.Problem.neg_cov 1;
  outcome.Covering.definition

(* ------------------------- unified API --------------------------- *)

let params_of_config ?(base = default_params) (c : Learner.config) =
  {
    base with
    sample = c.Learner.sample;
    beam = c.Learner.beam;
    min_precision = c.Learner.min_precision;
    minpos = c.Learner.minpos;
    max_clauses = c.Learner.max_clauses;
    safe = c.Learner.safe;
    domains = c.Learner.domains;
  }

(** Castor behind the unified {!Learner.S} surface. *)
module Unified : Learner.S =
  (val Learner.make ~name:"castor"
         (fun c p -> learn ~params:(params_of_config c) p))

(** Castor restricted to safe clauses, whatever the config says. *)
module Unified_safe : Learner.S =
  (val Learner.make ~name:"castor-safe"
         ~defaults:{ Learner.default_config with Learner.safe = true }
         (fun c p -> learn ~params:{ (params_of_config c) with safe = true } p))

(** Castor in general-IND mode (subset INDs used directly) — the
    Table 12 configuration. *)
module Unified_subset : Learner.S =
  (val Learner.make ~name:"castor-subset"
         (fun c p ->
           learn ~params:{ (params_of_config c) with mode = `Subset_too } p))

let () =
  Learner.register (module Unified);
  Learner.register (module Unified_safe);
  Learner.register (module Unified_subset)
