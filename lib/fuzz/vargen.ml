(** Seeded, budgeted generation of valid schema variants.

    Candidate composition/decomposition operations are enumerated from
    the schema's FD/IND metadata — compositions from the inclusion
    classes (the {!Castor_relational.Normalize.compose_advisor}
    fragment, generalized to subsets of each class), decompositions
    from BCNF analysis and pivot splits — then chained up to a depth
    bound. Every candidate chain is vetted before use:

    + the Definition 4.1 transformation lints
      ({!Castor_analysis.Analyze.transform}) must report no errors;
    + the resulting schema must pass the schema lints and keep the
      learning problem well-moded ({!Castor_analysis.Modes.lint_config});
    + the transformation must round-trip on the actual instance
      ([τ⁻¹(τ(I)) = I], {!Castor_relational.Transform.round_trips}) —
      the data-level half of information equivalence.

    Variants are deduplicated by a name-insensitive schema signature,
    so renaming-only differences (a composed relation called [person]
    vs [gender]) collapse to one variant, matching the paper's view
    that information equivalence is about sorts and dependencies, not
    relation names. *)

open Castor_relational
module Analyze = Castor_analysis.Analyze
module Diagnostic = Castor_analysis.Diagnostic
module Modes = Castor_analysis.Modes
module Dataset = Castor_datasets.Dataset
module Obs = Castor_obs.Obs

let c_candidates = Obs.Counter.create "fuzz.vargen.candidates"
let c_generated = Obs.Counter.create "fuzz.vargen.generated"
let c_rejected = Obs.Counter.create "fuzz.vargen.rejected"

(** Candidates pruned as duplicates {e before} the (expensive)
    validation pipeline ran — the early-dedup win. *)
let c_dup_pruned = Obs.Counter.create "fuzz.vargen.dup_pruned"

(* ------------------------------------------------------------------ *)
(* Schema signatures: name-insensitive structural identity             *)
(* ------------------------------------------------------------------ *)

(** [schema_signature s] is a canonical string identifying [s] up to
    {e relation and attribute} renaming and relation/attribute order —
    the paper's view that information equivalence is about sorts and
    dependencies, not names.

    Attribute names cannot simply be dropped: they carry the join
    structure (natural join connects columns by name), so a
    domain-only signature would merge genuinely different variants
    (e.g. a decomposition holding the [stud] column of a [person]
    domain vs. one holding [prof]). Instead each attribute name is
    given a {e structural color} by Weisfeiler–Leman-style refinement:
    start from its domain, then repeatedly refine by the sorted
    multiset of the sorts of the relations it occurs in (a sort being
    the sorted multiset of its member colors), renumbering colors
    canonically after each round. Chained compose/decompose orders
    that reach the same schema up to naming therefore produce the same
    signature and dedupe, while structurally distinct schemas keep
    distinct signatures (up to WL indistinguishability). *)
let schema_signature (s : Schema.t) =
  let attr_names =
    List.concat_map
      (fun (r : Schema.relation) ->
        List.map (fun (a : Schema.attribute) -> a.Schema.aname) r.Schema.attrs)
      s.Schema.relations
    |> List.sort_uniq compare
  in
  let domain_of =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (r : Schema.relation) ->
        List.iter
          (fun (a : Schema.attribute) ->
            if not (Hashtbl.mem tbl a.Schema.aname) then
              Hashtbl.add tbl a.Schema.aname a.Schema.domain)
          r.Schema.attrs)
      s.Schema.relations;
    Hashtbl.find tbl
  in
  (* canonical renumbering: distinct color strings -> dense rank *)
  let renumber strs =
    let ranks = Hashtbl.create 16 in
    List.iteri
      (fun i c -> Hashtbl.replace ranks c i)
      (List.sort_uniq compare (List.map snd strs));
    List.map (fun (name, c) -> (name, Hashtbl.find ranks c)) strs
  in
  let color = Hashtbl.create 16 in
  List.iter
    (fun (name, c) -> Hashtbl.replace color name c)
    (renumber (List.map (fun n -> (n, domain_of n)) attr_names));
  let rel_sort (r : Schema.relation) =
    List.map
      (fun (a : Schema.attribute) ->
        string_of_int (Hashtbl.find color a.Schema.aname))
      r.Schema.attrs
    |> List.sort compare |> String.concat "."
  in
  for _round = 1 to 3 do
    let refined =
      List.map
        (fun name ->
          let contexts =
            List.filter_map
              (fun (r : Schema.relation) ->
                if
                  List.exists
                    (fun (a : Schema.attribute) -> a.Schema.aname = name)
                    r.Schema.attrs
                then Some (rel_sort r)
                else None)
              s.Schema.relations
            |> List.sort compare
          in
          ( name,
            string_of_int (Hashtbl.find color name)
            ^ "|"
            ^ String.concat ";" contexts ))
        attr_names
    in
    List.iter (fun (name, c) -> Hashtbl.replace color name c) (renumber refined)
  done;
  List.map rel_sort s.Schema.relations
  |> List.sort compare |> String.concat ";"

(* ------------------------------------------------------------------ *)
(* Candidate operations                                                *)
(* ------------------------------------------------------------------ *)

(* non-empty subsets of [l] with 2 <= size <= k, preserving order *)
let subsets_2_to k l =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let without = go rest in
        without @ List.map (fun s -> x :: s) without
  in
  List.filter (fun s -> List.length s >= 2 && List.length s <= k) (go l)

(* order class members so consecutive parts share attributes (the
   compose_advisor chain ordering); None when disconnected *)
let chain_order (schema : Schema.t) cls =
  let rec order acc remaining =
    match remaining with
    | [] -> Some (List.rev acc)
    | _ -> (
        let joins r =
          match acc with
          | [] -> true
          | _ ->
              List.exists
                (fun p ->
                  Schema.shared_attrs
                    (Schema.find_relation schema p)
                    (Schema.find_relation schema r)
                  <> [])
                acc
        in
        match List.partition joins remaining with
        | next :: rest_joinable, rest -> order (next :: acc) (rest_joinable @ rest)
        | [], _ -> None)
  in
  order [] cls

(** Compositions: for every subset (size 2–4) of every inclusion
    class whose members pairwise join safely (every shared attribute
    covered by the column equivalence of the equality INDs) and whose
    join is acyclic, compose the members in chain order into the first
    member. Subsumes {!Normalize.compose_advisor}'s proposals. *)
let compose_candidates (schema : Schema.t) =
  let inc = Inclusion.build ~mode:`Equality_only schema in
  let col_class = Normalize.column_classes schema in
  let pair_ok r s_ =
    let shared =
      Schema.shared_attrs (Schema.find_relation schema r) (Schema.find_relation schema s_)
    in
    List.for_all (fun a -> col_class (r, a) = col_class (s_, a)) shared
  in
  let rec pairwise_ok = function
    | [] | [ _ ] -> true
    | r :: rest -> List.for_all (pair_ok r) rest && pairwise_ok rest
  in
  List.concat_map
    (fun cls ->
      List.filter_map
        (fun sub ->
          if not (pairwise_ok sub) then None
          else if not (Hypergraph.is_acyclic (List.map (Schema.sort schema) sub))
          then None
          else
            match chain_order schema sub with
            | Some parts -> Some (Transform.Compose { parts; into = List.hd parts })
            | None -> None)
        (subsets_2_to 4 cls))
    (Inclusion.classes inc)

(* fresh part names rel_i, rel_{i+1} not clashing with the schema *)
let fresh_pair schema rel =
  let rec go i =
    let n1 = Printf.sprintf "%s_%d" rel i
    and n2 = Printf.sprintf "%s_%d" rel (i + 1) in
    if Schema.mem_relation schema n1 || Schema.mem_relation schema n2 then
      go (i + 2)
    else (n1, n2)
  in
  go 1

(** Decompositions of each relation:

    - the BCNF decomposition proposed by {!Normalize.bcnf_decompose};
    - binary pivot splits: for each pivot (a candidate key, or any
      single attribute), partition the remaining attributes into two
      non-empty blocks, each part keeping the pivot and its block in
      original column order (the HIV [bonds → bondSource/bondTarget]
      shape).

    Both parts are always {e proper} subsets of the sort. Degenerate
    "decompositions" where one part is the whole relation (splitting
    off a redundant projection) are information preserving but outside
    the paper's decomposition fragment, and resource-bounded
    saturation is measurably sensitive to the redundant relation they
    add — the fuzzer found exactly that before this restriction. *)
let decompose_candidates (schema : Schema.t) =
  List.concat_map
    (fun (r : Schema.relation) ->
      let rel = r.Schema.rname in
      let sort = Schema.sort schema rel in
      let n = List.length sort in
      if n < 2 || n > 6 then []
      else begin
        let fds =
          List.filter
            (fun (fd : Schema.fd) -> String.equal fd.Schema.fd_rel rel)
            schema.Schema.fds
        in
        let keys =
          if fds = [] then []
          else List.filter (fun k -> List.length k < n) (Normalize.candidate_keys fds ~sort)
        in
        let pivots =
          List.sort_uniq compare (List.map (fun a -> [ a ]) sort @ keys)
        in
        let n1, n2 = fresh_pair schema rel in
        let in_order attrs = List.filter (fun a -> List.mem a attrs) sort in
        let splits =
          List.concat_map
            (fun pivot ->
              let rest = List.filter (fun a -> not (List.mem a pivot)) sort in
              match rest with
                | [] | [ _ ] -> []
                | first :: others ->
                    List.filter_map
                      (fun block ->
                        let b1 = first :: block in
                        let b2 = List.filter (fun a -> not (List.mem a b1)) others in
                        if b2 = [] then None
                        else
                          Some
                            (Transform.Decompose
                               {
                                 rel;
                                 parts =
                                   [
                                     (n1, in_order (pivot @ b1));
                                     (n2, in_order (pivot @ b2));
                                   ];
                               }))
                      (let rec subs = function
                         | [] -> [ [] ]
                         | x :: rest ->
                             let w = subs rest in
                             w @ List.map (fun s -> x :: s) w
                       in
                       subs others))
            pivots
        in
        Option.to_list (Normalize.bcnf_decompose schema rel) @ splits
      end)
    schema.Schema.relations

let candidate_ops schema = compose_candidates schema @ decompose_candidates schema

(* ------------------------------------------------------------------ *)
(* Validation: Def 4.1 lints, schema/mode lints, instance round trip   *)
(* ------------------------------------------------------------------ *)

type rejection =
  | Transform_lint of string
  | Schema_lint of string
  | Mode_lint of string
  | Apply_failed of string
  | Not_invertible
  | Duplicate

let rejection_to_string = function
  | Transform_lint m -> "transform-lint: " ^ m
  | Schema_lint m -> "schema-lint: " ^ m
  | Mode_lint m -> "mode-lint: " ^ m
  | Apply_failed m -> "apply: " ^ m
  | Not_invertible -> "not-invertible"
  | Duplicate -> "duplicate"

let first_error ds =
  match List.find_opt (fun d -> d.Diagnostic.severity = Diagnostic.Error) ds with
  | Some d -> d.Diagnostic.message
  | None -> ""

(** [validate ds ops] runs the full vetting pipeline on a candidate
    transformation chain over the dataset's base schema and instance.
    Returns the transformed schema on success. *)
let validate (ds : Dataset.t) (ops : Transform.t) =
  let base = ds.Dataset.schema in
  let tdiags = Analyze.transform base ops in
  if Diagnostic.has_errors tdiags then Error (Transform_lint (first_error tdiags))
  else
    match Transform.apply_schema base ops with
    | exception Transform.Illegal m -> Error (Apply_failed m)
    | exception Invalid_argument m -> Error (Apply_failed m)
    | s' ->
        let sdiags = Analyze.schema s' in
        if Diagnostic.has_errors sdiags then Error (Schema_lint (first_error sdiags))
        else
          let mdiags =
            Modes.lint_config
              ~const_domains:ds.Dataset.no_expand_domains
              ~target:ds.Dataset.target
              ~const_pool_domains:(List.map fst ds.Dataset.const_pool)
              ~no_expand_domains:ds.Dataset.no_expand_domains s'
          in
          if Diagnostic.has_errors mdiags then Error (Mode_lint (first_error mdiags))
          else if
            (* AutoMode learnability: a relation whose inferred mode has
               no input position can never be joined into a safe body —
               a transformation introducing one (beyond any the base
               schema already had) degrades the language *)
            (let no_input schema =
               List.filter_map
                 (fun (m : Modes.t) ->
                   if
                     m.Modes.args <> []
                     && not
                          (List.exists (fun a -> a.Modes.io = Modes.Input) m.Modes.args)
                   then Some m.Modes.rel
                   else None)
                 (Modes.infer ~const_domains:ds.Dataset.no_expand_domains schema)
             in
             let before = no_input base in
             List.exists (fun r -> not (List.mem r before)) (no_input s'))
          then Error (Mode_lint "relation with no input positions")
          else
            let ok =
              try Transform.round_trips ds.Dataset.instance ops with
              | Transform.Illegal _ | Invalid_argument _ | Not_found -> false
            in
            if ok then Ok s' else Error Not_invertible

(* ------------------------------------------------------------------ *)
(* Seeded, budgeted breadth-first generation                           *)
(* ------------------------------------------------------------------ *)

let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(** [generate ~seed ~budget ?max_depth ds] produces up to [budget]
    distinct valid variants of [ds]'s base schema as named
    transformation chains of length ≤ [max_depth] (default 2). The
    candidate order is shuffled by [seed], so different seeds explore
    different corners of the variant space; the same seed always
    yields the same family. Returns [(name, ops)] pairs ready to
    splice into [ds.variants]. *)
let generate ~seed ~budget ?(max_depth = 2) (ds : Dataset.t) =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let seen = Hashtbl.create 16 in
  Hashtbl.replace seen (schema_signature ds.Dataset.schema) ();
  let accepted = ref [] in
  let count = ref 0 in
  let frontier = ref [ ([], ds.Dataset.schema) ] in
  (try
     for _depth = 1 to max_depth do
       let next = ref [] in
       List.iter
         (fun (ops, s) ->
           List.iter
             (fun op ->
               if !count >= budget then raise Exit;
               Obs.Counter.incr c_candidates;
               let ops' = ops @ [ op ] in
               (* cheap schema-level dedup BEFORE the validation
                  pipeline: a candidate whose canonical signature was
                  already accepted would be rejected as a duplicate
                  anyway, so skip the lints and the instance
                  round-trip (the dominant generation cost at
                  max_depth > 2, where chained op orders reproduce the
                  same schemas combinatorially) *)
               let quick =
                 match Transform.apply_op_schema s op with
                 | exception (Transform.Illegal _ | Invalid_argument _) ->
                     None
                 | s' -> Some s'
               in
               let dup =
                 match quick with
                 | Some s' -> Hashtbl.mem seen (schema_signature s')
                 | None -> false
               in
               if dup then begin
                 Obs.Counter.incr c_rejected;
                 Obs.Counter.incr c_dup_pruned
               end
               else
                 match validate ds ops' with
                 | Error _ -> Obs.Counter.incr c_rejected
                 | Ok s' ->
                     let sg = schema_signature s' in
                     if Hashtbl.mem seen sg then Obs.Counter.incr c_rejected
                     else begin
                       Hashtbl.replace seen sg ();
                       incr count;
                       Obs.Counter.incr c_generated;
                       accepted := (Printf.sprintf "fz%d" !count, ops') :: !accepted;
                       next := (ops', s') :: !next
                     end)
             (shuffle rng (candidate_ops s)))
         !frontier;
       frontier := !next
     done
   with Exit -> ());
  List.rev !accepted

(** [reproduces ds tr] — can the candidate enumeration replay the
    hand-coded transformation [tr] step by step? At each step some
    candidate operation on the current schema must produce the same
    schema signature as the hand-coded op does. Used by the
    consistency tests pinning the generator's fragment against
    [lib/datasets]. *)
let reproduces (ds : Dataset.t) (tr : Transform.t) =
  let rec go schema = function
    | [] -> true
    | op :: rest ->
        let want = schema_signature (Transform.apply_op_schema schema op) in
        let found =
          List.exists
            (fun cand ->
              match Transform.apply_op_schema schema cand with
              | exception _ -> false
              | s' -> schema_signature s' = want)
            (candidate_ops schema)
        in
        found && go (Transform.apply_op_schema schema op) rest
  in
  go ds.Dataset.schema tr
