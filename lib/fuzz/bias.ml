(** Zero-config language-bias induction.

    The fuzzing harness must work from a raw dataset with no mode
    declarations (Section 9.1.1's HIV situation: "stored in flat files
    and does not have any information about its constraints"). This
    module reconstructs everything the curated datasets hand-write:

    - schema constraints, via {!Castor_relational.Discovery.annotate}
      when the schema declares none;
    - constant pools and frontier filters, via
      {!Castor_datasets.Dataset.derive_value_domains} (value
      selectivity);
    - mode declarations, via the AutoMode-style
      {!Castor_analysis.Modes.infer} over the (possibly enriched)
      schema.

    The result is a new {!Castor_datasets.Dataset.t} carrying the
    induced bias, plus a summary of what was induced. *)

open Castor_relational
module Modes = Castor_analysis.Modes
module Dataset = Castor_datasets.Dataset
module Obs = Castor_obs.Obs

let c_discovered_fds = Obs.Counter.create "fuzz.bias.discovered_fds"
let c_discovered_inds = Obs.Counter.create "fuzz.bias.discovered_inds"

type t = {
  discovered_fds : int;  (** FDs added by dependency discovery *)
  discovered_inds : int;  (** INDs added by dependency discovery *)
  join_domains : string list;  (** expandable entity-key domains *)
  const_domains : string list;  (** categorical domains (get a pool) *)
  no_expand_domains : string list;  (** kept off the frontier *)
  modes : Modes.t list;  (** inferred mode declarations *)
}

(* rebuild an instance under an enriched schema (same tuples) *)
let rekey schema inst =
  let out = Instance.create schema in
  List.iter
    (fun rel ->
      List.iter (fun tu -> Instance.add out rel tu) (Instance.tuples inst rel))
    (Instance.relation_names inst);
  out

(** [induce ?discover ?threshold ds] induces the full language bias
    for [ds] treated as raw data. [discover] controls dependency
    discovery: [`Auto] (default) runs it only when the schema declares
    no FDs and no INDs, [`Always] always, [`Never] never.
    [threshold] is the categorical-domain selectivity cutoff of
    {!Dataset.derive_value_domains}; [numeric_threshold] (default 8)
    is the stricter cutoff for all-numeric domains. *)
let induce ?(discover = `Auto) ?threshold ?(numeric_threshold = 8)
    (ds : Dataset.t) =
  let base = ds.Dataset.schema in
  let run_discovery =
    match discover with
    | `Always -> true
    | `Never -> false
    | `Auto -> base.Schema.fds = [] && base.Schema.inds = []
  in
  let schema =
    if run_discovery then Discovery.annotate ds.Dataset.instance else base
  in
  let instance =
    if schema == base then ds.Dataset.instance else rekey schema ds.Dataset.instance
  in
  let cat, _ent = Dataset.derive_value_domains ?threshold instance in
  (* Join domains — IND positions and the target's own attribute
     domains — are entity keys and must stay expandable no matter how
     few distinct values they have, or the relations they link become
     unreachable from any clause body (AutoMode marks them [+]).
     Every other domain is descriptive: expanding the frontier through
     it only manufactures accidental joins (two movies sharing a
     title), so it goes in the frontier filter; its low-cardinality
     subset doubles as the constant pool for top-down learners. *)
  let join_domains =
    let of_attr rel a =
      let r = Schema.find_relation schema rel in
      List.filter_map
        (fun (at : Schema.attribute) ->
          if String.equal at.Schema.aname a then Some at.Schema.domain else None)
        r.Schema.attrs
    in
    List.concat_map
      (fun (i : Schema.ind) ->
        List.concat_map (of_attr i.Schema.sub_rel) i.Schema.sub_attrs
        @ List.concat_map (of_attr i.Schema.sup_rel) i.Schema.sup_attrs)
      schema.Schema.inds
    @ List.map
        (fun (a : Schema.attribute) -> a.Schema.domain)
        ds.Dataset.target.Schema.attrs
    |> List.sort_uniq compare
  in
  let no_expand =
    List.filter
      (fun d -> not (List.mem d join_domains))
      (Modes.all_domains schema)
  in
  (* Numeric domains get a much stricter pool cutoff than symbolic
     ones: a number drawn from a handful of values (bond type 1–3,
     year-in-program 1–7) is a categorical code, but a dozen-plus
     distinct numbers (release years, measurements) behave like a
     continuous attribute — equality with one specific value is rarely
     a meaningful test, and un-generalizable numeric constants push
     the learner into huge overfit clauses whose truncated saturations
     are schema sensitive (AutoMode treats numeric attributes
     separately for the same reason). Withheld domains stay in the
     frontier filter; only the pool is dropped. *)
  let numeric vs =
    vs <> []
    && List.for_all
         (fun v -> Option.is_some (float_of_string_opt (Value.to_string v)))
         vs
  in
  let const_pool =
    List.filter
      (fun (d, vs) ->
        List.mem d no_expand
        && ((not (numeric vs)) || List.length vs <= numeric_threshold))
      cat
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let const_domains = List.map fst const_pool in
  let modes = Modes.infer ~const_domains:no_expand schema in
  let d_fds = List.length schema.Schema.fds - List.length base.Schema.fds in
  let d_inds = List.length schema.Schema.inds - List.length base.Schema.inds in
  Obs.Counter.add c_discovered_fds d_fds;
  Obs.Counter.add c_discovered_inds d_inds;
  let bias =
    {
      discovered_fds = d_fds;
      discovered_inds = d_inds;
      join_domains;
      const_domains;
      no_expand_domains = no_expand;
      modes;
    }
  in
  let ds' =
    {
      ds with
      Dataset.schema;
      instance;
      const_pool;
      no_expand_domains = no_expand;
    }
  in
  (ds', bias)

let pp ppf b =
  Fmt.pf ppf
    "@[<v>discovered: %d FDs, %d INDs@,join domains: %a@,frontier filter: \
     %a@,modes:@,%a@]"
    b.discovered_fds b.discovered_inds
    Fmt.(list ~sep:comma string)
    b.join_domains
    Fmt.(list ~sep:comma string)
    b.no_expand_domains
    Fmt.(list ~sep:cut (fun ppf m -> pf ppf "  %a" Modes.pp m))
    b.modes
