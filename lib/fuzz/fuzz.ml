(** Orchestration of the schema-variant fuzzing pipeline:

    induce (zero-config language bias, {!Bias}) →
    generate (seeded variant family, {!Vargen}) →
    sweep (learners × variants × backends, {!Sweep}) →
    shrink (minimal counterexamples for divergers, {!Shrink}).

    [run] is the single entry point used by the CLI, the bench
    experiment and the tests; [report_to_json] serializes the outcome
    for the [castor_cli fuzz --json] report and CI artifacts. *)

open Castor_relational
open Castor_logic
module Dataset = Castor_datasets.Dataset
module Obs = Castor_obs.Obs

let c_reports = Obs.Counter.create "fuzz.reports"

type config = {
  seed : int;
  budget : int;  (** max generated variants *)
  max_depth : int;  (** max chained ops per variant *)
  learners : string list;  (** registry names to sweep *)
  backends : Backend.spec option list;  (** [None] = learner default *)
  induce : bool;  (** strip hand-written bias and re-induce *)
  shrink : bool;  (** shrink divergers to counterexamples *)
}

let default_config =
  {
    seed = 17;
    budget = 8;
    max_depth = 2;
    learners = [ "castor" ];
    backends = [ None ];
    induce = true;
    shrink = true;
  }

type report = {
  rp_dataset : string;
  rp_config : config;
  rp_bias : Bias.t option;  (** [None] when [induce = false] *)
  rp_variants : (string * Transform.t) list;  (** generated only *)
  rp_runs : Sweep.run list;
  rp_verdicts : Sweep.verdict list;
  rp_backend_mismatches : (string * string) list;
  rp_planner_divergences : (string * string) list;
      (** (variant, clause) pairs where the batch kernel and
          θ-subsumption disagreed — planner strategies may diverge in
          cost only, never in result, so this must be empty *)
  rp_counterexamples : Shrink.counterexample list;
}

(** [run ?config ds] executes the full pipeline on [ds] treated as raw
    data. The dataset's hand-coded variants are ignored; the family is
    regenerated from the (induced) schema metadata. *)
let run ?(config = default_config) (ds : Dataset.t) =
  let ds, bias =
    if config.induce then
      let ds', b = Bias.induce (Dataset.strip_bias ds) in
      (ds', Some b)
    else (ds, None)
  in
  let generated =
    Vargen.generate ~seed:config.seed ~budget:config.budget
      ~max_depth:config.max_depth ds
  in
  let base = ("base", []) in
  let ds = { ds with Dataset.variants = base :: generated } in
  let runs =
    Sweep.sweep ~backends:config.backends ~seed:config.seed
      ~learners:config.learners ds
  in
  let verdicts = Sweep.verdicts ~base:(fst base) runs in
  let mismatches = Sweep.backend_mismatches runs in
  let planner_divergences =
    match config.backends with
    | backend :: _ -> Sweep.planner_agreement ?backend ds
    | [] -> Sweep.planner_agreement ds
  in
  let counterexamples =
    if not config.shrink then []
    else
      List.filter_map
        (fun (v : Sweep.verdict) ->
          if v.Sweep.v_equivalent || v.Sweep.v_backend <> Sweep.backend_name None
          then None
          else Shrink.falsify ~seed:config.seed ~learner:v.Sweep.v_learner ds)
        verdicts
  in
  Obs.Counter.incr c_reports;
  {
    rp_dataset = ds.Dataset.name;
    rp_config = config;
    rp_bias = bias;
    rp_variants = generated;
    rp_runs = runs;
    rp_verdicts = verdicts;
    rp_backend_mismatches = mismatches;
    rp_planner_divergences = planner_divergences;
    rp_counterexamples = counterexamples;
  }

(** [independent report ~learner] — did [learner] pass every
    equivalence check on every backend? *)
let independent report ~learner =
  List.for_all
    (fun (v : Sweep.verdict) ->
      (not (String.equal v.Sweep.v_learner learner)) || v.Sweep.v_equivalent)
    report.rp_verdicts

(* ------------------------------------------------------------------ *)
(* JSON serialization (hand-rolled: no JSON library in the image)      *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""
let jlist f l = "[" ^ String.concat "," (List.map f l) ^ "]"
let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let jsig s =
  jstr (String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list s)))

let report_to_json (r : report) =
  let config c =
    jobj
      [
        ("seed", string_of_int c.seed);
        ("budget", string_of_int c.budget);
        ("max_depth", string_of_int c.max_depth);
        ("learners", jlist jstr c.learners);
        ("backends", jlist (fun b -> jstr (Sweep.backend_name b)) c.backends);
        ("induce", string_of_bool c.induce);
        ("shrink", string_of_bool c.shrink);
      ]
  in
  let bias (b : Bias.t) =
    jobj
      [
        ("discovered_fds", string_of_int b.Bias.discovered_fds);
        ("discovered_inds", string_of_int b.Bias.discovered_inds);
        ("join_domains", jlist jstr b.Bias.join_domains);
        ("const_domains", jlist jstr b.Bias.const_domains);
        ("no_expand_domains", jlist jstr b.Bias.no_expand_domains);
        ( "modes",
          jlist (fun m -> jstr (Castor_analysis.Modes.to_string m)) b.Bias.modes );
      ]
  in
  let variant (name, ops) =
    jobj
      [
        ("name", jstr name);
        ("ops", jstr (Fmt.str "%a" Transform.pp ops));
        ("depth", string_of_int (List.length ops));
      ]
  in
  let run (x : Sweep.run) =
    jobj
      [
        ("learner", jstr x.Sweep.run_learner);
        ("backend", jstr x.Sweep.run_backend);
        ("variant", jstr x.Sweep.run_variant);
        ("clauses", string_of_int x.Sweep.run_clauses);
        ("seconds", Printf.sprintf "%.3f" x.Sweep.run_seconds);
        ("signature", jsig x.Sweep.run_signature);
      ]
  in
  let verdict (v : Sweep.verdict) =
    jobj
      [
        ("learner", jstr v.Sweep.v_learner);
        ("backend", jstr v.Sweep.v_backend);
        ("equivalent", string_of_bool v.Sweep.v_equivalent);
        ("diverging", jlist jstr v.Sweep.v_diverging);
      ]
  in
  let cx (c : Shrink.counterexample) =
    jobj
      [
        ("dataset", jstr c.Shrink.cx_dataset);
        ("learner", jstr c.Shrink.cx_learner);
        ("variant", jstr c.Shrink.cx_variant);
        ("ops", jstr (Fmt.str "%a" Transform.pp c.Shrink.cx_ops));
        ( "side",
          jstr (match c.Shrink.cx_side with `Base -> "base" | `Variant -> "variant") );
        ("positive", string_of_bool c.Shrink.cx_positive);
        ("example", jstr (Atom.to_string c.Shrink.cx_example));
        ("clause", jstr (Clause.to_string c.Shrink.cx_clause));
        ("seed", string_of_int c.Shrink.cx_seed);
        ("shrink_steps", string_of_int c.Shrink.cx_steps);
      ]
  in
  jobj
    [
      ("dataset", jstr r.rp_dataset);
      ("config", config r.rp_config);
      ( "bias",
        match r.rp_bias with None -> "null" | Some b -> bias b );
      ("variants", jlist variant r.rp_variants);
      ("runs", jlist run r.rp_runs);
      ("verdicts", jlist verdict r.rp_verdicts);
      ( "backend_mismatches",
        jlist (fun (l, v) -> jobj [ ("learner", jstr l); ("variant", jstr v) ])
          r.rp_backend_mismatches );
      ( "planner_divergences",
        jlist
          (fun (v, c) -> jobj [ ("variant", jstr v); ("clause", jstr c) ])
          r.rp_planner_divergences );
      ("counterexamples", jlist cx r.rp_counterexamples);
    ]
