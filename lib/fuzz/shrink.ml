(** QCheck-style property driver with shrinking.

    The property under test is schema independence: a learner's
    coverage signature on a variant equals its signature on the base
    schema. When it fails, the failure is shrunk to a minimal
    counterexample on two axes:

    - the {e transformation} is minimized: the shortest subsequence of
      the variant's operations that still diverges (each candidate
      subsequence is re-vetted by {!Vargen.validate} before re-running
      the learner);
    - the {e clause} is minimized: a clause of the diverging
      definition that covers the witness example is greedily stripped
      of body literals as long as its whole data behavior (coverage
      over all positives and negatives) is unchanged — the smallest
      clause that still exhibits the divergent classification.

    The result carries the witness example, the polarity, the side
    that covers it, and the seed, so a CI failure reproduces locally
    with one environment variable. *)

open Castor_relational
open Castor_logic
open Castor_ilp
module Dataset = Castor_datasets.Dataset
module Experiment = Castor_eval.Experiment
module Algos = Castor_eval.Algos
module Obs = Castor_obs.Obs

let c_shrinks = Obs.Counter.create "fuzz.shrink.runs"
let c_steps = Obs.Counter.create "fuzz.shrink.steps"

type counterexample = {
  cx_dataset : string;
  cx_learner : string;
  cx_variant : string;  (** name of the originally-diverging variant *)
  cx_ops : Transform.t;  (** minimal diverging transformation *)
  cx_side : [ `Base | `Variant ];  (** which schema covers the witness *)
  cx_positive : bool;  (** witness drawn from the positive examples *)
  cx_example : Atom.t;  (** the witness example *)
  cx_clause : Clause.t;  (** minimal clause covering the witness *)
  cx_seed : int;
  cx_steps : int;  (** learner/coverage re-runs spent shrinking *)
}

let pp_counterexample ppf cx =
  Fmt.pf ppf
    "@[<v>%s on %s diverges at variant %s@,minimal ops: %a@,witness: %s %a \
     (covered on %s schema only)@,minimal clause: %a@,seed %d, %d shrink steps@]"
    cx.cx_learner cx.cx_dataset cx.cx_variant Transform.pp cx.cx_ops
    (if cx.cx_positive then "positive" else "negative")
    Atom.pp cx.cx_example
    (match cx.cx_side with `Base -> "base" | `Variant -> "variant")
    Clause.pp cx.cx_clause cx.cx_seed cx.cx_steps

(* proper non-empty subsequences of [l], shortest first *)
let proper_subsequences l =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let w = go rest in
        w @ List.map (fun s -> x :: s) w
  in
  go l
  |> List.filter (fun s -> s <> [] && List.length s < List.length l)
  |> List.sort (fun a b -> compare (List.length a) (List.length b))

let drop_at i l = List.filteri (fun j _ -> j <> i) l

(** [falsify ?seed ~learner ds] — run the schema-independence property
    for [learner] over the variants already present in [ds] (base
    first). Returns [None] when every variant's signature matches the
    base (the property holds), or [Some cx] with a fully shrunk
    counterexample. *)
let falsify ?(seed = 17) ~learner (ds : Dataset.t) =
  let algo = Algos.of_name learner in
  let base = fst (List.hd ds.Dataset.variants) in
  let prep_b = Experiment.prepare ds base in
  let def_b = Experiment.train_full ~seed prep_b algo in
  let sig_b = Experiment.signature prep_b def_b in
  let steps = ref 0 in
  let train ops =
    incr steps;
    Obs.Counter.incr c_steps;
    let ds' = { ds with Dataset.variants = [ ("cand", ops) ] } in
    let prep = Experiment.prepare ds' "cand" in
    let def = Experiment.train_full ~seed prep algo in
    (prep, def, Experiment.signature prep def)
  in
  let diverges ops =
    match Vargen.validate ds ops with
    | Error _ -> None
    | Ok _ ->
        let ((_, _, s) as r) = train ops in
        if s <> sig_b then Some r else None
  in
  let rec first_failure = function
    | [] -> None
    | (vn, ops) :: rest ->
        if vn = base then first_failure rest
        else (
          match diverges ops with
          | Some r -> Some (vn, ops, r)
          | None -> first_failure rest)
  in
  match first_failure ds.Dataset.variants with
  | None -> None
  | Some (vname, ops, r0) ->
      Obs.Counter.incr c_shrinks;
      (* axis 1: minimal diverging transformation *)
      let ops_min, (prep_v, def_v, sig_v) =
        match
          List.find_map
            (fun o -> Option.map (fun r -> (o, r)) (diverges o))
            (proper_subsequences ops)
        with
        | Some x -> x
        | None -> (ops, r0)
      in
      (* the witness: first example the two signatures classify apart *)
      let idx = ref 0 in
      while sig_v.(!idx) = sig_b.(!idx) do incr idx done;
      let idx = !idx in
      let side = if sig_v.(idx) then `Variant else `Base in
      let prep, def =
        match side with `Variant -> (prep_v, def_v) | `Base -> (prep_b, def_b)
      in
      let n_pos = Coverage.length prep.Experiment.all_pos in
      let positive = idx < n_pos in
      let cov = if positive then prep.Experiment.all_pos else prep.Experiment.all_neg in
      let j = if positive then idx else idx - n_pos in
      let example = cov.Coverage.examples.(j) in
      (* axis 2: minimal clause with unchanged data behavior *)
      let behavior c =
        ( Coverage.vector prep.Experiment.all_pos c,
          Coverage.vector prep.Experiment.all_neg c )
      in
      let clause0 =
        List.find
          (fun c -> (Coverage.vector cov c).(j))
          def.Clause.clauses
      in
      let b0 = behavior clause0 in
      let rec prune (c : Clause.t) =
        let n = List.length c.Clause.body in
        let rec try_drop i =
          if i >= n then None
          else begin
            incr steps;
            Obs.Counter.incr c_steps;
            let c' = Clause.make c.Clause.head (drop_at i c.Clause.body) in
            if behavior c' = b0 then Some c' else try_drop (i + 1)
          end
        in
        match try_drop 0 with Some c' -> prune c' | None -> c
      in
      Some
        {
          cx_dataset = ds.Dataset.name;
          cx_learner = learner;
          cx_variant = vname;
          cx_ops = ops_min;
          cx_side = side;
          cx_positive = positive;
          cx_example = example;
          cx_clause = prune clause0;
          cx_seed = seed;
          cx_steps = !steps;
        }
