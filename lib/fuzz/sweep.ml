(** Independence sweeps: every requested learner × every variant ×
    every backend spec, compared by data-equivalence signature.

    A learner is schema independent on the family (the paper's
    Definition 3.3, operationalized as in Section 9.2) when its
    learned definition classifies every example identically across all
    variants — equal {!Castor_eval.Experiment.signature}s. Castor must
    pass; the baselines are expected to diverge somewhere, which the
    sweep records rather than hides. A second axis checks that the
    storage backend ({!Castor_relational.Backend.spec}) never changes
    any learner's output on any variant. *)

open Castor_relational
module Dataset = Castor_datasets.Dataset
module Experiment = Castor_eval.Experiment
module Algos = Castor_eval.Algos
module Obs = Castor_obs.Obs

let c_runs = Obs.Counter.create "fuzz.sweep.runs"
let c_checks = Obs.Counter.create "fuzz.equivalence.checks"
let c_divergences = Obs.Counter.create "fuzz.equivalence.divergences"
let c_backend_mismatches = Obs.Counter.create "fuzz.backend.mismatches"
let c_planner_checks = Obs.Counter.create "fuzz.planner.checks"
let c_planner_divergences = Obs.Counter.create "fuzz.planner.divergences"

(** Forced planner fallbacks observed across {!planner_agreement} —
    decisions where the kernel was structurally refused rather than
    priced. The hypertree-decomposed kernel retired the cyclic forced
    reason, so this is expected to stay at zero (CI pins it). *)
let c_planner_forced = Obs.Counter.create "fuzz.planner.forced"

type run = {
  run_learner : string;
  run_backend : string;  (** printable spec, ["default"] when unset *)
  run_variant : string;
  run_signature : bool array;
  run_clauses : int;
  run_seconds : float;
}

(** Per (learner, backend) verdict over the whole variant family. *)
type verdict = {
  v_learner : string;
  v_backend : string;
  v_equivalent : bool;
  v_diverging : string list;  (** variant names with signature ≠ base *)
}

let backend_name = function
  | None -> "default"
  | Some s -> Backend.spec_to_string s

(** [sweep ?backends ?seed ~learners ds] trains every learner on every
    variant of [ds] under every backend spec and records the coverage
    signatures. [ds.variants] must already contain the generated
    family (base first). *)
let sweep ?(backends = [ None ]) ?(seed = 17) ~learners (ds : Dataset.t) =
  List.concat_map
    (fun backend ->
      List.concat_map
        (fun (vname, _) ->
          let prep = Experiment.prepare ?backend ds vname in
          List.map
            (fun lname ->
              let algo = Algos.of_name ?backend lname in
              let t0 = Unix.gettimeofday () in
              let def = Experiment.train_full ~seed prep algo in
              Obs.Counter.incr c_runs;
              {
                run_learner = lname;
                run_backend = backend_name backend;
                run_variant = vname;
                run_signature = Experiment.signature prep def;
                run_clauses = List.length def.Castor_logic.Clause.clauses;
                run_seconds = Unix.gettimeofday () -. t0;
              })
            learners)
        ds.Dataset.variants)
    backends

(** [verdicts ~base runs] folds the sweep into one verdict per
    (learner, backend): which variants' signatures differ from the
    [base] variant's. *)
let verdicts ~base (runs : run list) =
  let keys =
    List.sort_uniq compare
      (List.map (fun r -> (r.run_learner, r.run_backend)) runs)
  in
  List.map
    (fun (l, b) ->
      let mine =
        List.filter (fun r -> r.run_learner = l && r.run_backend = b) runs
      in
      let base_sig =
        (List.find (fun r -> r.run_variant = base) mine).run_signature
      in
      let diverging =
        List.filter_map
          (fun r ->
            if r.run_variant = base then None
            else begin
              Obs.Counter.incr c_checks;
              if r.run_signature = base_sig then None else Some r.run_variant
            end)
          mine
      in
      Obs.Counter.add c_divergences (List.length diverging);
      {
        v_learner = l;
        v_backend = b;
        v_equivalent = diverging = [];
        v_diverging = diverging;
      })
    keys

(** [planner_agreement ?backend ds] — on every variant of [ds], the
    planner's two executable strategies must diverge only in cost,
    never in result: candidate body prefixes of each variant's bottom
    clauses — their cyclic closures included, since decomposed
    variants are exactly where cyclic cores appear — are evaluated
    with the batch kernel enabled and again through pure per-example
    θ-subsumption, and the vectors compared bit-for-bit
    ([fuzz.planner.checks] / [fuzz.planner.divergences]). Forced
    fallbacks observed along the way land in [fuzz.planner.forced]
    (expected 0: every decision is cost-based now). Returns the
    diverging (variant, clause) pairs, which must be empty. *)
let planner_agreement ?backend (ds : Dataset.t) =
  let module Coverage = Castor_ilp.Coverage in
  let module Clause = Castor_logic.Clause in
  let take k l =
    let rec go k = function
      | x :: tl when k > 0 -> x :: go (k - 1) tl
      | _ -> []
    in
    go k l
  in
  let forced0 = Obs.Counter.value Coverage.c_batch_fallbacks in
  let diverging = ref [] in
  List.iter
    (fun (vname, _) ->
      let prep = Experiment.prepare ?backend ds vname in
      let cov = prep.Experiment.all_pos in
      Coverage.set_cache cov false;
      let prefixes =
        List.concat_map
          (fun i ->
            let bc, _ = Clause.variabilize cov.Coverage.bottoms.(i) in
            List.map
              (fun k -> Clause.make bc.Clause.head (take k bc.Clause.body))
              [ 1; 2; 3 ])
          (List.init (min 2 (Coverage.length cov)) Fun.id)
      in
      let closed = List.filter_map Castor_ilp.Planner.close_cycle prefixes in
      List.iter
        (fun clause ->
          Obs.Counter.incr c_planner_checks;
          Coverage.set_batch cov true;
          let vb = Coverage.vector cov clause in
          Coverage.set_batch cov false;
          let vs = Coverage.vector cov clause in
          Coverage.set_batch cov true;
          if vb <> vs then begin
            Obs.Counter.incr c_planner_divergences;
            diverging := (vname, Clause.to_string clause) :: !diverging
          end)
        (prefixes @ closed))
    ds.Dataset.variants;
  Obs.Counter.add c_planner_forced
    (Obs.Counter.value Coverage.c_batch_fallbacks - forced0);
  List.rev !diverging

(** [backend_mismatches runs] — (learner, variant) pairs whose
    signature depends on the storage backend. Must be empty: the
    backend seam is an implementation detail. *)
let backend_mismatches (runs : run list) =
  let keys =
    List.sort_uniq compare
      (List.map (fun r -> (r.run_learner, r.run_variant)) runs)
  in
  let bad =
    List.filter
      (fun (l, v) ->
        match
          List.filter (fun r -> r.run_learner = l && r.run_variant = v) runs
        with
        | [] | [ _ ] -> false
        | r0 :: rest ->
            List.exists (fun r -> r.run_signature <> r0.run_signature) rest)
      keys
  in
  Obs.Counter.add c_backend_mismatches (List.length bad);
  bad
