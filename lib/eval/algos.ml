(** Standard algorithm configurations used across the experiments,
    mirroring Section 9.1.2: FOIL, Aleph-FOIL (greedy Aleph),
    Aleph-Progol (default Aleph), ProGolem, Golem and Castor, all with
    minimum precision 0.67 and minpos 2. *)

open Castor_learners
open Castor_core
open Experiment

(** [of_name ?gate ?domains ?backend name] resolves a learner through
    the {!Castor_learners.Learner} registry — the single code path the
    CLI and drivers use instead of pattern-matching names. The learner
    runs with its own [default_config], with coverage tests fanned out
    over [domains] and re-based onto the [backend] storage spec when
    one is given (the CLI's [--backend] flag lands here).

    @raise Learner.Unknown_learner on unregistered names. *)
let of_name ?gate ?(domains = 1) ?backend name =
  let module L = (val Learner.find name) in
  let config = { L.default_config with Learner.domains; backend } in
  {
    algo_name = L.name;
    run = (fun p -> (L.learn ?gate ~config p).Learner.Report.definition);
  }

(* ---- preset constructors (pre-registry compatibility surface) ---- *)

let foil ?(clauselength = 6) () =
  {
    algo_name = "FOIL";
    run =
      (fun p ->
        Foil.learn ~params:{ Foil.default_params with clauselength } p);
  }

let aleph_foil ?(clauselength = 10) () =
  {
    algo_name = Printf.sprintf "Aleph-FOIL(cl=%d)" clauselength;
    run = (fun p -> Progol.learn ~params:(Progol.aleph_foil ~clauselength) p);
  }

let aleph_progol ?(clauselength = 10) () =
  {
    algo_name = Printf.sprintf "Aleph-Progol(cl=%d)" clauselength;
    run = (fun p -> Progol.learn ~params:(Progol.aleph_progol ~clauselength) p);
  }

let progolem ?(sample = 5) ?(beam = 2) () =
  {
    algo_name = "ProGolem";
    run =
      (fun p -> Progolem.learn ~params:{ Progolem.default_params with sample; beam } p);
  }

let golem ?(sample = 8) () =
  {
    algo_name = "Golem";
    run = (fun p -> Golem.learn ~params:{ Golem.default_params with sample } p);
  }

let castor ?(params = Castor.default_params) () =
  { algo_name = "Castor"; run = (fun p -> Castor.learn ~params p) }

(** Castor in general-IND mode (subset INDs used directly, no
    equality pre-check) — the Table 12 configuration. *)
let castor_subset () =
  {
    algo_name = "Castor(subset-INDs)";
    run =
      (fun p ->
        Castor.learn ~params:{ Castor.default_params with mode = `Subset_too } p);
  }
