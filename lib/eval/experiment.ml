(** Experiment runner: algorithm × schema-variant grids with
    cross-validation, reproducing the layout of the paper's Tables
    9-12.

    For each variant of a dataset the runner materializes the
    transformed instance, saturates every example once (with Castor's
    IND chase threaded in, so all learners share the same coverage
    semantics), and then runs each algorithm over k stratified folds,
    reporting averaged precision, recall and learning time. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Castor_learners
open Castor_datasets
module Obs = Castor_obs.Obs

(* one span over every training run, whatever the algorithm — the
   denominator when reading the per-operation spans below it *)
let span_train = Obs.Span.create "eval.train"

type algo = {
  algo_name : string;
  run : Problem.t -> Clause.definition;
}

type row = {
  dataset : string;
  schema_name : string;
  algo : string;
  metrics : Metrics.t;
  time_s : float;  (** mean learning wall-clock seconds per fold *)
  clauses : int;  (** clause count of the last fold's definition *)
  definition : Clause.definition;  (** last fold's definition *)
}

(** Precomputed per-variant state: transformed instance plus the
    saturation-backed coverage over all examples. *)
type prepared = {
  pvariant : Dataset.variant;
  all_pos : Coverage.t;
  all_neg : Coverage.t;
  pdataset : Dataset.t;
  bottom_params : Bottom.params;
}

let default_bottom_params =
  {
    Bottom.depth = 2;
    max_terms = Some 60;
    per_relation_cap = 10;
    no_expand_domains = [];
    const_domains = [];
  }

(** [prepare ?bottom_params ?mode ?backend dataset variant_name]
    materializes a variant and saturates all examples with the IND
    chase; [backend] picks the storage substrate of the coverage
    structures. The dataset's frontier filter is always applied. *)
let prepare ?(bottom_params = default_bottom_params)
    ?(mode : Inclusion.mode = `Equality_only) ?backend (ds : Dataset.t)
    variant_name =
  let bottom_params =
    {
      bottom_params with
      Bottom.no_expand_domains = ds.Dataset.no_expand_domains;
      const_domains = List.map fst ds.Dataset.const_pool;
    }
  in
  let v = Dataset.variant_named ds variant_name in
  let plan = Castor_core.Plan.build ~mode v.Dataset.vschema in
  let expand rel tu = Castor_core.Plan.expand plan v.Dataset.vinstance rel tu in
  {
    pvariant = v;
    all_pos =
      Coverage.build ~expand ?backend ~params:bottom_params
        v.Dataset.vinstance ds.Dataset.examples.Examples.pos;
    all_neg =
      Coverage.build ~expand ?backend ~params:bottom_params
        v.Dataset.vinstance ds.Dataset.examples.Examples.neg;
    pdataset = ds;
    bottom_params;
  }

(** [prepare_positive_only ?ratio ds variant_name] — like {!prepare},
    but the dataset's negative labels are discarded and replaced by
    closed-world pseudo-negatives sampled from the instance
    (Section 7.3: safe-clause learners can be trained from positive
    examples only). Evaluation against the true negatives still uses
    a {!prepare}d structure. *)
let prepare_positive_only ?(bottom_params = default_bottom_params)
    ?(mode : Inclusion.mode = `Equality_only) ?backend ?(ratio = 2) ?(seed = 23)
    (ds : Dataset.t) variant_name =
  let bottom_params =
    {
      bottom_params with
      Bottom.no_expand_domains = ds.Dataset.no_expand_domains;
      const_domains = List.map fst ds.Dataset.const_pool;
    }
  in
  let v = Dataset.variant_named ds variant_name in
  let plan = Castor_core.Plan.build ~mode v.Dataset.vschema in
  let expand rel tu = Castor_core.Plan.expand plan v.Dataset.vinstance rel tu in
  let pseudo_neg =
    Examples.closed_world_negatives ~seed ~ratio v.Dataset.vinstance
      ds.Dataset.target ds.Dataset.examples.Examples.pos
  in
  {
    pvariant = v;
    all_pos =
      Coverage.build ~expand ?backend ~params:bottom_params
        v.Dataset.vinstance ds.Dataset.examples.Examples.pos;
    all_neg =
      Coverage.build ~expand ?backend ~params:bottom_params
        v.Dataset.vinstance pseudo_neg;
    pdataset = ds;
    bottom_params;
  }

(* stratified index folds *)
let fold_indices ~seed k n =
  let rng = Random.State.make [| seed |] in
  let idx = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- t
  done;
  List.init k (fun f ->
      let test = ref [] and train = ref [] in
      Array.iteri
        (fun pos i -> if pos mod k = f then test := i :: !test else train := i :: !train)
        idx;
      (Array.of_list (List.rev !train), Array.of_list (List.rev !test)))

let problem_of_fold prep (ptrain, _) (ntrain, _) ~seed =
  let pos_cov = Coverage.sub prep.all_pos ptrain in
  let neg_cov = Coverage.sub prep.all_neg ntrain in
  {
    Problem.instance = prep.pvariant.Dataset.vinstance;
    target = prep.pdataset.Dataset.target;
    train =
      {
        Examples.pos = pos_cov.Coverage.examples;
        neg = neg_cov.Coverage.examples;
      };
    pos_cov;
    neg_cov;
    const_pool = prep.pdataset.Dataset.const_pool;
    bottom_params = prep.bottom_params;
    rng = Random.State.make [| seed |];
  }

(** Coverage of [def] over a sub-coverage: an example is covered when
    some clause subsumes its saturation. *)
let definition_vector cov (def : Clause.definition) =
  let n = Coverage.length cov in
  let out = Array.make n false in
  List.iter
    (fun c ->
      let v = Coverage.vector cov c in
      Array.iteri (fun i b -> if b then out.(i) <- true) v)
    def.Clause.clauses;
  out

let count v = Array.fold_left (fun a b -> if b then a + 1 else a) 0 v

(** [test_metrics prep def (ptest, ntest)] evaluates on held-out
    examples. *)
let test_metrics prep def (ptest, ntest) =
  let pos_cov = Coverage.sub prep.all_pos ptest in
  let neg_cov = Coverage.sub prep.all_neg ntest in
  let tp = count (definition_vector pos_cov def) in
  let fp = count (definition_vector neg_cov def) in
  Metrics.of_counts ~tp ~fp ~pos_total:(Array.length ptest)

(** [crossval ?folds ?seed prep algo] runs [algo] over stratified
    folds of the prepared variant. *)
let crossval ?(folds = 5) ?(seed = 17) (prep : prepared) (algo : algo) =
  let n_pos = Coverage.length prep.all_pos
  and n_neg = Coverage.length prep.all_neg in
  let pfolds = fold_indices ~seed folds n_pos
  and nfolds = fold_indices ~seed:(seed + 1) folds n_neg in
  let results =
    List.map2
      (fun pf nf ->
        let problem = problem_of_fold prep pf nf ~seed in
        let t0 = Unix.gettimeofday () in
        let def = Obs.Span.with_span span_train (fun () -> algo.run problem) in
        let dt = Unix.gettimeofday () -. t0 in
        let m = test_metrics prep def (snd pf, snd nf) in
        (m, dt, def))
      pfolds nfolds
  in
  let metrics = Metrics.average (List.map (fun (m, _, _) -> m) results) in
  let time_s =
    List.fold_left (fun a (_, t, _) -> a +. t) 0. results
    /. float_of_int (List.length results)
  in
  let _, _, last_def = List.nth results (List.length results - 1) in
  {
    dataset = prep.pdataset.Dataset.name;
    schema_name = prep.pvariant.Dataset.variant_name;
    algo = algo.algo_name;
    metrics;
    time_s;
    clauses = List.length last_def.Clause.clauses;
    definition = last_def;
  }

(** [train_full prep algo] trains on all examples (no held-out split);
    used by the schema-independence checks and the ablations. *)
let train_full ?(seed = 17) (prep : prepared) (algo : algo) =
  let n_pos = Coverage.length prep.all_pos
  and n_neg = Coverage.length prep.all_neg in
  let problem =
    problem_of_fold prep
      (Array.init n_pos Fun.id, [||])
      (Array.init n_neg Fun.id, [||])
      ~seed
  in
  Obs.Span.with_span span_train (fun () -> algo.run problem)

(** [signature prep def] is the coverage bit-vector of [def] over all
    examples of the dataset (positives then negatives) — two learned
    definitions with equal signatures over corresponding variants
    behave identically on the data, the operational notion of
    schema-independent output used in Section 9.2. *)
let signature (prep : prepared) def =
  Array.append
    (definition_vector prep.all_pos def)
    (definition_vector prep.all_neg def)

(** [grid ?folds dataset ~variants ~algos] — the full experiment
    table. *)
let grid ?folds ?bottom_params ?mode ?backend (ds : Dataset.t) ~variants
    ~algos =
  List.concat_map
    (fun vname ->
      let prep = prepare ?bottom_params ?mode ?backend ds vname in
      List.map (fun algo -> crossval ?folds prep algo) algos)
    variants
