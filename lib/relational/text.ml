(** Text format for schemas and database instances, so datasets can be
    exported, inspected and re-imported without going through OCaml
    code. The syntax is Datalog-flavoured:

    {v
    % schema declarations
    relation student(stud: person, phase: phase, years: years).
    fd student: stud -> phase, years.
    ind ta[stud] <= student[stud].
    ind student[stud] = inPhase[stud].

    % facts
    student(stud1, post_quals, 4).
    v}

    Identifiers starting with a digit parse as integer constants;
    everything else is a string constant. *)

open Lexer

(* ---------------------------- printing ----------------------------- *)

let print_schema ppf (s : Schema.t) =
  List.iter
    (fun (r : Schema.relation) ->
      Fmt.pf ppf "relation %s(%a).@." r.Schema.rname
        Fmt.(
          list ~sep:(any ", ") (fun ppf (a : Schema.attribute) ->
              pf ppf "%s: %s" a.Schema.aname a.Schema.domain))
        r.Schema.attrs)
    s.Schema.relations;
  List.iter
    (fun (fd : Schema.fd) ->
      Fmt.pf ppf "fd %s: %a -> %a.@." fd.Schema.fd_rel
        Fmt.(list ~sep:(any ", ") string)
        fd.Schema.fd_lhs
        Fmt.(list ~sep:(any ", ") string)
        fd.Schema.fd_rhs)
    s.Schema.fds;
  List.iter
    (fun (i : Schema.ind) ->
      Fmt.pf ppf "ind %s[%a] %s %s[%a].@." i.Schema.sub_rel
        Fmt.(list ~sep:(any ", ") string)
        i.Schema.sub_attrs
        (if i.Schema.equality then "=" else "<=")
        i.Schema.sup_rel
        Fmt.(list ~sep:(any ", ") string)
        i.Schema.sup_attrs)
    s.Schema.inds

let print_value ppf v = Fmt.string ppf (Value.to_string v)

let print_facts ppf (inst : Instance.t) =
  List.iter
    (fun rel ->
      List.iter
        (fun tu ->
          Fmt.pf ppf "%s(%a).@." rel
            Fmt.(array ~sep:(any ", ") print_value)
            tu)
        (List.rev (Instance.tuples inst rel)))
    (Instance.relation_names inst)

let schema_to_string s = Fmt.str "%a" print_schema s

let facts_to_string i = Fmt.str "%a" print_facts i

(* ---------------------------- parsing ------------------------------ *)

let parse_ident_list c =
  let rec go acc =
    let x = ident c in
    match peek c with
    | Comma ->
        advance c;
        go (x :: acc)
    | _ -> List.rev (x :: acc)
  in
  go []

let parse_relation_decl c =
  let rname = ident c in
  expect c Lparen;
  let rec attrs acc =
    let aname = ident c in
    expect c Colon;
    let domain = ident c in
    let acc = Schema.attribute ~domain aname :: acc in
    match next c with
    | Comma -> attrs acc
    | Rparen -> List.rev acc
    | t -> err c "expected ',' or ')' in relation declaration, found %a" pp_token t
  in
  let attrs = attrs [] in
  expect c Dot;
  Schema.relation rname attrs

let parse_fd_decl c =
  let rel = ident c in
  expect c Colon;
  let lhs = parse_ident_list c in
  expect c Arrow;
  let rhs = parse_ident_list c in
  expect c Dot;
  { Schema.fd_rel = rel; fd_lhs = lhs; fd_rhs = rhs }

let parse_side c =
  let rel = ident c in
  expect c Lbracket;
  let attrs = parse_ident_list c in
  expect c Rbracket;
  (rel, attrs)

let parse_ind_decl c =
  let sub_rel, sub_attrs = parse_side c in
  let equality =
    match next c with
    | Eq -> true
    | Subset -> false
    | t -> err c "expected '=' or '<=' in ind declaration, found %a" pp_token t
  in
  let sup_rel, sup_attrs = parse_side c in
  expect c Dot;
  { Schema.sub_rel; sub_attrs; sup_rel; sup_attrs; equality }

(** [parse_schema_spanned text] reads [relation], [fd] and [ind]
    declarations and additionally returns, for each relation, the
    source position of its declaration — import-time lints attach
    these to their diagnostics.
    @raise Lexer.Error on malformed input. *)
let parse_schema_spanned text =
  let c = cursor (tokenize text) in
  let schema = ref Schema.empty in
  let spans = ref [] in
  let rec go () =
    match next c with
    | Eof -> (!schema, List.rev !spans)
    | Ident "relation" ->
        let pos = peek_pos c in
        let r = parse_relation_decl c in
        spans := (r.Schema.rname, pos) :: !spans;
        schema := Schema.add_relation !schema r;
        go ()
    | Ident "fd" ->
        schema := Schema.add_fd !schema (parse_fd_decl c);
        go ()
    | Ident "ind" ->
        schema := Schema.add_ind !schema (parse_ind_decl c);
        go ()
    | t -> err c "expected 'relation', 'fd' or 'ind', found %a" pp_token t
  in
  go ()

(** [parse_schema text] reads [relation], [fd] and [ind] declarations.
    @raise Lexer.Error on malformed input. *)
let parse_schema text = fst (parse_schema_spanned text)

let parse_value_token c =
  match next c with
  | Int n -> Value.int n
  | Ident s -> Value.str s
  | t -> err c "expected a constant, found %a" pp_token t

let parse_fact c =
  let rel = ident c in
  expect c Lparen;
  let rec args acc =
    let v = parse_value_token c in
    match next c with
    | Comma -> args (v :: acc)
    | Rparen -> List.rev (v :: acc)
    | t -> err c "expected ',' or ')' in fact, found %a" pp_token t
  in
  let vs = args [] in
  expect c Dot;
  (rel, vs)

(** [parse_facts schema text] reads ground facts into a fresh instance
    of [schema].
    @raise Lexer.Error on malformed input, [Schema.Unknown_relation] or
    [Instance.Arity_mismatch] on facts that do not fit the schema. *)
let parse_facts schema text =
  let c = cursor (tokenize text) in
  let inst = Instance.create schema in
  let rec go () =
    match peek c with
    | Eof -> inst
    | _ ->
        let rel, vs = parse_fact c in
        Instance.add_list inst rel vs;
        go ()
  in
  go ()

(** [parse_instance ~schema_text ~facts_text] — both at once. *)
let parse_instance ~schema_text ~facts_text =
  parse_facts (parse_schema schema_text) facts_text
