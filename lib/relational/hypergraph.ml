(** Join-acyclicity of a set of relation sorts, via GYO reduction.

    The paper only considers decompositions whose reconstruction join
    is acyclic (Section 4); Proposition 7.4 then guarantees the derived
    INDs with equality are non-cyclic, which is what makes Castor's
    IND chase terminate without scanning. *)

module SS = Set.Make (String)

(** [is_acyclic sorts] decides whether the natural join of relations
    with the given attribute sets is acyclic, using the
    Graham–Yu–Ozsoyoglu ear-removal procedure: repeatedly delete
    (1) attributes occurring in a single hyperedge and (2) hyperedges
    contained in another hyperedge; the join is acyclic iff the
    hypergraph reduces to nothing (or a single edge). *)
let is_acyclic (sorts : string list list) =
  let edges = ref (List.map SS.of_list sorts) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* count attribute occurrences *)
    let counts = Hashtbl.create 16 in
    List.iter
      (fun e ->
        SS.iter
          (fun a ->
            Hashtbl.replace counts a
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts a)))
          e)
      !edges;
    (* rule 1: drop attributes unique to one edge *)
    let edges' =
      List.map
        (fun e -> SS.filter (fun a -> Hashtbl.find counts a > 1) e)
        !edges
    in
    if edges' <> !edges then begin
      edges := edges';
      changed := true
    end;
    (* rule 2: drop empty edges and edges contained in another edge *)
    let rec drop_contained acc = function
      | [] -> List.rev acc
      | e :: rest ->
          let contained =
            SS.is_empty e
            || List.exists (fun f -> SS.subset e f) rest
            || List.exists (fun f -> SS.subset e f) acc
          in
          if contained then drop_contained acc rest
          else drop_contained (e :: acc) rest
    in
    let edges'' = drop_contained [] !edges in
    if List.length edges'' <> List.length !edges then begin
      edges := edges'';
      changed := true
    end
  done;
  List.length !edges <= 1

(** [join_forest sorts] is the ear-removal form of the same GYO
    reduction, keeping the parent links: it returns [Some order] where
    [order] pairs each hyperedge index with the index of the edge it
    was removed against ([None] for the root of its connected
    component), listed in removal order. An edge is an {e ear} when
    the attributes it shares with the other remaining edges are all
    contained in one single other edge — its parent. Removal order is
    exactly the bottom-up order in which a Yannakakis semi-join
    program must process the edges ({!Algebra.semijoin_batch});
    children always appear before their parent. Returns [None] iff
    the hypergraph is cyclic (agreement with {!is_acyclic} is pinned
    by a randomized test). *)
let join_forest (sorts : string list list) =
  let n = List.length sorts in
  let vars = Array.of_list (List.map SS.of_list sorts) in
  let alive = Array.make n true in
  let order = ref [] in
  let removed = ref 0 in
  let progress = ref true in
  while !progress && !removed < n do
    progress := false;
    for e = 0 to n - 1 do
      if alive.(e) then begin
        (* attributes of [e] still shared with another live edge *)
        let shared = ref SS.empty in
        for f = 0 to n - 1 do
          if f <> e && alive.(f) then
            shared := SS.union !shared (SS.inter vars.(e) vars.(f))
        done;
        let parent = ref None in
        if SS.is_empty !shared then parent := Some None (* component root *)
        else begin
          (try
             for f = 0 to n - 1 do
               if f <> e && alive.(f) && SS.subset !shared vars.(f) then begin
                 parent := Some (Some f);
                 raise Exit
               end
             done
           with Exit -> ())
        end;
        match !parent with
        | None -> ()
        | Some p ->
            alive.(e) <- false;
            incr removed;
            order := (e, p) :: !order;
            progress := true
      end
    done
  done;
  if !removed = n then Some (List.rev !order) else None
