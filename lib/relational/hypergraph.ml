(** Join-acyclicity and generalized hypertree decomposition of a set
    of relation sorts.

    The paper only considers decompositions whose reconstruction join
    is acyclic (Section 4); Proposition 7.4 then guarantees the derived
    INDs with equality are non-cyclic, which is what makes Castor's
    IND chase terminate without scanning. The coverage kernel, on the
    other hand, must evaluate {e arbitrary} clause bodies — decomposed
    schema variants routinely turn acyclic bodies cyclic — so the GYO
    ear-removal procedure is extended here into a generalized
    hypertree decomposition builder: when ear removal stalls on a
    cyclic core, the two live clusters sharing the most attributes are
    merged into one bag and removal resumes. The result is a tree of
    bags whose width-1 case is exactly the classical join forest. *)

module SS = Set.Make (String)

(** A generalized hypertree decomposition of the input hyperedges.

    [bags.(b)] lists the input hyperedge indices covering bag [b] (a
    singleton for every bag of an acyclic input); [bag_vars.(b)] is
    the union of their attribute sets. [forest] pairs each bag with
    the bag it was removed against ([None] for the root of its
    connected component), in removal order — children always appear
    before their parent, which is exactly the bottom-up order a
    Yannakakis semi-join program must follow. [width] is the largest
    number of hyperedges merged into one bag: 1 on acyclic inputs
    (0 for the empty hypergraph), >= 2 whenever a cyclic core had to
    be clustered. *)
type decomposition = {
  bags : int list array;
  bag_vars : SS.t array;
  forest : (int * int option) list;
  width : int;
}

(** [decompose sorts] builds a generalized hypertree decomposition by
    GYO ear removal with greedy cyclic-core clustering. Clusters start
    as the singleton hyperedges; a cluster is an {e ear} when the
    attributes it shares with the other live clusters are all
    contained in one single other live cluster — its parent — or in
    none (a component root). Ears are removed until none is left; if
    live clusters remain the hypergraph is cyclic, and the live pair
    sharing the most attributes is merged (ties broken towards the
    lowest indices) before removal resumes. Merging never manufactures
    a Cartesian bag: a live cluster sharing nothing with the others
    would have been removed as a component root.

    On an acyclic input no merge ever fires, so the removal order —
    and hence [forest] — reproduces the classical join-forest ear
    order exactly; {!join_forest} is defined as that projection. *)
let decompose (sorts : string list list) =
  let n = List.length sorts in
  let vars = Array.of_list (List.map SS.of_list sorts) in
  let members = Array.init n (fun i -> [ i ]) in
  let alive = Array.make n true in
  let live = ref n in
  let order = ref [] in
  (* a cluster absorbed by a merge forwards to its absorber; parent
     links recorded before the merge resolve through the chain to the
     cluster that was eventually removed (its variables only ever
     grow, so the ear condition keeps holding) *)
  let redirect = Array.init n Fun.id in
  let rec resolve e = if redirect.(e) = e then e else resolve redirect.(e) in
  while !live > 0 do
    (* ear-removal sweep, repeated until no ear is left *)
    let progress = ref true in
    while !progress && !live > 0 do
      progress := false;
      for e = 0 to n - 1 do
        if alive.(e) then begin
          (* attributes of [e] still shared with another live cluster *)
          let shared = ref SS.empty in
          for f = 0 to n - 1 do
            if f <> e && alive.(f) then
              shared := SS.union !shared (SS.inter vars.(e) vars.(f))
          done;
          let parent = ref None in
          if SS.is_empty !shared then parent := Some None (* component root *)
          else begin
            (try
               for f = 0 to n - 1 do
                 if f <> e && alive.(f) && SS.subset !shared vars.(f) then begin
                   parent := Some (Some f);
                   raise Exit
                 end
               done
             with Exit -> ())
          end;
          match !parent with
          | None -> ()
          | Some p ->
              alive.(e) <- false;
              decr live;
              order := (e, p) :: !order;
              progress := true
        end
      done
    done;
    (* cyclic core: merge the live pair sharing the most attributes *)
    if !live > 0 then begin
      let best = ref None in
      for i = 0 to n - 1 do
        if alive.(i) then
          for j = i + 1 to n - 1 do
            if alive.(j) then begin
              let k = SS.cardinal (SS.inter vars.(i) vars.(j)) in
              match !best with
              | Some (k', _, _) when k' >= k -> ()
              | _ -> best := Some (k, i, j)
            end
          done
      done;
      match !best with
      | None ->
          (* [live > 0] after a stalled sweep implies at least two live
             clusters: a lone live cluster is always a component root *)
          assert false
      | Some (_, i, j) ->
          members.(i) <- members.(i) @ members.(j);
          vars.(i) <- SS.union vars.(i) vars.(j);
          alive.(j) <- false;
          redirect.(j) <- i;
          decr live
    end
  done;
  let order = List.rev !order in
  (* compact surviving cluster indices into dense bag slots *)
  let slot = Hashtbl.create 16 in
  List.iteri (fun k (e, _) -> Hashtbl.replace slot e k) order;
  let nbags = List.length order in
  let bags = Array.make nbags [] in
  let bag_vars = Array.make nbags SS.empty in
  List.iteri
    (fun k (e, _) ->
      bags.(k) <- members.(e);
      bag_vars.(k) <- vars.(e))
    order;
  let forest =
    List.map
      (fun (e, p) ->
        ( Hashtbl.find slot e,
          Option.map (fun f -> Hashtbl.find slot (resolve f)) p ))
      order
  in
  let width =
    Array.fold_left (fun acc m -> max acc (List.length m)) 0 bags
  in
  { bags; bag_vars; forest; width }

(** [join_forest sorts] returns [Some order] where [order] pairs each
    hyperedge index with the index of the edge it was removed against
    ([None] for the root of its connected component), listed in
    removal order — children always appear before their parent, the
    bottom-up order of a Yannakakis semi-join program
    ({!Algebra.semijoin_batch}). Returns [None] iff the hypergraph is
    cyclic. Defined as the width-1 projection of {!decompose}: every
    bag of an acyclic decomposition is a singleton hyperedge, and the
    bag removal order is the classical ear-removal order. *)
let join_forest (sorts : string list list) =
  let d = decompose sorts in
  if d.width > 1 then None
  else
    Some
      (List.map
         (fun (b, p) ->
           (List.hd d.bags.(b), Option.map (fun q -> List.hd d.bags.(q)) p))
         d.forest)

(** [is_acyclic sorts] decides whether the natural join of relations
    with the given attribute sets is acyclic. Equivalent to the
    Graham–Yu–Ozsoyoglu reduction (repeatedly delete attributes unique
    to one hyperedge and hyperedges contained in another); defined as
    [join_forest sorts <> None] so the two procedures can never drift
    apart (agreement with the classical reduction is pinned by a
    randomized test against an independent oracle). *)
let is_acyclic (sorts : string list list) = join_forest sorts <> None

(** [signature sorts] renders the variable co-occurrence structure of
    the hyperedges with attribute names normalized away
    (first-occurrence numbering) but {e edge order preserved}. Two
    inputs with equal signatures have identical decompositions bag for
    bag and index for index — which is what makes a decomposition
    memoized under an order-insensitive clause key safe to reuse: the
    memo entry stores the signature and is recomputed when a clause
    with the same canonical key presents its literals in a different
    order. *)
let signature (sorts : string list list) =
  let ids = Hashtbl.create 16 in
  let buf = Buffer.create 64 in
  List.iter
    (fun sort ->
      List.iter
        (fun a ->
          let id =
            match Hashtbl.find_opt ids a with
            | Some i -> i
            | None ->
                let i = Hashtbl.length ids in
                Hashtbl.add ids a i;
                i
          in
          Buffer.add_string buf (string_of_int id);
          Buffer.add_char buf ',')
        sort;
      Buffer.add_char buf ';')
    sorts;
  Buffer.contents buf
