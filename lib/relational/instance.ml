(** In-memory database instances with hash indexes.

    This plays the role of the paper's main-memory RDBMS (VoltDB in the
    authors' implementation, Section 7.5.1): tuples are stored
    per-relation and indexed by [(relation, column, constant)] so that
    bottom-clause construction can find all tuples containing a given
    constant with one lookup per column. *)

type t = {
  schema : Schema.t;
  store : (string, Tuple.t list ref) Hashtbl.t;  (** tuples in insertion order, newest first *)
  index : (string * int * Value.t, Tuple.t list ref) Hashtbl.t;
  log : Delta.Log.t;
      (** every effective [add]/[remove] is appended here as a delta;
          the generation counter {!Backend} exposes is the log length,
          and derived structures (coverage memos, example stores,
          materialized views) subscribe to it instead of diffing *)
}

let create schema =
  let store = Hashtbl.create 64 in
  List.iter (fun (r : Schema.relation) -> Hashtbl.replace store r.rname (ref []))
    schema.Schema.relations;
  { schema; store; index = Hashtbl.create 4096; log = Delta.Log.create () }

let schema t = t.schema

(** Mutation counter, derived from the delta log: increases exactly
    when an [add] inserts or a [remove] deletes a tuple. Equal
    generations imply unchanged data. *)
let generation t = Delta.Log.length t.log

(** [subscribe t f] registers [f] to be called with every batch of
    effective deltas, in application order, after they hit the store. *)
let subscribe t f = Delta.Log.subscribe t.log f

let relation_names t =
  List.map (fun (r : Schema.relation) -> r.Schema.rname) t.schema.Schema.relations

exception Arity_mismatch of string

let bucket t rel =
  match Hashtbl.find_opt t.store rel with
  | Some b -> b
  | None -> raise (Schema.Unknown_relation rel)

(** [mem t rel tuple] tests tuple presence (set semantics). *)
let mem t rel (tuple : Tuple.t) =
  List.exists (Tuple.equal tuple) !(bucket t rel)

(* Mutators come in two layers: [insert]/[delete] touch the store and
   indexes and report effectiveness without logging, so a batch
   [apply] can collect its effective deltas and notify subscribers
   once; [add]/[remove] are the public singleton forms. *)

let insert t rel (tuple : Tuple.t) =
  if Tuple.arity tuple <> Schema.arity t.schema rel then
    raise (Arity_mismatch rel);
  if mem t rel tuple then false
  else begin
    let b = bucket t rel in
    b := tuple :: !b;
    Array.iteri
      (fun i v ->
        let key = (rel, i, v) in
        match Hashtbl.find_opt t.index key with
        | Some l -> l := tuple :: !l
        | None -> Hashtbl.add t.index key (ref [ tuple ]))
      tuple;
    true
  end

let delete t rel (tuple : Tuple.t) =
  if Tuple.arity tuple <> Schema.arity t.schema rel then
    raise (Arity_mismatch rel);
  let b = bucket t rel in
  if not (List.exists (Tuple.equal tuple) !b) then false
  else begin
    b := List.filter (fun tu -> not (Tuple.equal tu tuple)) !b;
    Array.iteri
      (fun i v ->
        let key = (rel, i, v) in
        match Hashtbl.find_opt t.index key with
        | Some l -> (
            l := List.filter (fun tu -> not (Tuple.equal tu tuple)) !l;
            match !l with [] -> Hashtbl.remove t.index key | _ -> ())
        | None -> ())
      tuple;
    true
  end

(** [add t rel tuple] inserts a tuple; duplicates are ignored so
    relations behave as sets. An effective insert is logged as an
    [Add] delta (advancing the generation and notifying subscribers).
    @raise Arity_mismatch if the tuple does not fit the sort. *)
let add t rel (tuple : Tuple.t) =
  if insert t rel tuple then Delta.Log.extend t.log [ Delta.Add (rel, tuple) ]

let add_list t rel vs = add t rel (Tuple.of_list vs)

(** [remove t rel tuple] deletes a tuple, delta-maintaining {e every}
    secondary index bucket: the [(rel, column, value)] entry of each
    column is pruned (and dropped when it empties), never rebuilt.
    Returns [true] when the tuple was present, in which case a
    [Remove] delta is logged. The add/remove interleaving invariant —
    indexes equal to a from-scratch rebuild — is checked by
    {!index_consistent} and a QCheck property.
    @raise Arity_mismatch if the tuple does not fit the sort. *)
let remove t rel (tuple : Tuple.t) =
  if delete t rel tuple then begin
    Delta.Log.extend t.log [ Delta.Remove (rel, tuple) ];
    true
  end
  else false

(** [apply t ds] applies a batch of deltas in order; ineffective ones
    (duplicate adds, absent removes) are dropped, and subscribers are
    notified once with exactly the effective sub-batch. *)
let apply t ds =
  let effective =
    List.filter
      (function
        | Delta.Add (rel, tu) -> insert t rel tu
        | Delta.Remove (rel, tu) -> delete t rel tu)
      ds
  in
  Delta.Log.extend t.log effective

(* Aliases matching the delta-maintenance vocabulary of {!Store}. *)
let add_tuple = add

let remove_tuple = remove

(** [index_consistent t] compares the delta-maintained secondary index
    against a from-scratch rebuild: every [(relation, column, value)]
    bucket must hold exactly the tuples of the primary store carrying
    that value in that column, with no stale buckets left behind. *)
let index_consistent t =
  let expected = Hashtbl.create 256 in
  Hashtbl.iter
    (fun rel b ->
      List.iter
        (fun tu ->
          Array.iteri
            (fun i v ->
              let key = (rel, i, v) in
              let l = Option.value ~default:[] (Hashtbl.find_opt expected key) in
              Hashtbl.replace expected key (tu :: l))
            tu)
        !b)
    t.store;
  let norm l = List.sort Tuple.compare l in
  Hashtbl.length expected = Hashtbl.length t.index
  && Hashtbl.fold
       (fun key l acc ->
         acc
         &&
         match Hashtbl.find_opt t.index key with
         | Some actual -> List.equal Tuple.equal (norm !actual) (norm l)
         | None -> false)
       expected true

(** [tuples t rel] returns all tuples of [rel]. *)
let tuples t rel = !(bucket t rel)

let cardinality t rel = List.length (tuples t rel)

(** Total number of tuples across all relations. *)
let size t =
  Hashtbl.fold (fun _ b acc -> acc + List.length !b) t.store 0

(** [find t rel pos v] returns the tuples of [rel] whose column [pos]
    holds constant [v] (indexed lookup). *)
let find t rel pos v =
  match Hashtbl.find_opt t.index (rel, pos, v) with
  | Some l -> !l
  | None -> []

(** [find_matching t rel bindings] returns tuples agreeing with every
    [(position, value)] binding; uses the index on the first binding. *)
let find_matching t rel = function
  | [] -> tuples t rel
  | (p0, v0) :: rest ->
      List.filter
        (fun tu -> List.for_all (fun (p, v) -> Value.equal tu.(p) v) rest)
        (find t rel p0 v0)

(** [tuples_containing t rel v] returns all tuples of [rel] in which
    constant [v] occurs at any position. *)
let tuples_containing t rel v =
  let ar = Schema.arity t.schema rel in
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  for pos = 0 to ar - 1 do
    List.iter
      (fun tu ->
        let h = Tuple.hash tu in
        let dup =
          match Hashtbl.find_opt seen h with
          | Some l -> List.exists (Tuple.equal tu) l
          | None -> false
        in
        if not dup then begin
          Hashtbl.replace seen h
            (tu :: (Option.value ~default:[] (Hashtbl.find_opt seen h)));
          out := tu :: !out
        end)
      (find t rel pos v)
  done;
  !out

(** Distinct values stored under attribute [aname] of [rel]. *)
let column_values t rel aname =
  let r = Schema.find_relation t.schema rel in
  match Schema.positions r [ aname ] with
  | [ pos ] ->
      List.fold_left
        (fun acc tu -> Value.Set.add tu.(pos) acc)
        Value.Set.empty (tuples t rel)
      |> Value.Set.elements
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Constraint checking                                                 *)
(* ------------------------------------------------------------------ *)

(** [satisfies_fd t fd] checks an FD by hashing LHS projections. *)
let satisfies_fd t (fd : Schema.fd) =
  let r = Schema.find_relation t.schema fd.fd_rel in
  let lhs = Schema.positions r fd.fd_lhs and rhs = Schema.positions r fd.fd_rhs in
  let table = Hashtbl.create 64 in
  List.for_all
    (fun tu ->
      let key = Tuple.project lhs tu and v = Tuple.project rhs tu in
      match Hashtbl.find_opt table (Tuple.hash key) with
      | Some pairs -> (
          match List.find_opt (fun (k, _) -> Tuple.equal k key) pairs with
          | Some (_, v') -> Tuple.equal v v'
          | None ->
              Hashtbl.replace table (Tuple.hash key) ((key, v) :: pairs);
              true)
      | None ->
          Hashtbl.add table (Tuple.hash key) [ (key, v) ];
          true)
    (tuples t fd.fd_rel)

let projection_set t rel attrs =
  let r = Schema.find_relation t.schema rel in
  let pos = Schema.positions r attrs in
  List.fold_left
    (fun acc tu -> Tuple.Set.add (Tuple.project pos tu) acc)
    Tuple.Set.empty (tuples t rel)

(** [satisfies_ind t ind] checks the inclusion (and the reverse
    inclusion when [ind.equality] holds). *)
let satisfies_ind t (ind : Schema.ind) =
  let sub = projection_set t ind.sub_rel ind.sub_attrs in
  let sup = projection_set t ind.sup_rel ind.sup_attrs in
  Tuple.Set.subset sub sup && ((not ind.equality) || Tuple.Set.subset sup sub)

(** [violations t] lists human-readable descriptions of violated
    constraints; empty means [t] is a legal instance of its schema. *)
let violations t =
  let fd_bad =
    List.filter_map
      (fun fd ->
        if satisfies_fd t fd then None
        else
          Some
            (Fmt.str "FD %s: %a -> %a violated" fd.Schema.fd_rel
               Fmt.(list ~sep:comma string)
               fd.Schema.fd_lhs
               Fmt.(list ~sep:comma string)
               fd.Schema.fd_rhs))
      t.schema.Schema.fds
  in
  let ind_bad =
    List.filter_map
      (fun ind ->
        if satisfies_ind t ind then None
        else Some (Fmt.str "IND %a violated" Schema.pp_ind ind))
      t.schema.Schema.inds
  in
  fd_bad @ ind_bad

let satisfies_constraints t = violations t = []

(** Structural equality of instances: same schema relation names and
    same tuple sets. *)
let equal a b =
  let names_a = List.sort String.compare (relation_names a) in
  let names_b = List.sort String.compare (relation_names b) in
  names_a = names_b
  && List.for_all
       (fun rel ->
         Tuple.Set.equal
           (Tuple.Set.of_list (tuples a rel))
           (Tuple.Set.of_list (tuples b rel)))
       names_a

let pp ppf t =
  List.iter
    (fun rel ->
      Fmt.pf ppf "@[<v2>%s (%d tuples):@,%a@]@." rel (cardinality t rel)
        Fmt.(list ~sep:cut Tuple.pp)
        (tuples t rel))
    (relation_names t)
