(** Explicit mutation deltas — the unit of the backend delta log.

    The paper treats the database as a fixed instance; the live-system
    roadmap treats it as a stream of tuple insertions and deletions.
    A {!t} is one element of that stream. Substrates no longer bump an
    ad-hoc generation counter next to their mutators: every effective
    mutation is recorded as a delta in a {!Log}, the generation {e is}
    the log length, and downstream structures (saturation
    neighborhoods, coverage memos, materialized views) subscribe to
    the log and patch themselves instead of rebuilding. *)

type t =
  | Add of string * Tuple.t  (** tuple inserted into the named relation *)
  | Remove of string * Tuple.t  (** tuple deleted from the named relation *)

let add rel tuple = Add (rel, tuple)

let remove rel tuple = Remove (rel, tuple)

let rel = function Add (r, _) | Remove (r, _) -> r

let tuple = function Add (_, tu) | Remove (_, tu) -> tu

let is_add = function Add _ -> true | Remove _ -> false

(** Set-semantics inverse: applying [d] then [inverse d] is the
    identity on any substrate state that admitted [d]. *)
let inverse = function
  | Add (r, tu) -> Remove (r, tu)
  | Remove (r, tu) -> Add (r, tu)

let pp ppf = function
  | Add (r, tu) -> Fmt.pf ppf "+%s%a" r Tuple.pp tu
  | Remove (r, tu) -> Fmt.pf ppf "-%s%a" r Tuple.pp tu

let equal a b =
  match (a, b) with
  | Add (r, tu), Add (r', tu') | Remove (r, tu), Remove (r', tu') ->
      String.equal r r' && Tuple.equal tu tu'
  | _ -> false

(** The per-substrate delta log: the single source of truth for both
    the generation counter and subscriber notification. Substrates
    append only {e effective} deltas (a duplicate [Add] or absent
    [Remove] never reaches the log), so [length] retains the old
    generation contract — equal lengths imply unchanged data — while
    subscribers see exactly the mutations that happened. *)
module Log = struct
  type delta = t

  type t = {
    mutable len : int;
    mutable subscribers : (delta list -> unit) list;  (** registration order *)
  }

  let create () = { len = 0; subscribers = [] }

  (** Generation of the owning substrate: number of effective deltas
      ever applied. *)
  let length l = l.len

  let subscribe l f = l.subscribers <- l.subscribers @ [ f ]

  (** [extend l ds] records a batch of effective deltas and notifies
      every subscriber once with the whole batch; an empty batch is a
      no-op (no generation movement, no callbacks). *)
  let extend l = function
    | [] -> ()
    | ds ->
        l.len <- l.len + List.length ds;
        List.iter (fun f -> f ds) l.subscribers
end
