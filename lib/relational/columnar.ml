(** Columnar interned relation storage.

    {!Instance} and {!Store} both keep boxed {!Value} tuples in hash
    sets; every scan and probe re-hashes whole tuples. This substrate
    is the "do the algebra inside the engine" layout the SQL-for-SRL
    position paper argues for:

    - every {!Value} is {e interned} to a dense int id through a
      per-relation dictionary ([intern] / [vals]), so equality anywhere
      in the engine is int equality and a value is boxed once no matter
      how many tuples mention it;
    - each relation is laid out as {e per-position int columns}
      ([cols.(pos).(slot)] = value id of row [slot]);
    - every [(position, value-id)] pair keeps a {e posting list} — a
      sorted int array of the slots holding that value — which is both
      the secondary index and an exact statistic: [cardinality] is the
      live-row count, [distinct_count pos] the number of non-empty
      posting lists at [pos], both O(1) and exact, feeding the coverage
      planner directly;
    - {!select_project} evaluates a whole select-project query (the
      per-pattern scan of {!Algebra.semijoin_batch}) natively:
      constant predicates become posting-list intersections, repeated
      variables become int-column comparisons, projection and
      deduplication happen on value ids, and results are memoized per
      generation — so a repeated pattern scan (the common case while
      learning: every candidate clause containing an atom re-scans
      that relation) costs zero row visits.

    Slots are append-only: [remove] tombstones a row (its postings are
    spliced, its [live] bit cleared) and never reuses the slot, so
    posting lists stay sorted by construction. Like the other
    substrates, every effective mutation is appended to a {!Delta.Log}
    — the generation is the log length and subscribers see each
    effective delta batch.

    Everything is instrumented under [columnar.*]. *)

module Obs = Castor_obs.Obs

let c_builds = Obs.Counter.create "columnar.builds"

let c_adds = Obs.Counter.create "columnar.adds"

let c_removes = Obs.Counter.create "columnar.removes"

let c_interned = Obs.Counter.create "columnar.interned"

let c_postings_scanned = Obs.Counter.create "columnar.postings_scanned"

let c_pushdowns = Obs.Counter.create "columnar.pushdowns"

let c_pushdown_hits = Obs.Counter.create "columnar.pushdown_hits"

let c_rows_decoded = Obs.Counter.create "columnar.rows_decoded"

exception Arity_mismatch of string

(* sorted slot ids; appends stay sorted because slots grow monotonically *)
type posting = { mutable ids : int array; mutable plen : int }

type crel = {
  arity : int;
  intern : (Value.t, int) Hashtbl.t;  (** per-relation dictionary *)
  mutable vals : Value.t array;  (** id -> value (append-only) *)
  mutable n_vals : int;
  mutable cols : int array array;  (** [cols.(pos).(slot)] = value id *)
  mutable cap : int;  (** allocated slots *)
  mutable live : Bytes.t;  (** tombstone bitmap-as-bytes per slot *)
  mutable n_slots : int;  (** allocated slots incl. tombstones *)
  mutable count : int;  (** live rows *)
  postings : (int * int, posting) Hashtbl.t;  (** (pos, vid) -> slots *)
  distinct : int array;  (** per position: # non-empty postings *)
}

(* one memoized select-project result; the entry is valid while the
   backend generation it was computed at still holds *)
type memo_entry = { mgen : int; mrows : Tuple.t list }

type t = {
  rels : (string, crel) Hashtbl.t;
  log : Delta.Log.t;  (** effective mutations; generation = log length *)
  memo :
    (string * (int * Value.t) list * (int * int) list * int list, memo_entry)
    Hashtbl.t;
}

let memo_cap = 8192

(** [create rels] builds an empty columnar database for relations
    given as [(name, arity)] pairs. *)
let create rels =
  Obs.Counter.incr c_builds;
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, arity) ->
      if arity < 1 then invalid_arg "Columnar.create: arity must be >= 1";
      Hashtbl.replace tbl name
        {
          arity;
          intern = Hashtbl.create 64;
          vals = [||];
          n_vals = 0;
          cols = Array.make arity [||];
          cap = 0;
          live = Bytes.empty;
          n_slots = 0;
          count = 0;
          postings = Hashtbl.create 256;
          distinct = Array.make arity 0;
        })
    rels;
  { rels = tbl; log = Delta.Log.create (); memo = Hashtbl.create 64 }

let generation t = Delta.Log.length t.log

(** [subscribe t f] registers [f] to receive every batch of effective
    deltas, in application order, after they hit the columns. *)
let subscribe t f = Delta.Log.subscribe t.log f

let has_relation t rel = Hashtbl.mem t.rels rel

let relation_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.rels [] |> List.sort String.compare

let crel t rel =
  match Hashtbl.find_opt t.rels rel with
  | Some cr -> cr
  | None -> raise (Schema.Unknown_relation rel)

let arity t rel = (crel t rel).arity

(* ------------------------------------------------------------------ *)
(* Dictionary                                                          *)
(* ------------------------------------------------------------------ *)

let intern cr v =
  match Hashtbl.find_opt cr.intern v with
  | Some id -> id
  | None ->
      let id = cr.n_vals in
      if id = Array.length cr.vals then begin
        let grown = Array.make (max 16 (2 * id)) v in
        Array.blit cr.vals 0 grown 0 id;
        cr.vals <- grown
      end;
      cr.vals.(id) <- v;
      cr.n_vals <- id + 1;
      Hashtbl.replace cr.intern v id;
      Obs.Counter.incr c_interned;
      id

(** [intern_id t rel v] — dictionary lookup without insertion; [None]
    when [v] was never stored in [rel]. *)
let intern_id t rel v = Hashtbl.find_opt (crel t rel).intern v

(** [intern_value t rel id] — the value a dense id decodes to.
    @raise Invalid_argument on an id the dictionary never issued. *)
let intern_value t rel id =
  let cr = crel t rel in
  if id < 0 || id >= cr.n_vals then
    invalid_arg "Columnar.intern_value: unknown id";
  cr.vals.(id)

(** Number of dictionary entries of [rel] (ids are [0..size-1]). *)
let dictionary_size t rel = (crel t rel).n_vals

(* ------------------------------------------------------------------ *)
(* Posting lists                                                       *)
(* ------------------------------------------------------------------ *)

let posting_append cr pos vid slot =
  match Hashtbl.find_opt cr.postings (pos, vid) with
  | Some p ->
      if p.plen = Array.length p.ids then begin
        let grown = Array.make (max 4 (2 * p.plen)) 0 in
        Array.blit p.ids 0 grown 0 p.plen;
        p.ids <- grown
      end;
      p.ids.(p.plen) <- slot;
      p.plen <- p.plen + 1
  | None ->
      Hashtbl.add cr.postings (pos, vid) { ids = [| slot |]; plen = 1 };
      cr.distinct.(pos) <- cr.distinct.(pos) + 1

let posting_remove cr pos vid slot =
  match Hashtbl.find_opt cr.postings (pos, vid) with
  | None -> ()
  | Some p ->
      (* binary search, then splice *)
      let lo = ref 0 and hi = ref (p.plen - 1) and at = ref (-1) in
      while !at < 0 && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let x = p.ids.(mid) in
        if x = slot then at := mid
        else if x < slot then lo := mid + 1
        else hi := mid - 1
      done;
      if !at >= 0 then begin
        Array.blit p.ids (!at + 1) p.ids !at (p.plen - !at - 1);
        p.plen <- p.plen - 1;
        if p.plen = 0 then begin
          Hashtbl.remove cr.postings (pos, vid);
          cr.distinct.(pos) <- cr.distinct.(pos) - 1
        end
      end

let posting_slots cr pos vid =
  match Hashtbl.find_opt cr.postings (pos, vid) with
  | Some p -> Some p
  | None -> None

(* intersection of two sorted slot arrays (the classic merge) *)
let inter (a : int array) alen (b : int array) blen =
  let out = Array.make (min alen blen) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < alen && !j < blen do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      out.(!k) <- x;
      incr k;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  Obs.Counter.add c_postings_scanned (!i + !j);
  (out, !k)

(* ------------------------------------------------------------------ *)
(* Row access                                                          *)
(* ------------------------------------------------------------------ *)

let decode cr slot : Tuple.t =
  Obs.Counter.incr c_rows_decoded;
  Array.init cr.arity (fun p -> cr.vals.(cr.cols.(p).(slot)))

let is_live cr slot = Bytes.get cr.live slot = '\001'

(* the slot holding [tu], found through the smallest posting list of
   its interned values; None when absent (or some value un-interned) *)
let slot_of cr (tu : Tuple.t) =
  let exception Missing in
  try
    let vids =
      Array.map
        (fun v ->
          match Hashtbl.find_opt cr.intern v with
          | Some id -> id
          | None -> raise Missing)
        tu
    in
    let best = ref None in
    Array.iteri
      (fun p vid ->
        match posting_slots cr p vid with
        | None -> raise Missing
        | Some post -> (
            match !best with
            | Some (_, b) when b.plen <= post.plen -> ()
            | _ -> best := Some (p, post)))
      vids;
    match !best with
    | None -> None (* arity-0 relations cannot exist (arity >= 1) *)
    | Some (_, post) ->
        let found = ref None in
        (try
           for k = 0 to post.plen - 1 do
             let s = post.ids.(k) in
             let ok = ref true in
             for p = 0 to cr.arity - 1 do
               if cr.cols.(p).(s) <> vids.(p) then ok := false
             done;
             if !ok then begin
               found := Some s;
               raise Exit
             end
           done
         with Exit -> ());
        !found
  with Missing -> None

let mem t rel (tu : Tuple.t) =
  let cr = crel t rel in
  if Tuple.arity tu <> cr.arity then raise (Arity_mismatch rel);
  slot_of cr tu <> None

(* [insert]/[delete] mutate the columns and report effectiveness
   without logging, so a batch [apply] can notify subscribers once;
   [add]/[remove] are the public singleton forms. *)

let insert t rel (tu : Tuple.t) =
  if mem t rel tu then false
  else begin
    let cr = crel t rel in
    if cr.n_slots = cr.cap then begin
      let cap' = max 16 (2 * cr.cap) in
      cr.cols <-
        Array.map
          (fun col ->
            let grown = Array.make cap' 0 in
            Array.blit col 0 grown 0 cr.n_slots;
            grown)
          cr.cols;
      let live' = Bytes.make cap' '\000' in
      Bytes.blit cr.live 0 live' 0 cr.n_slots;
      cr.live <- live';
      cr.cap <- cap'
    end;
    let slot = cr.n_slots in
    cr.n_slots <- slot + 1;
    Array.iteri
      (fun p v ->
        let vid = intern cr v in
        cr.cols.(p).(slot) <- vid;
        posting_append cr p vid slot)
      tu;
    Bytes.set cr.live slot '\001';
    cr.count <- cr.count + 1;
    Obs.Counter.incr c_adds;
    true
  end

let delete t rel (tu : Tuple.t) =
  let cr = crel t rel in
  if Tuple.arity tu <> cr.arity then raise (Arity_mismatch rel);
  match slot_of cr tu with
  | None -> false
  | Some slot ->
      Array.iteri (fun p _ -> posting_remove cr p cr.cols.(p).(slot) slot) tu;
      Bytes.set cr.live slot '\000';
      cr.count <- cr.count - 1;
      Obs.Counter.incr c_removes;
      true

(** [add t rel tu] inserts a tuple: interns every value, appends one
    slot to each column and each posting list. [false] on duplicates
    (set semantics); an effective insert is logged as an [Add] delta.
    @raise Arity_mismatch if the tuple does not fit the sort. *)
let add t rel (tu : Tuple.t) =
  insert t rel tu
  && begin
       Delta.Log.extend t.log [ Delta.Add (rel, tu) ];
       true
     end

(** [remove t rel tu] tombstones a tuple's slot and splices it out of
    every posting list it occupied; dictionary entries are never
    reclaimed (ids stay dense and stable). [true] when present, in
    which case a [Remove] delta is logged. *)
let remove t rel (tu : Tuple.t) =
  delete t rel tu
  && begin
       Delta.Log.extend t.log [ Delta.Remove (rel, tu) ];
       true
     end

(** [apply t ds] applies a batch of deltas in order; ineffective ones
    are dropped and subscribers see exactly the effective sub-batch,
    once. *)
let apply t ds =
  let effective =
    List.filter
      (function
        | Delta.Add (rel, tu) -> insert t rel tu
        | Delta.Remove (rel, tu) -> delete t rel tu)
      ds
  in
  Delta.Log.extend t.log effective

(* Aliases matching the delta-maintenance vocabulary of {!Store}. *)
let add_tuple = add

let remove_tuple = remove

(** [tuples t rel] — full scan, newest slot first (the {!Instance}
    enumeration convention). *)
let tuples t rel =
  let cr = crel t rel in
  let out = ref [] in
  for slot = 0 to cr.n_slots - 1 do
    if is_live cr slot then out := decode cr slot :: !out
  done;
  !out

let cardinality t rel = (crel t rel).count

let size t = Hashtbl.fold (fun _ cr acc -> acc + cr.count) t.rels 0

(** [distinct_count t rel pos] — exact and O(1): the number of
    non-empty posting lists at column [pos]. *)
let distinct_count t rel pos =
  let cr = crel t rel in
  if pos < 0 || pos >= cr.arity then 0 else cr.distinct.(pos)

(** [find t rel pos v] — one posting list, decoded (newest first). *)
let find t rel pos v =
  let cr = crel t rel in
  if pos < 0 || pos >= cr.arity then []
  else
    match Hashtbl.find_opt cr.intern v with
    | None -> []
    | Some vid -> (
        match posting_slots cr pos vid with
        | None -> []
        | Some p ->
            let out = ref [] in
            for k = 0 to p.plen - 1 do
              out := decode cr p.ids.(k) :: !out
            done;
            !out)

(** [find_matching t rel bindings] — posting-list intersection over
    every [(position, value)] binding. *)
let find_matching t rel bindings =
  let cr = crel t rel in
  let exception Empty in
  try
    let posts =
      List.map
        (fun (pos, v) ->
          if pos < 0 || pos >= cr.arity then raise Empty
          else
            match Hashtbl.find_opt cr.intern v with
            | None -> raise Empty
            | Some vid -> (
                match posting_slots cr pos vid with
                | None -> raise Empty
                | Some p -> p))
        bindings
    in
    match List.sort (fun a b -> compare a.plen b.plen) posts with
    | [] -> tuples t rel
    | first :: rest ->
        let slots, n =
          List.fold_left
            (fun (acc, n) p -> inter acc n p.ids p.plen)
            (first.ids, first.plen) rest
        in
        let out = ref [] in
        for k = 0 to n - 1 do
          out := decode cr slots.(k) :: !out
        done;
        !out
  with Empty -> []

(** [tuples_containing t rel v] — union of [v]'s posting lists across
    all positions; slot-level dedup is tuple-level dedup because
    relations are sets. *)
let tuples_containing t rel v =
  let cr = crel t rel in
  match Hashtbl.find_opt cr.intern v with
  | None -> []
  | Some vid ->
      let slots = ref [] in
      for pos = 0 to cr.arity - 1 do
        match posting_slots cr pos vid with
        | None -> ()
        | Some p ->
            for k = 0 to p.plen - 1 do
              slots := p.ids.(k) :: !slots
            done
      done;
      List.sort_uniq compare !slots |> List.rev_map (decode cr)

(* ------------------------------------------------------------------ *)
(* Engine pushdown: select-project with memoized results               *)
(* ------------------------------------------------------------------ *)

(** [select_project t rel ~consts ~eqs ~project] evaluates one whole
    pattern scan inside the engine:
    [π_project (σ_{consts ∧ eqs} rel)], deduplicated — where [consts]
    are [(column, value)] equality predicates, [eqs] are
    [(column, column)] equalities (repeated variables) and [project]
    lists the output columns. Selection on constants runs as a
    posting-list intersection (no row is visited that fails an indexed
    predicate); repeated-variable checks and projection are int
    operations on the columns; deduplication keys on projected value
    ids. Returns [(rows, examined)] where [examined] counts the rows
    the engine actually visited — the quantity the generic scan path
    reports as [algebra.semijoin.rows_scanned].

    Results are memoized per (query, generation): while the data does
    not move, a repeated scan returns the materialized result with
    [examined = 0]. Returns [None] (caller falls back to the generic
    path) only for out-of-range columns. *)
let select_project t rel ~consts ~eqs ~project =
  match Hashtbl.find_opt t.rels rel with
  | None -> None
  | Some cr ->
      let in_range c = c >= 0 && c < cr.arity in
      if
        not
          (List.for_all (fun (c, _) -> in_range c) consts
          && List.for_all (fun (a, b) -> in_range a && in_range b) eqs
          && List.for_all in_range project)
      then None
      else begin
        Obs.Counter.incr c_pushdowns;
        let key = (rel, consts, eqs, project) in
        match Hashtbl.find_opt t.memo key with
        | Some e when e.mgen = generation t ->
            Obs.Counter.incr c_pushdown_hits;
            Some (e.mrows, 0)
        | _ ->
            let exception Empty in
            let candidates =
              try
                match consts with
                | [] ->
                    (* full scan of live slots *)
                    let out = Array.make cr.count 0 in
                    let k = ref 0 in
                    for slot = 0 to cr.n_slots - 1 do
                      if is_live cr slot then begin
                        out.(!k) <- slot;
                        incr k
                      end
                    done;
                    (out, !k)
                | _ ->
                    let posts =
                      List.map
                        (fun (c, v) ->
                          match Hashtbl.find_opt cr.intern v with
                          | None -> raise Empty
                          | Some vid -> (
                              match posting_slots cr c vid with
                              | None -> raise Empty
                              | Some p -> p))
                        consts
                    in
                    let sorted =
                      List.sort (fun a b -> compare a.plen b.plen) posts
                    in
                    (match sorted with
                    | [] -> assert false
                    | first :: rest ->
                        List.fold_left
                          (fun (acc, n) p -> inter acc n p.ids p.plen)
                          (first.ids, first.plen) rest)
              with Empty -> ([||], 0)
            in
            let slots, n = candidates in
            let seen = Hashtbl.create 64 in
            let rows = ref [] in
            for k = 0 to n - 1 do
              let slot = slots.(k) in
              if List.for_all (fun (a, b) -> cr.cols.(a).(slot) = cr.cols.(b).(slot)) eqs
              then begin
                let pkey = List.map (fun c -> cr.cols.(c).(slot)) project in
                if not (Hashtbl.mem seen pkey) then begin
                  Hashtbl.replace seen pkey ();
                  rows :=
                    Array.of_list (List.map (fun c -> cr.vals.(cr.cols.(c).(slot))) project)
                    :: !rows
                end
              end
            done;
            let rows = List.rev !rows in
            if Hashtbl.length t.memo >= memo_cap then Hashtbl.reset t.memo;
            Hashtbl.replace t.memo key { mgen = generation t; mrows = rows };
            Some (rows, n)
      end

(* ------------------------------------------------------------------ *)
(* Loading and checking                                                *)
(* ------------------------------------------------------------------ *)

(** [of_instance inst] loads a whole {!Instance} (a snapshot — its
    generation moves independently of [inst]'s). *)
let of_instance inst =
  let schema = Instance.schema inst in
  let rels =
    List.map
      (fun (r : Schema.relation) ->
        (r.Schema.rname, List.length r.Schema.attrs))
      schema.Schema.relations
  in
  let t = create rels in
  List.iter
    (fun (rel, _) ->
      List.iter (fun tu -> ignore (add t rel tu)) (List.rev (Instance.tuples inst rel)))
    rels;
  t

(** [consistent t] checks every derived structure against a
    from-scratch rebuild of the live rows: postings hold exactly the
    live slots of their (position, value), sorted; [distinct] counts
    the non-empty postings; [count] matches the live bitmap; the
    dictionary round-trips. *)
let consistent t =
  Hashtbl.fold
    (fun _rel cr acc ->
      acc
      &&
      let live_slots = ref [] in
      for slot = cr.n_slots - 1 downto 0 do
        if is_live cr slot then live_slots := slot :: !live_slots
      done;
      let expected = Hashtbl.create 64 in
      List.iter
        (fun slot ->
          for p = 0 to cr.arity - 1 do
            let key = (p, cr.cols.(p).(slot)) in
            Hashtbl.replace expected key
              (slot :: Option.value ~default:[] (Hashtbl.find_opt expected key))
          done)
        !live_slots;
      cr.count = List.length !live_slots
      && Hashtbl.length expected = Hashtbl.length cr.postings
      && Hashtbl.fold
           (fun key slots ok ->
             ok
             &&
             match Hashtbl.find_opt cr.postings key with
             | Some p ->
                 Array.to_list (Array.sub p.ids 0 p.plen)
                 = List.sort compare slots
             | None -> false)
           expected true
      && Array.for_all Fun.id
           (Array.init cr.arity (fun p ->
                cr.distinct.(p)
                = Hashtbl.fold
                    (fun (q, _) _ n -> if q = p then n + 1 else n)
                    cr.postings 0))
      && Hashtbl.fold
           (fun v id ok -> ok && id < cr.n_vals && Value.equal cr.vals.(id) v)
           cr.intern true
      && Hashtbl.length cr.intern = cr.n_vals)
    t.rels true

let pp ppf t =
  List.iter
    (fun rel ->
      Fmt.pf ppf "@[<v2>%s (%d tuples, %d dict entries):@,%a@]@." rel
        (cardinality t rel) (dictionary_size t rel)
        Fmt.(list ~sep:cut Tuple.pp)
        (tuples t rel))
    (relation_names t)
