(** Relational algebra over {!Instance}: projection and natural join.

    These are the two operators that define the paper's decomposition
    (projection) and composition (natural join) Horn transformations
    (Section 4). *)

(** [project inst rel attrs] computes [π_attrs(inst.rel)] as a
    duplicate-free tuple list in the order of [attrs]. *)
let project inst rel attrs =
  let r = Schema.find_relation (Instance.schema inst) rel in
  let pos = Schema.positions r attrs in
  let seen = ref Tuple.Set.empty in
  List.rev
    (List.fold_left
       (fun acc tu ->
         let p = Tuple.project pos tu in
         if Tuple.Set.mem p !seen then acc
         else begin
           seen := Tuple.Set.add p !seen;
           p :: acc
         end)
       [] (Instance.tuples inst rel))

(** A named intermediate relation: attribute list plus tuples. Natural
    join is defined over these so multi-way joins can be folded. *)
type table = { tattrs : Schema.attribute list; trows : Tuple.t list }

let table_of_relation inst rel =
  let r = Schema.find_relation (Instance.schema inst) rel in
  { tattrs = r.Schema.attrs; trows = Instance.tuples inst rel }

(** [natural_join a b] joins on all shared attribute names. The result
    keeps [a]'s attributes followed by [b]'s non-shared attributes.
    Raises [Invalid_argument] when the relations share no attribute
    (the paper restricts natural join to avoid Cartesian products). *)
let natural_join a b =
  let shared =
    List.filter
      (fun (x : Schema.attribute) ->
        List.exists (fun (y : Schema.attribute) -> String.equal x.aname y.aname) b.tattrs)
      a.tattrs
  in
  if shared = [] then invalid_arg "natural_join: no shared attributes";
  let pos_in attrs name =
    let rec go i = function
      | [] -> raise Not_found
      | (x : Schema.attribute) :: _ when String.equal x.aname name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 attrs
  in
  let a_pos = List.map (fun (x : Schema.attribute) -> pos_in a.tattrs x.aname) shared in
  let b_pos = List.map (fun (x : Schema.attribute) -> pos_in b.tattrs x.aname) shared in
  let b_extra =
    List.filter
      (fun (x : Schema.attribute) ->
        not (List.exists (fun (y : Schema.attribute) -> String.equal x.aname y.aname) shared))
      b.tattrs
  in
  let b_extra_pos = List.map (fun (x : Schema.attribute) -> pos_in b.tattrs x.aname) b_extra in
  (* hash join keyed on the shared projection of b *)
  let tbl = Hashtbl.create (List.length b.trows) in
  List.iter
    (fun tu ->
      let key = Tuple.project b_pos tu in
      let h = Tuple.hash key in
      let existing = Option.value ~default:[] (Hashtbl.find_opt tbl h) in
      Hashtbl.replace tbl h ((key, tu) :: existing))
    b.trows;
  let rows =
    List.concat_map
      (fun ta ->
        let key = Tuple.project a_pos ta in
        match Hashtbl.find_opt tbl (Tuple.hash key) with
        | None -> []
        | Some candidates ->
            List.filter_map
              (fun (k, tb) ->
                if Tuple.equal k key then
                  Some
                    (Array.append ta
                       (Array.of_list (List.map (fun p -> tb.(p)) b_extra_pos)))
                else None)
              candidates)
      a.trows
  in
  (* dedup *)
  let seen = ref Tuple.Set.empty in
  let rows =
    List.filter
      (fun r ->
        if Tuple.Set.mem r !seen then false
        else begin
          seen := Tuple.Set.add r !seen;
          true
        end)
      rows
  in
  { tattrs = a.tattrs @ b_extra; trows = rows }

(** [natural_join_all tables] folds {!natural_join} left to right. *)
let natural_join_all = function
  | [] -> invalid_arg "natural_join_all: empty"
  | t :: ts -> List.fold_left natural_join t ts

(** [select tbl pred] keeps the rows satisfying [pred]. *)
let select tbl pred = { tbl with trows = List.filter pred tbl.trows }

(* ------------------------------------------------------------------ *)
(* Batched semi-join kernel over a storage backend                     *)
(* ------------------------------------------------------------------ *)

module Obs = Castor_obs.Obs

let c_batches = Obs.Counter.create "algebra.semijoin.batches"

let c_batch_examples = Obs.Counter.create "algebra.semijoin.examples"

let c_shard_tasks = Obs.Counter.create "algebra.semijoin.shard_tasks"

let c_rows_scanned = Obs.Counter.create "algebra.semijoin.rows_scanned"

let c_semijoins = Obs.Counter.create "algebra.semijoin.semijoins"

let c_wide_bags = Obs.Counter.create "algebra.semijoin.wide_bags"

let c_bag_rows = Obs.Counter.create "algebra.semijoin.bag_rows"

let c_leapfrog_seeks = Obs.Counter.create "algebra.semijoin.leapfrog_seeks"

let span_batch = Obs.Span.create "algebra.semijoin.batch"

(** One literal of a conjunctive pattern, matched against a stored
    relation. Argument [j] of the pattern corresponds to column
    [j + 1] of the stored relation: by convention column 0 of every
    relation in the store carries the {e example id} (an [Int]), which
    is also the partitioning key — so a batch of examples evaluates
    shard-locally. *)
type arg = Avar of string | Aconst of Value.t

type pattern = { prel : string; pargs : arg array }

(** Distinct variables of a pattern, in first-occurrence order. *)
let pattern_vars p =
  Array.fold_left
    (fun acc a ->
      match a with
      | Avar v when not (List.mem v acc) -> v :: acc
      | _ -> acc)
    [] p.pargs
  |> List.rev

(* An intermediate semi-join operand: row.(0) is the example id and
   row.(k + 1) the binding of the k-th variable of [svars]. *)
type sj_table = { svars : string list; mutable srows : Tuple.t list }

(* Scan one pattern against one backend partition. The pattern scan is
   one select-project query: σ on the constants and repeated
   variables, π to (eid, distinct variables), deduplicated. A backend
   advertising the [pushdown] capability (the columnar substrate)
   takes the whole query via [select_project] — posting-list
   intersections instead of scan-and-filter, memoized across repeated
   scans — and reports how many stored rows it actually visited,
   which is what [rows_scanned] counts on the generic path below.
   Otherwise: pick an indexed access path when the pattern carries a
   constant, filter, project, dedup. *)
let scan_pattern (backend : Backend.t) s (p : pattern) =
  let module B = (val backend) in
  let vars = pattern_vars p in
  let proj_of_vars () =
    List.map
      (fun x ->
        let pos = ref 0 in
        Array.iteri
          (fun j a ->
            match a with
            | Avar y when String.equal x y && !pos = 0 -> pos := j + 1
            | _ -> ())
          p.pargs;
        !pos)
      vars
  in
  let pushdown =
    if
      B.capabilities.Backend.pushdown
      && B.has_relation p.prel
      && B.arity p.prel = Array.length p.pargs + 1
    then begin
      let consts = ref [] and eqs = ref [] in
      let first_pos = Hashtbl.create 8 in
      Array.iteri
        (fun j a ->
          match a with
          | Aconst v -> consts := (j + 1, v) :: !consts
          | Avar x -> (
              match Hashtbl.find_opt first_pos x with
              | None -> Hashtbl.add first_pos x (j + 1)
              | Some p0 -> eqs := (p0, j + 1) :: !eqs))
        p.pargs;
      B.select_project s p.prel ~consts:(List.rev !consts)
        ~eqs:(List.rev !eqs)
        ~project:(0 :: proj_of_vars ())
    end
    else None
  in
  match pushdown with
  | Some (rows, examined) ->
      Obs.Counter.add c_rows_scanned examined;
      { svars = vars; srows = rows }
  | None ->
  let candidates =
    if not (B.has_relation p.prel) then []
    else begin
      let const =
        let found = ref None in
        Array.iteri
          (fun j a ->
            match (a, !found) with
            | Aconst v, None -> found := Some (j, v)
            | _ -> ())
          p.pargs;
        !found
      in
      match const with
      | Some (j, v) -> B.find_in_partition s p.prel (j + 1) v
      | None -> B.partition_tuples s p.prel
    end
  in
  let matches (row : Tuple.t) =
    Array.length row = Array.length p.pargs + 1
    &&
    let binding = Hashtbl.create 8 in
    let ok = ref true in
    Array.iteri
      (fun j a ->
        if !ok then
          match a with
          | Aconst v -> if not (Value.equal row.(j + 1) v) then ok := false
          | Avar x -> (
              match Hashtbl.find_opt binding x with
              | Some v -> if not (Value.equal row.(j + 1) v) then ok := false
              | None -> Hashtbl.add binding x row.(j + 1)))
      p.pargs;
    !ok
  in
  let proj = 0 :: proj_of_vars () in
  let seen = Hashtbl.create 64 in
  let rows =
    List.filter_map
      (fun row ->
        Obs.Counter.incr c_rows_scanned;
        if matches row then begin
          let pr = Tuple.project proj row in
          if Hashtbl.mem seen pr then None
          else begin
            Hashtbl.replace seen pr ();
            Some pr
          end
        end
        else None)
      candidates
  in
  { svars = vars; srows = rows }

(* parent ⋉ child on the example id plus their shared variables *)
let semijoin parent child =
  Obs.Counter.incr c_semijoins;
  let shared = List.filter (fun v -> List.mem v parent.svars) child.svars in
  let pos_in tbl v =
    let rec go i = function
      | [] -> raise Not_found
      | x :: _ when String.equal x v -> i + 1
      | _ :: tl -> go (i + 1) tl
    in
    go 0 tbl.svars
  in
  let cpos = 0 :: List.map (pos_in child) shared in
  let ppos = 0 :: List.map (pos_in parent) shared in
  let keys = Hashtbl.create (List.length child.srows) in
  List.iter (fun r -> Hashtbl.replace keys (Tuple.project cpos r) ()) child.srows;
  parent.srows <-
    List.filter (fun r -> Hashtbl.mem keys (Tuple.project ppos r)) parent.srows

(* ------------------------------------------------------------------ *)
(* Worst-case-optimal bag materialization                              *)
(* ------------------------------------------------------------------ *)

(* [lower_bound]/[upper_bound]: first index in [lo, hi) of [mat] whose
   value at column [col] is >= v (resp. > v). The rows of [mat] are
   sorted lexicographically and every column before [col] is constant
   within [lo, hi), so column [col] is sorted there. *)
let lower_bound (mat : Tuple.t array) col lo hi v =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare mat.(mid).(col) v < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let upper_bound (mat : Tuple.t array) col lo hi v =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Value.compare mat.(mid).(col) v <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Materialize one multi-edge bag of a decomposition: the natural join
   of its member tables, computed by a leapfrog-style worst-case-
   optimal generic join. Variables are eliminated in a fixed global
   order — the example id first, then the bag's variables by first
   occurrence — and the candidate values of each variable are obtained
   by sorted-array intersection over every member containing it: the
   member with the fewest remaining rows leads, the others are probed
   by binary search and narrow their live row range as the partial
   assignment grows. Each emitted row is a full distinct assignment of
   (eid, bag variables), so the result is itself a valid semi-join
   operand. *)
let leapfrog_bag (tables : sj_table list) =
  let bag_vars =
    List.fold_left
      (fun acc t ->
        List.fold_left
          (fun acc v -> if List.mem v acc then acc else v :: acc)
          acc t.svars)
      [] tables
    |> List.rev
  in
  let n_depths = 1 + List.length bag_vars in
  let depth_of = Hashtbl.create 8 in
  List.iteri (fun i v -> Hashtbl.replace depth_of v (i + 1)) bag_vars;
  let ops =
    Array.of_list
      (List.map
         (fun t ->
           (* project each row to (eid, own vars in elimination order)
              and sort: the lexicographic order then agrees with the
              global variable elimination order *)
           let tv =
             List.sort
               (fun a b ->
                 compare (Hashtbl.find depth_of a) (Hashtbl.find depth_of b))
               t.svars
           in
           let col_at = Array.make n_depths (-1) in
           col_at.(0) <- 0;
           List.iteri (fun k v -> col_at.(Hashtbl.find depth_of v) <- k + 1) tv;
           let pos_in v =
             let rec go i = function
               | [] -> raise Not_found
               | x :: _ when String.equal x v -> i + 1
               | _ :: tl -> go (i + 1) tl
             in
             go 0 t.svars
           in
           let proj = 0 :: List.map pos_in tv in
           let mat =
             Array.of_list (List.map (fun r -> Tuple.project proj r) t.srows)
           in
           Array.sort Tuple.compare mat;
           (mat, col_at))
         tables)
  in
  let m = Array.length ops in
  let cur = Array.make n_depths (Value.int 0) in
  let out = ref [] in
  let rec enum d (ranges : (int * int) array) =
    if d = n_depths then begin
      Obs.Counter.incr c_bag_rows;
      out := Array.copy cur :: !out
    end
    else begin
      let active = ref [] in
      for k = m - 1 downto 0 do
        if (snd ops.(k)).(d) >= 0 then active := k :: !active
      done;
      let active = !active in
      let lead =
        List.fold_left
          (fun best k ->
            let lo, hi = ranges.(k) in
            match best with
            | Some (_, bn) when bn <= hi - lo -> best
            | _ -> Some (k, hi - lo))
          None active
      in
      match lead with
      | None ->
          (* unreachable: the example id makes every member active at
             depth 0 and every bag variable occurs in some member *)
          assert false
      | Some (lead, _) ->
          let mat, col_at = ops.(lead) in
          let c = col_at.(d) in
          let lo, hi = ranges.(lead) in
          let i = ref lo in
          while !i < hi do
            let v = mat.(!i).(c) in
            let stop = upper_bound mat c !i hi v in
            Obs.Counter.incr c_leapfrog_seeks;
            let ranges' = Array.copy ranges in
            ranges'.(lead) <- (!i, stop);
            let ok = ref true in
            List.iter
              (fun k ->
                if !ok && k <> lead then begin
                  let mk, ck = ops.(k) in
                  let klo, khi = ranges.(k) in
                  let c' = ck.(d) in
                  let a = lower_bound mk c' klo khi v in
                  let b = upper_bound mk c' a khi v in
                  Obs.Counter.incr c_leapfrog_seeks;
                  if a >= b then ok := false else ranges'.(k) <- (a, b)
                end)
              active;
            if !ok then begin
              cur.(d) <- v;
              enum (d + 1) ranges'
            end;
            i := stop
          done
    end
  in
  enum 0 (Array.init m (fun k -> (0, Array.length (fst ops.(k)))));
  { svars = bag_vars; srows = List.rev !out }

(* Evaluate the whole semi-join program on one backend partition: scan
   every pattern, materialize each decomposition bag (a singleton bag
   reuses its pattern scan; a merged bag runs the worst-case-optimal
   join above), run the Yannakakis bottom-up pass over the bag tree,
   then intersect the surviving example-id sets of the component
   roots. *)
let run_partition backend pats (decomp : Hypergraph.decomposition) s targets =
  Obs.Counter.incr c_shard_tasks;
  match targets with
  | [] -> [||]
  | _ ->
      let tables = Array.map (scan_pattern backend s) pats in
      let bag_tables =
        Array.map
          (fun members ->
            match members with
            | [ e ] -> tables.(e)
            | members ->
                Obs.Counter.incr c_wide_bags;
                leapfrog_bag (List.map (fun e -> tables.(e)) members))
          decomp.Hypergraph.bags
      in
      let root_sets = ref [] in
      List.iter
        (fun (b, parent) ->
          match parent with
          | Some f -> semijoin bag_tables.(f) bag_tables.(b)
          | None ->
              let set = Hashtbl.create 64 in
              List.iter
                (fun (r : Tuple.t) -> Hashtbl.replace set r.(0) ())
                bag_tables.(b).srows;
              root_sets := set :: !root_sets)
        decomp.Hypergraph.forest;
      let sets = !root_sets in
      Array.of_list
        (List.map
           (fun eid ->
             List.for_all (fun set -> Hashtbl.mem set (Value.int eid)) sets)
           targets)

(** [semijoin_batch ?fanout backend ~patterns ~eids] answers, for each
    of the [k] example ids in [eids], whether the conjunctive
    [patterns] have at least one satisfying assignment among the
    example's stored tuples — k boolean coverage answers in one
    Yannakakis semi-join program per backend partition, instead of k
    independent subsumption searches.

    The kernel is backend-generic: it reads only the {!Backend}
    partition surface, so the flat instance runs as a single partition
    and the sharded store fans one task out per shard with no
    shard-specific code path here.

    The pattern hypergraph (one hyperedge of variables per pattern)
    need not be acyclic: the program runs over a generalized hypertree
    decomposition ({!Hypergraph.decompose}) whose cyclic-core bags are
    materialized by a worst-case-optimal multiway intersection before
    the bottom-up Yannakakis pass — prepending the example-id column
    to every edge keeps the bag tree exact per example. Disconnected
    components are evaluated independently and joined by intersecting
    their root example-id sets. [decomposition] supplies a
    precomputed (possibly memoized) decomposition of exactly
    [List.map pattern_vars patterns]; it is rebuilt here when absent.
    [fanout] runs the per-partition tasks (default: sequential; the
    ILP layer passes its [Parallel] pool). *)
let semijoin_batch ?(fanout = fun n f -> Array.init n f) ?decomposition
    (backend : Backend.t) ~(patterns : pattern list) ~(eids : int array) =
  Obs.Span.with_span span_batch @@ fun () ->
  Obs.Counter.incr c_batches;
  Obs.Counter.add c_batch_examples (Array.length eids);
  match patterns with
  | [] -> Array.make (Array.length eids) true
  | _ ->
      let decomp =
        match decomposition with
        | Some d -> d
        | None -> Hypergraph.decompose (List.map pattern_vars patterns)
      in
      let module B = (val backend) in
      let pats = Array.of_list patterns in
      let n = B.n_partitions () in
      let by_part = Array.make n [] in
      Array.iteri
        (fun k eid ->
          let s = B.partition_of_value (Value.int eid) in
          by_part.(s) <- (k, eid) :: by_part.(s))
        eids;
      let by_part = Array.map List.rev by_part in
      let results =
        fanout n (fun s ->
            run_partition backend pats decomp s (List.map snd by_part.(s)))
      in
      let out = Array.make (Array.length eids) false in
      Array.iteri
        (fun s bools ->
          List.iteri (fun j (k, _) -> out.(k) <- bools.(j)) by_part.(s))
        results;
      out

(** [reorder tbl attrs] permutes the columns of [tbl] to follow
    [attrs] (which must be a permutation of a subset of its columns,
    duplicates removed). *)
let reorder tbl attrs =
  let pos name =
    let rec go i = function
      | [] -> raise Not_found
      | (x : Schema.attribute) :: _ when String.equal x.Schema.aname name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 tbl.tattrs
  in
  let ps = List.map pos attrs in
  {
    tattrs = List.map (fun p -> List.nth tbl.tattrs p) ps;
    trows = List.map (fun r -> Tuple.project ps r) tbl.trows;
  }
