(** A small hand-rolled lexer shared by the text formats (schema
    files, fact files, Datalog clauses). Every token carries its
    source position (1-based line and column), and the cursor-based
    error helpers include the position of the offending token, so
    parse errors — and the diagnostics built on top of them by
    {!Castor_analysis} — can point at the exact place in the input. *)

type token =
  | Ident of string  (** identifiers: letters, digits, '_', leading letter *)
  | Int of int
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Dot
  | Colon
  | Arrow  (** -> *)
  | Turnstile  (** :- *)
  | Eq  (** = *)
  | Subset  (** <= *)
  | Eof

(** 1-based source position. *)
type pos = { line : int; col : int }

let pp_pos ppf p = Fmt.pf ppf "line %d, column %d" p.line p.col

(** A token together with the position of its first character. *)
type spanned = { tok : token; pos : pos }

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

(** [error_at pos fmt] raises {!Error} with the position prepended. *)
let error_at pos fmt =
  Fmt.kstr (fun s -> raise (Error (Fmt.str "%a: %s" pp_pos pos s))) fmt

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "%s" s
  | Int n -> Fmt.pf ppf "%d" n
  | Lparen -> Fmt.string ppf "("
  | Rparen -> Fmt.string ppf ")"
  | Lbracket -> Fmt.string ppf "["
  | Rbracket -> Fmt.string ppf "]"
  | Comma -> Fmt.string ppf ","
  | Dot -> Fmt.string ppf "."
  | Colon -> Fmt.string ppf ":"
  | Arrow -> Fmt.string ppf "->"
  | Turnstile -> Fmt.string ppf ":-"
  | Eq -> Fmt.string ppf "="
  | Subset -> Fmt.string ppf "<="
  | Eof -> Fmt.string ppf "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(** [tokenize s] lexes [s]; ['%'] starts a to-end-of-line comment.
    @raise Error (with line/column) on an unexpected character. *)
let tokenize (s : string) : spanned list =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  (* byte offset where the current line starts, to derive columns *)
  let line_start = ref 0 in
  let here () = { line = !line; col = !i - !line_start + 1 } in
  let push pos t = out := { tok = t; pos } :: !out in
  let newline () =
    incr line;
    line_start := !i + 1
  in
  while !i < n do
    let c = s.[!i] in
    if c = '\n' then begin
      newline ();
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '%' then begin
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let pos = here () in
      let j = ref !i in
      while !j < n && is_digit s.[!j] do
        incr j
      done;
      push pos (Int (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if is_ident_start c then begin
      let pos = here () in
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      push pos (Ident (String.sub s !i (!j - !i)));
      i := !j
    end
    else begin
      let pos = here () in
      (match c with
      | '(' -> push pos Lparen
      | ')' -> push pos Rparen
      | '[' -> push pos Lbracket
      | ']' -> push pos Rbracket
      | ',' -> push pos Comma
      | '.' -> push pos Dot
      | '=' -> push pos Eq
      | ':' ->
          if !i + 1 < n && s.[!i + 1] = '-' then begin
            push pos Turnstile;
            incr i
          end
          else push pos Colon
      | '-' ->
          if !i + 1 < n && s.[!i + 1] = '>' then begin
            push pos Arrow;
            incr i
          end
          else error_at pos "stray '-'"
      | '<' ->
          if !i + 1 < n && s.[!i + 1] = '=' then begin
            push pos Subset;
            incr i
          end
          else error_at pos "stray '<'"
      | c -> error_at pos "unexpected character %C" c);
      incr i
    end
  done;
  let eof_pos = here () in
  List.rev ({ tok = Eof; pos = eof_pos } :: !out)

(** A mutable token cursor for recursive-descent parsers. [last] is
    the position of the most recently consumed token — the one an
    error message should point at. *)
type cursor = { mutable tokens : spanned list; mutable last : pos }

let cursor tokens = { tokens; last = { line = 1; col = 1 } }

let peek c = match c.tokens with [] -> Eof | t :: _ -> t.tok

(** Position of the next (unconsumed) token. *)
let peek_pos c = match c.tokens with [] -> c.last | t :: _ -> t.pos

let advance c =
  match c.tokens with
  | [] -> ()
  | t :: rest ->
      c.last <- t.pos;
      c.tokens <- rest

let next c =
  let t = peek c in
  advance c;
  t

(** Position of the most recently consumed token. *)
let last_pos c = c.last

(** [err c fmt] raises {!Error} pointing at the last consumed token. *)
let err c fmt = error_at c.last fmt

(** [expect c t] consumes the next token, failing (with position)
    unless it is [t]. *)
let expect c t =
  let got = next c in
  if got <> t then err c "expected %a but found %a" pp_token t pp_token got

(** [ident c] consumes and returns an identifier. *)
let ident c =
  match next c with
  | Ident s -> s
  | t -> err c "expected identifier but found %a" pp_token t
