(** The one storage-backend seam of the learning stack.

    The paper's implementation talks to a main-memory RDBMS through a
    fixed query surface (Section 7.5.1); this repo grew two substrates
    behind that role — the flat hash-indexed {!Instance} and the
    sharded delta-maintained {!Store} — and, before this module, each
    consumer picked one ad hoc ({!Bottom} took an optional lookup
    hook, {!Coverage} hardcoded its dispatch, {!Algebra} reached into
    shard internals). [Backend] is the abstraction they all route
    through instead:

    - {e scans} and {e indexed lookups} by [(relation, position,
      value)] — the two access paths saturation and the semi-join
      kernel need;
    - {e statistics} (cardinalities, per-position distinct counts) —
      what the cost-based coverage planner feeds on;
    - an explicit {e delta API} — mutations are {!Delta.t} values,
      applied singly ([add]/[remove]) or in batches ([apply]) and
      observable through [subscribe]; the generation counter is the
      length of the delta log, so derived structures (coverage memos,
      example stores, materialized views) either key caches on it or
      subscribe and patch themselves in place;
    - {e partitioned access} — the sharded store exposes its shards,
      the flat instance presents itself as one partition, and the
      batched semi-join kernel fans out over whatever it gets;
    - a {!capabilities} record naming what the implementation can do
      natively (pushdown, partitioning, subscription), so consumers
      branch on capabilities instead of sniffing [option]-returning
      methods.

    A future backend (on-disk, remote) is one more implementation of
    {!S}; nothing outside [lib/relational] needs to change. *)

module Obs = Castor_obs.Obs

let c_wraps = Obs.Counter.create "backend.wraps"

let c_creates = Obs.Counter.create "backend.creates"

(** What an implementation serves natively. One explicit record
    instead of scattered optional methods:
    - [pushdown] — {!S.select_project} evaluates whole pattern scans
      inside the engine (and its statistics are exact, not sampled);
      when [false] the method always returns [None] and callers take
      the generic scan-and-filter path without probing;
    - [partitioned] — [n_partitions] may exceed 1 and the partition
      access paths are genuinely shard-local;
    - [subscription] — [apply]/[subscribe] deliver effective deltas to
      subscribers (all in-memory substrates; a future remote backend
      may only poll generations). *)
type capabilities = {
  pushdown : bool;
  partitioned : bool;
  subscription : bool;
}

(** The backend signature. Implementations are stateful first-class
    modules: each value of {!t} owns (or wraps) one database. *)
module type S = sig
  (** Implementation id: ["instance"], ["store"] or ["columnar"]. *)
  val name : string

  (** What this implementation serves natively. *)
  val capabilities : capabilities

  (* -------- schema surface -------- *)

  val relation_names : unit -> string list

  val has_relation : string -> bool

  val arity : string -> int

  (* -------- mutation (the delta API) -------- *)

  (** [add rel tu] inserts (set semantics); [true] when new. The
      singleton form of [apply [Delta.Add (rel, tu)]]. *)
  val add : string -> Tuple.t -> bool

  (** [remove rel tu]; [true] when the tuple was present. The
      singleton form of [apply [Delta.Remove (rel, tu)]]. *)
  val remove : string -> Tuple.t -> bool

  (** [apply ds] applies a batch of deltas in order. Ineffective
      deltas (duplicate adds, absent removes) are dropped; the
      generation advances by the number of effective ones and
      subscribers are notified once with exactly that sub-batch. *)
  val apply : Delta.t list -> unit

  (** [subscribe f] registers [f] to observe every effective delta
      batch, in application order, after it hits the store. *)
  val subscribe : (Delta.t list -> unit) -> unit

  (* -------- reads -------- *)

  val mem : string -> Tuple.t -> bool

  (** [tuples rel] — full scan. *)
  val tuples : string -> Tuple.t list

  (** [find rel pos v] — indexed lookup: tuples whose column [pos]
      holds [v]. *)
  val find : string -> int -> Value.t -> Tuple.t list

  (** [find_matching rel bindings] — tuples agreeing with every
      [(position, value)] binding; indexed on the first binding. *)
  val find_matching : string -> (int * Value.t) list -> Tuple.t list

  (** [tuples_containing rel v] — tuples mentioning [v] at any
      position, deduplicated. *)
  val tuples_containing : string -> Value.t -> Tuple.t list

  (* -------- statistics (the planner's diet) -------- *)

  val cardinality : string -> int

  (** Total tuples across relations. *)
  val size : unit -> int

  (** [distinct_count rel pos] — number of distinct values stored at
      column [pos] of [rel]; the per-position selectivity statistic
      ([cardinality / distinct_count] estimates an indexed probe's
      result size). *)
  val distinct_count : string -> int -> int

  (** [select_project s rel ~consts ~eqs ~project] — optional engine
      pushdown of one whole pattern scan on partition [s]:
      [π_project (σ_{consts ∧ eqs} rel)], deduplicated. [consts] are
      [(column, value)] equality predicates, [eqs] are
      [(column, column)] equalities (repeated variables), [project]
      the output columns. [Some (rows, examined)] evaluates the query
      natively, where [examined] counts the stored rows the engine
      visited (what the generic path reports as
      [algebra.semijoin.rows_scanned]); [None] sends the caller down
      the generic scan-and-filter path. Hash-based substrates return
      [None]; the columnar engine answers with posting-list
      intersections and memoized materializations. *)
  val select_project :
    int ->
    string ->
    consts:(int * Value.t) list ->
    eqs:(int * int) list ->
    project:int list ->
    (Tuple.t list * int) option

  (** Mutation counter of the underlying data — the length of its
      delta log (number of effective deltas ever applied). Equal
      generations imply the data has not changed; structures that do
      not subscribe should key their caches on it. *)
  val generation : unit -> int

  (* -------- partitioned access (the semi-join kernel's view) ------ *)

  (** Number of partitions; 1 for the flat instance. *)
  val n_partitions : unit -> int

  (** Partition owning key value [v] — a pure function of the value,
      identical across backends with the same partition count. *)
  val partition_of_value : Value.t -> int

  (** Rows of [rel] living on one partition. *)
  val partition_tuples : int -> string -> Tuple.t list

  (** Indexed lookup restricted to one partition. *)
  val find_in_partition : int -> string -> int -> Value.t -> Tuple.t list
end

type t = (module S)

(* ------------------------------------------------------------------ *)
(* Implementations                                                     *)
(* ------------------------------------------------------------------ *)

let distinct_at tuples pos =
  List.fold_left
    (fun acc (tu : Tuple.t) ->
      if pos < Array.length tu then Value.Set.add tu.(pos) acc else acc)
    Value.Set.empty tuples
  |> Value.Set.cardinal

(* Per-backend (rel, pos) -> distinct-count memo, keyed on the data
   generation: the planner probes the same few columns on every
   candidate clause, and a full rescan-and-hash per probe (the pre-memo
   behavior) made cost estimation itself O(n). The table is
   closure-local to one backend value and only ever touched from the
   planner's (single-threaded) cost estimation. *)
let memo_distinct memo gen compute rel pos =
  let g = gen () in
  match Hashtbl.find_opt memo (rel, pos) with
  | Some (g', n) when g' = g -> n
  | _ ->
      let n = compute rel pos in
      Hashtbl.replace memo (rel, pos) (g, n);
      n

(** The flat {!Instance} behind the backend surface: one partition,
    global secondary indexes, zero-copy (mutations of the wrapped
    instance are immediately visible and bump the generation). *)
module Instance_backend = struct
  let make (inst : Instance.t) : t =
    Obs.Counter.incr c_wraps;
    let dmemo = Hashtbl.create 32 in
    (module struct
      let name = "instance"

      let capabilities =
        { pushdown = false; partitioned = false; subscription = true }

      let relation_names () = Instance.relation_names inst

      let has_relation rel =
        Schema.mem_relation (Instance.schema inst) rel

      let arity rel = Schema.arity (Instance.schema inst) rel

      let add rel tu =
        if Instance.mem inst rel tu then false
        else begin
          Instance.add inst rel tu;
          true
        end

      let remove rel tu = Instance.remove inst rel tu

      let apply ds = Instance.apply inst ds

      let subscribe f = Instance.subscribe inst f

      let mem rel tu = Instance.mem inst rel tu

      let tuples rel = Instance.tuples inst rel

      let find rel pos v = Instance.find inst rel pos v

      let find_matching rel bindings = Instance.find_matching inst rel bindings

      let tuples_containing rel v = Instance.tuples_containing inst rel v

      let cardinality rel = Instance.cardinality inst rel

      let size () = Instance.size inst

      let distinct_count =
        memo_distinct dmemo
          (fun () -> Instance.generation inst)
          (fun rel pos -> distinct_at (Instance.tuples inst rel) pos)

      let select_project _ _ ~consts:_ ~eqs:_ ~project:_ = None

      let generation () = Instance.generation inst

      let n_partitions () = 1

      let partition_of_value _ = 0

      let partition_tuples _ rel = Instance.tuples inst rel

      let find_in_partition _ rel pos v = Instance.find inst rel pos v
    end)
end

(** The sharded {!Store} behind the backend surface: hash-partitioned
    relations with shard-local secondary indexes; the kernel's
    per-partition tasks map one-to-one onto shards. *)
module Store_backend = struct
  let make (store : Store.t) : t =
    Obs.Counter.incr c_wraps;
    let dmemo = Hashtbl.create 32 in
    (module struct
      let name = "store"

      let capabilities =
        { pushdown = false; partitioned = true; subscription = true }

      let relation_names () = Store.relation_names store

      let has_relation rel = Store.has_relation store rel

      let arity rel = Store.arity store rel

      let add rel tu = Store.add store rel tu

      let remove rel tu = Store.remove store rel tu

      let apply ds = Store.apply store ds

      let subscribe f = Store.subscribe store f

      let mem rel tu = Store.mem store rel tu

      let tuples rel = Store.tuples store rel

      let find rel pos v = Store.find store rel pos v

      let find_matching rel = function
        | [] -> Store.tuples store rel
        | (p0, v0) :: rest ->
            List.filter
              (fun (tu : Tuple.t) ->
                List.for_all (fun (p, v) -> Value.equal tu.(p) v) rest)
              (Store.find store rel p0 v0)

      let tuples_containing rel v = Store.tuples_containing store rel v

      let cardinality rel = Store.cardinality store rel

      let size () = Store.size store

      let distinct_count =
        memo_distinct dmemo
          (fun () -> Store.generation store)
          (fun rel pos -> distinct_at (Store.tuples store rel) pos)

      let select_project _ _ ~consts:_ ~eqs:_ ~project:_ = None

      let generation () = Store.generation store

      let n_partitions () = Store.n_shards store

      let partition_of_value v = Store.shard_of_value store v

      let partition_tuples s rel = Store.shard_tuples store s rel

      let find_in_partition s rel pos v = Store.find_in_shard store s rel pos v
    end)
end

(** The interned columnar engine ({!Columnar}) behind the backend
    surface: one partition, per-relation dictionaries, per-position
    int columns with sorted posting lists — exact O(1) statistics and
    a native {!S.select_project} pushdown. *)
module Columnar_backend = struct
  let make (col : Columnar.t) : t =
    Obs.Counter.incr c_wraps;
    (module struct
      let name = "columnar"

      let capabilities =
        { pushdown = true; partitioned = false; subscription = true }

      let relation_names () = Columnar.relation_names col

      let has_relation rel = Columnar.has_relation col rel

      let arity rel = Columnar.arity col rel

      let add rel tu = Columnar.add col rel tu

      let remove rel tu = Columnar.remove col rel tu

      let apply ds = Columnar.apply col ds

      let subscribe f = Columnar.subscribe col f

      let mem rel tu = Columnar.mem col rel tu

      let tuples rel = Columnar.tuples col rel

      let find rel pos v = Columnar.find col rel pos v

      let find_matching rel bindings = Columnar.find_matching col rel bindings

      let tuples_containing rel v = Columnar.tuples_containing col rel v

      let cardinality rel = Columnar.cardinality col rel

      let size () = Columnar.size col

      let distinct_count rel pos = Columnar.distinct_count col rel pos

      let select_project _ rel ~consts ~eqs ~project =
        Columnar.select_project col rel ~consts ~eqs ~project

      let generation () = Columnar.generation col

      let n_partitions () = 1

      let partition_of_value _ = 0

      let partition_tuples _ rel = Columnar.tuples col rel

      let find_in_partition _ rel pos v = Columnar.find col rel pos v
    end)
end

let of_instance = Instance_backend.make

let of_store = Store_backend.make

let of_columnar = Columnar_backend.make

(* ------------------------------------------------------------------ *)
(* Specs: how callers ask for a backend                                *)
(* ------------------------------------------------------------------ *)

(** What kind of substrate to build: the flat instance, the sharded
    store with [k] shards, or the interned columnar engine. This is
    the value the [--backend] CLI flag and the learner config carry. *)
type spec = Flat | Sharded of int | Columnar

let default_spec = Sharded Store.default_shards

let spec_to_string = function
  | Flat -> "instance"
  | Sharded k -> Printf.sprintf "store:%d" k
  | Columnar -> "columnar"

(** [spec_of_string s] parses ["instance"], ["store"] (default shard
    count), ["store:<k>"] or ["columnar"].
    @raise Invalid_argument on anything else. *)
let spec_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "instance" | "flat" -> Flat
  | "store" -> Sharded Store.default_shards
  | "columnar" | "column" -> Columnar
  | other -> (
      match String.index_opt other ':' with
      | Some i
        when String.sub other 0 i = "store" ->
          let k =
            try int_of_string (String.sub other (i + 1) (String.length other - i - 1))
            with _ -> invalid_arg ("Backend.spec_of_string: bad shard count in " ^ s)
          in
          if k < 1 then invalid_arg "Backend.spec_of_string: shards must be >= 1";
          Sharded k
      | _ ->
          invalid_arg
            ("Backend.spec_of_string: " ^ s
           ^ " (try instance|store[:shards]|columnar)"))

(* a synthetic schema for fresh instance-backed stores built from bare
   (name, arity) pairs — attribute names and domains are never read by
   the backend surface *)
let synthetic_schema rels =
  Schema.make
    (List.map
       (fun (name, arity) ->
         Schema.relation name
           (List.init arity (fun i ->
                Schema.attribute ~domain:"v" (Printf.sprintf "a%d" i))))
       rels)

(** [create spec rels] builds a fresh empty backend for relations
    given as [(name, arity)] pairs — the constructor the coverage
    layer uses for its example-saturation stores. *)
let create spec rels : t =
  Obs.Counter.incr c_creates;
  match spec with
  | Sharded k -> of_store (Store.create ~shards:k rels)
  | Flat -> of_instance (Instance.create (synthetic_schema rels))
  | Columnar -> of_columnar (Columnar.create rels)

(** [load spec inst] presents {!Instance} [inst] through a backend of
    kind [spec]. [Flat] wraps [inst] itself (zero copy — mutations
    flow through); [Sharded k] and [Columnar] load a copy, a snapshot
    whose generation moves independently of [inst]. *)
let load spec inst : t =
  match spec with
  | Flat -> of_instance inst
  | Sharded k -> of_store (Store.of_instance ~shards:k inst)
  | Columnar -> of_columnar (Columnar.of_instance inst)

let name (b : t) =
  let module B = (val b) in
  B.name

let generation (b : t) =
  let module B = (val b) in
  B.generation ()

let capabilities (b : t) =
  let module B = (val b) in
  B.capabilities

(** [apply b ds] — batch mutation through the delta API; subscribers
    of [b] see the effective sub-batch once. *)
let apply (b : t) ds =
  let module B = (val b) in
  B.apply ds

(** [subscribe b f] — observe every effective delta batch of [b]. *)
let subscribe (b : t) f =
  let module B = (val b) in
  B.subscribe f
