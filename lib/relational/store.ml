(** Sharded tuple store with delta-maintained secondary indexes.

    {!Instance} is the single flat store the paper's learners talk to;
    this is its scale-out sibling. Every relation is hash-partitioned
    across [n] shards by a chosen key column (column 0 by default),
    and each shard keeps its own [(column, value)] secondary index.
    Both structures are maintained {e incrementally} under
    [add]/[remove] deltas — a mutation touches exactly the buckets of
    the affected tuple, never a full re-index; {!index_consistent}
    checks the result against a from-scratch rebuild.

    The shard-local indexes are what the batched semi-join kernel
    ({!Algebra.semijoin_batch}) scans, one independent task per shard,
    fanned out over the ILP [Parallel] pool. Partitioning by key makes
    every batch query shard-local: a tuple's shard is a pure function
    of its key value, so a kernel task never reads another shard.

    Everything is instrumented under [store.*]. *)

module Obs = Castor_obs.Obs

let c_builds = Obs.Counter.create "store.builds"

let c_adds = Obs.Counter.create "store.adds"

let c_removes = Obs.Counter.create "store.removes"

let c_index_updates = Obs.Counter.create "store.index_updates"

let c_lookups = Obs.Counter.create "store.lookups"

let c_scans = Obs.Counter.create "store.scans"

type shard = {
  mutable rows : Tuple.t list;  (** newest first *)
  mutable count : int;
  index : (int * Value.t, Tuple.t list ref) Hashtbl.t;
}

type rel_store = {
  arity : int;
  key_pos : int;  (** partitioning column *)
  shards : shard array;
}

type t = {
  n_shards : int;
  rels : (string, rel_store) Hashtbl.t;
  log : Delta.Log.t;
      (** every effective [add]/[remove] delta is appended here; the
          generation the {!Backend} seam exposes is the log length,
          and derived structures subscribe instead of diffing shards *)
}

exception Arity_mismatch of string

let default_shards = 4

(** [create ?shards ?key rels] builds an empty store for relations
    given as [(name, arity)] pairs; [key name] picks the partitioning
    column of each relation (default: column 0). *)
let create ?(shards = default_shards) ?(key = fun _ -> 0) rels =
  if shards < 1 then invalid_arg "Store.create: shards must be >= 1";
  Obs.Counter.incr c_builds;
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (name, arity) ->
      if arity < 1 then invalid_arg "Store.create: arity must be >= 1";
      let key_pos = key name in
      if key_pos < 0 || key_pos >= arity then
        invalid_arg "Store.create: key position outside the sort";
      let mk _ = { rows = []; count = 0; index = Hashtbl.create 64 } in
      Hashtbl.replace tbl name { arity; key_pos; shards = Array.init shards mk })
    rels;
  { n_shards = shards; rels = tbl; log = Delta.Log.create () }

let n_shards t = t.n_shards

(** Mutation counter, derived from the delta log: increases exactly
    when an [add] inserts or a [remove] deletes a tuple. Equal
    generations imply unchanged data. *)
let generation t = Delta.Log.length t.log

(** [subscribe t f] registers [f] to receive every batch of effective
    deltas, in application order, after they hit the shards. *)
let subscribe t f = Delta.Log.subscribe t.log f

let has_relation t rel = Hashtbl.mem t.rels rel

let relation_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.rels [] |> List.sort String.compare

let rel_store t rel =
  match Hashtbl.find_opt t.rels rel with
  | Some rs -> rs
  | None -> raise (Schema.Unknown_relation rel)

let arity t rel = (rel_store t rel).arity

(** Shard owning key value [v] — a pure function of the value, so it
    is identical across store instances with the same shard count. *)
let shard_of_value t v = Value.hash v mod t.n_shards

(** [shard_of t rel tuple] is the shard that holds (or would hold)
    [tuple]. *)
let shard_of t rel (tuple : Tuple.t) =
  let rs = rel_store t rel in
  if Tuple.arity tuple <> rs.arity then raise (Arity_mismatch rel);
  shard_of_value t tuple.(rs.key_pos)

let index_add sh i v tu =
  Obs.Counter.incr c_index_updates;
  let key = (i, v) in
  match Hashtbl.find_opt sh.index key with
  | Some l -> l := tu :: !l
  | None -> Hashtbl.add sh.index key (ref [ tu ])

let index_remove sh i v tu =
  Obs.Counter.incr c_index_updates;
  let key = (i, v) in
  match Hashtbl.find_opt sh.index key with
  | Some l -> (
      l := List.filter (fun x -> not (Tuple.equal x tu)) !l;
      match !l with [] -> Hashtbl.remove sh.index key | _ -> ())
  | None -> ()

(** [mem t rel tuple] tests presence via the key-column index of the
    owning shard. *)
let mem t rel (tuple : Tuple.t) =
  let rs = rel_store t rel in
  if Tuple.arity tuple <> rs.arity then raise (Arity_mismatch rel);
  let kv = tuple.(rs.key_pos) in
  let sh = rs.shards.(shard_of_value t kv) in
  Obs.Counter.incr c_lookups;
  match Hashtbl.find_opt sh.index (rs.key_pos, kv) with
  | Some l -> List.exists (Tuple.equal tuple) !l
  | None -> false

(* [insert]/[delete] mutate the shards and report effectiveness
   without logging, so a batch [apply] can notify subscribers once;
   [add]/[remove] are the public singleton forms. *)

let insert t rel (tuple : Tuple.t) =
  if mem t rel tuple then false
  else begin
    let rs = rel_store t rel in
    let sh = rs.shards.(shard_of_value t tuple.(rs.key_pos)) in
    sh.rows <- tuple :: sh.rows;
    sh.count <- sh.count + 1;
    Array.iteri (fun i v -> index_add sh i v tuple) tuple;
    Obs.Counter.incr c_adds;
    true
  end

let delete t rel (tuple : Tuple.t) =
  if not (mem t rel tuple) then false
  else begin
    let rs = rel_store t rel in
    let sh = rs.shards.(shard_of_value t tuple.(rs.key_pos)) in
    sh.rows <- List.filter (fun tu -> not (Tuple.equal tu tuple)) sh.rows;
    sh.count <- sh.count - 1;
    Array.iteri (fun i v -> index_remove sh i v tuple) tuple;
    Obs.Counter.incr c_removes;
    true
  end

(** [add t rel tuple] inserts a tuple into its shard and extends every
    secondary-index bucket of that shard (delta maintenance). Returns
    [false] on duplicates (set semantics); an effective insert is
    logged as an [Add] delta.
    @raise Arity_mismatch if the tuple does not fit the sort. *)
let add t rel (tuple : Tuple.t) =
  insert t rel tuple
  && begin
       Delta.Log.extend t.log [ Delta.Add (rel, tuple) ];
       true
     end

(** [remove t rel tuple] deletes a tuple, pruning exactly the index
    buckets it occupied. Returns [true] when the tuple was present,
    in which case a [Remove] delta is logged. *)
let remove t rel (tuple : Tuple.t) =
  delete t rel tuple
  && begin
       Delta.Log.extend t.log [ Delta.Remove (rel, tuple) ];
       true
     end

(** [apply t ds] applies a batch of deltas in order; ineffective ones
    are dropped and subscribers see exactly the effective sub-batch,
    once. *)
let apply t ds =
  let effective =
    List.filter
      (function
        | Delta.Add (rel, tu) -> insert t rel tu
        | Delta.Remove (rel, tu) -> delete t rel tu)
      ds
  in
  Delta.Log.extend t.log effective

(* Aliases matching the ILP-facing vocabulary. *)
let add_tuple = add

let remove_tuple = remove

(** [shard_tuples t s rel] — the rows of [rel] living on shard [s]. *)
let shard_tuples t s rel =
  let rs = rel_store t rel in
  Obs.Counter.incr c_scans;
  rs.shards.(s).rows

(** [tuples t rel] concatenates the shards in shard order. *)
let tuples t rel =
  let rs = rel_store t rel in
  Obs.Counter.incr c_scans;
  Array.fold_left (fun acc sh -> acc @ List.rev sh.rows) [] rs.shards

let cardinality t rel =
  Array.fold_left (fun acc sh -> acc + sh.count) 0 (rel_store t rel).shards

let size t =
  Hashtbl.fold
    (fun _ rs acc ->
      acc + Array.fold_left (fun a sh -> a + sh.count) 0 rs.shards)
    t.rels 0

(** [find_in_shard t s rel pos v] — indexed lookup inside one shard. *)
let find_in_shard t s rel pos v =
  let rs = rel_store t rel in
  Obs.Counter.incr c_lookups;
  match Hashtbl.find_opt rs.shards.(s).index (pos, v) with
  | Some l -> !l
  | None -> []

(** [find t rel pos v] — indexed lookup across the store. A query on
    the partitioning column touches exactly one shard; other columns
    consult every shard's local index. *)
let find t rel pos v =
  let rs = rel_store t rel in
  if pos = rs.key_pos then find_in_shard t (shard_of_value t v) rel pos v
  else
    List.concat
      (List.init t.n_shards (fun s -> find_in_shard t s rel pos v))

(** [tuples_containing t rel v] — all tuples of [rel] mentioning [v]
    at any position, deduplicated ({!Instance.tuples_containing}'s
    contract, served by the sharded indexes). *)
let tuples_containing t rel v =
  let ar = arity t rel in
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  for pos = 0 to ar - 1 do
    List.iter
      (fun tu ->
        let h = Tuple.hash tu in
        let dup =
          match Hashtbl.find_opt seen h with
          | Some l -> List.exists (Tuple.equal tu) l
          | None -> false
        in
        if not dup then begin
          Hashtbl.replace seen h
            (tu :: Option.value ~default:[] (Hashtbl.find_opt seen h));
          out := tu :: !out
        end)
      (find t rel pos v)
  done;
  !out

(** [of_instance ?shards ?key inst] loads a whole {!Instance}. *)
let of_instance ?shards ?key inst =
  let schema = Instance.schema inst in
  let rels =
    List.map
      (fun (r : Schema.relation) ->
        (r.Schema.rname, List.length r.Schema.attrs))
      schema.Schema.relations
  in
  let t = create ?shards ?key rels in
  List.iter
    (fun (rel, _) ->
      List.iter (fun tu -> ignore (add t rel tu)) (Instance.tuples inst rel))
    rels;
  t

(** [index_consistent t] checks the delta-maintained state against a
    from-scratch rebuild: every row lives on the shard its key hashes
    to, the cached counts match, and each shard's secondary index
    holds exactly the buckets a fresh indexing of its rows would
    produce. *)
let index_consistent t =
  let norm l = List.sort Tuple.compare l in
  Hashtbl.fold
    (fun _rel rs acc ->
      acc
      && Array.for_all Fun.id
           (Array.mapi
              (fun s sh ->
                List.length sh.rows = sh.count
                && List.for_all
                     (fun tu -> shard_of_value t tu.(rs.key_pos) = s)
                     sh.rows
                &&
                let expected = Hashtbl.create 64 in
                List.iter
                  (fun tu ->
                    Array.iteri
                      (fun i v ->
                        let key = (i, v) in
                        Hashtbl.replace expected key
                          (tu
                          :: Option.value ~default:[]
                               (Hashtbl.find_opt expected key)))
                      tu)
                  sh.rows;
                Hashtbl.length expected = Hashtbl.length sh.index
                && Hashtbl.fold
                     (fun key l ok ->
                       ok
                       &&
                       match Hashtbl.find_opt sh.index key with
                       | Some actual ->
                           List.equal Tuple.equal (norm !actual) (norm l)
                       | None -> false)
                     expected true)
              rs.shards))
    t.rels true

let pp ppf t =
  List.iter
    (fun rel ->
      Fmt.pf ppf "@[<v2>%s (%d tuples, %d shards):@,%a@]@." rel
        (cardinality t rel) t.n_shards
        Fmt.(list ~sep:cut Tuple.pp)
        (tuples t rel))
    (relation_names t)
