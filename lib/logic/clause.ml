(** Definite Horn clauses [T(u) <- L1(u1), ..., Ln(un)].

    The body is an ordered list: ProGolem and Castor treat clauses as
    ordered clauses (Section 6.4), and the bottom-clause construction
    order is what their ARMG operators rely on. Two clauses that
    differ only in body order are θ-equivalent, and all equivalence
    checks go through subsumption, so keeping the list ordered loses
    nothing. *)

type t = { head : Atom.t; body : Atom.t list }

(** A Horn definition: a set of clauses sharing the same head relation
    (a union of conjunctive queries). *)
type definition = { target : string; clauses : t list }

let make head body = { head; body }

let length c = List.length c.body

(** Distinct variable names of the clause, head first then body in
    order of first occurrence. *)
let variables c =
  let add acc a =
    List.fold_left
      (fun (seen, order) v ->
        if List.mem v seen then (seen, order) else (v :: seen, v :: order))
      acc (Atom.vars a)
  in
  let _, rev = List.fold_left add (add ([], []) c.head) c.body in
  List.rev rev

let num_variables c = List.length (variables c)

(** Variables appearing in the head — the paper's head-variables. *)
let head_vars c = Atom.vars c.head

(** [is_safe c] holds when every head variable occurs in the body
    (Section 7.3). *)
let is_safe c =
  let body_vars =
    List.fold_left
      (fun s a -> Term.Set.union s (Atom.var_set a))
      Term.Set.empty c.body
  in
  List.for_all (fun v -> Term.Set.mem (Term.Var v) body_vars) (head_vars c)

let apply_subst s c =
  { head = Subst.apply_atom s c.head; body = List.map (Subst.apply_atom s) c.body }

(** [head_connected c] removes body literals that are not connected to
    the head through a chain of shared variables, preserving order —
    the clean-up step of ARMG (Algorithm 3). Fully ground literals are
    kept: they are self-contained conditions on the database, not
    dangling existentials, and dropping them would change the clause's
    meaning. *)
let head_connected c =
  let reached = ref (Atom.var_set c.head) in
  let changed = ref true in
  let kept = Array.make (List.length c.body) false in
  let body = Array.of_list c.body in
  while !changed do
    changed := false;
    Array.iteri
      (fun i a ->
        if not kept.(i) then begin
          let vs = Atom.var_set a in
          if
            Term.Set.is_empty vs
            || not (Term.Set.is_empty (Term.Set.inter vs !reached))
          then begin
            kept.(i) <- true;
            reached := Term.Set.union !reached vs;
            changed := true
          end
        end)
      body
  done;
  {
    c with
    body =
      List.filteri (fun i _ -> kept.(i)) (Array.to_list body |> List.map Fun.id);
  }

(** [variabilize c] replaces every constant by a variable, one fresh
    variable per distinct constant (the bottom-clause variabilization
    step, Section 6.1). Returns the new clause and the constant-to-
    variable mapping. *)
let variabilize ?(prefix = "V") c =
  let module VM = Castor_relational.Value.Map in
  let table = ref VM.empty in
  let counter = ref 0 in
  let var_for const =
    match VM.find_opt const !table with
    | Some v -> v
    | None ->
        let v = Printf.sprintf "%s%d" prefix !counter in
        incr counter;
        table := VM.add const v !table;
        v
  in
  let conv (a : Atom.t) =
    {
      a with
      Atom.args =
        Array.map
          (function
            | Term.Const c -> Term.Var (var_for c)
            | Term.Var _ as v -> v)
          a.Atom.args;
    }
  in
  let c' = { head = conv c.head; body = List.map conv c.body } in
  (c', !table)

(** [rename_apart suffix c] renames every variable by appending
    [suffix], used to keep clause pairs variable-disjoint before lgg. *)
let rename_apart suffix c =
  let ren = function
    | Term.Var v -> Term.Var (v ^ suffix)
    | Term.Const _ as t -> t
  in
  let conv (a : Atom.t) = { a with Atom.args = Array.map ren a.Atom.args } in
  { head = conv c.head; body = List.map conv c.body }

(** Removes duplicate body literals, keeping first occurrences. *)
let dedup_body c =
  let seen = Hashtbl.create 16 in
  let body =
    List.filter
      (fun a ->
        let k = Atom.to_string a in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      c.body
  in
  { c with body }

(** [canonical_key c] is a structural cache key: clauses equal up to
    variable renaming and body-literal reordering (α-equivalent as
    ordered-clause sets, hence with identical coverage) map to the
    same key, and equal keys imply such equivalence — the key is a
    faithful rendering of the clause under a canonical variable
    naming, so a coverage cache keyed by it is sound.

    Construction: variables are colored by a few rounds of
    Weisfeiler-Leman-style refinement over their occurrence structure
    (relation, head/body, argument position, colors of co-occurring
    variables), body literals are sorted by their colored signature,
    canonical names [_0, _1, ...] are assigned in first-occurrence
    order over the sorted clause, and the rendered body literals are
    sorted once more so automorphic literal groups render identically
    regardless of input order. Built with a buffer — cheaper than the
    boxed pretty-printer behind {!to_string}. *)
let canonical_key (c : t) =
  let module Value = Castor_relational.Value in
  let atoms = Array.of_list (c.head :: c.body) in
  let n_atoms = Array.length atoms in
  (* dense variable ids, in order of first occurrence *)
  let var_ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let id_of v =
    match Hashtbl.find_opt var_ids v with
    | Some i -> i
    | None ->
        let i = Hashtbl.length var_ids in
        Hashtbl.add var_ids v i;
        i
  in
  let args =
    Array.map
      (fun (a : Atom.t) ->
        Array.map
          (function
            | Term.Var v -> Either.Left (id_of v)
            | Term.Const k -> Either.Right (Value.to_string k))
          a.Atom.args)
      atoms
  in
  let n_vars = Hashtbl.length var_ids in
  let colors = Array.make n_vars 0 in
  (* occurrences.(v) = (atom index, position) list *)
  let occurrences = Array.make n_vars [] in
  Array.iteri
    (fun ai row ->
      Array.iteri
        (fun pos -> function
          | Either.Left v -> occurrences.(v) <- (ai, pos) :: occurrences.(v)
          | Either.Right _ -> ())
        row)
    args;
  let atom_sig ai =
    Hashtbl.hash
      ( atoms.(ai).Atom.rel,
        ai = 0,
        Array.map
          (function
            | Either.Left v -> Either.Left colors.(v)
            | Either.Right _ as k -> k)
          args.(ai) )
  in
  (* refinement rounds; three suffice for the clause sizes the
     learners build, and more rounds only cost completeness, never
     soundness *)
  for _round = 1 to 3 do
    let next =
      Array.mapi
        (fun v _ ->
          Hashtbl.hash
            (List.sort compare
               (List.map (fun (ai, pos) -> (atom_sig ai, pos)) occurrences.(v))))
        colors
    in
    Array.blit next 0 colors 0 n_vars
  done;
  (* sort body atom indices by colored signature *)
  let sig_key ai =
    ( atoms.(ai).Atom.rel,
      Array.to_list
        (Array.map
           (function
             | Either.Left v -> "v:" ^ string_of_int colors.(v)
             | Either.Right k -> "c:" ^ k)
           args.(ai)) )
  in
  let body_order = Array.init (n_atoms - 1) (fun i -> i + 1) in
  Array.sort (fun a b -> compare (sig_key a) (sig_key b)) body_order;
  (* canonical names in first-occurrence order: head first, then the
     sorted body *)
  let names = Array.make n_vars (-1) in
  let next_name = ref 0 in
  let name_row ai =
    Array.iter
      (function
        | Either.Left v ->
            if names.(v) < 0 then begin
              names.(v) <- !next_name;
              incr next_name
            end
        | Either.Right _ -> ())
      args.(ai)
  in
  name_row 0;
  Array.iter name_row body_order;
  let render ai =
    let buf = Buffer.create 32 in
    Buffer.add_string buf atoms.(ai).Atom.rel;
    Buffer.add_char buf '(';
    Array.iteri
      (fun pos arg ->
        if pos > 0 then Buffer.add_char buf ',';
        match arg with
        | Either.Left v ->
            Buffer.add_char buf '_';
            Buffer.add_string buf (string_of_int names.(v))
        | Either.Right k -> Buffer.add_string buf k)
      args.(ai);
    Buffer.add_char buf ')';
    Buffer.contents buf
  in
  let rendered_body =
    List.sort String.compare (List.map render (Array.to_list body_order))
  in
  String.concat "|" (render 0 :: rendered_body)

let pp ppf c =
  if c.body = [] then Fmt.pf ppf "%a." Atom.pp c.head
  else
    Fmt.pf ppf "@[<hov2>%a :-@ %a.@]" Atom.pp c.head
      Fmt.(list ~sep:(any ",@ ") Atom.pp)
      c.body

let to_string c = Fmt.str "%a" pp c

let pp_definition ppf (d : definition) =
  if d.clauses = [] then Fmt.pf ppf "(empty definition for %s)" d.target
  else Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp) d.clauses

let definition_to_string d = Fmt.str "%a" pp_definition d
