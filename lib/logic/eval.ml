(** Direct evaluation of clauses and definitions over database
    instances — the semantics [h(I)] of Section 3.2.2.

    Evaluation is a backtracking join over indexed lookups, choosing
    at each step the body literal with the most bound arguments. It
    provides the exact coverage semantics ("∃θ: head θ = e and
    body θ ⊆ I") that the faster subsumption-against-bottom-clause
    tests approximate. All tuple access goes through the
    {!Castor_relational.Backend} seam — [iter_solutions_b] takes any
    backend; the [Instance.t]-typed entry points wrap the instance
    once. *)

open Castor_relational

exception Too_many_answers

let bound_pairs subst (a : Atom.t) =
  let pairs = ref [] and n_bound = ref 0 in
  Array.iteri
    (fun i t ->
      match Subst.apply_term subst t with
      | Term.Const v ->
          pairs := (i, v) :: !pairs;
          incr n_bound
      | Term.Var _ -> ())
    a.Atom.args;
  (List.rev !pairs, !n_bound)

(* extend [subst] so that atom [a] matches tuple [tu] *)
let match_tuple subst (a : Atom.t) (tu : Tuple.t) =
  let n = Array.length a.Atom.args in
  let rec go s i =
    if i >= n then Some s
    else
      match Subst.apply_term s a.Atom.args.(i) with
      | Term.Const v -> if Value.equal v tu.(i) then go s (i + 1) else None
      | Term.Var x -> go (Subst.bind x (Term.Const tu.(i)) s) (i + 1)
  in
  go subst 0

(** [iter_solutions_b backend body subst f] calls [f] on every
    substitution that satisfies [body] in the data behind [backend],
    extending [subst]. [f] may raise to stop the enumeration. *)
let rec iter_solutions_b (backend : Backend.t) (body : Atom.t list) subst f =
  match body with
  | [] -> f subst
  | _ ->
      (* most-bound literal first *)
      let scored =
        List.map (fun a -> (a, snd (bound_pairs subst a))) body
      in
      let best, _ =
        List.fold_left
          (fun (ba, bs) (a, s) -> if s > bs then (a, s) else (ba, bs))
          (List.hd scored |> fst, snd (List.hd scored))
          (List.tl scored)
      in
      let rest = List.filter (fun a -> a != best) body in
      let pairs, _ = bound_pairs subst best in
      let candidates =
        let module B = (val backend) in
        B.find_matching best.Atom.rel pairs
      in
      List.iter
        (fun tu ->
          match match_tuple subst best tu with
          | Some s' -> iter_solutions_b backend rest s' f
          | None -> ())
        candidates

(** [iter_solutions inst body subst f] — {!iter_solutions_b} over the
    flat instance. *)
let iter_solutions inst body subst f =
  iter_solutions_b (Backend.of_instance inst) body subst f

(** [covers inst clause example] decides whether [clause] covers the
    ground atom [example] relative to [inst]. *)
let covers inst (clause : Clause.t) (example : Atom.t) =
  match Subst.match_atom Subst.empty clause.Clause.head example with
  | None -> false
  | Some s0 -> (
      let exception Found in
      try
        iter_solutions inst clause.Clause.body s0 (fun _ -> raise Found);
        false
      with Found -> true)

(** [definition_covers inst def example] — some clause covers it. *)
let definition_covers inst (def : Clause.definition) example =
  List.exists (fun c -> covers inst c example) def.Clause.clauses

(** [answers ?limit inst clause] computes the head instantiations of
    [clause] over [inst] — the result [h(I)] for a one-clause
    definition. Unsafe clauses only report groundings of their safe
    part; head variables not bound by the body raise
    [Invalid_argument].
    @raise Too_many_answers beyond [limit]. *)
let answers ?(limit = 200_000) inst (clause : Clause.t) =
  let out = ref Tuple.Set.empty in
  iter_solutions inst clause.Clause.body Subst.empty (fun s ->
      let head = Subst.apply_atom s clause.Clause.head in
      if not (Atom.is_ground head) then
        invalid_arg "Eval.answers: unsafe clause (unbound head variable)";
      out := Tuple.Set.add (Atom.to_tuple head) !out;
      if Tuple.Set.cardinal !out > limit then raise Too_many_answers);
  !out

(** [definition_answers inst def] is the union of the clauses'
    answers. *)
let definition_answers ?limit inst (def : Clause.definition) =
  List.fold_left
    (fun acc c -> Tuple.Set.union acc (answers ?limit inst c))
    Tuple.Set.empty def.Clause.clauses
