(** θ-subsumption engine (the role Resumer2 plays in the paper's
    implementation, Section 7.5.3).

    Clause [C] θ-subsumes clause [D] iff there is a substitution θ with
    [Cθ ⊆ D] (literal-set inclusion) and the heads unified by θ. [D]'s
    variables are treated as frozen constants, so the same engine
    answers both coverage tests (where [D] is a ground bottom clause)
    and clause-reduction tests (where [D] shares variables with [C]).

    The engine follows the constraint-satisfaction view of subsumption
    (Maloberti & Sebag's Django; Kuželka & Železný's Resumer):

    - pattern variables are compiled to dense integers and bindings
      live in a mutable array with an undo trail, so the search
      allocates almost nothing — coverage testing dominates learning
      time (Section 7.5.3) and runs in parallel domains, where
      allocation pressure serializes on the collector;
    - per-literal candidate sets are pruned by arc-consistency over
      variable domains before searching, which refutes most
      non-subsumptions in polynomial time;
    - the surviving candidates are searched by backtracking in a
      static most-bound-first literal order with forward checking of
      variable-sharing neighbors.

    A step budget bounds pathological instances. Exhausting it no
    longer gives up immediately: the search is restarted with a
    seeded-shuffle literal order and a geometrically escalated budget
    for a bounded number of attempts (randomized restarts, the classic
    cure for unlucky static orderings in FOIL-style search), and only
    after every attempt exhausts does the engine conservatively report
    non-subsumption. Restarts are deterministic per
    (clause, attempt): the shuffle seed is a hash of the pattern body
    mixed with the attempt number, so results are reproducible. *)

module Obs = Castor_obs.Obs

(* Observability of the engine (Section 7.5.3: subsumption is the
   learning hot path). [steps] is total backtracking-search steps;
   budget exhaustions mark the conservative "report non-subsumption"
   exits that any perf work on the engine must watch. *)
let c_calls = Obs.Counter.create "logic.subsume.calls"

let c_steps = Obs.Counter.create "logic.subsume.steps"

let c_budget_exhausted = Obs.Counter.create "logic.subsume.budget_exhausted"

let c_ac_refuted = Obs.Counter.create "logic.subsume.ac_refuted"

(* Candidate literals examined while computing the arc-consistency
   fixpoint. AC refutes most non-subsumptions before [c_steps] moves
   at all, so its scan work is the engine's real cost on refuted
   probes; perf comparisons against the set-at-a-time kernel must add
   this to [c_steps] or they credit AC exits as free. *)
let c_ac_scans = Obs.Counter.create "logic.subsume.ac_scans"

(* Restart observability: [restarts] counts re-runs after an exhausted
   attempt; [restart_recoveries] counts searches that exhausted at
   least once and then completed definitively (either answer) on a
   restart — the tests that the old engine answered wrongly-
   conservatively. *)
let c_restarts = Obs.Counter.create "logic.subsume.restarts"

let c_restart_recoveries = Obs.Counter.create "logic.subsume.restart_recoveries"

type groups = (string, Atom.t array) Hashtbl.t

let group_body (body : Atom.t list) : groups =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a : Atom.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt tbl a.Atom.rel) in
      Hashtbl.replace tbl a.Atom.rel (a :: cur))
    body;
  let out = Hashtbl.create 16 in
  Hashtbl.iter (fun k v -> Hashtbl.replace out k (Array.of_list v)) tbl;
  out

exception Budget_exhausted

exception Refuted

(* ---------------------------------------------------------------- *)
(* Compiled representation                                           *)
(* ---------------------------------------------------------------- *)

(* pattern argument: a constant to match exactly, or a variable slot *)
type parg = Pconst of Term.t | Pvar of int

type plit = {
  prel : string;
  pargs : parg array;
  mutable cands : Atom.t array;  (** AC-filtered candidate literals *)
  vset : int list;  (** variable slots occurring in the literal *)
  mutable idx : (int * (Term.t, Atom.t array) Hashtbl.t) list;
      (** lazily built per-position indexes over [cands]; valid only
          after arc-consistency, which is the last mutation of
          [cands] *)
}

let compile_pattern (lits : Atom.t list) (groups : groups) =
  let var_ids = Hashtbl.create 16 in
  let n_vars = ref 0 in
  let id_of v =
    match Hashtbl.find_opt var_ids v with
    | Some i -> i
    | None ->
        let i = !n_vars in
        incr n_vars;
        Hashtbl.add var_ids v i;
        i
  in
  let plits =
    List.map
      (fun (a : Atom.t) ->
        let pargs =
          Array.map
            (function
              | Term.Const _ as c -> Pconst c
              | Term.Var v -> Pvar (id_of v))
            a.Atom.args
        in
        let vset =
          Array.to_list pargs
          |> List.filter_map (function Pvar i -> Some i | Pconst _ -> None)
          |> List.sort_uniq compare
        in
        let cands =
          match Hashtbl.find_opt groups a.Atom.rel with
          | Some arr -> arr
          | None -> raise Refuted
        in
        { prel = a.Atom.rel; pargs; cands; vset; idx = [] })
      lits
  in
  (plits, var_ids, !n_vars)

(* ---------------------------------------------------------------- *)
(* Matching against the binding array                                 *)
(* ---------------------------------------------------------------- *)

(* try to match [pl] against candidate [cand]; newly bound slots are
   pushed on [trail]; on failure the caller must rewind *)
let match_cand (bindings : Term.t option array) trail (pl : plit) (cand : Atom.t) =
  let n = Array.length pl.pargs in
  let rec go i =
    if i >= n then true
    else
      let target = cand.Atom.args.(i) in
      match pl.pargs.(i) with
      | Pconst c -> Term.equal c target && go (i + 1)
      | Pvar v -> (
          match bindings.(v) with
          | Some t -> Term.equal t target && go (i + 1)
          | None ->
              bindings.(v) <- Some target;
              trail := v :: !trail;
              go (i + 1))
  in
  go 0

let rewind (bindings : Term.t option array) trail mark =
  while !trail != mark do
    match !trail with
    | v :: rest ->
        bindings.(v) <- None;
        trail := rest
    | [] -> assert false
  done

(* ---------------------------------------------------------------- *)
(* First-bound-argument candidate index                               *)
(* ---------------------------------------------------------------- *)

(* Index the candidates of [pl] by their term at position [i], built
   on first use. Arc-consistency is the last mutation of [pl.cands],
   so indexes built during the search never go stale. *)
let index_at (pl : plit) i =
  match List.assoc_opt i pl.idx with
  | Some tbl -> tbl
  | None ->
      let buckets : (Term.t, Atom.t list) Hashtbl.t =
        Hashtbl.create (Array.length pl.cands)
      in
      Array.iter
        (fun (cand : Atom.t) ->
          let k = cand.Atom.args.(i) in
          let cur = Option.value ~default:[] (Hashtbl.find_opt buckets k) in
          Hashtbl.replace buckets k (cand :: cur))
        pl.cands;
      let tbl = Hashtbl.create (Hashtbl.length buckets) in
      Hashtbl.iter (fun k v -> Hashtbl.replace tbl k (Array.of_list v)) buckets;
      pl.idx <- (i, tbl) :: pl.idx;
      tbl

(* Candidates of [pl] compatible with the current bindings, narrowed
   through the index of the first variable position already bound (the
   ROADMAP's "first bound argument" selection). Constant positions are
   ignored: arc-consistency already filtered them. *)
let candidates (bindings : Term.t option array) (pl : plit) =
  let n = Array.length pl.pargs in
  let rec first i =
    if i >= n then None
    else
      match pl.pargs.(i) with
      | Pvar v -> (
          match bindings.(v) with
          | Some t -> Some (i, t)
          | None -> first (i + 1))
      | Pconst _ -> first (i + 1)
  in
  match first 0 with
  | None -> pl.cands
  | Some (i, t) -> (
      match Hashtbl.find_opt (index_at pl i) t with
      | Some arr -> arr
      | None -> [||])

(* a literal still has at least one candidate under current bindings *)
let alive bindings (pl : plit) =
  let cands = candidates bindings pl in
  let m = Array.length cands in
  let scratch = ref [] in
  let rec probe k =
    if k >= m then false
    else begin
      let mark = !scratch in
      let ok = match_cand bindings scratch pl cands.(k) in
      rewind bindings scratch mark;
      ok || probe (k + 1)
    end
  in
  probe 0

(* ---------------------------------------------------------------- *)
(* Arc-consistency pruning                                            *)
(* ---------------------------------------------------------------- *)

let arc_consistent (bindings : Term.t option array) (plits : plit list) =
  let domains : Term.Set.t option array = Array.make (Array.length bindings) None in
  Array.iteri
    (fun i b ->
      match b with
      | Some t -> domains.(i) <- Some (Term.Set.singleton t)
      | None -> ())
    bindings;
  let compatible (pl : plit) (cand : Atom.t) =
    let n = Array.length pl.pargs in
    let rec go i =
      i >= n
      || ((match pl.pargs.(i) with
          | Pconst c -> Term.equal c cand.Atom.args.(i)
          | Pvar v -> (
              match domains.(v) with
              | None -> true
              | Some d -> Term.Set.mem cand.Atom.args.(i) d))
         && go (i + 1))
    in
    go 0
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun pl ->
        Obs.Counter.add c_ac_scans (Array.length pl.cands);
        let filtered = Array.of_list (List.filter (compatible pl) (Array.to_list pl.cands)) in
        if Array.length filtered <> Array.length pl.cands then begin
          pl.cands <- filtered;
          changed := true
        end;
        if Array.length filtered = 0 then raise Refuted;
        (* rebuild the domains of the literal's variables *)
        Array.iteri
          (fun i arg ->
            match arg with
            | Pconst _ -> ()
            | Pvar v ->
                let support =
                  Array.fold_left
                    (fun acc (cand : Atom.t) -> Term.Set.add cand.Atom.args.(i) acc)
                    Term.Set.empty filtered
                in
                let next =
                  match domains.(v) with
                  | None -> support
                  | Some d -> Term.Set.inter d support
                in
                if Term.Set.is_empty next then raise Refuted;
                (match domains.(v) with
                | Some d when Term.Set.equal d next -> ()
                | _ ->
                    domains.(v) <- Some next;
                    changed := true))
          pl.pargs)
      plits
  done

(* ---------------------------------------------------------------- *)
(* Search                                                             *)
(* ---------------------------------------------------------------- *)

(* static order: most already-bound variables first, then smallest
   candidate set *)
let order_literals (bindings : Term.t option array) (plits : plit list) =
  let arr = Array.of_list plits in
  let n = Array.length arr in
  let placed = Array.make n false in
  let bound = Array.map Option.is_some bindings in
  (* per-call dummy for array initialization: a shared global here
     would alias a mutable record across domains *)
  let dummy_plit =
    { prel = ""; pargs = [||]; cands = [||]; vset = []; idx = [] }
  in
  let out = Array.make n dummy_plit in
  for slot = 0 to n - 1 do
    let best = ref (-1) in
    let best_key = ref (-1, max_int) in
    for i = 0 to n - 1 do
      if not placed.(i) then begin
        let bound_vars = List.length (List.filter (fun v -> bound.(v)) arr.(i).vset) in
        let key = (bound_vars, Array.length arr.(i).cands) in
        let better =
          let bv, gs = !best_key in
          fst key > bv || (fst key = bv && snd key < gs)
        in
        if !best < 0 || better then begin
          best := i;
          best_key := key
        end
      end
    done;
    placed.(!best) <- true;
    List.iter (fun v -> bound.(v) <- true) arr.(!best).vset;
    out.(slot) <- arr.(!best)
  done;
  out

let search ~max_steps bindings (ordered : plit array) =
  let n = Array.length ordered in
  (* forward-checking neighbors: later literals sharing a variable *)
  let later_neighbors =
    Array.init n (fun i ->
        let vs = ordered.(i).vset in
        let out = ref [] in
        for j = n - 1 downto i + 1 do
          if List.exists (fun v -> List.mem v ordered.(j).vset) vs then
            out := ordered.(j) :: !out
        done;
        Array.of_list !out)
  in
  let steps = ref 0 in
  let trail = ref [] in
  Fun.protect ~finally:(fun () -> Obs.Counter.add c_steps !steps) @@ fun () ->
  let rec go i =
    if i >= n then true
    else begin
      incr steps;
      if !steps > max_steps then raise Budget_exhausted;
      let pl = ordered.(i) in
      let cands = candidates bindings pl in
      let m = Array.length cands in
      let rec try_cand j =
        if j >= m then false
        else begin
          let mark = !trail in
          if
            match_cand bindings trail pl cands.(j)
            && Array.for_all (alive bindings) later_neighbors.(i)
            && go (i + 1)
          then true
          else begin
            rewind bindings trail mark;
            try_cand (j + 1)
          end
        end
      in
      try_cand 0
    end
  in
  if go 0 then Some bindings else None

(* ---------------------------------------------------------------- *)
(* Randomized restarts                                                *)
(* ---------------------------------------------------------------- *)

(* splitmix-style integer mixer: cheap, stateless, and good enough to
   decorrelate shuffle orders across attempts *)
let mix s =
  let s = (s * 0x9E3779B9) + 0x7F4A7C15 in
  let s = (s lxor (s lsr 15)) * 0x85EBCA6B in
  (s lxor (s lsr 13)) land max_int

(* deterministic Fisher-Yates over a fresh copy, seeded per attempt *)
let seeded_shuffle seed (arr : plit array) =
  let a = Array.copy arr in
  let state = ref (mix seed) in
  for i = Array.length a - 1 downto 1 do
    state := mix !state;
    let j = !state mod (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let default_restarts = 3

(* Run [search], restarting with a shuffled literal order and a
   doubled budget on exhaustion, up to [max_restarts] extra attempts.
   [base] is the post-AC seeded binding array: [search] leaves
   bindings dirty when the budget exception escapes, so every attempt
   works on a fresh copy. The first attempt keeps the most-bound-first
   heuristic order; restarts shuffle the input literal list before
   re-applying the heuristic, which randomizes its tie-breaking
   without abandoning it. *)
let search_with_restarts ~max_steps ~max_restarts ~seed (base : Term.t option array)
    (plits : plit list) =
  let plit_arr = Array.of_list plits in
  let rec attempt k budget =
    let input =
      if k = 0 then plit_arr else seeded_shuffle (mix (seed + k)) plit_arr
    in
    let ordered = order_literals base (Array.to_list input) in
    let bindings = Array.copy base in
    match search ~max_steps:budget bindings ordered with
    | result ->
        if k > 0 then Obs.Counter.incr c_restart_recoveries;
        result
    | exception Budget_exhausted ->
        Obs.Counter.incr c_budget_exhausted;
        if k >= max_restarts then None
        else begin
          Obs.Counter.incr c_restarts;
          (* geometric escalation; [max 1] so a zero budget still
             escalates instead of looping at zero *)
          attempt (k + 1) (max 1 (budget * 2))
        end
  in
  attempt 0 max_steps

(* ---------------------------------------------------------------- *)
(* Public interface                                                   *)
(* ---------------------------------------------------------------- *)

(** [subsuming_subst ?max_steps ?max_restarts c d] returns a witness θ
    with [Cθ ⊆ D], or [None]. Heads must match. [max_restarts]
    (default {!default_restarts}) bounds the randomized re-runs after
    budget exhaustion; [~max_restarts:0] restores the old
    conservative give-up-on-first-exhaustion behavior. *)
let subsuming_subst ?(max_steps = 60_000) ?(max_restarts = default_restarts)
    (c : Clause.t) (d : Clause.t) =
  Obs.Counter.incr c_calls;
  match Subst.match_atom Subst.empty c.Clause.head d.Clause.head with
  | None -> None
  | Some s0 -> (
      if c.Clause.body = [] then Some s0
      else
        let groups = group_body d.Clause.body in
        match compile_pattern c.Clause.body groups with
        | exception Refuted ->
            Obs.Counter.incr c_ac_refuted;
            None
        | plits, var_ids, n_vars -> (
            let bindings = Array.make n_vars None in
            (* seed with the head unifier *)
            let ok =
              List.for_all
                (fun (v, t) ->
                  match Hashtbl.find_opt var_ids v with
                  | None -> true (* head-only variable *)
                  | Some i -> (
                      match bindings.(i) with
                      | None ->
                          bindings.(i) <- Some t;
                          true
                      | Some t' -> Term.equal t t'))
                (Subst.to_list s0)
            in
            if not ok then None
            else
              match arc_consistent bindings plits with
              | exception Refuted ->
                  Obs.Counter.incr c_ac_refuted;
                  None
              | () -> (
                  (* the shuffle seed depends only on the pattern, so
                     a given (clause, attempt) always explores the
                     same order *)
                  let seed =
                    Hashtbl.hash
                      (List.map
                         (fun (a : Atom.t) ->
                           (a.Atom.rel, Array.map Term.to_string a.Atom.args))
                         c.Clause.body)
                  in
                  match
                    search_with_restarts ~max_steps ~max_restarts ~seed
                      bindings plits
                  with
                  | None -> None
                  | Some bindings ->
                      (* assemble the witness substitution *)
                      let s = ref s0 in
                      Hashtbl.iter
                        (fun v i ->
                          match bindings.(i) with
                          | Some t -> s := Subst.bind v t !s
                          | None -> ())
                        var_ids;
                      Some !s)))

(** [subsumes c d] decides [C θ-subsumes D]. *)
let subsumes ?max_steps ?max_restarts c d =
  Option.is_some (subsuming_subst ?max_steps ?max_restarts c d)

(** Reference implementation without pruning or ordering, used to
    cross-check the optimized engine in tests. *)
let subsumes_naive ?(max_steps = 2_000_000) (c : Clause.t) (d : Clause.t) =
  match Subst.match_atom Subst.empty c.Clause.head d.Clause.head with
  | None -> false
  | Some s0 ->
      let darr = Array.of_list d.Clause.body in
      let steps = ref 0 in
      let rec go s = function
        | [] -> true
        | lit :: rest ->
            incr steps;
            if !steps > max_steps then raise Budget_exhausted;
            let n = Array.length darr in
            let rec try_cand i =
              if i >= n then false
              else
                match Subst.match_atom s lit darr.(i) with
                | Some s' -> go s' rest || try_cand (i + 1)
                | None -> try_cand (i + 1)
            in
            try_cand 0
      in
      (try go s0 c.Clause.body with Budget_exhausted -> false)

(** θ-equivalence of clauses: mutual subsumption. *)
let equivalent ?max_steps ?max_restarts c1 c2 =
  subsumes ?max_steps ?max_restarts c1 c2
  && subsumes ?max_steps ?max_restarts c2 c1

(** [definition_subsumes d1 d2] holds when every clause of [d2] is
    subsumed by some clause of [d1] — i.e. [d1] is at least as general,
    clause-wise. *)
let definition_subsumes ?max_steps ?max_restarts (d1 : Clause.definition)
    (d2 : Clause.definition) =
  List.for_all
    (fun c2 ->
      List.exists
        (fun c1 -> subsumes ?max_steps ?max_restarts c1 c2)
        d1.Clause.clauses)
    d2.Clause.clauses

(** Clause-wise θ-equivalence of definitions. *)
let definition_equivalent ?max_steps ?max_restarts d1 d2 =
  definition_subsumes ?max_steps ?max_restarts d1 d2
  && definition_subsumes ?max_steps ?max_restarts d2 d1
