(** Parsing Datalog clauses and definitions from text, using the
    Prolog convention: identifiers starting with an uppercase letter
    (or '_') are variables, everything else — including integers — is
    a constant.

    {v
    grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
    hivActive(C) :- compound(C, A), element_N(A).
    v}

    Parse errors carry the line/column of the offending token
    ({!Lexer.Error}); {!definition_spanned} additionally reports where
    each clause starts, which the analysis layer uses to anchor
    diagnostics to source positions. *)

open Castor_relational
open Lexer

let is_variable s = String.length s > 0 && ((s.[0] >= 'A' && s.[0] <= 'Z') || s.[0] = '_')

let parse_term c =
  match next c with
  | Int n -> Term.Const (Value.int n)
  | Ident s -> if is_variable s then Term.Var s else Term.Const (Value.str s)
  | t -> err c "expected a term, found %a" pp_token t

let parse_atom c =
  let rel = ident c in
  expect c Lparen;
  let rec args acc =
    let t = parse_term c in
    match next c with
    | Comma -> args (t :: acc)
    | Rparen -> List.rev (t :: acc)
    | tok -> err c "expected ',' or ')' in atom, found %a" pp_token tok
  in
  Atom.make rel (args [])

let parse_clause_body c =
  let rec go acc =
    let a = parse_atom c in
    match next c with
    | Comma -> go (a :: acc)
    | Dot -> List.rev (a :: acc)
    | tok -> err c "expected ',' or '.' in clause body, found %a" pp_token tok
  in
  go []

let parse_clause_at c =
  let head = parse_atom c in
  match next c with
  | Dot -> Clause.make head []
  | Turnstile -> Clause.make head (parse_clause_body c)
  | tok -> err c "expected '.' or ':-' after clause head, found %a" pp_token tok

(** [clause text] parses one clause.
    @raise Lexer.Error on malformed input. *)
let clause text =
  let c = cursor (tokenize text) in
  let cl = parse_clause_at c in
  expect c Eof;
  cl

(** [definition_spanned text] parses a sequence of clauses, each with
    the position of its first token. *)
let definition_spanned text =
  let c = cursor (tokenize text) in
  let rec go acc =
    match peek c with
    | Eof -> List.rev acc
    | _ ->
        let pos = peek_pos c in
        go ((parse_clause_at c, pos) :: acc)
  in
  go []

(** [definition ?target text] parses a sequence of clauses. All heads
    must share one relation symbol (checked against [target] when
    given). *)
let definition ?target text =
  let clauses = List.map fst (definition_spanned text) in
  let name =
    match target, clauses with
    | Some t, _ -> t
    | None, cl :: _ -> cl.Clause.head.Atom.rel
    | None, [] -> error "empty definition and no target name given"
  in
  List.iter
    (fun (cl : Clause.t) ->
      if not (String.equal cl.Clause.head.Atom.rel name) then
        error "clause head %s does not match target %s" cl.Clause.head.Atom.rel name)
    clauses;
  { Clause.target = name; clauses }

(** [atom text] parses one ground or non-ground atom (no trailing dot
    required). *)
let atom text =
  let c = cursor (tokenize text) in
  let a = parse_atom c in
  (match peek c with Dot -> advance c | _ -> ());
  expect c Eof;
  a
