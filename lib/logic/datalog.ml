(** A semi-naive Datalog engine for definite programs.

    Learned Horn definitions are non-recursive, but many of the
    paper's motivating applications (learning database queries,
    entity resolution, schema mapping) evaluate learned programs —
    possibly several definitions feeding each other, possibly
    recursive (the hypothesis language technically admits recursion
    through the target relation). This engine computes the least
    fixpoint of a set of Horn clauses over a database instance with
    semi-naive iteration: each round only joins against the facts
    derived in the previous round.

    Derived relations live in a separate fact store keyed by relation
    name, so the input {!Castor_relational.Instance} is never
    mutated.

    {!materialize} keeps a fixpoint alive across mutations of the
    instance: insertions arriving as {!Castor_relational.Delta} values
    extend the materialization with one adds-only semi-naive pass
    (each round joins against the newly inserted base facts and the
    facts they derived); a deletion retracts support a derived fact
    may depend on, so it falls back to a full recomputation. *)

open Castor_relational
module Obs = Castor_obs.Obs

let c_view_rounds = Obs.Counter.create "logic.datalog.delta_rounds"

let c_view_recomputes = Obs.Counter.create "logic.datalog.view_recomputes"

type fact_store = (string, Atom.Set.t ref) Hashtbl.t

let store_mem (fs : fact_store) (a : Atom.t) =
  match Hashtbl.find_opt fs a.Atom.rel with
  | Some s -> Atom.Set.mem a !s
  | None -> false

let store_add (fs : fact_store) (a : Atom.t) =
  match Hashtbl.find_opt fs a.Atom.rel with
  | Some s ->
      if Atom.Set.mem a !s then false
      else begin
        s := Atom.Set.add a !s;
        true
      end
  | None ->
      Hashtbl.replace fs a.Atom.rel (ref (Atom.Set.singleton a));
      true

let store_facts (fs : fact_store) rel =
  match Hashtbl.find_opt fs rel with Some s -> Atom.Set.elements !s | None -> []

(* all substitutions satisfying [body]: literals may match base
   relations behind [backend] or derived facts in [fs]; when [delta]
   is given, at least one literal must match inside [delta]
   (semi-naive) *)
let rec solve (backend : Backend.t) (fs : fact_store) ?delta body subst emit =
  let module B = (val backend) in
  match body with
  | [] -> (match delta with None -> emit subst | Some _ -> ())
  | (lit : Atom.t) :: rest ->
      let lit' = Subst.apply_atom subst lit in
      (* candidates from the base data *)
      let base_candidates =
        if B.has_relation lit'.Atom.rel then begin
          (* use the first bound argument for an indexed probe *)
          let bound =
            Array.to_list lit'.Atom.args
            |> List.mapi (fun i t -> (i, t))
            |> List.filter_map (fun (i, t) ->
                   match t with Term.Const v -> Some (i, v) | Term.Var _ -> None)
          in
          B.find_matching lit'.Atom.rel bound
          |> List.map (Atom.of_tuple lit'.Atom.rel)
        end
        else []
      in
      let derived_candidates = store_facts fs lit'.Atom.rel in
      let try_cand ~in_delta cand =
        match Subst.match_atom subst lit cand with
        | None -> ()
        | Some subst' ->
            if in_delta then solve backend fs rest subst' emit
            else solve backend fs ?delta rest subst' emit
      in
      (match delta with
      | None -> List.iter (try_cand ~in_delta:false) base_candidates
      | Some (d : fact_store) ->
          (* a base fact can be the required delta occurrence too: the
             incremental view pass seeds its first round with newly
             inserted base tuples under their base relation names *)
          List.iter
            (fun cand -> try_cand ~in_delta:(store_mem d cand) cand)
            base_candidates);
      (match delta with
      | None -> List.iter (try_cand ~in_delta:false) derived_candidates
      | Some (d : fact_store) ->
          (* facts already in fs but not in delta: old; facts in delta:
             count as the required new occurrence *)
          let delta_set =
            match Hashtbl.find_opt d lit'.Atom.rel with
            | Some s -> !s
            | None -> Atom.Set.empty
          in
          List.iter
            (fun cand ->
              try_cand ~in_delta:(Atom.Set.mem cand delta_set) cand)
            derived_candidates)

exception Unsafe_clause of Clause.t

let head_instance (cl : Clause.t) subst =
  let h = Subst.apply_atom subst cl.Clause.head in
  if not (Atom.is_ground h) then raise (Unsafe_clause cl);
  h

(** [run ?max_rounds inst clauses] computes the least fixpoint of
    [clauses] over [inst] and returns the derived fact store. Clauses
    must be safe.
    @raise Unsafe_clause if a head variable is unbound by its body. *)
let run ?(max_rounds = 10_000) inst (clauses : Clause.t list) : fact_store =
  let backend = Backend.of_instance inst in
  let fs : fact_store = Hashtbl.create 8 in
  (* round 0: naive evaluation against the base instance only *)
  let delta : fact_store ref = ref (Hashtbl.create 8) in
  List.iter
    (fun (cl : Clause.t) ->
      solve backend fs cl.Clause.body Subst.empty (fun subst ->
          let h = head_instance cl subst in
          if store_add fs h then ignore (store_add !delta h)))
    clauses;
  let rounds = ref 0 in
  while Hashtbl.length !delta > 0 && !rounds < max_rounds do
    incr rounds;
    let next_delta : fact_store = Hashtbl.create 8 in
    List.iter
      (fun (cl : Clause.t) ->
        solve backend fs ~delta:!delta cl.Clause.body Subst.empty (fun subst ->
            let h = head_instance cl subst in
            if not (store_mem fs h) then begin
              ignore (store_add fs h);
              ignore (store_add next_delta h)
            end))
      clauses;
    delta := next_delta
  done;
  fs

(* ------------------------------------------------------------------ *)
(* Incrementally maintained materializations                           *)
(* ------------------------------------------------------------------ *)

(** A live fixpoint: the derived facts of [program] over [inst],
    maintained under the instance's delta stream. *)
type view = {
  program : Clause.t list;
  inst : Instance.t;
  vmax_rounds : int;
  mutable facts : fact_store;
}

(** [materialize ?max_rounds inst program] computes the fixpoint once
    and wraps it as a maintainable view. *)
let materialize ?(max_rounds = 10_000) inst (program : Clause.t list) =
  { program; inst; vmax_rounds = max_rounds; facts = run ~max_rounds inst program }

let view_facts v rel = store_facts v.facts rel

(* Adds-only maintenance: the inserted base tuples seed the semi-naive
   delta store, so round 1 finds exactly the derivations using at
   least one new base fact, and later rounds chase what those derived.
   Sound because the program is monotone: no old fact loses support
   under an insertion. *)
let extend_with_adds v adds =
  let backend = Backend.of_instance v.inst in
  let delta : fact_store ref = ref (Hashtbl.create 8) in
  List.iter
    (fun (rel, tu) -> ignore (store_add !delta (Atom.of_tuple rel tu)))
    adds;
  let rounds = ref 0 in
  while Hashtbl.length !delta > 0 && !rounds < v.vmax_rounds do
    incr rounds;
    Obs.Counter.incr c_view_rounds;
    let next : fact_store = Hashtbl.create 8 in
    List.iter
      (fun (cl : Clause.t) ->
        solve backend v.facts ~delta:!delta cl.Clause.body Subst.empty
          (fun subst ->
            let h = head_instance cl subst in
            if not (store_mem v.facts h) then begin
              ignore (store_add v.facts h);
              ignore (store_add next h)
            end))
      v.program;
    delta := next
  done

(** [update v ds] maintains the view under a delta batch that has
    already been applied to the view's instance. Pure insertions run
    the adds-only semi-naive extension ([logic.datalog.delta_rounds]);
    any removal may retract support for a derived fact, so the view
    falls back to a full recomputation
    ([logic.datalog.view_recomputes]). *)
let update v (ds : Delta.t list) =
  if List.exists (fun d -> not (Delta.is_add d)) ds then begin
    Obs.Counter.incr c_view_recomputes;
    v.facts <- run ~max_rounds:v.vmax_rounds v.inst v.program
  end
  else extend_with_adds v (List.map (fun d -> (Delta.rel d, Delta.tuple d)) ds)

(** [watch v b] subscribes the view to backend [b]'s delta stream
    ([b] must serve the view's instance). *)
let watch v (b : Backend.t) = Backend.subscribe b (update v)

(** [query ?max_rounds inst program target] — the derived tuples of
    relation [target]. *)
let query ?max_rounds inst (program : Clause.t list) target =
  let fs = run ?max_rounds inst program in
  store_facts fs target |> List.map Atom.to_tuple |> Tuple.Set.of_list

(** [definition_answers inst def] evaluates one learned definition;
    agrees with {!Eval.definition_answers} for safe non-recursive
    definitions but also handles recursion. *)
let definition_answers ?max_rounds inst (def : Clause.definition) =
  query ?max_rounds inst def.Clause.clauses def.Clause.target
