(** Source-level lint backing the [backend/direct-instance-access]
    rule: OCaml code outside [lib/relational] must not perform
    {!Castor_relational.Instance} / {!Castor_relational.Store} lookups
    directly — clause evaluation reads tuples through the
    {!Castor_relational.Backend} seam, so the cost-based planner sees
    every access and a storage swap cannot change coverage semantics.

    The check is textual: comments and string literals are stripped
    (with OCaml's nesting rules), then every qualified lowercase
    identifier is matched against the banned lookup surface. Mutation
    entry points ([add], [remove], [schema], ...) stay legal — the
    rule polices reads on the clause-evaluation path, not ownership of
    the data. *)

let rule_id = "backend/direct-instance-access"

(* the read surface of the two storage modules; a qualified use of any
   of these outside lib/relational bypasses the Backend seam *)
let banned =
  [
    ("Instance", "find");
    ("Instance", "find_matching");
    ("Instance", "tuples_containing");
    ("Store", "find");
    ("Store", "find_in_shard");
    ("Store", "find_matching");
    ("Store", "tuples");
    ("Store", "shard_tuples");
    ("Store", "tuples_containing");
    ("Store", "shard_of");
    ("Store", "shard_of_value");
  ]

(* lib/relational implements the seam; its files read the stores by
   definition *)
let exempt_path path =
  let norm = String.map (fun c -> if c = '\\' then '/' else c) path in
  let rec has_sub i =
    let sub = "lib/relational/" in
    if i + String.length sub > String.length norm then false
    else if String.sub norm i (String.length sub) = sub then true
    else has_sub (i + 1)
  in
  has_sub 0

type token = { path : string list; line : int; col : int }

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_upper c = c >= 'A' && c <= 'Z'

(* qualified identifiers of the de-commented, de-stringed source, with
   1-based positions. A token is a '.'-chain of identifiers starting
   at a module name: [Castor_relational.Instance.find_matching]. *)
let tokens text =
  let n = String.length text in
  let out = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let advance () =
    if !i < n && text.[!i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col;
    incr i
  in
  let comment_depth = ref 0 and in_string = ref false in
  while !i < n do
    let c = text.[!i] in
    if !in_string then begin
      if c = '\\' then begin
        advance ();
        if !i < n then advance ()
      end
      else begin
        if c = '"' then in_string := false;
        advance ()
      end
    end
    else if !comment_depth > 0 then begin
      if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
        incr comment_depth;
        advance ();
        advance ()
      end
      else if c = '*' && !i + 1 < n && text.[!i + 1] = ')' then begin
        decr comment_depth;
        advance ();
        advance ()
      end
      else advance ()
    end
    else if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
      incr comment_depth;
      advance ();
      advance ()
    end
    else if c = '"' then begin
      in_string := true;
      advance ()
    end
    else if is_upper c && (!i = 0 || not (is_ident_char text.[!i - 1])) then begin
      let tline = !line and tcol = !col in
      let segs = ref [] in
      let continue = ref true in
      while !continue do
        let start = !i in
        while !i < n && is_ident_char text.[!i] do
          advance ()
        done;
        segs := String.sub text start (!i - start) :: !segs;
        if
          !i + 1 < n
          && text.[!i] = '.'
          && (is_ident_char text.[!i + 1] || is_upper text.[!i + 1])
        then advance ()
        else continue := false
      done;
      let path = List.rev !segs in
      if List.length path > 1 then
        out := { path; line = tline; col = tcol } :: !out
    end
    else advance ()
  done;
  List.rev !out

let hit (tok : token) =
  let rec scan = function
    | m :: f :: _ when List.mem (m, f) banned -> Some (m ^ "." ^ f)
    | _ :: tl -> scan tl
    | [] -> None
  in
  scan tok.path

(** [check ?path text] lints one OCaml source text. [path], when
    given, exempts the storage layer itself and labels diagnostics. *)
let check ?(path = "<source>") text =
  if exempt_path path then []
  else
    List.filter_map
      (fun tok ->
        Option.map
          (fun qualified ->
            Diagnostic.make
              ~span:{ Diagnostic.line = tok.line; col = tok.col }
              ~rule:rule_id ~severity:Diagnostic.Error
              ~subject:(path ^ ": " ^ String.concat "." tok.path)
              "direct %s lookup bypasses the Backend seam (use \
               Backend.find/find_matching/tuples_containing)"
              qualified)
          (hit tok))
      (tokens text)
