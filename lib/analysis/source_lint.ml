(** OCaml-source lint entry points — a thin shim over the AST engine
    in [ast_lint/] ({!Ast_engine}, {!Ast_rules}).

    PRs 5–6 implemented [backend/direct-instance-access] here as a
    textual scanner; the AST engine replaced it (same rule id, same
    spans, no comment/string false positives) and added the
    [par/*]/[gen/*]/[seed/*] rules. This module keeps the historical
    [check] signature so [Analyze.source] and the CLI are source
    compatible. *)

let rule_id = Ast_rules.rule_backend

(** [check ?path text] lints one OCaml source text with every AST
    rule. [path], when given, exempts the storage layer itself and
    labels diagnostics. Cross-module rules see a one-file world here;
    use {!check_files} to lint a whole tree coherently. *)
let check ?(path = "<source>") text =
  List.concat_map snd (Ast_rules.analyze [ (path, text) ])

(** [check_files files] lints [(path, text)] pairs as one program:
    the mutable-state table and call graph span the whole set, so a
    worker closure in one module can implicate a global in another.
    Returns per-path diagnostic groups in input order. *)
let check_files files = Ast_rules.analyze files
