(** Schema- and transformation-level lints.

    Castor's IND chase and (de)composition machinery assume the
    constraint set Σ is internally consistent: INDs reference declared
    relations and attributes with matching arities, inclusion classes
    join acyclically (the Proposition 7.4 precondition that makes the
    chase terminate without a global consistency scan), subset INDs do
    not form directed cycles (which would make the logical chase
    non-terminating in [`Subset_too] mode), and FDs transfer
    coherently across INDs with equality. Transformations are checked
    against Definition 4.1 before they are applied.

    Rule ids: [schema/unknown-relation], [schema/unknown-attribute],
    [schema/duplicate-relation], [schema/ind-arity-mismatch],
    [schema/ind-domain-mismatch], [schema/cyclic-class],
    [schema/subset-ind-cycle], [schema/fd-ind-mismatch],
    [schema/trivial-fd], [transform/unknown-relation],
    [transform/parts-dont-cover], [transform/unknown-attribute],
    [transform/cyclic-join], [transform/disconnected-join]. *)

open Castor_relational

let d ~rule ~severity ~subject fmt = Diagnostic.make ~rule ~severity ~subject fmt

let find_rel (s : Schema.t) name =
  List.find_opt (fun (r : Schema.relation) -> String.equal r.Schema.rname name) s.Schema.relations

let has_attr (r : Schema.relation) a =
  List.exists (fun (x : Schema.attribute) -> String.equal x.Schema.aname a) r.Schema.attrs

let domain_of (r : Schema.relation) a =
  List.find_map
    (fun (x : Schema.attribute) ->
      if String.equal x.Schema.aname a then Some x.Schema.domain else None)
    r.Schema.attrs

(* ---------------- declaration well-formedness ---------------------- *)

let duplicate_relations (s : Schema.t) =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (r : Schema.relation) ->
      if Hashtbl.mem seen r.Schema.rname then
        Some
          (d ~rule:"schema/duplicate-relation" ~severity:Diagnostic.Error
             ~subject:r.Schema.rname "relation %s is declared more than once"
             r.Schema.rname)
      else begin
        Hashtbl.add seen r.Schema.rname ();
        None
      end)
    s.Schema.relations

let fd_decls (s : Schema.t) =
  List.concat_map
    (fun (fd : Schema.fd) ->
      let subject =
        Fmt.str "fd %s: %a -> %a" fd.Schema.fd_rel
          Fmt.(list ~sep:comma string)
          fd.Schema.fd_lhs
          Fmt.(list ~sep:comma string)
          fd.Schema.fd_rhs
      in
      match find_rel s fd.Schema.fd_rel with
      | None ->
          [
            d ~rule:"schema/unknown-relation" ~severity:Diagnostic.Error ~subject
              "fd declared on unknown relation %s" fd.Schema.fd_rel;
          ]
      | Some r ->
          let missing =
            List.filter (fun a -> not (has_attr r a)) (fd.Schema.fd_lhs @ fd.Schema.fd_rhs)
          in
          let unknown =
            List.map
              (fun a ->
                d ~rule:"schema/unknown-attribute" ~severity:Diagnostic.Error
                  ~subject "attribute %s is not in sort(%s)" a fd.Schema.fd_rel)
              (List.sort_uniq String.compare missing)
          in
          let trivial =
            if
              missing = []
              && List.for_all (fun a -> List.mem a fd.Schema.fd_lhs) fd.Schema.fd_rhs
            then
              [
                d ~rule:"schema/trivial-fd" ~severity:Diagnostic.Info ~subject
                  "fd is trivial (rhs ⊆ lhs) and constrains nothing";
              ]
            else []
          in
          unknown @ trivial)
    s.Schema.fds

let ind_decls (s : Schema.t) =
  List.concat_map
    (fun (i : Schema.ind) ->
      let subject = Fmt.str "ind %a" Schema.pp_ind i in
      let side rel attrs =
        match find_rel s rel with
        | None ->
            ( [
                d ~rule:"schema/unknown-relation" ~severity:Diagnostic.Error
                  ~subject "ind references unknown relation %s" rel;
              ],
              None )
        | Some r ->
            ( List.map
                (fun a ->
                  d ~rule:"schema/unknown-attribute" ~severity:Diagnostic.Error
                    ~subject "attribute %s is not in sort(%s)" a rel)
                (List.filter (fun a -> not (has_attr r a)) attrs),
              Some r )
      in
      let sub_diags, sub_rel = side i.Schema.sub_rel i.Schema.sub_attrs in
      let sup_diags, sup_rel = side i.Schema.sup_rel i.Schema.sup_attrs in
      let arity =
        if List.length i.Schema.sub_attrs <> List.length i.Schema.sup_attrs then
          [
            d ~rule:"schema/ind-arity-mismatch" ~severity:Diagnostic.Error ~subject
              "ind sides list %d vs %d attributes"
              (List.length i.Schema.sub_attrs)
              (List.length i.Schema.sup_attrs);
          ]
        else []
      in
      let domains =
        match sub_rel, sup_rel, arity with
        | Some rsub, Some rsup, [] when sub_diags = [] && sup_diags = [] ->
            List.concat
              (List.map2
                 (fun a b ->
                   match domain_of rsub a, domain_of rsup b with
                   | Some da, Some db when not (String.equal da db) ->
                       [
                         d ~rule:"schema/ind-domain-mismatch"
                           ~severity:Diagnostic.Warning ~subject
                           "linked attributes %s:%s and %s:%s have different domains"
                           a da b db;
                       ]
                   | _ -> [])
                 i.Schema.sub_attrs i.Schema.sup_attrs)
        | _ -> []
      in
      sub_diags @ sup_diags @ arity @ domains)
    s.Schema.inds

(* ---------------- chase termination -------------------------------- *)

(** Proposition 7.4 precondition: the sorts of each inclusion class
    must join acyclically (GYO), otherwise the chase needs a global
    consistency scan and bottom clauses stop corresponding across
    (de)compositions. *)
let cyclic_classes ?(mode = `Equality_only) (s : Schema.t) =
  match Inclusion.build ~mode s with
  | exception _ -> [] (* unresolvable schema already reported above *)
  | inc ->
      List.filter_map
        (fun cls ->
          if Hypergraph.is_acyclic (List.map (Schema.sort s) cls) then None
          else
            Some
              (d ~rule:"schema/cyclic-class" ~severity:Diagnostic.Error
                 ~subject:(String.concat ", " cls)
                 "inclusion class joins cyclically: the IND chase needs a global \
                  scan and Proposition 7.4 does not apply"))
        (Inclusion.classes inc)

(** Directed cycles through subset INDs (sub → sup edges, ignoring
    symmetric equality pairs): in [`Subset_too] mode the chase follows
    these edges and a cycle means it is only bounded by the literal
    caps, not by the data. *)
let subset_ind_cycles (s : Schema.t) =
  let edges =
    List.filter_map
      (fun (i : Schema.ind) ->
        if i.Schema.equality then None else Some (i.Schema.sub_rel, i.Schema.sup_rel))
      s.Schema.inds
  in
  let succs n = List.filter_map (fun (a, b) -> if String.equal a n then Some b else None) edges in
  let cycle_nodes = ref [] in
  let nodes = List.sort_uniq String.compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  List.iter
    (fun start ->
      (* DFS from [start]; a path back to [start] is a cycle *)
      let visited = Hashtbl.create 8 in
      let rec dfs n =
        List.exists
          (fun m ->
            String.equal m start
            ||
            if Hashtbl.mem visited m then false
            else begin
              Hashtbl.replace visited m ();
              dfs m
            end)
          (succs n)
      in
      if dfs start && not (List.mem start !cycle_nodes) then
        cycle_nodes := start :: !cycle_nodes)
    nodes;
  match List.sort String.compare !cycle_nodes with
  | [] -> []
  | ns ->
      [
        d ~rule:"schema/subset-ind-cycle" ~severity:Diagnostic.Warning
          ~subject:(String.concat ", " ns)
          "subset INDs form a directed cycle: the chase in subset mode is only \
           bounded by its literal caps";
      ]

(* ---------------- FD / IND interaction ----------------------------- *)

(** For an IND with equality [R\[X\] = S\[Y\]] the two sides store the
    same column set, so an FD of [R] that lives entirely inside [X]
    must hold — and be derivable — on [S] after renaming [X] to [Y];
    otherwise the declared constraints disagree about the shared data
    and {!Castor_relational.Normalize}'s advisors will propose
    transformations that are not actually lossless. *)
let fd_ind_interaction (s : Schema.t) =
  List.concat_map
    (fun (i : Schema.ind) ->
      if
        (not i.Schema.equality)
        || List.length i.Schema.sub_attrs <> List.length i.Schema.sup_attrs
      then []
      else
        let subject = Fmt.str "ind %a" Schema.pp_ind i in
        let check src_rel src_attrs dst_rel dst_attrs =
          let rename a =
            let rec go xs ys =
              match xs, ys with
              | x :: _, y :: _ when String.equal x a -> Some y
              | _ :: xs, _ :: ys -> go xs ys
              | _ -> None
            in
            go src_attrs dst_attrs
          in
          let dst_fds =
            List.filter (fun (fd : Schema.fd) -> String.equal fd.Schema.fd_rel dst_rel) s.Schema.fds
          in
          List.filter_map
            (fun (fd : Schema.fd) ->
              if not (String.equal fd.Schema.fd_rel src_rel) then None
              else
                let attrs = fd.Schema.fd_lhs @ fd.Schema.fd_rhs in
                if not (List.for_all (fun a -> List.mem a src_attrs) attrs) then None
                else
                  match List.map rename fd.Schema.fd_lhs, List.map rename fd.Schema.fd_rhs with
                  | lhs, rhs
                    when List.for_all Option.is_some lhs && List.for_all Option.is_some rhs ->
                      let lhs = List.filter_map Fun.id lhs
                      and rhs = List.filter_map Fun.id rhs in
                      let translated = { Schema.fd_rel = dst_rel; fd_lhs = lhs; fd_rhs = rhs } in
                      if Normalize.implies dst_fds translated then None
                      else
                        Some
                          (d ~rule:"schema/fd-ind-mismatch" ~severity:Diagnostic.Warning
                             ~subject
                             "fd %s: %a -> %a holds on %s but its image on %s is not \
                              implied by the declared fds"
                             src_rel
                             Fmt.(list ~sep:comma string)
                             fd.Schema.fd_lhs
                             Fmt.(list ~sep:comma string)
                             fd.Schema.fd_rhs src_rel dst_rel)
                  | _ -> None)
            s.Schema.fds
        in
        check i.Schema.sub_rel i.Schema.sub_attrs i.Schema.sup_rel i.Schema.sup_attrs
        @ check i.Schema.sup_rel i.Schema.sup_attrs i.Schema.sub_rel i.Schema.sub_attrs)
    s.Schema.inds

(* ---------------- transformations ---------------------------------- *)

let pp_op = Transform.pp_op

(** Definition 4.1 / Proposition 7.4 preconditions of one operation
    against the schema it would be applied to. *)
let check_op (s : Schema.t) (op : Transform.op) =
  match op with
  | Transform.Decompose { rel; parts } -> (
      let subject = Fmt.str "%a" pp_op op in
      match find_rel s rel with
      | None ->
          [
            d ~rule:"transform/unknown-relation" ~severity:Diagnostic.Error
              ~subject "decomposition of unknown relation %s" rel;
          ]
      | Some r ->
          let sort = List.map (fun (a : Schema.attribute) -> a.Schema.aname) r.Schema.attrs in
          let unknown_attrs =
            List.concat_map
              (fun (pname, pattrs) ->
                List.filter_map
                  (fun a ->
                    if List.mem a sort then None
                    else
                      Some
                        (d ~rule:"transform/unknown-attribute"
                           ~severity:Diagnostic.Error ~subject
                           "part %s lists attribute %s not in sort(%s)" pname a rel))
                  pattrs)
              parts
          in
          let covered = List.concat_map snd parts in
          let cover =
            match List.filter (fun a -> not (List.mem a covered)) sort with
            | [] -> []
            | missing ->
                [
                  d ~rule:"transform/parts-dont-cover" ~severity:Diagnostic.Error
                    ~subject "parts do not cover attributes %a of %s"
                    Fmt.(list ~sep:comma string)
                    missing rel;
                ]
          in
          let acyclic =
            if unknown_attrs <> [] || cover <> [] then []
            else if Hypergraph.is_acyclic (List.map snd parts) then []
            else
              [
                d ~rule:"transform/cyclic-join" ~severity:Diagnostic.Error ~subject
                  "the reconstruction join of the parts is cyclic (Definition 4.1 \
                   requires GYO-acyclicity)";
              ]
          in
          unknown_attrs @ cover @ acyclic)
  | Transform.Compose { parts; into = _ } -> (
      let subject = Fmt.str "%a" pp_op op in
      let missing = List.filter (fun p -> find_rel s p = None) parts in
      match missing with
      | _ :: _ ->
          List.map
            (fun p ->
              d ~rule:"transform/unknown-relation" ~severity:Diagnostic.Error
                ~subject "composition of unknown relation %s" p)
            missing
      | [] ->
          let sorts = List.map (Schema.sort s) parts in
          let acyclic =
            if Hypergraph.is_acyclic sorts then []
            else
              [
                d ~rule:"transform/cyclic-join" ~severity:Diagnostic.Error ~subject
                  "the composition join is cyclic (Proposition 7.4 precondition \
                   fails)";
              ]
          in
          (* every part after the first must share an attribute with an
             earlier part, else the natural join degenerates to a
             cartesian product *)
          let disconnected =
            let rec go seen = function
              | [] -> []
              | (p, sort) :: rest ->
                  let joins = List.exists (fun a -> List.mem a seen) sort in
                  let diags =
                    if seen = [] || joins then []
                    else
                      [
                        d ~rule:"transform/disconnected-join"
                          ~severity:Diagnostic.Error ~subject
                          "part %s shares no attribute with the preceding parts \
                           (cartesian product)"
                          p;
                      ]
                  in
                  diags @ go (seen @ sort) rest
            in
            go [] (List.combine parts sorts)
          in
          acyclic @ disconnected)

(** [check_transform s tr] lints a whole transformation, threading the
    schema through the ops so later ops are checked against the schema
    produced by earlier ones. *)
let check_transform (s : Schema.t) (tr : Transform.t) =
  let _, diags =
    List.fold_left
      (fun (s, acc) op ->
        let ds = check_op s op in
        let s' =
          if ds = [] then
            match Transform.apply_op_schema s op with
            | s' -> s'
            | exception _ -> s
          else s
        in
        (s', acc @ ds))
      (s, []) tr
  in
  diags

(* ---------------- entry point -------------------------------------- *)

(** All schema lints. [mode] selects which INDs the chase-termination
    check considers (mirrors {!Castor_relational.Inclusion.mode}). *)
let check ?mode (s : Schema.t) =
  duplicate_relations s @ fd_decls s @ ind_decls s @ cyclic_classes ?mode s
  @ subset_ind_cycles s @ fd_ind_interaction s
