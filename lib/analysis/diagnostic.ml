(** Diagnostics emitted by the static-analysis pass: a severity, a
    stable rule id (the catalog lives in {!Analyze.rules}), the
    subject being linted (a clause, relation or problem component), a
    human message, and an optional source span taken from
    {!Castor_relational.Lexer} positions when the subject was parsed
    from text.

    Rendering mirrors {!Castor_obs.Obs}: a text block for terminals
    and a JSON encoding for tooling, both dependency-free. *)

type severity = Error | Warning | Info

(** 1-based source position of the subject, when it came from text. *)
type span = { line : int; col : int }

type t = {
  rule : string;  (** stable rule id, e.g. ["clause/unsafe"] *)
  severity : severity;
  subject : string;  (** what is being flagged, e.g. the clause text *)
  message : string;
  span : span option;
}

let make ?span ~rule ~severity ~subject fmt =
  Fmt.kstr (fun message -> { rule; severity; subject; message; span }) fmt

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* errors first, then warnings, then infos; stable within a level *)
let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let by_severity ds =
  List.stable_sort
    (fun a b -> compare (severity_rank a.severity) (severity_rank b.severity))
    ds

let errors ds = List.filter (fun d -> d.severity = Error) ds

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

(** The three-position gate every analysis entry point shares:
    [`Off] skips the pass, [`Warn] reports diagnostics, [`Strict]
    additionally rejects on errors. *)
type gate = [ `Off | `Warn | `Strict ]

(** Raised by a [`Strict] gate when error-severity diagnostics are
    present. *)
exception Rejected of t list

let span_of_pos (p : Castor_relational.Lexer.pos) =
  { line = p.Castor_relational.Lexer.line; col = p.Castor_relational.Lexer.col }

let pp_span ppf s = Fmt.pf ppf "%d:%d" s.line s.col

let pp ppf d =
  Fmt.pf ppf "%s[%s]%a %s: %s" (severity_string d.severity) d.rule
    Fmt.(option (any " " ++ pp_span))
    d.span d.subject d.message

let to_string d = Fmt.str "%a" pp d

(** Text rendering of a diagnostic list plus a one-line summary, in
    severity order. *)
let render ds =
  let buf = Buffer.create 256 in
  List.iter
    (fun d -> Buffer.add_string buf (to_string d ^ "\n"))
    (by_severity ds);
  Buffer.add_string buf
    (Fmt.str "%d error(s), %d warning(s), %d info(s)\n" (count Error ds)
       (count Warning ds) (count Info ds));
  Buffer.contents buf

let () =
  Printexc.register_printer (function
    | Rejected diags ->
        Some
          (Fmt.str "Rejected: static analysis found errors@.%s" (render diags))
    | _ -> None)

(** [apply_gate gate ~subject diags] runs the shared gate: [`Off]
    ignores the diagnostics, [`Warn] and [`Strict] print the non-info
    ones on stderr labelled with [subject], and [`Strict] additionally
    raises {!Rejected} when errors are present. *)
let apply_gate (gate : gate) ~subject diags =
  match gate with
  | `Off -> ()
  | (`Warn | `Strict) as g ->
      let visible = List.filter (fun d -> d.severity <> Info) diags in
      if visible <> [] then
        Fmt.epr "@[<v>castor: %s fails static analysis:@,%a@]@." subject
          Fmt.(list ~sep:cut pp)
          visible;
      if g = `Strict && has_errors diags then raise (Rejected (errors diags))

(* minimal JSON encoder, same contract as Obs.to_json *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** JSON rendering:
    [{"diagnostics":[...],"errors":n,"warnings":n,"infos":n}]. *)
let to_json ds =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "{\"diagnostics\":[";
  List.iteri
    (fun i d ->
      pf "%s{\"rule\":\"%s\",\"severity\":\"%s\",\"subject\":\"%s\",\"message\":\"%s\""
        (if i > 0 then "," else "")
        (json_escape d.rule)
        (severity_string d.severity)
        (json_escape d.subject) (json_escape d.message);
      (match d.span with
      | Some s -> pf ",\"line\":%d,\"col\":%d" s.line s.col
      | None -> ());
      pf "}")
    (by_severity ds);
  pf "],\"errors\":%d,\"warnings\":%d,\"infos\":%d}" (count Error ds)
    (count Warning ds) (count Info ds);
  Buffer.contents buf
