(** AutoMode-style mode inference (Picado et al.: language bias can be
    derived from schema constraints instead of hand-written mode
    declarations).

    For every relation the analyzer derives a mode: which argument
    positions act as {e inputs} (key attributes and IND-linked join
    columns — the positions a literal can be entered through), which
    as {e outputs} (dependent attributes, bound by the tuple once the
    inputs are), and which hold {e constants} (attributes whose domain
    is declared low-selectivity, the counterpart of ILP [#]-modes).
    The inferred modes are then used to lint a learning-problem
    configuration: a target whose attribute domains no relation can
    produce, or constant pools over domains the schema does not have,
    make the learner silently unable to bind its head variables.

    Rule ids: [mode/target-domain-unknown], [mode/const-domain-unknown],
    [mode/no-expand-domain-unknown], [mode/no-input-positions],
    [mode/saturation-budget]. *)

open Castor_relational

type io = Input | Output | Constant

type arg_mode = { attr : string; domain : string; io : io }

type t = {
  rel : string;
  args : arg_mode list;
  key : string list;  (** the FD-derived minimal key used for inputs *)
}

let io_marker = function Input -> "+" | Output -> "-" | Constant -> "#"

let pp ppf m =
  Fmt.pf ppf "%s(%a)" m.rel
    Fmt.(
      list ~sep:(any ", ") (fun ppf a ->
          pf ppf "%s%s:%s" (io_marker a.io) a.attr a.domain))
    m.args

let to_string m = Fmt.str "%a" pp m

(** [infer ?const_domains schema] derives a mode per relation:

    - a minimal FD-derived candidate key (shortest, ties by order)
      marks its attributes as inputs;
    - attributes appearing on either side of any IND are join columns,
      also inputs;
    - attributes whose domain is in [const_domains] are constants;
    - everything else is an output. *)
let infer ?(const_domains = []) (schema : Schema.t) =
  List.map
    (fun (r : Schema.relation) ->
      let sort = List.map (fun (a : Schema.attribute) -> a.Schema.aname) r.Schema.attrs in
      let fds =
        List.filter
          (fun (fd : Schema.fd) -> String.equal fd.Schema.fd_rel r.Schema.rname)
          schema.Schema.fds
      in
      let key =
        match
          List.stable_sort
            (fun a b -> compare (List.length a) (List.length b))
            (Normalize.candidate_keys fds ~sort)
        with
        | k :: _ when fds <> [] -> k
        | _ -> []
      in
      let ind_attrs =
        List.concat_map
          (fun (i : Schema.ind) ->
            (if String.equal i.Schema.sub_rel r.Schema.rname then i.Schema.sub_attrs else [])
            @
            if String.equal i.Schema.sup_rel r.Schema.rname then i.Schema.sup_attrs else [])
          schema.Schema.inds
      in
      let args =
        List.map
          (fun (a : Schema.attribute) ->
            let io =
              if List.mem a.Schema.domain const_domains then Constant
              else if List.mem a.Schema.aname key || List.mem a.Schema.aname ind_attrs then
                Input
              else Output
            in
            { attr = a.Schema.aname; domain = a.Schema.domain; io })
          r.Schema.attrs
      in
      { rel = r.Schema.rname; args; key })
    schema.Schema.relations

(** Domains some relation can bind (i.e. appearing at a non-constant
    position of some relation). *)
let bindable_domains modes =
  List.concat_map
    (fun m -> List.filter_map (fun a -> if a.io = Constant then None else Some a.domain) m.args)
    modes
  |> List.sort_uniq String.compare

let all_domains (schema : Schema.t) =
  List.concat_map
    (fun (r : Schema.relation) ->
      List.map (fun (a : Schema.attribute) -> a.Schema.domain) r.Schema.attrs)
    schema.Schema.relations
  |> List.sort_uniq String.compare

(** [lint_config ?const_domains ~target ~const_pool_domains
    ~no_expand_domains schema] checks a learning-problem configuration
    against the inferred modes. *)
let lint_config ?const_domains ~(target : Schema.relation) ~const_pool_domains
    ~no_expand_domains (schema : Schema.t) =
  let modes = infer ?const_domains schema in
  let bindable = bindable_domains modes in
  let known = all_domains schema in
  let target_diags =
    List.filter_map
      (fun (a : Schema.attribute) ->
        if List.mem a.Schema.domain bindable then None
        else
          Some
            (Diagnostic.make ~rule:"mode/target-domain-unknown"
               ~severity:Diagnostic.Error
               ~subject:(Fmt.str "target %s" target.Schema.rname)
               "target attribute %s has domain %s which no schema relation can \
                bind: its head variable can never occur in a safe body"
               a.Schema.aname a.Schema.domain))
      target.Schema.attrs
  in
  let pool_diags =
    List.filter_map
      (fun dom ->
        if List.mem dom known then None
        else
          Some
            (Diagnostic.make ~rule:"mode/const-domain-unknown"
               ~severity:Diagnostic.Warning ~subject:("const pool " ^ dom)
               "constant pool declared for domain %s, which no relation attribute \
                uses"
               dom))
      (List.sort_uniq String.compare const_pool_domains)
  in
  let frontier_diags =
    List.filter_map
      (fun dom ->
        if List.mem dom known then None
        else
          Some
            (Diagnostic.make ~rule:"mode/no-expand-domain-unknown"
               ~severity:Diagnostic.Warning ~subject:("no-expand " ^ dom)
               "frontier filter names domain %s, which no relation attribute uses"
               dom))
      (List.sort_uniq String.compare no_expand_domains)
  in
  let no_input_diags =
    List.filter_map
      (fun m ->
        if m.args = [] || List.exists (fun a -> a.io = Input) m.args then None
        else
          Some
            (Diagnostic.make ~rule:"mode/no-input-positions"
               ~severity:Diagnostic.Info ~subject:m.rel
               "relation %s has no key or IND-linked attribute: literals on it \
                cannot be entered through a bound variable (inferred mode %s)"
               m.rel (to_string m)))
      modes
  in
  target_diags @ pool_diags @ frontier_diags @ no_input_diags

(* ---------------- saturation budget estimate ----------------------- *)

(** Saturation and search budget of a learning problem, passed as
    plain values so the analysis layer stays independent of
    {!Castor_ilp}. *)
type budget = {
  depth : int;  (** IND-chase saturation iterations *)
  max_terms : int option;  (** variable budget; [None] = unbounded *)
  per_relation_cap : int;
      (** literals admitted per (constant, relation) pair *)
  max_steps : int;  (** subsumption step budget of coverage tests *)
}

(* keep the growth model's arithmetic away from overflow *)
let clamp v = min v 1_000_000_000

(** [lint_budget ~budget ~target schema] estimates the literal and
    distinct-constant counts of a saturation (the ROADMAP's
    "literal-count/variable-budget estimates against [max_terms]") and
    flags configurations whose bottom clauses are likely to exhaust
    the subsumption step budget during coverage testing.

    The model is deliberately crude — each frontier constant admits up
    to [per_relation_cap] literals per relation, each literal
    introduces (arity - 1) fresh constants, and the saturation stops
    once the term budget binds — but it is monotone in every
    parameter, so it separates default-sized problems from
    exhaustion-prone ones. *)
let lint_budget ~(budget : budget) ~(target : Schema.relation)
    (schema : Schema.t) =
  let sum_caps =
    clamp
      (List.fold_left
         (fun acc (_ : Schema.relation) -> acc + budget.per_relation_cap)
         0 schema.Schema.relations)
  in
  let branch =
    clamp
      (List.fold_left
         (fun acc (r : Schema.relation) ->
           acc
           + (budget.per_relation_cap * max 0 (List.length r.Schema.attrs - 1)))
         0 schema.Schema.relations)
  in
  let bound = Option.value ~default:max_int budget.max_terms in
  let frontier = ref (List.length target.Schema.attrs) in
  let terms = ref !frontier in
  let lits = ref 0 in
  (try
     for _ = 1 to budget.depth do
       if !terms >= bound then raise Exit;
       lits := clamp (!lits + (!frontier * sum_caps));
       frontier := clamp (!frontier * branch);
       terms := clamp (!terms + !frontier)
     done
   with Exit -> ());
  let subject = Fmt.str "target %s" target.Schema.rname in
  match budget.max_terms with
  | None ->
      (* without a declared variable budget the literal estimate is
         data-bounded, not schema-bounded; flag only growth that no
         realistic instance keeps small *)
      if !terms > 4096 then
        [
          Diagnostic.make ~rule:"mode/saturation-budget"
            ~severity:Diagnostic.Warning ~subject
            "no variable budget (max_terms) and the chase can reach ~%d \
             distinct constants by depth %d: saturations are effectively \
             unbounded; set max_terms to keep coverage tests tractable"
            !terms budget.depth;
        ]
      else []
  | Some declared ->
      let est_terms = min !terms declared in
      if clamp (!lits * est_terms) > budget.max_steps then
        [
          Diagnostic.make ~rule:"mode/saturation-budget"
            ~severity:Diagnostic.Warning ~subject
            "estimated bottom clauses (~%d literals over ~%d terms) can \
             exhaust the %d-step subsumption budget; randomized restarts \
             will retry with escalated budgets, but consider lowering \
             max_terms or per_relation_cap"
            !lits est_terms budget.max_steps;
        ]
      else []
