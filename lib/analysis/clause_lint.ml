(** Clause-level lints.

    The schema-independence guarantees (Theorems 6.5/6.6) assume
    well-formed clauses: safe (range-restricted, Section 7.3),
    head-connected (the clean-up invariant of ARMG, Algorithm 3) and
    free of statically redundant literals (Section 7.5.5). These
    checks flag the ways a hand-written or generated clause can break
    those assumptions {e before} it reaches coverage testing, where
    the failure would surface as silent mis-learning.

    Rule ids: [clause/unsafe], [clause/disconnected],
    [clause/singleton-var], [clause/duplicate-literal],
    [clause/redundant-literal], [clause/determinacy-depth],
    [clause/unknown-relation], [clause/arity-mismatch],
    [clause/domain-conflict]. *)

open Castor_relational
open Castor_logic

let d ?span ~rule ~severity ~clause fmt =
  Diagnostic.make ?span ~rule ~severity ~subject:(Clause.to_string clause) fmt

(* ---------------- structural lints (no schema needed) -------------- *)

(** Head variables with no body occurrence: the clause is unsafe
    (range restriction fails) and SQL/Datalog evaluation of it is
    undefined. One diagnostic per missing variable. *)
let unsafe ?span (c : Clause.t) =
  let body_vars =
    List.fold_left
      (fun s a -> Term.Set.union s (Atom.var_set a))
      Term.Set.empty c.Clause.body
  in
  List.filter_map
    (fun v ->
      if Term.Set.mem (Term.Var v) body_vars then None
      else
        Some
          (d ?span ~rule:"clause/unsafe" ~severity:Diagnostic.Error ~clause:c
             "head variable %s never occurs in the body (clause is unsafe)" v))
    (List.sort_uniq String.compare (Clause.head_vars c))

(** Body literals not connected to the head through shared variables —
    ARMG would silently drop them (Algorithm 3), so their presence in
    an input clause is almost always a mistake. *)
let disconnected ?span (c : Clause.t) =
  let kept = (Clause.head_connected c).Clause.body in
  List.filter_map
    (fun (a : Atom.t) ->
      if List.memq a kept then None
      else
        Some
          (d ?span ~rule:"clause/disconnected" ~severity:Diagnostic.Warning
             ~clause:c "literal %s is not connected to the head" (Atom.to_string a)))
    c.Clause.body

(** Variables occurring exactly once in the whole clause: they
    constrain nothing (an unused existential) and usually indicate a
    typo in a variable name. *)
let singleton_vars ?span (c : Clause.t) =
  let counts = Minimize.var_counts c in
  let head_vars = Clause.head_vars c in
  Hashtbl.fold
    (fun v n acc ->
      if n = 1 && not (List.mem v head_vars) then
        d ?span ~rule:"clause/singleton-var" ~severity:Diagnostic.Info ~clause:c
          "variable %s occurs only once (unused)" v
        :: acc
      else acc)
    counts []
  |> List.sort compare

(** Exact duplicate body literals. *)
let duplicate_literals ?span (c : Clause.t) =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (a : Atom.t) ->
      let k = Atom.to_string a in
      if Hashtbl.mem seen k then
        Some
          (d ?span ~rule:"clause/duplicate-literal" ~severity:Diagnostic.Warning
             ~clause:c "literal %s appears more than once" k)
      else begin
        Hashtbl.add seen k ();
        None
      end)
    c.Clause.body

(* ---------------- redundant literals ------------------------------- *)

(** Indices (0-based, in body order) of literals that are statically
    redundant by literal-level θ-subsumption: literal [L] is absorbed
    by another literal [L'] of the same relation under a substitution
    renaming only variables private to [L] (the sound approximation of
    Section 7.5.5). Removing them yields a θ-equivalent clause. *)
let redundant_literal_indices (c : Clause.t) =
  let counts = Minimize.var_counts c in
  let body = Array.of_list c.Clause.body in
  let removed = Array.make (Array.length body) false in
  Array.iteri
    (fun i l ->
      if not removed.(i) then
        Array.iteri
          (fun j l' ->
            if i <> j && (not removed.(i)) && not removed.(j) then
              if Minimize.absorbs counts l l' then removed.(i) <- true)
          body)
    body;
  Array.to_list removed
  |> List.mapi (fun i r -> (i, r))
  |> List.filter_map (fun (i, r) -> if r then Some i else None)

let redundant_literals ?span (c : Clause.t) =
  let body = Array.of_list c.Clause.body in
  List.map
    (fun i ->
      d ?span ~rule:"clause/redundant-literal" ~severity:Diagnostic.Warning
        ~clause:c "literal %s (position %d) is θ-subsumed by the rest of the clause"
        (Atom.to_string body.(i))
        (i + 1))
    (redundant_literal_indices c)

(** [prune_redundant c] drops the statically redundant literals to a
    fixpoint, returning the pruned clause and how many literals were
    removed. The result is θ-equivalent to [c] (same coverage). *)
let prune_redundant (c : Clause.t) =
  let total = ref 0 in
  let current = ref c in
  let continue_ = ref true in
  while !continue_ do
    match redundant_literal_indices !current with
    | [] -> continue_ := false
    | idxs ->
        total := !total + List.length idxs;
        current :=
          {
            !current with
            Clause.body =
              List.filteri (fun i _ -> not (List.mem i idxs)) !current.Clause.body;
          }
  done;
  (!current, !total)

(* ---------------- determinacy depth -------------------------------- *)

(** [determinacy_depth c] estimates how many chained joins separate
    the deepest body literal from the head variables: literals sharing
    a variable with the head bind at depth 1, literals reachable only
    through those bind at depth 2, and so on (ground literals bind at
    depth 1 — they are self-contained database conditions). Returns
    [None] for an empty body; disconnected literals are ignored (they
    are reported separately by {!disconnected}). This is the static
    analogue of the bottom-clause [depth] parameter: a clause deeper
    than the saturation depth can never be produced — or covered — by
    the learner configured with that bound. *)
let determinacy_depth (c : Clause.t) =
  let reached = ref (Atom.var_set c.Clause.head) in
  let remaining = ref c.Clause.body in
  let depth = ref 0 in
  let max_depth = ref None in
  let progress = ref true in
  while !progress && !remaining <> [] do
    progress := false;
    incr depth;
    let layer, rest =
      List.partition
        (fun (a : Atom.t) ->
          let vs = Atom.var_set a in
          Term.Set.is_empty vs || not (Term.Set.is_empty (Term.Set.inter vs !reached)))
        !remaining
    in
    if layer <> [] then begin
      progress := true;
      max_depth := Some !depth;
      List.iter (fun a -> reached := Term.Set.union !reached (Atom.var_set a)) layer;
      remaining := rest
    end
  done;
  !max_depth

let depth_exceeded ?span ~limit (c : Clause.t) =
  match determinacy_depth c with
  | Some depth when depth > limit ->
      [
        d ?span ~rule:"clause/determinacy-depth" ~severity:Diagnostic.Warning
          ~clause:c
          "estimated determinacy depth %d exceeds the saturation depth bound %d: \
           the learner cannot construct or cover this clause"
          depth limit;
      ]
  | _ -> []

(* ---------------- schema-aware lints ------------------------------- *)

(** Relation symbols and arities of body literals against the schema;
    the head is checked against [target] when given (the target is not
    part of the schema, Section 2.2). *)
let against_schema ?span ?target (schema : Schema.t) (c : Clause.t) =
  let check_atom ~what (a : Atom.t) (decl : Schema.relation option) =
    match decl with
    | None ->
        [
          d ?span ~rule:"clause/unknown-relation" ~severity:Diagnostic.Error
            ~clause:c "%s relation %s is not declared in the schema" what a.Atom.rel;
        ]
    | Some r ->
        let expected = List.length r.Schema.attrs in
        if Atom.arity a <> expected then
          [
            d ?span ~rule:"clause/arity-mismatch" ~severity:Diagnostic.Error
              ~clause:c "%s(%d args) does not match declared arity %d" a.Atom.rel
              (Atom.arity a) expected;
          ]
        else []
  in
  let head_diags =
    match target with
    | None -> []
    | Some (t : Schema.relation) ->
        if not (String.equal c.Clause.head.Atom.rel t.Schema.rname) then []
        else check_atom ~what:"head" c.Clause.head (Some t)
  in
  let body_diags =
    List.concat_map
      (fun (a : Atom.t) ->
        check_atom ~what:"body"
          a
          (List.find_opt
             (fun (r : Schema.relation) -> String.equal r.Schema.rname a.Atom.rel)
             schema.Schema.relations))
      c.Clause.body
  in
  (* domain conflicts: one variable used at attributes of different
     domains can never bind (no value lives in both domains) *)
  let var_domains : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let note_atom (a : Atom.t) (decl : Schema.relation option) =
    match decl with
    | Some r when Atom.arity a = List.length r.Schema.attrs ->
        List.iteri
          (fun i (attr : Schema.attribute) ->
            match a.Atom.args.(i) with
            | Term.Var v ->
                let cur = Option.value ~default:[] (Hashtbl.find_opt var_domains v) in
                if not (List.mem attr.Schema.domain cur) then
                  Hashtbl.replace var_domains v (attr.Schema.domain :: cur)
            | Term.Const _ -> ())
          r.Schema.attrs
    | _ -> ()
  in
  (match target with
  | Some t when String.equal c.Clause.head.Atom.rel t.Schema.rname ->
      note_atom c.Clause.head (Some t)
  | _ -> ());
  List.iter
    (fun (a : Atom.t) ->
      note_atom a
        (List.find_opt
           (fun (r : Schema.relation) -> String.equal r.Schema.rname a.Atom.rel)
           schema.Schema.relations))
    c.Clause.body;
  let domain_diags =
    Hashtbl.fold
      (fun v doms acc ->
        match doms with
        | _ :: _ :: _ ->
            d ?span ~rule:"clause/domain-conflict" ~severity:Diagnostic.Warning
              ~clause:c "variable %s is used at incompatible domains %a" v
              Fmt.(list ~sep:comma string)
              (List.sort String.compare doms)
            :: acc
        | _ -> acc)
      var_domains []
    |> List.sort compare
  in
  head_diags @ body_diags @ domain_diags

(* ---------------- entry point -------------------------------------- *)

(** [check ?schema ?target ?span ?depth_limit c] runs every clause
    lint that its inputs allow. *)
let check ?schema ?target ?span ?(depth_limit = 4) (c : Clause.t) =
  let structural =
    unsafe ?span c @ disconnected ?span c @ singleton_vars ?span c
    @ duplicate_literals ?span c @ redundant_literals ?span c
    @ depth_exceeded ?span ~limit:depth_limit c
  in
  let schematic =
    match schema with
    | None -> []
    | Some s -> against_schema ?span ?target s c
  in
  structural @ schematic
