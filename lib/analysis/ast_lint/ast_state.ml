(** Per-module table of top-level mutable state, plus the project-wide
    set of mutable record field names.

    Classification is syntactic, from the right-hand side of each
    top-level [let]: [ref], [Hashtbl.create], [Queue.create],
    [Buffer.create], [Stack.create], [Array.make]/[init], [Bytes],
    array literals and record literals carrying a mutable field are
    {e unsafe} mutable state; [Atomic.make], [Mutex.create],
    [Condition.create], [Semaphore], [Domain.DLS.new_key] and the
    {!Castor_obs.Obs} instrument constructors are mutable but
    {e domain-safe}, so sharing them with workers is fine.

    Bindings inside nested [module struct ... end] blocks are not
    collected — the rule passes only reason about state reachable by a
    flat [Module.name] path, which keeps the table an
    under-approximation (no false positives from submodule
    internals). *)

open Parsetree

type kind =
  | Unsafe of string  (** mutable and racy to share, e.g. ["Hashtbl"] *)
  | Safe of string  (** mutable but domain-safe, e.g. ["Atomic"] *)

type global = {
  gmod : string;  (** defining module, e.g. ["Parallel"] *)
  gname : string;
  gkind : kind;
  gloc : Location.t;
}

type t = {
  globals : (string, global) Hashtbl.t;  (** key: ["Module.name"] *)
  mutable_fields : (string, unit) Hashtbl.t;
}

let rec path_of_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> path_of_lid p @ [ s ]
  | Longident.Lapply _ -> []

let rec unwrap_expr e =
  match e.pexp_desc with
  | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) -> unwrap_expr e'
  | _ -> e

let rec unwrap_pat p =
  match p.ppat_desc with Ppat_constraint (p', _) -> unwrap_pat p' | _ -> p

(* safe-kind constructor paths; matched against the flattened head of
   an application *)
let safe_of_path = function
  | [ "Atomic"; "make" ] -> Some "Atomic"
  | [ "Mutex"; "create" ] -> Some "Mutex"
  | [ "Condition"; "create" ] -> Some "Condition"
  | [ "Semaphore"; _; "make" ] -> Some "Semaphore"
  | p when List.exists (String.equal "DLS") p -> Some "Domain.DLS"
  | p
    when (match List.rev p with "create" :: _ -> true | _ -> false)
         && List.exists
              (fun s ->
                List.mem s [ "Counter"; "Span"; "Histogram"; "Reservoir" ])
              p ->
      (* Obs instruments are internally synchronized *)
      Some "Obs"
  | _ -> None

let unsafe_of_path = function
  | [ "ref" ] -> Some "ref"
  | [ ("Hashtbl" | "Queue" | "Buffer" | "Stack"); "create" ] as p ->
      Some (List.hd p)
  | [ "Array"; ("make" | "init" | "create_float" | "of_list" | "copy") ] ->
      Some "Array"
  | [ "Bytes"; ("create" | "make" | "of_string" | "copy") ] -> Some "Bytes"
  | _ -> None

let classify mutable_fields rhs =
  let rhs = unwrap_expr rhs in
  match rhs.pexp_desc with
  | Pexp_apply (f, _) -> (
      match (unwrap_expr f).pexp_desc with
      | Pexp_ident lid -> (
          let p = path_of_lid lid.txt in
          match safe_of_path p with
          | Some s -> Some (Safe s)
          | None -> Option.map (fun s -> Unsafe s) (unsafe_of_path p))
      | _ -> None)
  | Pexp_array _ -> Some (Unsafe "array literal")
  | Pexp_record (fields, _)
    when List.exists
           (fun (lid, _) ->
             match List.rev (path_of_lid lid.Asttypes.txt) with
             | f :: _ -> Hashtbl.mem mutable_fields f
             | [] -> false)
           fields ->
      Some (Unsafe "record with mutable fields")
  | _ -> None

(** [build files] scans [(modname, structure)] pairs: first every
    record declaration for mutable field names, then every top-level
    binding for mutable globals. *)
let build files =
  let t = { globals = Hashtbl.create 64; mutable_fields = Hashtbl.create 64 } in
  (* pass 1: mutable record fields, project-wide by field name *)
  List.iter
    (fun (_, structure) ->
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_type (_, decls) ->
              List.iter
                (fun d ->
                  match d.ptype_kind with
                  | Ptype_record labels ->
                      List.iter
                        (fun l ->
                          if l.pld_mutable = Asttypes.Mutable then
                            Hashtbl.replace t.mutable_fields l.pld_name.txt ())
                        labels
                  | _ -> ())
                decls
          | _ -> ())
        structure)
    files;
  (* pass 2: top-level mutable globals *)
  List.iter
    (fun (gmod, structure) ->
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match (unwrap_pat vb.pvb_pat).ppat_desc with
                  | Ppat_var name -> (
                      match classify t.mutable_fields vb.pvb_expr with
                      | Some gkind ->
                          Hashtbl.replace t.globals
                            (gmod ^ "." ^ name.txt)
                            {
                              gmod;
                              gname = name.txt;
                              gkind;
                              gloc = vb.pvb_loc;
                            }
                      | None -> ())
                  | _ -> ())
                vbs
          | _ -> ())
        structure)
    files;
  t

let find_global t key = Hashtbl.find_opt t.globals key

let is_mutable_field t f = Hashtbl.mem t.mutable_fields f

(** Globals of one module, for tests and debugging. *)
let globals_of_module t m =
  Hashtbl.fold (fun _ g acc -> if g.gmod = m then g :: acc else acc) t.globals []
