(** Front end of the AST lint engine: parse one OCaml source text
    with the compiler's own parser ([compiler-libs]) and collect the
    inline suppression comments.

    Everything downstream works on real {!Parsetree} values with real
    {!Location} spans, so — unlike the textual scanner this subsystem
    replaced — identifiers inside comments and string literals can
    never fire a rule.

    Suppression syntax, scanned textually because comments do not
    survive parsing:

    {[ (* castor-lint: disable=par/shared-mutable-state *) ]}

    A directive lists one or more comma-separated rule ids (or [all])
    and mutes matching diagnostics on its own line and on the line
    directly below — so it works both as a trailing comment and as a
    line of its own above the flagged expression. *)

(** One parsed source file. [structure] is empty when parsing failed;
    [parse_error] then carries the diagnostic. *)
type file = {
  path : string;
  modname : string;  (** capitalized basename, e.g. [Coverage] *)
  text : string;
  structure : Parsetree.structure;
  suppressions : (int * string list) list;
      (** line of a [castor-lint] comment and the rule ids it disables *)
  parse_error : Diagnostic.t option;
}

let span_of_loc (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    Diagnostic.line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol + 1;
  }

let modname_of_path path =
  let base = Filename.basename path in
  let stem =
    match String.index_opt base '.' with
    | Some i -> String.sub base 0 i
    | None -> base
  in
  String.capitalize_ascii stem

(* ---------------- suppression comments ----------------------------- *)

let directive_prefix = "castor-lint:"

(* rule ids are lowercase segments joined by '/', '-' and '_' *)
let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '/' || c = '-'
  || c = '_'

(* parse "castor-lint: disable=a,b" out of one comment body *)
let rules_of_comment body =
  let find_sub hay needle =
    let n = String.length hay and m = String.length needle in
    let rec go i =
      if i + m > n then None
      else if String.sub hay i m = needle then Some (i + m)
      else go (i + 1)
    in
    go 0
  in
  match find_sub body directive_prefix with
  | None -> []
  | Some i -> (
      let n = String.length body in
      let rec skip_ws i = if i < n && body.[i] = ' ' then skip_ws (i + 1) else i in
      let i = skip_ws i in
      match find_sub (String.sub body i (n - i)) "disable=" with
      | None -> []
      | Some j ->
          let i = i + j in
          let rec rules i acc =
            let stop = ref i in
            while !stop < n && is_rule_char body.[!stop] do
              incr stop
            done;
            let acc =
              if !stop > i then String.sub body i (!stop - i) :: acc else acc
            in
            if !stop < n && body.[!stop] = ',' then rules (!stop + 1) acc
            else List.rev acc
          in
          rules i [])

(* Scan [text] for comments, honouring OCaml's nesting and skipping
   string and char literals, and keep those carrying a directive with
   the line their opening "(*" sits on. *)
let scan_suppressions text =
  let n = String.length text in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let advance () =
    if !i < n && text.[!i] = '\n' then incr line;
    incr i
  in
  let skip_string () =
    (* cursor on the opening quote *)
    advance ();
    let continue_ = ref true in
    while !continue_ && !i < n do
      match text.[!i] with
      | '\\' ->
          advance ();
          if !i < n then advance ()
      | '"' ->
          advance ();
          continue_ := false
      | _ -> advance ()
    done
  in
  while !i < n do
    let c = text.[!i] in
    if c = '"' then skip_string ()
    else if
      (* char literal: '.' or '\..'; leaves type variables ('a) alone *)
      c = '\''
      && !i + 2 < n
      && (text.[!i + 2] = '\'' || (text.[!i + 1] = '\\' && !i + 3 < n))
    then begin
      if text.[!i + 2] = '\'' then begin
        advance ();
        advance ();
        advance ()
      end
      else begin
        (* escaped char: skip to the closing quote, bounded *)
        advance ();
        advance ();
        let budget = ref 4 in
        while !i < n && text.[!i] <> '\'' && !budget > 0 do
          advance ();
          decr budget
        done;
        if !i < n && text.[!i] = '\'' then advance ()
      end
    end
    else if c = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
      let start_line = !line in
      let buf = Buffer.create 64 in
      let depth = ref 1 in
      advance ();
      advance ();
      while !depth > 0 && !i < n do
        if text.[!i] = '(' && !i + 1 < n && text.[!i + 1] = '*' then begin
          incr depth;
          Buffer.add_string buf "(*";
          advance ();
          advance ()
        end
        else if text.[!i] = '*' && !i + 1 < n && text.[!i + 1] = ')' then begin
          decr depth;
          if !depth > 0 then Buffer.add_string buf "*)";
          advance ();
          advance ()
        end
        else begin
          Buffer.add_char buf text.[!i];
          advance ()
        end
      done;
      match rules_of_comment (Buffer.contents buf) with
      | [] -> ()
      | rules -> out := (start_line, rules) :: !out
    end
    else advance ()
  done;
  List.rev !out

(* ---------------- parsing ------------------------------------------ *)

let parse_error_diag ~path exn =
  let loc, msg =
    match exn with
    | Syntaxerr.Error err -> (Some (Syntaxerr.location_of_error err), "syntax error")
    | Lexer.Error (_, loc) -> (Some loc, "lexing error")
    | e -> (None, Printexc.to_string e)
  in
  Diagnostic.make
    ?span:(Option.map span_of_loc loc)
    ~rule:"parse/error" ~severity:Diagnostic.Error ~subject:path
    "OCaml source failed to parse: %s" msg

(** [parse ~path text] parses one source file; a syntax error yields
    an empty structure plus a [parse/error] diagnostic rather than an
    exception, so one broken file cannot abort a tree-wide run. *)
let parse ~path text =
  let structure, parse_error =
    let lexbuf = Lexing.from_string text in
    Location.init lexbuf path;
    match Parse.implementation lexbuf with
    | s -> (s, None)
    | exception e -> ([], Some (parse_error_diag ~path e))
  in
  {
    path;
    modname = modname_of_path path;
    text;
    structure;
    suppressions = scan_suppressions text;
    parse_error;
  }
