(** The AST-pass framework: parse a file set once, build the shared
    mutable-state table and call graph, then run rule passes over the
    whole set.

    A pass sees every file at once — cross-module facts (a worker
    closure in coverage.ml reaching a global in parallel.ml) are
    first-class, which is why [castor_cli analyze --source] now hands
    the engine all files in one call instead of linting them one by
    one.

    Adding a rule is: write a [run : ctx -> finding list] function
    (~30 lines with the {!Ast_rules} walkers), give it an id, append
    it to the pass list and the {!Analyze.rules} catalog. Suppression
    comments, deduplication, Obs accounting and rendering are handled
    here. *)

module Obs = Castor_obs.Obs

(* instrumentation: files parsed, rule passes executed (per file), and
   post-suppression findings; the span is the whole-run wall clock so
   analyzer runtime lands in the bench baselines *)
let c_files = Obs.Counter.create "analysis.source.files"

let c_rules_run = Obs.Counter.create "analysis.source.rules_run"

let c_findings = Obs.Counter.create "analysis.source.findings"

let span_analyze = Obs.Span.create "analysis.source.analyze"

type ctx = {
  files : Ast_parse.file list;
  state : Ast_state.t;
  graph : Ast_callgraph.t;
}

(** A finding ties a diagnostic to the file it belongs to, so passes
    can report into any file of the set (the module that hosts a racy
    global, not the one that spawned the worker). *)
type finding = { fpath : string; diag : Diagnostic.t }

type pass = {
  prules : string list;  (** rule ids this pass can emit *)
  prun : ctx -> finding list;
}

(** [context files] parses [(path, text)] pairs and builds the shared
    tables; exposed separately for unit tests. *)
let context files =
  let parsed = List.map (fun (path, text) -> Ast_parse.parse ~path text) files in
  let mods =
    List.map (fun (f : Ast_parse.file) -> (f.modname, f.structure)) parsed
  in
  { files = parsed; state = Ast_state.build mods; graph = Ast_callgraph.build mods }

let file_of_module ctx m =
  List.find_opt (fun (f : Ast_parse.file) -> f.modname = m) ctx.files

let suppressed (file : Ast_parse.file) (d : Diagnostic.t) =
  match d.Diagnostic.span with
  | None -> false
  | Some { Diagnostic.line; _ } ->
      List.exists
        (fun (sline, rules) ->
          (sline = line || sline = line - 1)
          && List.exists
               (fun r -> String.equal r d.Diagnostic.rule || String.equal r "all")
               rules)
        file.suppressions

(** [analyze ~passes files] — the whole pipeline: parse, build tables,
    run every pass, drop suppressed and duplicate findings, and group
    diagnostics per input path (input order kept, parse errors
    first). *)
let analyze ~passes files =
  Obs.Span.with_span span_analyze @@ fun () ->
  let ctx = context files in
  Obs.Counter.add c_files (List.length ctx.files);
  Obs.Counter.add c_rules_run (List.length passes * List.length ctx.files);
  let findings = List.concat_map (fun p -> p.prun ctx) passes in
  let seen = Hashtbl.create 64 in
  let fresh f =
    let key =
      ( f.diag.Diagnostic.rule,
        f.fpath,
        f.diag.Diagnostic.span,
        f.diag.Diagnostic.subject )
    in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.replace seen key ();
      true
    end
  in
  let groups =
    List.map
      (fun (file : Ast_parse.file) ->
        let diags =
          Option.to_list file.parse_error
          @ List.filter_map
              (fun f ->
                if
                  String.equal f.fpath file.path
                  && (not (suppressed file f.diag))
                  && fresh f
                then Some f.diag
                else None)
              findings
        in
        (file.path, diags))
      ctx.files
  in
  Obs.Counter.add c_findings
    (List.fold_left (fun acc (_, ds) -> acc + List.length ds) 0 groups);
  groups
