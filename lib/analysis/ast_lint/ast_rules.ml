(** The rule passes of the AST lint engine.

    Five rules ship today; each is a [run : ctx -> finding list]
    plugged into {!Ast_engine.analyze}:

    - [par/shared-mutable-state] — a mutable global (or a mutable
      record field of a captured value) is reachable from code that
      runs on worker domains ({!Castor_ilp.Parallel} fan-outs,
      [Domain.spawn], [run_partition]/[fanout] callbacks) without
      [Atomic]/[Mutex]/[Domain.DLS] protection. Once a global is known
      to be worker-shared, {e every} unprotected access to it in its
      defining module fires — the racy side of a race is usually the
      caller, not the worker.
    - [par/swallowed-fatal] — a wildcard exception handler in a
      spawning module that neither re-raises nor screens
      [Out_of_memory]/[Stack_overflow] first.
    - [gen/unchecked-mutation] — one function both mutates a storage
      backend and consumes cached [Coverage] answers without
      consulting the generation counter ([Backend.generation] /
      [Coverage.refresh]).
    - [seed/ambient-randomness] — global-state [Random] calls outside
      the [CASTOR_TEST_SEED] plumbing.
    - [backend/direct-instance-access] — the PR 5 seam rule,
      reimplemented on the AST so comments and strings can no longer
      fire it.

    Protection detection is per enclosing top-level binding: a body
    that mentions [Mutex.lock]/[Mutex.protect] anywhere is considered
    lock-disciplined. That coarseness trades a little recall for zero
    false positives on the project's lock-per-module idiom. *)

open Parsetree
module SS = Set.Make (String)

let rec path_of_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> path_of_lid p @ [ s ]
  | Longident.Lapply _ -> []

let rec last2 = function
  | [ m; x ] -> Some (m, x)
  | _ :: tl -> last2 tl
  | [] -> None

let is_cap s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

let has_substring hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    if i + m > n then false
    else String.sub hay i m = needle || go (i + 1)
  in
  go 0

let pat_vars p =
  let out = ref SS.empty in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun sub p ->
          (match p.ppat_desc with
          | Ppat_var n -> out := SS.add n.txt !out
          | Ppat_alias (_, n) -> out := SS.add n.txt !out
          | _ -> ());
          Ast_iterator.default_iterator.pat sub p);
    }
  in
  it.pat it p;
  !out

let mentions_lock e =
  List.exists
    (fun p ->
      match List.rev p with
      | ("lock" | "try_lock" | "protect") :: "Mutex" :: _ -> true
      | _ -> false)
    (Ast_callgraph.idents_of e)

(* ---------------- access collection -------------------------------- *)

(** A value access inside a function body, with the local-binding
    context resolved: [Ident] paths whose head is locally bound are
    already dropped, and [Mut_field] only reports simple captured
    bases. *)
type access =
  | Ident of string list * Location.t
  | Mut_field of string * string * Location.t
      (** captured base ident, mutable field name *)

let accesses ?(bound = SS.empty) state expr =
  let out = ref [] in
  let rec go bound e =
    let case bound c =
      let b = SS.union bound (pat_vars c.pc_lhs) in
      Option.iter (go b) c.pc_guard;
      go b c.pc_rhs
    in
    let field bound b f loc =
      match List.rev (path_of_lid f.Asttypes.txt) with
      | fname :: _ when Ast_state.is_mutable_field state fname -> (
          match (Ast_state.unwrap_expr b).pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } when not (SS.mem x bound)
            ->
              out := Mut_field (x, fname, loc) :: !out
          | _ -> ())
      | _ -> ()
    in
    match e.pexp_desc with
    | Pexp_ident lid -> (
        match path_of_lid lid.txt with
        | [ x ] when SS.mem x bound -> ()
        | [] -> ()
        | p -> out := Ident (p, e.pexp_loc) :: !out)
    | Pexp_field (b, f) ->
        field bound b f e.pexp_loc;
        go bound b
    | Pexp_setfield (b, f, v) ->
        field bound b f e.pexp_loc;
        go bound b;
        go bound v
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (go bound) default;
        go (SS.union bound (pat_vars pat)) body
    | Pexp_function cases -> List.iter (case bound) cases
    | Pexp_newtype (_, body) -> go bound body
    | Pexp_let (rf, vbs, body) ->
        let names =
          List.fold_left
            (fun acc vb -> SS.union acc (pat_vars vb.pvb_pat))
            SS.empty vbs
        in
        let rhs_bound =
          if rf = Asttypes.Recursive then SS.union bound names else bound
        in
        List.iter (fun vb -> go rhs_bound vb.pvb_expr) vbs;
        go (SS.union bound names) body
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        go bound scrut;
        List.iter (case bound) cases
    | Pexp_for (p, e1, e2, _, body) ->
        go bound e1;
        go bound e2;
        go (SS.union bound (pat_vars p)) body
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e' -> go bound e');
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  go bound expr;
  List.rev !out

let resolve_global state ~modname path =
  match path with
  | [ x ] -> Ast_state.find_global state (modname ^ "." ^ x)
  | _ -> (
      match last2 path with
      | Some (m, x) when is_cap m -> Ast_state.find_global state (m ^ "." ^ x)
      | _ -> None)

(* every expression at the top of a structure: [let] right-hand sides
   and [Pstr_eval] items, recursing into plain nested modules *)
let rec top_exprs structure =
  List.concat_map
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.map (fun vb -> vb.pvb_expr) vbs
      | Pstr_eval (e, _) -> [ e ]
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
          top_exprs s
      | _ -> [])
    structure

let fpath_of_loc ~fallback (loc : Location.t) =
  match loc.Location.loc_start.Lexing.pos_fname with
  | "" -> fallback
  | f -> f

let finding ~loc ~fallback ~rule ~severity ~name fmt =
  let fpath = fpath_of_loc ~fallback loc in
  Fmt.kstr
    (fun message ->
      {
        Ast_engine.fpath;
        diag =
          {
            Diagnostic.rule;
            severity;
            subject = fpath ^ ": " ^ name;
            message;
            span = Some (Ast_parse.span_of_loc loc);
          };
      })
    fmt

(* ---------------- worker-code discovery ---------------------------- *)

(* applications whose function arguments execute on worker domains *)
let spawn_surface path =
  match List.rev path with
  | ("init" | "map") :: "Parallel" :: _ -> true
  | "spawn" :: "Domain" :: _ -> true
  | "run_partition" :: _ -> true
  | [ "fanout" ] -> true
  | _ -> false

let rec lambda_of e =
  let e = Ast_state.unwrap_expr e in
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> Some e
  | Pexp_newtype (_, b) -> lambda_of b
  | Pexp_construct ({ txt = Longident.Lident "Some"; _ }, Some inner) ->
      lambda_of inner
  | _ -> None

(* first lambda anywhere in a subtree — the [let fanout = ... Some
   (fun ...)] heuristic *)
let find_lambda e =
  let out = ref None in
  let rec go e =
    if !out = None then
      match e.pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> out := Some e
      | _ ->
          let it =
            {
              Ast_iterator.default_iterator with
              expr = (fun _ e' -> go e');
            }
          in
          Ast_iterator.default_iterator.expr it e
  in
  go e;
  !out

(** [collect_seeds ~modname graph structure] finds the worker-executed
    code of one module: anonymous closures handed to a spawn surface
    (directly, via a local [let f = fun ...] binding, or bound to a
    [fanout] option), top-level functions passed by name, and whether
    the module spawns at all. *)
let collect_seeds ~modname graph structure =
  let closures = ref [] and named = ref [] and has_spawn = ref false in
  let seed_arg env a =
    match lambda_of a with
    | Some l -> closures := l :: !closures
    | None -> (
        match (Ast_state.unwrap_expr a).pexp_desc with
        | Pexp_ident { txt = Longident.Lident x; _ } when List.mem_assoc x env
          ->
            closures := List.assoc x env :: !closures
        | Pexp_ident lid -> (
            match
              Ast_callgraph.resolve graph ~modname (path_of_lid lid.txt)
            with
            | Some node -> named := node :: !named
            | None -> ())
        | _ -> ())
  in
  let rec go env e =
    match e.pexp_desc with
    | Pexp_apply (f, args) ->
        let fpath =
          match (Ast_state.unwrap_expr f).pexp_desc with
          | Pexp_ident lid -> path_of_lid lid.txt
          | _ -> []
        in
        if spawn_surface fpath then begin
          has_spawn := true;
          List.iter (fun (_, a) -> seed_arg env a) args
        end;
        List.iter
          (fun (lbl, a) ->
            match lbl with
            | Asttypes.Labelled "fanout" | Asttypes.Optional "fanout" ->
                has_spawn := true;
                seed_arg env a
            | _ -> ())
          args;
        go env f;
        List.iter (fun (_, a) -> go env a) args
    | Pexp_let (_, vbs, body) ->
        List.iter (fun vb -> go env vb.pvb_expr) vbs;
        let env' =
          List.fold_left
            (fun env vb ->
              match (Ast_state.unwrap_pat vb.pvb_pat).ppat_desc with
              | Ppat_var n ->
                  if String.equal n.txt "fanout" then (
                    match find_lambda vb.pvb_expr with
                    | Some l ->
                        has_spawn := true;
                        closures := l :: !closures
                    | None -> ());
                  (match lambda_of vb.pvb_expr with
                  | Some l -> (n.txt, l) :: env
                  | None -> env)
              | _ -> env)
            env vbs
        in
        go env' body
    | _ ->
        let it =
          {
            Ast_iterator.default_iterator with
            expr = (fun _ e' -> go env e');
          }
        in
        Ast_iterator.default_iterator.expr it e
  in
  List.iter (fun e -> go [] e) (top_exprs structure);
  (!closures, !named, !has_spawn)

(* ---------------- par/shared-mutable-state ------------------------- *)

let rule_shared = "par/shared-mutable-state"

let run_shared (ctx : Ast_engine.ctx) =
  let findings = ref [] in
  let shared : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let fire_global ~fallback loc (g : Ast_state.global) desc =
    findings :=
      finding ~loc ~fallback ~rule:rule_shared ~severity:Diagnostic.Error
        ~name:g.Ast_state.gname
        "mutable global %s (%s) is shared with domain workers without \
         Atomic/Mutex/Domain.DLS protection"
        g.Ast_state.gname desc
      :: !findings
  in
  let scan_body ~fallback ~modname body =
    let locked = mentions_lock body in
    List.iter
      (function
        | Ident (p, loc) -> (
            match resolve_global ctx.Ast_engine.state ~modname p with
            | Some ({ Ast_state.gkind = Ast_state.Unsafe desc; _ } as g) ->
                Hashtbl.replace shared
                  (g.Ast_state.gmod ^ "." ^ g.Ast_state.gname)
                  ();
                if not locked then fire_global ~fallback loc g desc
            | Some _ | None -> ())
        | Mut_field (base, fname, loc) ->
            if not locked then
              findings :=
                finding ~loc ~fallback ~rule:rule_shared
                  ~severity:Diagnostic.Error ~name:(base ^ "." ^ fname)
                  "mutable field %s of captured value %s is read or written \
                   in worker-reachable code without snapshot or lock"
                  fname base
                :: !findings)
      (accesses ctx.Ast_engine.state body)
  in
  (* 1. worker-executed code: closures at spawn sites plus named
     functions handed to them *)
  let all_closures = ref [] and all_named = ref [] in
  List.iter
    (fun (file : Ast_parse.file) ->
      let cs, ns, _ =
        collect_seeds ~modname:file.Ast_parse.modname ctx.Ast_engine.graph
          file.Ast_parse.structure
      in
      all_closures :=
        List.map (fun c -> (file, c)) cs @ !all_closures;
      all_named := ns @ !all_named)
    ctx.Ast_engine.files;
  (* closures also reach every top-level function they mention *)
  let closure_callees =
    List.concat_map
      (fun ((file : Ast_parse.file), c) ->
        List.filter_map
          (Ast_callgraph.resolve ctx.Ast_engine.graph
             ~modname:file.Ast_parse.modname)
          (Ast_callgraph.idents_of c))
      !all_closures
  in
  List.iter
    (fun ((file : Ast_parse.file), c) ->
      scan_body ~fallback:file.Ast_parse.path ~modname:file.Ast_parse.modname c)
    !all_closures;
  let reach =
    Ast_callgraph.reachable ctx.Ast_engine.graph (!all_named @ closure_callees)
  in
  Hashtbl.iter
    (fun node () ->
      match String.index_opt node '.' with
      | None -> ()
      | Some i -> (
          let modname = String.sub node 0 i in
          match
            ( Ast_callgraph.body ctx.Ast_engine.graph node,
              Ast_engine.file_of_module ctx modname )
          with
          | Some body, Some file ->
              scan_body ~fallback:file.Ast_parse.path ~modname body
          | _ -> ()))
    reach;
  (* 2. a worker-shared global makes every unprotected access in its
     defining module a race — the caller side of the handshake *)
  Hashtbl.iter
    (fun key () ->
      match String.index_opt key '.' with
      | None -> ()
      | Some i -> (
          let modname = String.sub key 0 i in
          match Ast_engine.file_of_module ctx modname with
          | None -> ()
          | Some file ->
              List.iter
                (fun body ->
                  if not (mentions_lock body) then
                    List.iter
                      (function
                        | Ident (p, loc) -> (
                            match
                              resolve_global ctx.Ast_engine.state ~modname p
                            with
                            | Some
                                ({ Ast_state.gkind = Ast_state.Unsafe desc; _ }
                                 as g)
                              when String.equal
                                     (g.Ast_state.gmod ^ "."
                                    ^ g.Ast_state.gname)
                                     key ->
                                fire_global ~fallback:file.Ast_parse.path loc g
                                  desc
                            | _ -> ())
                        | Mut_field _ -> ())
                      (accesses ctx.Ast_engine.state body))
                (top_exprs file.Ast_parse.structure)))
    shared;
  !findings

(* ---------------- par/swallowed-fatal ------------------------------ *)

let rule_fatal = "par/swallowed-fatal"

let raising_body e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.pexp_desc with
          | Pexp_assert _ -> found := true
          | Pexp_ident lid -> (
              match List.rev (path_of_lid lid.txt) with
              | ("raise" | "raise_notrace" | "reraise" | "failwith"
                | "invalid_arg" | "exit")
                :: _ ->
                  found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it e;
  !found

let pat_mentions_fatal p =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun sub p ->
          (match p.ppat_desc with
          | Ppat_construct (lid, _) -> (
              match List.rev (path_of_lid lid.txt) with
              | ("Out_of_memory" | "Stack_overflow") :: _ -> found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.pat sub p);
    }
  in
  it.pat it p;
  !found

let guard_mentions_fatal g =
  List.exists
    (fun p ->
      List.exists
        (fun seg -> has_substring (String.lowercase_ascii seg) "fatal")
        p)
    (Ast_callgraph.idents_of g)

let run_fatal (ctx : Ast_engine.ctx) =
  let findings = ref [] in
  List.iter
    (fun (file : Ast_parse.file) ->
      let _, _, has_spawn =
        collect_seeds ~modname:file.Ast_parse.modname ctx.Ast_engine.graph
          file.Ast_parse.structure
      in
      if has_spawn then
        let check_try cases =
          let screened =
            List.exists
              (fun c ->
                pat_mentions_fatal c.pc_lhs
                ||
                match c.pc_guard with
                | Some g -> guard_mentions_fatal g
                | None -> false)
              cases
          in
          if not screened then
            List.iter
              (fun c ->
                match (c.pc_lhs.ppat_desc, c.pc_guard) with
                | (Ppat_any | Ppat_var _), None
                  when not (raising_body c.pc_rhs) ->
                    findings :=
                      finding ~loc:c.pc_lhs.ppat_loc
                        ~fallback:file.Ast_parse.path ~rule:rule_fatal
                        ~severity:Diagnostic.Error ~name:"try ... with _"
                        "wildcard handler can absorb \
                         Out_of_memory/Stack_overflow in worker-reachable \
                         code; match fatal exceptions first and re-raise"
                      :: !findings
                | _ -> ())
              cases
        in
        let it =
          {
            Ast_iterator.default_iterator with
            expr =
              (fun sub e ->
                (match e.pexp_desc with
                | Pexp_try (_, cases) -> check_try cases
                | _ -> ());
                Ast_iterator.default_iterator.expr sub e);
          }
        in
        List.iter (fun e -> it.expr it e) (top_exprs file.Ast_parse.structure))
    ctx.Ast_engine.files;
  !findings

(* ---------------- gen/unchecked-mutation --------------------------- *)

let rule_gen = "gen/unchecked-mutation"

let gen_mutator p =
  let rec scan = function
    | m :: f :: _
      when List.mem m [ "Instance"; "Store"; "Backend" ]
           && List.mem f
                [ "add"; "remove"; "remove_tuple"; "add_tuple"; "add_list" ] ->
        true
    | _ :: tl -> scan tl
    | [] -> false
  in
  scan p

let gen_reader p =
  let rec scan = function
    | "Coverage" :: f :: _
      when List.mem f [ "vector"; "covers"; "covered_count" ] ->
        true
    | _ :: tl -> scan tl
    | [] -> false
  in
  scan p

let gen_guard p =
  List.exists
    (fun seg ->
      List.mem seg [ "generation"; "refresh"; "clear_cache"; "set_backend" ])
    p

let run_gen (ctx : Ast_engine.ctx) =
  List.concat_map
    (fun (file : Ast_parse.file) ->
      List.concat_map
        (fun body ->
          let acc = accesses ctx.Ast_engine.state body in
          let idents =
            List.filter_map (function Ident (p, l) -> Some (p, l) | _ -> None) acc
          in
          let reads = List.exists (fun (p, _) -> gen_reader p) idents in
          let guarded = List.exists (fun (p, _) -> gen_guard p) idents in
          if not (reads && not guarded) then []
          else
            match List.find_opt (fun (p, _) -> gen_mutator p) idents with
            | Some (p, loc) ->
                [
                  finding ~loc ~fallback:file.Ast_parse.path ~rule:rule_gen
                    ~severity:Diagnostic.Warning
                    ~name:(String.concat "." p)
                    "backend mutation next to cached Coverage reads without \
                     consulting the generation counter \
                     (Backend.generation/Coverage.refresh) — memoized \
                     vectors go stale"
                  ;
                ]
            | None -> [])
        (top_exprs file.Ast_parse.structure))
    ctx.Ast_engine.files

(* ---------------- seed/ambient-randomness -------------------------- *)

let rule_seed = "seed/ambient-randomness"

let ambient_random p =
  let rec scan = function
    | "Random" :: f :: _
      when List.mem f
             [
               "self_init"; "init"; "full_init"; "int"; "bits"; "bool";
               "float"; "int32"; "int64"; "nativeint"; "int_in_range";
               "float_in_range";
             ] ->
        Some f
    | _ :: tl -> scan tl
    | [] -> None
  in
  scan p

let run_seed (ctx : Ast_engine.ctx) =
  List.concat_map
    (fun (file : Ast_parse.file) ->
      (* the seed plumbing itself (reads CASTOR_TEST_SEED and feeds
         explicit Random.State values) is the one legitimate client *)
      if has_substring file.Ast_parse.text "CASTOR_TEST_SEED" then []
      else
        List.concat_map
          (fun body ->
            List.filter_map
              (function
                | Ident (p, loc) ->
                    Option.map
                      (fun f ->
                        finding ~loc ~fallback:file.Ast_parse.path
                          ~rule:rule_seed ~severity:Diagnostic.Error
                          ~name:("Random." ^ f)
                          "ambient Random.%s mutates the global PRNG outside \
                           the CASTOR_TEST_SEED plumbing; thread an explicit \
                           seeded Random.State instead"
                          f)
                      (ambient_random p)
                | Mut_field _ -> None)
              (accesses ctx.Ast_engine.state body))
          (top_exprs file.Ast_parse.structure))
    ctx.Ast_engine.files

(* ---------------- backend/direct-instance-access ------------------- *)

let rule_backend = "backend/direct-instance-access"

(* the read surface of the two storage modules; a qualified use of any
   of these outside lib/relational bypasses the Backend seam *)
let banned =
  [
    ("Instance", "find");
    ("Instance", "find_matching");
    ("Instance", "tuples_containing");
    ("Store", "find");
    ("Store", "find_in_shard");
    ("Store", "find_matching");
    ("Store", "tuples");
    ("Store", "shard_tuples");
    ("Store", "tuples_containing");
    ("Store", "shard_of");
    ("Store", "shard_of_value");
  ]

(* lib/relational implements the seam; its files read the stores by
   definition *)
let exempt_path path =
  let norm = String.map (fun c -> if c = '\\' then '/' else c) path in
  has_substring norm "lib/relational/"

let banned_hit p =
  let rec scan = function
    | m :: f :: _ when List.mem (m, f) banned -> Some (m ^ "." ^ f)
    | _ :: tl -> scan tl
    | [] -> None
  in
  scan p

let run_backend (ctx : Ast_engine.ctx) =
  List.concat_map
    (fun (file : Ast_parse.file) ->
      if exempt_path file.Ast_parse.path then []
      else
        List.concat_map
          (fun body ->
            List.filter_map
              (function
                | Ident (p, loc) ->
                    Option.map
                      (fun qualified ->
                        finding ~loc ~fallback:file.Ast_parse.path
                          ~rule:rule_backend ~severity:Diagnostic.Error
                          ~name:(String.concat "." p)
                          "direct %s lookup bypasses the Backend seam (use \
                           Backend.find/find_matching/tuples_containing)"
                          qualified)
                      (banned_hit p)
                | Mut_field _ -> None)
              (accesses ctx.Ast_engine.state body))
          (top_exprs file.Ast_parse.structure))
    ctx.Ast_engine.files

(* ---------------- the pass list ------------------------------------ *)

let passes : Ast_engine.pass list =
  [
    { Ast_engine.prules = [ rule_shared ]; prun = run_shared };
    { prules = [ rule_fatal ]; prun = run_fatal };
    { prules = [ rule_gen ]; prun = run_gen };
    { prules = [ rule_seed ]; prun = run_seed };
    { prules = [ rule_backend ]; prun = run_backend };
  ]

(** [analyze files] — the full engine over [(path, text)] pairs;
    diagnostics grouped per path in input order. *)
let analyze files = Ast_engine.analyze ~passes files
