(** Approximate intra-project call graph over top-level bindings.

    Nodes are ["Module.name"] for every top-level [let] in the
    analyzed file set. An edge [f -> g] exists when [g]'s name is
    referenced anywhere in [f]'s body — applications and first-class
    uses alike, so reachability over-approximates "may execute as part
    of". Cross-module references resolve by the last two path
    segments, which makes [Coverage.vector], [Castor_ilp.Coverage.vector]
    and (inside coverage.ml) plain [vector] all land on the same
    node. *)

open Parsetree

type t = {
  bodies : (string, expression) Hashtbl.t;
  edges : (string, string list) Hashtbl.t;
}

let rec path_of_lid = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (p, s) -> path_of_lid p @ [ s ]
  | Longident.Lapply _ -> []

(* every longident referenced in an expression *)
let idents_of expr =
  let out = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.pexp_desc with
          | Pexp_ident lid -> out := path_of_lid lid.txt :: !out
          | _ -> ());
          Ast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it expr;
  !out

(** [resolve t ~modname path] maps a referenced ident path to a node
    key when one exists: same-module for bare names, last-two-segment
    match for qualified ones. *)
let resolve t ~modname path =
  let try_key k = if Hashtbl.mem t.bodies k then Some k else None in
  match path with
  | [ x ] -> try_key (modname ^ "." ^ x)
  | _ -> (
      let rec last2 = function
        | [ m; x ] -> Some (m, x)
        | _ :: tl -> last2 tl
        | [] -> None
      in
      match last2 path with
      | Some (m, x) when String.length m > 0 && m.[0] >= 'A' && m.[0] <= 'Z' ->
          try_key (m ^ "." ^ x)
      | _ -> None)

let build files =
  let t = { bodies = Hashtbl.create 256; edges = Hashtbl.create 256 } in
  let tops =
    List.concat_map
      (fun (modname, structure) ->
        List.concat_map
          (fun item ->
            match item.pstr_desc with
            | Pstr_value (_, vbs) ->
                List.filter_map
                  (fun vb ->
                    match (Ast_state.unwrap_pat vb.pvb_pat).ppat_desc with
                    | Ppat_var name ->
                        Some (modname, modname ^ "." ^ name.txt, vb.pvb_expr)
                    | _ -> None)
                  vbs
            | _ -> [])
          structure)
      files
  in
  List.iter (fun (_, key, body) -> Hashtbl.replace t.bodies key body) tops;
  List.iter
    (fun (modname, key, body) ->
      let callees =
        List.filter_map (resolve t ~modname) (idents_of body)
        |> List.sort_uniq compare
        |> List.filter (fun k -> k <> key)
      in
      Hashtbl.replace t.edges key callees)
    tops;
  t

let body t key = Hashtbl.find_opt t.bodies key

let calls t key = Option.value ~default:[] (Hashtbl.find_opt t.edges key)

(** [reachable t seeds] — transitive closure of [calls] from [seeds]
    (seed nodes included). *)
let reachable t seeds =
  let seen = Hashtbl.create 64 in
  let rec go key =
    if Hashtbl.mem t.bodies key && not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      List.iter go (calls t key)
    end
  in
  List.iter go seeds;
  seen

let nodes t = Hashtbl.fold (fun k _ acc -> k :: acc) t.bodies []
