(** Entry points of the static-analysis pass, plus the rule catalog.

    [castor_cli analyze], the pre-learning gate in
    {!Castor_learners.Problem} and the bottom-clause pruner in
    {!Castor_ilp.Bottom} all go through this module, so the set of
    enforced invariants lives in one place. *)

open Castor_relational
open Castor_logic

(** Catalog entry: stable id, severity the rule fires at, and a
    one-line description (rendered by [castor_cli analyze --rules]). *)
type rule = { id : string; severity : Diagnostic.severity; doc : string }

let rules : rule list =
  [
    (* clause lints *)
    { id = "clause/unsafe"; severity = Error;
      doc = "a head variable never occurs in the body (range restriction fails, Section 7.3)" };
    { id = "clause/disconnected"; severity = Warning;
      doc = "a body literal is not reachable from the head through shared variables" };
    { id = "clause/singleton-var"; severity = Info;
      doc = "a variable occurs exactly once in the clause (unused existential, likely a typo)" };
    { id = "clause/duplicate-literal"; severity = Warning;
      doc = "a body literal appears more than once verbatim" };
    { id = "clause/redundant-literal"; severity = Warning;
      doc = "a body literal is θ-subsumed by the rest of the clause (Section 7.5.5)" };
    { id = "clause/determinacy-depth"; severity = Warning;
      doc = "the estimated join depth exceeds the saturation depth bound" };
    { id = "clause/unknown-relation"; severity = Error;
      doc = "a literal uses a relation the schema does not declare" };
    { id = "clause/arity-mismatch"; severity = Error;
      doc = "a literal's arity differs from the declared relation arity" };
    { id = "clause/domain-conflict"; severity = Warning;
      doc = "one variable is used at attribute positions of different domains" };
    { id = "parse/error"; severity = Error;
      doc = "the input failed to parse (message carries line and column)" };
    (* schema lints *)
    { id = "schema/duplicate-relation"; severity = Error;
      doc = "a relation symbol is declared twice" };
    { id = "schema/unknown-relation"; severity = Error;
      doc = "an FD or IND references an undeclared relation" };
    { id = "schema/unknown-attribute"; severity = Error;
      doc = "an FD or IND references an attribute outside the relation's sort" };
    { id = "schema/ind-arity-mismatch"; severity = Error;
      doc = "the two sides of an IND list different numbers of attributes" };
    { id = "schema/ind-domain-mismatch"; severity = Warning;
      doc = "an IND links attributes of different domains" };
    { id = "schema/cyclic-class"; severity = Error;
      doc = "an inclusion class joins cyclically (Proposition 7.4 precondition fails)" };
    { id = "schema/subset-ind-cycle"; severity = Warning;
      doc = "subset INDs form a directed cycle, so the subset-mode chase is unbounded" };
    { id = "schema/fd-ind-mismatch"; severity = Warning;
      doc = "an FD inside an IND-with-equality's attributes is not implied on the other side" };
    { id = "schema/trivial-fd"; severity = Info;
      doc = "an FD with rhs ⊆ lhs constrains nothing" };
    (* transformation lints *)
    { id = "transform/unknown-relation"; severity = Error;
      doc = "a (de)composition references an undeclared relation" };
    { id = "transform/unknown-attribute"; severity = Error;
      doc = "a decomposition part lists an attribute outside the relation's sort" };
    { id = "transform/parts-dont-cover"; severity = Error;
      doc = "decomposition parts do not cover the relation's sort (Definition 4.1)" };
    { id = "transform/cyclic-join"; severity = Error;
      doc = "the (re)construction join is cyclic (GYO precondition fails)" };
    { id = "transform/disconnected-join"; severity = Error;
      doc = "a composed part shares no attribute with the preceding parts" };
    (* mode lints *)
    { id = "mode/target-domain-unknown"; severity = Error;
      doc = "a target attribute's domain cannot be bound by any schema relation" };
    { id = "mode/const-domain-unknown"; severity = Warning;
      doc = "a constant pool names a domain no relation attribute uses" };
    { id = "mode/no-expand-domain-unknown"; severity = Warning;
      doc = "a frontier filter names a domain no relation attribute uses" };
    { id = "mode/no-input-positions"; severity = Info;
      doc = "a relation has no key or IND-linked attribute to enter literals through" };
    { id = "mode/saturation-budget"; severity = Warning;
      doc = "estimated saturation literal/variable counts against max_terms predict subsumption budget exhaustion" };
    (* source lints (AST engine, lib/analysis/ast_lint) *)
    { id = "backend/direct-instance-access"; severity = Error;
      doc = "OCaml source performs Instance/Store lookups directly instead of reading through the Backend seam" };
    { id = "par/shared-mutable-state"; severity = Error;
      doc = "a mutable global or captured mutable field is reachable from worker-domain code without Atomic/Mutex/Domain.DLS protection" };
    { id = "par/swallowed-fatal"; severity = Error;
      doc = "a wildcard exception handler in a spawning module can absorb Out_of_memory/Stack_overflow instead of re-raising" };
    { id = "gen/unchecked-mutation"; severity = Warning;
      doc = "backend mutation next to cached Coverage reads without consulting the generation counter" };
    { id = "seed/ambient-randomness"; severity = Error;
      doc = "global-state Random calls outside the CASTOR_TEST_SEED plumbing break run reproducibility" };
    (* import lints *)
    { id = "import/example-relation"; severity = Error;
      doc = "an imported example's relation differs from the declared target" };
    { id = "import/example-arity"; severity = Error;
      doc = "an imported example's arity differs from the target declaration" };
    { id = "import/target-shadows-relation"; severity = Warning;
      doc = "the declared target shares its name with a schema relation" };
    { id = "import/duplicate-example"; severity = Warning;
      doc = "the same example atom is listed more than once with one label" };
    { id = "import/conflicting-label"; severity = Error;
      doc = "one example atom is labeled both positive and negative" };
  ]

let find_rule id = List.find_opt (fun r -> String.equal r.id id) rules

(* ---------------- aggregate checks --------------------------------- *)

let schema = Schema_lint.check

let transform = Schema_lint.check_transform

let clause = Clause_lint.check

(** [source ?path text] — the OCaml-source lints (AST engine:
    [backend/*], [par/*], [gen/*], [seed/*]) over one file. *)
let source = Source_lint.check

(** [sources files] — the OCaml-source lints over a whole [(path,
    text)] set at once, so cross-module rules (worker closures
    reaching another module's globals) see the full program. Returns
    per-path diagnostic groups in input order. *)
let sources = Source_lint.check_files

(** [definition ?schema ?target ?depth_limit d] lints every clause of
    a Horn definition. *)
let definition ?schema ?target ?depth_limit (def : Clause.definition) =
  List.concat_map (fun c -> clause ?schema ?target ?depth_limit c) def.Clause.clauses

(** [clauses_text ?schema ?target ?depth_limit text] parses clauses
    from [text] and lints each with its source span attached; a parse
    failure becomes a single [clause/unknown-relation]-independent
    error diagnostic carrying the parser's position message. *)
let clauses_text ?schema ?target ?depth_limit text =
  match Parse.definition_spanned text with
  | exception Castor_relational.Lexer.Error msg ->
      [
        Diagnostic.make ~rule:"parse/error" ~severity:Diagnostic.Error
          ~subject:"input" "%s" msg;
      ]
  | spanned ->
      List.concat_map
        (fun (c, pos) ->
          clause ?schema ?target ?depth_limit
            ~span:(Diagnostic.span_of_pos pos) c)
        spanned

(** [problem_config ...] — the pre-learning gate body: schema lints
    plus mode lints of the learner configuration. [budget], when
    given, adds the saturation/search budget estimate
    ([mode/saturation-budget]). *)
let problem_config ?mode ?budget ~(target : Schema.relation) ~const_pool_domains
    ~no_expand_domains (s : Schema.t) =
  schema ?mode s
  @ Modes.lint_config ~const_domains:no_expand_domains ~target ~const_pool_domains
      ~no_expand_domains s
  @
  match budget with
  | None -> []
  | Some budget -> Modes.lint_budget ~budget ~target s

(** [dataset_checks ~schema ~variants ~target ~const_pool_domains
    ~no_expand_domains ()] lints a dataset: base schema, every variant
    transformation (against the base schema) and resulting schema, and
    the problem configuration. Returns labelled groups for display. *)
let dataset_checks ?mode ?budget ~(base : Schema.t)
    ~(variants : (string * Transform.t) list) ~(target : Schema.relation)
    ~const_pool_domains ~no_expand_domains () =
  let base_diags =
    ( "schema (base)",
      problem_config ?mode ?budget ~target ~const_pool_domains
        ~no_expand_domains base )
  in
  let variant_diags =
    List.filter_map
      (fun (vname, tr) ->
        if tr = [] then None
        else
          let tds = transform base tr in
          let sds =
            if Diagnostic.has_errors tds then []
            else
              match Transform.apply_schema base tr with
              | s -> schema ?mode s
              | exception _ -> []
          in
          Some ("variant " ^ vname, tds @ sds))
      variants
  in
  base_diags :: variant_diags

(** [import_examples ~schema ~target labeled] lints the example section
    of an imported dataset: every example must be an atom of the
    declared target (name and arity), the target must not shadow a
    schema relation, no atom may be listed twice, and no atom may carry
    both labels. [labeled] pairs each example with its label ([true] =
    positive) and its source span in [examples.castor]. *)
let import_examples ~(schema : Schema.t) ~(target : Schema.relation)
    (labeled : (bool * Atom.t * Diagnostic.span option) list) =
  let d = Diagnostic.make in
  let shadow =
    if
      List.exists
        (fun (r : Schema.relation) -> String.equal r.Schema.rname target.Schema.rname)
        schema.Schema.relations
    then
      [
        d ~rule:"import/target-shadows-relation" ~severity:Diagnostic.Warning
          ~subject:target.Schema.rname
          "target %s shares its name with a schema relation; the batched \
           coverage kernel is disabled for shadowed targets"
          target.Schema.rname;
      ]
    else []
  in
  let tarity = List.length target.Schema.attrs in
  let seen : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let per_example =
    List.concat_map
      (fun (is_pos, (a : Atom.t), span) ->
        let subject = Atom.to_string a in
        let shape =
          if not (String.equal a.Atom.rel target.Schema.rname) then
            [
              d ?span ~rule:"import/example-relation" ~severity:Diagnostic.Error
                ~subject "example relation %s does not match target %s"
                a.Atom.rel target.Schema.rname;
            ]
          else if Atom.arity a <> tarity then
            [
              d ?span ~rule:"import/example-arity" ~severity:Diagnostic.Error
                ~subject "example has arity %d but target %s declares %d"
                (Atom.arity a) target.Schema.rname tarity;
            ]
          else []
        in
        let dup =
          match Hashtbl.find_opt seen subject with
          | None ->
              Hashtbl.add seen subject is_pos;
              []
          | Some prev when prev = is_pos ->
              [
                d ?span ~rule:"import/duplicate-example"
                  ~severity:Diagnostic.Warning ~subject
                  "example listed more than once as %s"
                  (if is_pos then "pos" else "neg");
              ]
          | Some _ ->
              [
                d ?span ~rule:"import/conflicting-label"
                  ~severity:Diagnostic.Error ~subject
                  "example labeled both pos and neg";
              ]
        in
        shape @ dup)
      labeled
  in
  shadow @ per_example

(** [import_schema ~spans schema] — the schema lints with declaration
    positions from {!Castor_relational.Text.parse_schema_spanned}
    attached to diagnostics whose subject is a relation name. *)
let import_schema ~spans (s : Schema.t) =
  List.map
    (fun (diag : Diagnostic.t) ->
      match (diag.Diagnostic.span, List.assoc_opt diag.Diagnostic.subject spans) with
      | None, Some pos -> { diag with Diagnostic.span = Some (Diagnostic.span_of_pos pos) }
      | _ -> diag)
    (schema s)
