(** Entry points of the static-analysis pass, plus the rule catalog.

    [castor_cli analyze], the pre-learning gate in
    {!Castor_learners.Problem} and the bottom-clause pruner in
    {!Castor_ilp.Bottom} all go through this module, so the set of
    enforced invariants lives in one place. *)

open Castor_relational
open Castor_logic

(** Catalog entry: stable id, severity the rule fires at, and a
    one-line description (rendered by [castor_cli analyze --rules]). *)
type rule = { id : string; severity : Diagnostic.severity; doc : string }

let rules : rule list =
  [
    (* clause lints *)
    { id = "clause/unsafe"; severity = Error;
      doc = "a head variable never occurs in the body (range restriction fails, Section 7.3)" };
    { id = "clause/disconnected"; severity = Warning;
      doc = "a body literal is not reachable from the head through shared variables" };
    { id = "clause/singleton-var"; severity = Info;
      doc = "a variable occurs exactly once in the clause (unused existential, likely a typo)" };
    { id = "clause/duplicate-literal"; severity = Warning;
      doc = "a body literal appears more than once verbatim" };
    { id = "clause/redundant-literal"; severity = Warning;
      doc = "a body literal is θ-subsumed by the rest of the clause (Section 7.5.5)" };
    { id = "clause/determinacy-depth"; severity = Warning;
      doc = "the estimated join depth exceeds the saturation depth bound" };
    { id = "clause/unknown-relation"; severity = Error;
      doc = "a literal uses a relation the schema does not declare" };
    { id = "clause/arity-mismatch"; severity = Error;
      doc = "a literal's arity differs from the declared relation arity" };
    { id = "clause/domain-conflict"; severity = Warning;
      doc = "one variable is used at attribute positions of different domains" };
    { id = "parse/error"; severity = Error;
      doc = "the input failed to parse (message carries line and column)" };
    (* schema lints *)
    { id = "schema/duplicate-relation"; severity = Error;
      doc = "a relation symbol is declared twice" };
    { id = "schema/unknown-relation"; severity = Error;
      doc = "an FD or IND references an undeclared relation" };
    { id = "schema/unknown-attribute"; severity = Error;
      doc = "an FD or IND references an attribute outside the relation's sort" };
    { id = "schema/ind-arity-mismatch"; severity = Error;
      doc = "the two sides of an IND list different numbers of attributes" };
    { id = "schema/ind-domain-mismatch"; severity = Warning;
      doc = "an IND links attributes of different domains" };
    { id = "schema/cyclic-class"; severity = Error;
      doc = "an inclusion class joins cyclically (Proposition 7.4 precondition fails)" };
    { id = "schema/subset-ind-cycle"; severity = Warning;
      doc = "subset INDs form a directed cycle, so the subset-mode chase is unbounded" };
    { id = "schema/fd-ind-mismatch"; severity = Warning;
      doc = "an FD inside an IND-with-equality's attributes is not implied on the other side" };
    { id = "schema/trivial-fd"; severity = Info;
      doc = "an FD with rhs ⊆ lhs constrains nothing" };
    (* transformation lints *)
    { id = "transform/unknown-relation"; severity = Error;
      doc = "a (de)composition references an undeclared relation" };
    { id = "transform/unknown-attribute"; severity = Error;
      doc = "a decomposition part lists an attribute outside the relation's sort" };
    { id = "transform/parts-dont-cover"; severity = Error;
      doc = "decomposition parts do not cover the relation's sort (Definition 4.1)" };
    { id = "transform/cyclic-join"; severity = Error;
      doc = "the (re)construction join is cyclic (GYO precondition fails)" };
    { id = "transform/disconnected-join"; severity = Error;
      doc = "a composed part shares no attribute with the preceding parts" };
    (* mode lints *)
    { id = "mode/target-domain-unknown"; severity = Error;
      doc = "a target attribute's domain cannot be bound by any schema relation" };
    { id = "mode/const-domain-unknown"; severity = Warning;
      doc = "a constant pool names a domain no relation attribute uses" };
    { id = "mode/no-expand-domain-unknown"; severity = Warning;
      doc = "a frontier filter names a domain no relation attribute uses" };
    { id = "mode/no-input-positions"; severity = Info;
      doc = "a relation has no key or IND-linked attribute to enter literals through" };
    { id = "mode/saturation-budget"; severity = Warning;
      doc = "estimated saturation literal/variable counts against max_terms predict subsumption budget exhaustion" };
  ]

let find_rule id = List.find_opt (fun r -> String.equal r.id id) rules

(* ---------------- aggregate checks --------------------------------- *)

let schema = Schema_lint.check

let transform = Schema_lint.check_transform

let clause = Clause_lint.check

(** [definition ?schema ?target ?depth_limit d] lints every clause of
    a Horn definition. *)
let definition ?schema ?target ?depth_limit (def : Clause.definition) =
  List.concat_map (fun c -> clause ?schema ?target ?depth_limit c) def.Clause.clauses

(** [clauses_text ?schema ?target ?depth_limit text] parses clauses
    from [text] and lints each with its source span attached; a parse
    failure becomes a single [clause/unknown-relation]-independent
    error diagnostic carrying the parser's position message. *)
let clauses_text ?schema ?target ?depth_limit text =
  match Parse.definition_spanned text with
  | exception Castor_relational.Lexer.Error msg ->
      [
        Diagnostic.make ~rule:"parse/error" ~severity:Diagnostic.Error
          ~subject:"input" "%s" msg;
      ]
  | spanned ->
      List.concat_map
        (fun (c, pos) ->
          clause ?schema ?target ?depth_limit
            ~span:(Diagnostic.span_of_pos pos) c)
        spanned

(** [problem_config ...] — the pre-learning gate body: schema lints
    plus mode lints of the learner configuration. [budget], when
    given, adds the saturation/search budget estimate
    ([mode/saturation-budget]). *)
let problem_config ?mode ?budget ~(target : Schema.relation) ~const_pool_domains
    ~no_expand_domains (s : Schema.t) =
  schema ?mode s
  @ Modes.lint_config ~const_domains:no_expand_domains ~target ~const_pool_domains
      ~no_expand_domains s
  @
  match budget with
  | None -> []
  | Some budget -> Modes.lint_budget ~budget ~target s

(** [dataset_checks ~schema ~variants ~target ~const_pool_domains
    ~no_expand_domains ()] lints a dataset: base schema, every variant
    transformation (against the base schema) and resulting schema, and
    the problem configuration. Returns labelled groups for display. *)
let dataset_checks ?mode ?budget ~(base : Schema.t)
    ~(variants : (string * Transform.t) list) ~(target : Schema.relation)
    ~const_pool_domains ~no_expand_domains () =
  let base_diags =
    ( "schema (base)",
      problem_config ?mode ?budget ~target ~const_pool_domains
        ~no_expand_domains base )
  in
  let variant_diags =
    List.filter_map
      (fun (vname, tr) ->
        if tr = [] then None
        else
          let tds = transform base tr in
          let sds =
            if Diagnostic.has_errors tds then []
            else
              match Transform.apply_schema base tr with
              | s -> schema ?mode s
              | exception _ -> []
          in
          Some ("variant " ^ vname, tds @ sds))
      variants
  in
  base_diags :: variant_diags
