(** Common shape of the benchmark datasets.

    Each dataset carries a base schema and instance, labeled examples
    of a target relation, and a list of named schema {e variants},
    each given as a composition/decomposition transformation from the
    base. Variant instances are obtained by actually applying τ, so
    all variants of a dataset are information equivalent by
    construction — the precondition of the schema-independence
    experiments (Section 9.1.1). *)

open Castor_relational
open Castor_logic
open Castor_ilp

type t = {
  name : string;
  schema : Schema.t;
  instance : Instance.t;
  target : Schema.relation;  (** target declaration (not in schema) *)
  examples : Examples.t;
  const_pool : (string * Value.t list) list;
      (** constants top-down learners may place in literals *)
  no_expand_domains : string list;
      (** low-selectivity attribute domains kept off the saturation
          frontier (see {!Castor_ilp.Bottom.params}) *)
  variants : (string * Transform.t) list;
      (** named transformations from the base schema; the base itself
          is included with an empty transformation *)
  golden : Clause.definition option;
      (** an exact definition of the target over the base schema, when
          one exists (used by oracle experiments and sanity tests) *)
}

(** One concrete (schema, instance) pair of a dataset. *)
type variant = {
  variant_name : string;
  vschema : Schema.t;
  vinstance : Instance.t;
  vtransform : Transform.t;
}

(** [variant_named t name] materializes variant [name] by applying its
    transformation to the base instance. *)
let variant_named t name =
  match List.assoc_opt name t.variants with
  | None -> invalid_arg ("unknown variant " ^ name)
  | Some tr ->
      {
        variant_name = name;
        vschema = Transform.apply_schema t.schema tr;
        vinstance = Transform.apply_instance t.instance tr;
        vtransform = tr;
      }

(** [all_variants t] materializes every variant, in declared order. *)
let all_variants t = List.map (fun (n, _) -> variant_named t n) t.variants

(** [strip_bias t] forgets everything a curator hand-wrote beyond the
    raw data: constant pools, frontier filters, schema variants and
    the golden definition. What remains is exactly what a constraint-
    less dump provides — the zero-config entry point of the fuzzing
    harness, which must re-induce all of it (AutoMode-style). *)
let strip_bias t =
  {
    t with
    const_pool = [];
    no_expand_domains = [];
    variants = [ ("base", []) ];
    golden = None;
  }

(* ------------------------------------------------------------------ *)
(* Import / export                                                     *)
(* ------------------------------------------------------------------ *)

(** [derive_value_domains inst] partitions attribute domains by
    selectivity: domains whose distinct-value count is small (≤
    [threshold]) behave like categorical attributes — their values are
    offered to top-down learners as constants and kept off the
    saturation frontier — while high-selectivity domains are treated
    as entity keys. This reconstructs the mode information that
    exported datasets do not carry. *)
let derive_value_domains ?(threshold = 24) inst =
  let schema = Instance.schema inst in
  let by_domain : (string, Value.Set.t ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Schema.relation) ->
      List.iter
        (fun (a : Schema.attribute) ->
          let vals = Instance.column_values inst r.Schema.rname a.Schema.aname in
          let bucket =
            match Hashtbl.find_opt by_domain a.Schema.domain with
            | Some b -> b
            | None ->
                let b = ref Value.Set.empty in
                Hashtbl.add by_domain a.Schema.domain b;
                b
          in
          bucket := List.fold_left (fun s v -> Value.Set.add v s) !bucket vals)
        r.Schema.attrs)
    schema.Schema.relations;
  Hashtbl.fold
    (fun dom vals (cat, ent) ->
      if Value.Set.cardinal !vals <= threshold then
        ((dom, Value.Set.elements !vals) :: cat, ent)
      else (cat, dom :: ent))
    by_domain ([], [])

(** [of_instance ~name ~target instance examples] wraps a raw problem
    as a dataset, deriving constant pools and frontier filters from
    value selectivity ({!derive_value_domains}). *)
let of_instance ~name ~target instance (examples : Examples.t) =
  let const_pool, _entity = derive_value_domains instance in
  {
    name;
    schema = Instance.schema instance;
    instance;
    target;
    examples;
    const_pool;
    no_expand_domains = List.map fst const_pool;
    variants = [ ("base", []) ];
    golden = None;
  }

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(** [export t dir] writes [schema.castor], [facts.castor] and
    [examples.castor] (target declaration plus labeled facts) for the
    dataset's base schema. *)
let export t dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  write_file (Filename.concat dir "schema.castor")
    (Castor_relational.Text.schema_to_string t.schema);
  write_file (Filename.concat dir "facts.castor")
    (Castor_relational.Text.facts_to_string t.instance);
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Fmt.str "target %s(%s).\n" t.target.Schema.rname
       (String.concat ", "
          (List.map
             (fun (a : Schema.attribute) ->
               a.Schema.aname ^ ": " ^ a.Schema.domain)
             t.target.Schema.attrs)));
  Array.iter
    (fun e -> Buffer.add_string buf (Fmt.str "pos %s.\n" (Atom.to_string e)))
    t.examples.Examples.pos;
  Array.iter
    (fun e -> Buffer.add_string buf (Fmt.str "neg %s.\n" (Atom.to_string e)))
    t.examples.Examples.neg;
  write_file (Filename.concat dir "examples.castor") (Buffer.contents buf)

(** [import ~name ?gate dir] reads a dataset back from {!export}'s
    layout. The parsed schema and examples are linted
    ({!Castor_analysis.Analyze.import_schema} /
    [Analyze.import_examples]) with [schema.castor] /
    [examples.castor] line:column spans attached, through the same
    [`Off | `Warn | `Strict] gate as {!Castor_learners.Problem.make}:
    [`Warn] (default) prints the diagnostics, [`Strict] additionally
    raises {!Castor_analysis.Diagnostic.Rejected} on errors. *)
let import ~name ?(gate = (`Warn : Castor_analysis.Diagnostic.gate)) dir =
  let open Castor_relational in
  let module Analyze = Castor_analysis.Analyze in
  let module Diagnostic = Castor_analysis.Diagnostic in
  let schema, rel_spans =
    Text.parse_schema_spanned (read_file (Filename.concat dir "schema.castor"))
  in
  Diagnostic.apply_gate gate
    ~subject:(Filename.concat dir "schema.castor")
    (Analyze.import_schema ~spans:rel_spans schema);
  let instance = Text.parse_facts schema (read_file (Filename.concat dir "facts.castor")) in
  let c = Lexer.cursor (Lexer.tokenize (read_file (Filename.concat dir "examples.castor"))) in
  let target = ref None in
  let pos = ref [] and neg = ref [] in
  let labeled = ref [] in
  let note is_pos span atom = labeled := (is_pos, atom, Some span) :: !labeled in
  let parse_example () =
    let rel = Lexer.ident c in
    Lexer.expect c Lexer.Lparen;
    let rec args acc =
      let v =
        match Lexer.next c with
        | Lexer.Int n -> Value.int n
        | Lexer.Ident s -> Value.str s
        | t -> Lexer.err c "expected constant in example, found %a" Lexer.pp_token t
      in
      match Lexer.next c with
      | Lexer.Comma -> args (v :: acc)
      | Lexer.Rparen -> List.rev (v :: acc)
      | t -> Lexer.err c "expected ',' or ')' in example, found %a" Lexer.pp_token t
    in
    let vs = args [] in
    Lexer.expect c Lexer.Dot;
    Atom.of_tuple rel (Tuple.of_list vs)
  in
  let rec go () =
    match Lexer.next c with
    | Lexer.Eof -> ()
    | Lexer.Ident "target" ->
        let rname = Lexer.ident c in
        Lexer.expect c Lexer.Lparen;
        let rec attrs acc =
          let aname = Lexer.ident c in
          Lexer.expect c Lexer.Colon;
          let domain = Lexer.ident c in
          let acc = Schema.attribute ~domain aname :: acc in
          match Lexer.next c with
          | Lexer.Comma -> attrs acc
          | Lexer.Rparen -> List.rev acc
          | t -> Lexer.err c "expected ',' or ')' in target, found %a" Lexer.pp_token t
        in
        let attrs = attrs [] in
        Lexer.expect c Lexer.Dot;
        target := Some (Schema.relation rname attrs);
        go ()
    | Lexer.Ident "pos" ->
        let span = Castor_analysis.Diagnostic.span_of_pos (Lexer.last_pos c) in
        let e = parse_example () in
        note true span e;
        pos := e :: !pos;
        go ()
    | Lexer.Ident "neg" ->
        let span = Castor_analysis.Diagnostic.span_of_pos (Lexer.last_pos c) in
        let e = parse_example () in
        note false span e;
        neg := e :: !neg;
        go ()
    | t -> Lexer.err c "expected 'target', 'pos' or 'neg', found %a" Lexer.pp_token t
  in
  go ();
  match !target with
  | None -> Lexer.error "examples.castor declares no target"
  | Some target ->
      Castor_analysis.Diagnostic.apply_gate gate
        ~subject:(Filename.concat dir "examples.castor")
        (Castor_analysis.Analyze.import_examples ~schema ~target
           (List.rev !labeled));
      of_instance ~name ~target instance
        (Examples.make ~pos:(List.rev !pos) ~neg:(List.rev !neg))

(** Deterministic helpers shared by the generators. *)
module Gen = struct
  let rng seed = Random.State.make [| seed |]

  let pick rng arr = arr.(Random.State.int rng (Array.length arr))

  let pick_list rng l = List.nth l (Random.State.int rng (List.length l))

  let chance rng p = Random.State.float rng 1.0 < p

  let shuffle rng l =
    let a = Array.of_list l in
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    Array.to_list a

  (** [sample_pairs rng n xs ys ~avoid] draws up to [n] distinct pairs
      from [xs × ys] not satisfying [avoid]. *)
  let sample_pairs rng n xs ys ~avoid =
    let xs = Array.of_list xs and ys = Array.of_list ys in
    let seen = Hashtbl.create 64 in
    let out = ref [] in
    let attempts = ref 0 in
    let limit = 50 * n in
    while List.length !out < n && !attempts < limit do
      incr attempts;
      let x = pick rng xs and y = pick rng ys in
      let k = Value.to_string x ^ "/" ^ Value.to_string y in
      if (not (Hashtbl.mem seen k)) && not (avoid x y) then begin
        Hashtbl.add seen k ();
        out := (x, y) :: !out
      end
    done;
    List.rev !out
end
