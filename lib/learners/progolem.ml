(** ProGolem (Muggleton, Santos, Tamaddoni-Nezhad 2009) — the
    armg-based bottom-up learner of Section 6.4.

    LearnClause builds the (variabilized) bottom clause of a seed
    positive example and beam-searches over repeated applications of
    the asymmetric relative minimal generalization operator
    (Algorithm 3), scored by coverage [p − n]. The winning clause is
    negative-reduced. Both armg and the plain reduction are schema
    dependent (Example 6.5 / Theorem 6.6); Castor replaces them with
    IND-aware versions. *)

open Castor_relational
open Castor_logic
open Castor_ilp
module Obs = Castor_obs.Obs

let span_learn = Obs.Span.create "learner.progolem"

type params = {
  sample : int;  (** K — examples drawn per beam iteration *)
  beam : int;  (** N — beam width *)
  min_precision : float;
  minpos : int;
  max_clauses : int;
  require_safe : bool;
}

let default_params =
  {
    sample = 5;
    beam = 2;
    min_precision = 0.67;
    minpos = 2;
    max_clauses = 30;
    require_safe = false;
  }

type cand = { clause : Clause.t; pos_vec : bool array; neg_vec : bool array; score : int }

let eval (p : Problem.t) ?parent clause =
  let assume_pos, assume_neg =
    match parent with
    | Some c -> (Some c.pos_vec, Some c.neg_vec)
    | None -> (None, None)
  in
  let pos_vec = Coverage.vector ?assume:assume_pos p.Problem.pos_cov clause in
  let neg_vec = Coverage.vector ?assume:assume_neg p.Problem.neg_cov clause in
  let score =
    Scoring.coverage
      { Scoring.pos_covered = Coverage.count pos_vec; neg_covered = Coverage.count neg_vec }
  in
  { clause; pos_vec; neg_vec; score }

let uncovered_indices uncovered =
  let out = ref [] in
  Array.iteri (fun i b -> if b then out := i :: !out) uncovered;
  Array.of_list (List.rev !out)

(** One LearnClause call, shared with Castor (which passes its own
    [bottom] builder, [armg_repair] and [reduce] hooks). If the seed
    example yields no acceptable clause, the next uncovered positives
    are tried as seeds (up to [seed_tries]), as real bottom-up systems
    do — a seed whose neighborhood carries no signal should not end
    the covering loop. *)
let rec learn_clause_generic ?(seed_tries = 8) ~(bottom : Atom.t -> Clause.t)
    ~(armg_repair : Clause.t -> Clause.t) ~(reduce : Clause.t -> Clause.t)
    (prm : params) (p : Problem.t) uncovered =
  let idxs = uncovered_indices uncovered in
  if Array.length idxs = 0 || seed_tries <= 0 then None
  else begin
    let seed_idx = idxs.(0) in
    let e = p.Problem.pos_cov.Coverage.examples.(seed_idx) in
    (* The bottom clause itself rarely covers anything beyond its
       seed; scoring it against every example is the single most
       expensive test of the whole search, so the root is credited
       with its seed only. Children are evaluated for real (their
       coverage grows monotonically from the root's, so the seed bit
       may be assumed). *)
    let root =
      let pos_vec = Array.make (Coverage.length p.Problem.pos_cov) false in
      pos_vec.(seed_idx) <- true;
      let neg_vec = Array.make (Coverage.length p.Problem.neg_cov) false in
      { clause = bottom e; pos_vec; neg_vec; score = 1 }
    in
    let debug = Sys.getenv_opt "CASTOR_TRACE" <> None in
    if debug then
      Fmt.epr "[castor] seed %d, bottom %d lits@." seed_idx
        (Clause.length root.clause);
    let beam = ref [ root ] in
    let best = ref root in
    let continue = ref true in
    while !continue do
      let sample =
        let n = Array.length idxs in
        List.init prm.sample (fun _ -> idxs.(Random.State.int p.Problem.rng n))
        |> List.sort_uniq compare
      in
      if debug then
        Fmt.epr "[castor] sample: %a@." Fmt.(list ~sep:sp int) sample;
      let next = ref [] in
      List.iter
        (fun c ->
          List.iter
            (fun i ->
              match Armg.generalize ~repair:armg_repair p.Problem.pos_cov c.clause i with
              | None -> ()
              | Some g ->
                  if g.Clause.body <> [] then begin
                    let cand = eval p ~parent:c g in
                    if debug then
                      Fmt.epr "[castor]   armg(parent %d lits, e%d) -> %d lits score %d (p=%d n=%d)@."
                        (Clause.length c.clause) i (Clause.length cand.clause)
                        cand.score
                        (Coverage.count cand.pos_vec)
                        (Coverage.count cand.neg_vec);
                    if
                      cand.score > !best.score
                      && ((not prm.require_safe) || Clause.is_safe cand.clause)
                    then next := cand :: !next
                  end)
            sample)
        !beam;
      match List.sort (fun a b -> compare b.score a.score) !next with
      | [] -> continue := false
      | sorted ->
          let rec take k = function
            | [] -> []
            | _ when k = 0 -> []
            | x :: tl -> x :: take (k - 1) tl
          in
          beam := take prm.beam sorted;
          best := List.hd !beam
    done;
    let reduced = reduce !best.clause in
    let final = if reduced.Clause.body = [] then !best.clause else reduced in
    let cand = eval p final in
    let stats =
      {
        Scoring.pos_covered = Coverage.count cand.pos_vec;
        neg_covered = Coverage.count cand.neg_vec;
      }
    in
    if
      Scoring.acceptable ~min_precision:prm.min_precision ~minpos:prm.minpos stats
      && ((not prm.require_safe) || Clause.is_safe final)
    then Some (final, cand.pos_vec)
    else begin
      (* fall back to the unreduced best clause if reduction overshot *)
      let stats' =
        {
          Scoring.pos_covered = Coverage.count !best.pos_vec;
          neg_covered = Coverage.count !best.neg_vec;
        }
      in
      if
        Scoring.acceptable ~min_precision:prm.min_precision ~minpos:prm.minpos
          stats'
        && ((not prm.require_safe) || Clause.is_safe !best.clause)
      then Some (!best.clause, !best.pos_vec)
      else begin
        (* this seed carries no learnable signal: retry from the next
           uncovered positive *)
        let uncovered' = Array.copy uncovered in
        uncovered'.(seed_idx) <- false;
        learn_clause_generic ~seed_tries:(seed_tries - 1) ~bottom ~armg_repair
          ~reduce prm p uncovered'
      end
    end
  end

let learn_clause (prm : params) (p : Problem.t) uncovered =
  let bottom e =
    Bottom.bottom_clause ~params:p.Problem.bottom_params p.Problem.instance e
  in
  learn_clause_generic ~bottom ~armg_repair:Fun.id
    ~reduce:(Negreduce.reduce ~require_safe:prm.require_safe p.Problem.neg_cov)
    prm p uncovered

(** [learn ?params p] runs ProGolem's covering loop. *)
let learn ?(params = default_params) (p : Problem.t) =
  Obs.Span.with_span span_learn @@ fun () ->
  let outcome =
    Covering.run
      ~target:p.Problem.target.Schema.rname
      ~learn_clause:(fun uncovered -> learn_clause params p uncovered)
      ~max_clauses:params.max_clauses
      (Examples.n_pos p.Problem.train)
  in
  outcome.Covering.definition

(* ------------------------- unified API --------------------------- *)

let params_of_config (c : Learner.config) =
  {
    sample = c.Learner.sample;
    beam = c.Learner.beam;
    min_precision = c.Learner.min_precision;
    minpos = c.Learner.minpos;
    max_clauses = c.Learner.max_clauses;
    require_safe = c.Learner.safe;
  }

(** ProGolem behind the unified {!Learner.S} surface. *)
module Unified : Learner.S =
  (val Learner.make ~name:"progolem"
         (fun c p -> learn ~params:(params_of_config c) p))

let () = Learner.register (module Unified)
