(** Golem (Muggleton & Feng 1990) — the rlgg-based bottom-up learner
    of Section 6.3 (Algorithm 2).

    LearnClause samples K positive examples, computes the rlgg of
    every pair of their saturations, keeps the candidates meeting the
    minimum condition, and then greedily folds further examples into
    the best candidate while its score improves. Clause size is
    bounded ([max_literals]) because iterated rlggs grow as O(m^n);
    clauses are θ-reduced after every generalization, as real Golem
    implementations must do to stay tractable. *)

open Castor_relational
open Castor_logic
open Castor_ilp
module Obs = Castor_obs.Obs

let span_learn = Obs.Span.create "learner.golem"

type params = {
  sample : int;  (** K, the pair-sampling budget *)
  min_precision : float;
  minpos : int;
  max_clauses : int;
  max_literals : int;
  reduce_steps : int;  (** subsumption budget for θ-reduction *)
}

let default_params =
  {
    sample = 8;
    min_precision = 0.67;
    minpos = 2;
    max_clauses = 30;
    max_literals = 800;
    reduce_steps = 30_000;
  }

let uncovered_indices uncovered =
  let out = ref [] in
  Array.iteri (fun i b -> if b then out := i :: !out) uncovered;
  Array.of_list (List.rev !out)

let sample_indices rng k (idxs : int array) =
  let n = Array.length idxs in
  if n <= k then Array.to_list idxs
  else
    List.init k (fun _ -> idxs.(Random.State.int rng n))
    |> List.sort_uniq compare

let score_of p clause =
  let pv = Coverage.vector p.Problem.pos_cov clause in
  let nv = Coverage.vector p.Problem.neg_cov clause in
  let stats =
    { Scoring.pos_covered = Coverage.count pv; neg_covered = Coverage.count nv }
  in
  (Scoring.coverage stats, stats, pv)

let learn_clause (prm : params) (p : Problem.t) uncovered =
  let idxs = uncovered_indices uncovered in
  if Array.length idxs = 0 then None
  else begin
    let sample = sample_indices p.Problem.rng prm.sample idxs in
    let sat i = p.Problem.pos_cov.Coverage.bottoms.(i) in
    let generalize c1 c2 =
      match Lgg.rlgg ~max_literals:prm.max_literals c1 c2 with
      | None -> None
      | Some g ->
          let g = Minimize.reduce ~max_steps:prm.reduce_steps g in
          let g = Negreduce.reduce p.Problem.neg_cov g in
          if g.Clause.body = [] then None else Some g
    in
    (* candidate rlggs of sampled pairs *)
    let candidates = ref [] in
    let rec pairs = function
      | [] -> ()
      | i :: rest ->
          List.iter
            (fun j ->
              match generalize (sat i) (sat j) with
              | Some g ->
                  let s, stats, pv = score_of p g in
                  if
                    Scoring.acceptable ~min_precision:prm.min_precision
                      ~minpos:prm.minpos stats
                  then candidates := (s, g, pv) :: !candidates
              | None -> ())
            rest;
          pairs rest
    in
    pairs sample;
    match List.sort (fun (a, _, _) (b, _, _) -> compare b a) !candidates with
    | [] -> None
    | (s0, c0, pv0) :: _ ->
        (* greedy inclusion of further uncovered examples *)
        let best = ref (s0, c0, pv0) in
        let improved = ref true in
        while !improved do
          improved := false;
          let _, c, pv = !best in
          let remaining =
            Array.to_list idxs |> List.filter (fun i -> not pv.(i))
          in
          let trial =
            List.filter_map
              (fun i ->
                match generalize c (sat i) with
                | Some g ->
                    let s, stats, pv' = score_of p g in
                    if
                      Scoring.acceptable ~min_precision:prm.min_precision
                        ~minpos:prm.minpos stats
                    then Some (s, g, pv')
                    else None
                | None -> None)
              (sample_indices p.Problem.rng prm.sample (Array.of_list remaining))
          in
          match List.sort (fun (a, _, _) (b, _, _) -> compare b a) trial with
          | (s', g', pv') :: _ when s' > (let s, _, _ = !best in s) ->
              best := (s', g', pv');
              improved := true
          | _ -> ()
        done;
        let _, clause, pv = !best in
        Some (clause, pv)
  end

(** [learn ?params p] runs Golem's covering loop. *)
let learn ?(params = default_params) (p : Problem.t) =
  Obs.Span.with_span span_learn @@ fun () ->
  let outcome =
    Covering.run
      ~target:p.Problem.target.Schema.rname
      ~learn_clause:(fun uncovered -> learn_clause params p uncovered)
      ~max_clauses:params.max_clauses
      (Examples.n_pos p.Problem.train)
  in
  outcome.Covering.definition

(* ------------------------- unified API --------------------------- *)

let params_of_config (c : Learner.config) =
  {
    default_params with
    sample = c.Learner.sample;
    min_precision = c.Learner.min_precision;
    minpos = c.Learner.minpos;
    max_clauses = c.Learner.max_clauses;
  }

(** Golem behind the unified {!Learner.S} surface; its default config
    keeps Golem's larger pair-sampling budget. *)
module Unified : Learner.S =
  (val Learner.make ~name:"golem"
         ~defaults:{ Learner.default_config with Learner.sample = 8 }
         (fun c p -> learn ~params:(params_of_config c) p))

let () = Learner.register (module Unified)
