(** A learning task handed to any of the learners: the background
    database, the declared target relation (with typed attributes so
    top-down learners can type their variables), training examples,
    and precomputed coverage structures over the positives and
    negatives. *)

open Castor_relational
open Castor_logic
open Castor_ilp
module Diagnostic = Castor_analysis.Diagnostic
module Obs = Castor_obs.Obs

(** The shared analysis gate position ([`Off | `Warn | `Strict]) —
    the same type {!Castor_analysis.Diagnostic.gate} used by dataset
    import, so one flag drives every analysis entry point. *)
type gate = Diagnostic.gate

(** Raised by the [`Strict] pre-learning gate when the static analysis
    finds error-severity diagnostics in the problem configuration.
    Shared with every other [`Strict] gate. *)
exception Rejected = Diagnostic.Rejected

let c_gate_runs = Obs.Counter.create "learners.gate.runs"

let c_gate_errors = Obs.Counter.create "learners.gate.errors"

let c_gate_warnings = Obs.Counter.create "learners.gate.warnings"

type t = {
  instance : Instance.t;
  target : Schema.relation;
      (** target relation declaration; not part of the schema *)
  train : Examples.t;
  pos_cov : Coverage.t;  (** coverage over [train.pos] *)
  neg_cov : Coverage.t;  (** coverage over [train.neg] *)
  const_pool : (string * Value.t list) list;
      (** per-domain constants that top-down learners may place in
          literals (e.g. phases, course levels, genres) *)
  bottom_params : Bottom.params;
      (** saturation parameters used for the coverage structures; the
          bottom-clause-based learners inherit them so hypothesis and
          coverage spaces agree *)
  rng : Random.State.t;
}

(** [head p] is the most general head atom [T(X0, .., Xn-1)]. *)
let head p =
  Atom.make p.target.Schema.rname
    (List.mapi (fun i _ -> Term.Var (Printf.sprintf "X%d" i)) p.target.Schema.attrs)

(** Domains of the head variables, in order. *)
let head_domains p = List.map (fun a -> a.Schema.domain) p.target.Schema.attrs

(* The pre-learning gate: run the static-analysis pass over the
   problem configuration (schema lints + inferred-mode lints) before
   paying for the example saturations. [`Warn] reports diagnostics on
   stderr, [`Strict] additionally raises {!Rejected} on errors,
   [`Off] skips the analysis entirely. *)
let run_gate (gate : gate) ~(bottom_params : Bottom.params) ~const_pool
    ~max_steps instance target =
  match gate with
  | `Off -> ()
  | (`Warn | `Strict) as g ->
      Obs.Counter.incr c_gate_runs;
      let budget =
        {
          Castor_analysis.Modes.depth = bottom_params.Bottom.depth;
          max_terms = bottom_params.Bottom.max_terms;
          per_relation_cap = bottom_params.Bottom.per_relation_cap;
          max_steps;
        }
      in
      let diags =
        Castor_analysis.Analyze.problem_config ~budget ~target
          ~const_pool_domains:
            (List.map fst const_pool @ bottom_params.Bottom.const_domains)
          ~no_expand_domains:bottom_params.Bottom.no_expand_domains
          (Instance.schema instance)
      in
      Obs.Counter.add c_gate_errors (List.length (Diagnostic.errors diags));
      Obs.Counter.add c_gate_warnings (Diagnostic.count Diagnostic.Warning diags);
      Diagnostic.apply_gate g
        ~subject:(Fmt.str "problem %s" target.Schema.rname)
        diags

(** [make ?bottom_params ?const_pool ?seed ?expand ?backend ?gate inst
    target train] assembles a problem, precomputing the example
    saturations. The optional [expand] hook threads Castor's IND chase
    into the saturations used for coverage testing; [backend] selects
    the storage substrate the coverage structures run on
    ({!Castor_relational.Backend.spec}). [gate] controls the
    pre-learning static analysis: [`Warn] (default) prints
    warning/error diagnostics, [`Strict] raises {!Rejected} on errors,
    [`Off] disables the check. *)
let make ?(bottom_params = Bottom.default_params) ?(const_pool = []) ?(seed = 42)
    ?expand ?backend ?(max_steps = 40_000) ?(gate = `Warn) instance target
    (train : Examples.t) =
  run_gate gate ~bottom_params ~const_pool ~max_steps instance target;
  {
    instance;
    target;
    train;
    pos_cov =
      Coverage.build ?expand ?backend ~params:bottom_params ~max_steps instance
        train.Examples.pos;
    neg_cov =
      Coverage.build ?expand ?backend ~params:bottom_params ~max_steps instance
        train.Examples.neg;
    const_pool;
    bottom_params;
    rng = Random.State.make [| seed |];
  }

(** [recheck ?gate p] re-runs the pre-learning static analysis over an
    already-built problem — used by the unified {!Learner} entry point
    so a problem built with [`Off] can still be gated at learn time. *)
let recheck ?(gate = (`Warn : gate)) p =
  run_gate gate ~bottom_params:p.bottom_params ~const_pool:p.const_pool
    ~max_steps:p.pos_cov.Coverage.max_steps p.instance p.target

(** A learner maps a problem to a Horn definition of the target. *)
type learner = t -> Clause.definition
