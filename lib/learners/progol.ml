(** Progol-style learner (Muggleton 1995), emulating the paper's
    Aleph runs (Section 9.1.2).

    LearnClause saturates a seed positive example into a bottom clause
    ⊥ (depth-bounded, Section 6.1) and searches top-down through the
    clauses assembled from head-connected subsets of ⊥'s literals,
    bounded by [clauselength]. The search keeps an open list of the
    [openlist] best states by compression score; [openlist = 1] is
    greedy hill climbing and emulates "Aleph-FOIL", while a wider list
    emulates "Aleph-Progol" (the paper's default-Aleph runs). *)

open Castor_relational
open Castor_logic
open Castor_ilp
module Obs = Castor_obs.Obs

let span_learn = Obs.Span.create "learner.progol"

type params = {
  clauselength : int;
  openlist : int;  (** beam width; 1 = greedy (Aleph-FOIL) *)
  max_nodes : int;  (** explored-state budget per LearnClause *)
  min_precision : float;
  minpos : int;
  max_clauses : int;
  expansions_per_node : int;  (** cap on successors of one state *)
}

let default_params =
  {
    clauselength = 4;
    openlist = 5;
    max_nodes = 400;
    min_precision = 0.67;
    minpos = 2;
    max_clauses = 30;
    expansions_per_node = 60;
  }

(** Emulation presets mirroring the paper's configurations. *)
let aleph_foil ~clauselength =
  { default_params with clauselength; openlist = 1; max_nodes = 200 }

let aleph_progol ~clauselength =
  { default_params with clauselength; openlist = 5; max_nodes = 500 }

type state = {
  chosen : int list;  (** indexes into ⊥'s body, ascending *)
  pos_vec : bool array;
  neg_vec : bool array;
  score : int;
}

let clause_of_state head bottom_body chosen =
  Clause.make head (List.map (fun i -> bottom_body.(i)) chosen)

(* literal i of ⊥ is addable when it shares a variable with the state's
   variables (head vars count). *)
let connected_vars head bottom_body chosen =
  List.fold_left
    (fun acc i -> Term.Set.union acc (Atom.var_set bottom_body.(i)))
    (Atom.var_set head) chosen

let rec learn_clause ?(seed_tries = 8) (prm : params) (p : Problem.t) uncovered =
  (* seed: first uncovered positive example *)
  let seed =
    let n = Array.length uncovered in
    let rec find i =
      if i >= n then None else if uncovered.(i) then Some i else find (i + 1)
    in
    find 0
  in
  match seed with
  | None -> None
  | Some _ when seed_tries <= 0 -> None
  | Some seed_idx ->
      let e = p.Problem.pos_cov.Coverage.examples.(seed_idx) in
      let bottom =
        Bottom.bottom_clause ~params:p.Problem.bottom_params p.Problem.instance e
      in
      let head = bottom.Clause.head in
      let body = Array.of_list bottom.Clause.body in
      let n_lits = Array.length body in
      let all_neg = Array.make (Coverage.length p.Problem.neg_cov) true in
      let eval chosen parent =
        let c = clause_of_state head body chosen in
        let within_pos, within_neg =
          match parent with
          | Some st -> (st.pos_vec, st.neg_vec)
          | None -> (uncovered, all_neg)
        in
        let pv = Coverage.vector ~within:within_pos p.Problem.pos_cov c in
        let nv = Coverage.vector ~within:within_neg p.Problem.neg_cov c in
        let s =
          Scoring.compression ~len:(List.length chosen)
            { Scoring.pos_covered = Coverage.count pv; neg_covered = Coverage.count nv }
        in
        { chosen; pos_vec = pv; neg_vec = nv; score = s }
      in
      let root = eval [] None in
      let best = ref None in
      let consider st =
        let stats =
          {
            Scoring.pos_covered = Coverage.count st.pos_vec;
            neg_covered = Coverage.count st.neg_vec;
          }
        in
        if
          st.chosen <> []
          && Scoring.acceptable ~min_precision:prm.min_precision ~minpos:prm.minpos stats
        then
          match !best with
          | Some b when b.score >= st.score -> ()
          | _ -> best := Some st
      in
      let open_list = ref [ root ] in
      let nodes = ref 0 in
      while !open_list <> [] && !nodes < prm.max_nodes do
        let frontier = !open_list in
        open_list := [];
        let successors = ref [] in
        List.iter
          (fun st ->
            if !nodes < prm.max_nodes then begin
              incr nodes;
              if List.length st.chosen < prm.clauselength then begin
                let vars = connected_vars head body st.chosen in
                let added = ref 0 in
                for i = 0 to n_lits - 1 do
                  if
                    !added < prm.expansions_per_node
                    && (not (List.mem i st.chosen))
                    && (not
                          (Term.Set.is_empty
                             (Term.Set.inter vars (Atom.var_set body.(i)))))
                  then begin
                    incr added;
                    let chosen = List.sort compare (i :: st.chosen) in
                    let child = eval chosen (Some st) in
                    if Coverage.count child.pos_vec > 0 then begin
                      consider child;
                      successors := child :: !successors
                    end
                  end
                done
              end
            end)
          frontier;
        let sorted =
          List.sort (fun a b -> compare b.score a.score) !successors
        in
        let rec take k = function
          | [] -> []
          | _ when k = 0 -> []
          | x :: tl -> x :: take (k - 1) tl
        in
        open_list := take prm.openlist sorted
      done;
      (match !best with
      | None ->
          (* dead seed: retry from the next uncovered positive *)
          let uncovered' = Array.copy uncovered in
          uncovered'.(seed_idx) <- false;
          learn_clause ~seed_tries:(seed_tries - 1) prm p uncovered'
      | Some st ->
          let clause = clause_of_state head body st.chosen in
          let full_pos = Coverage.vector p.Problem.pos_cov clause in
          Some (clause, full_pos))

(** [learn ?params p] runs the covering loop with Progol-style clause
    search. *)
let learn ?(params = default_params) (p : Problem.t) =
  Obs.Span.with_span span_learn @@ fun () ->
  let outcome =
    Covering.run
      ~target:p.Problem.target.Schema.rname
      ~learn_clause:(fun uncovered -> learn_clause params p uncovered)
      ~max_clauses:params.max_clauses
      (Examples.n_pos p.Problem.train)
  in
  outcome.Covering.definition

(* ------------------------- unified API --------------------------- *)

let params_of_config ~emulation (c : Learner.config) =
  let base =
    match emulation with
    | `Foil -> aleph_foil ~clauselength:c.Learner.clauselength
    | `Progol -> aleph_progol ~clauselength:c.Learner.clauselength
  in
  {
    base with
    min_precision = c.Learner.min_precision;
    minpos = c.Learner.minpos;
    max_clauses = c.Learner.max_clauses;
  }

(* both Aleph emulations default to clauselength 8, the CLI's
   historical setting *)
let aleph_defaults = { Learner.default_config with Learner.clauselength = 8 }

(** Greedy Aleph (FOIL-emulation) behind the unified {!Learner.S}
    surface. *)
module Unified_aleph_foil : Learner.S =
  (val Learner.make ~name:"aleph-foil" ~defaults:aleph_defaults
         (fun c p -> learn ~params:(params_of_config ~emulation:`Foil c) p))

(** Default Aleph (Progol-emulation) behind the unified {!Learner.S}
    surface. *)
module Unified_aleph_progol : Learner.S =
  (val Learner.make ~name:"aleph-progol" ~defaults:aleph_defaults
         (fun c p -> learn ~params:(params_of_config ~emulation:`Progol c) p))

let () =
  Learner.register (module Unified_aleph_foil);
  Learner.register (module Unified_aleph_progol)
