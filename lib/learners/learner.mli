(** The unified learner-facing API.

    Every learner in the repository — FOIL, the two Aleph emulations
    built on Progol's search, Golem, ProGolem and Castor — historically
    grew its own [learn ?params] entry point with a learner-specific
    parameter record. This module collapses them behind one surface:

    - a shared {!config} record covering the knobs the experiments
      actually vary (clause length, precision/coverage thresholds,
      sampling and beam widths, safety, parallel coverage domains);
    - a single module type {!S} every learner implements;
    - a registry, so callers select learners by name
      ([Learner.find "foil"]) instead of pattern-matching names at
      every call site.

    The old per-learner [learn ?params] functions remain available and
    are what the [S] implementations delegate to. *)

open Castor_relational
open Castor_logic

(** The shared configuration record. Each learner reads the fields
    that apply to it and ignores the rest; learner-specific defaults
    live in each implementation's {!S.default_config}. *)
type config = {
  clauselength : int;
      (** max body literals of a candidate clause (top-down learners) *)
  min_precision : float;  (** the paper's minprec = 0.67 *)
  minpos : int;  (** minimum positives a clause must cover *)
  max_clauses : int;  (** covering-loop cap *)
  sample : int;  (** K — example-sampling budget (bottom-up learners) *)
  beam : int;  (** N — beam width (ProGolem, Castor) *)
  safe : bool;  (** emit only safe clauses (Section 7.3) *)
  domains : int;  (** parallel coverage-test domains *)
  backend : Backend.spec option;
      (** storage substrate the coverage structures are re-based onto
          for the run ([None]: keep whatever the problem was built
          with); restored afterwards *)
}

(** [clauselength 6, min_precision 0.67, minpos 2, max_clauses 30,
    sample 5, beam 2, safe false, domains 1, backend None]. *)
val default_config : config

(** What a unified learning run returns: the definition plus run
    provenance. *)
module Report : sig
  type t = {
    learner : string;  (** registry name of the learner that ran *)
    definition : Clause.definition;
    seconds : float;  (** wall-clock learning time *)
  }

  val pp : Format.formatter -> t -> unit
end

(** The one module type every learner implements. [learn ?gate]
    re-runs the pre-learning static analysis over the problem through
    the shared [`Off | `Warn | `Strict] gate (default: no re-check —
    {!Problem.make} already gated construction). *)
module type S = sig
  val name : string

  val default_config : config

  val learn : ?gate:Problem.gate -> ?config:config -> Problem.t -> Report.t
end

exception Unknown_learner of string

(** [register l] adds [l] to the registry under [l.name] (lowercased;
    last registration wins). Learner modules self-register at module
    initialization. *)
val register : (module S) -> unit

(** [find name] looks a learner up by (case-insensitive) name.
    @raise Unknown_learner when no learner registered under [name]. *)
val find : string -> (module S)

val find_opt : string -> (module S) option

(** Registered names, sorted. *)
val names : unit -> string list

(** [learn ~name ?gate ?config p] — one-call convenience:
    [find name] and run it. *)
val learn : name:string -> ?gate:Problem.gate -> ?config:config -> Problem.t -> Report.t

(** [make ~name ?defaults run] builds an {!S} implementation from a
    plain [config -> problem -> definition] function, adding the
    shared run protocol: the optional re-analysis gate, coverage
    fan-out over [config.domains] and re-basing onto [config.backend]
    (both restored afterwards), wall-clock timing, and the
    [learners.api.runs] counter. *)
val make :
  name:string ->
  ?defaults:config ->
  (config -> Problem.t -> Clause.definition) ->
  (module S)
