(** FOIL (Quinlan 1990) — the classic greedy top-down learner
    analyzed in Section 5.

    Each clause starts from the most general head and repeatedly adds
    the candidate literal with the best information gain, until the
    clause covers no negatives or the [clauselength] bound is hit.
    Candidate literals mention at least one variable already in the
    clause (typed by attribute domains); positions whose domain has a
    constant pool may also be specialized to a constant — which is
    exactly what lets FOIL pick [yearsInProgram(x, 7)] in Example 1.1
    and what makes its hypothesis space schema dependent
    (Theorem 5.1). *)

open Castor_relational
open Castor_logic
open Castor_ilp
module Obs = Castor_obs.Obs

let span_learn = Obs.Span.create "learner.foil"

type params = {
  clauselength : int;  (** max literals per clause, head excluded *)
  min_precision : float;  (** the paper's aaccur = 0.67 *)
  minpos : int;
  max_candidates : int;  (** cap on candidate literals per step *)
  max_clauses : int;
}

let default_params =
  {
    clauselength = 6;
    min_precision = 0.67;
    minpos = 2;
    max_candidates = 4000;
    max_clauses = 30;
  }

(* Typed variables available in the clause so far, in order. *)
let clause_vars (h, hd) bs =
  let add acc (a : Atom.t) domains =
    List.fold_left2
      (fun acc t d ->
        match t with
        | Term.Var v when not (List.mem_assoc v acc) -> acc @ [ (v, d) ]
        | _ -> acc)
      acc
      (Array.to_list a.Atom.args)
      domains
  in
  List.fold_left (fun acc (a, ds) -> add acc a ds) (add [] h hd) bs

(** Enumerate candidate literals for the next refinement step. *)
let candidates schema const_pool vars fresh_base max_candidates =
  let out = ref [] in
  let count = ref 0 in
  let fresh_id = ref 0 in
  let push a =
    if !count < max_candidates then begin
      out := a :: !out;
      incr count
    end
  in
  List.iter
    (fun (r : Schema.relation) ->
      (* argument options per position: same-domain vars, or fresh *)
      let options =
        List.map
          (fun (at : Schema.attribute) ->
            let same = List.filter (fun (_, d) -> String.equal d at.Schema.domain) vars in
            (at, List.map (fun (v, _) -> Term.Var v) same))
          r.Schema.attrs
      in
      let rec build acc used_existing = function
        | [] ->
            if used_existing then begin
              let args = List.rev acc in
              push (Atom.make r.Schema.rname args);
              (* constant variants: replace each fresh-var position
                 whose domain has a pool by each pool constant *)
              List.iteri
                (fun i t ->
                  match t with
                  | Term.Var v when String.length v > 1 && v.[0] = '_' -> (
                      let at = List.nth r.Schema.attrs i in
                      match List.assoc_opt at.Schema.domain const_pool with
                      | Some consts ->
                          List.iter
                            (fun c ->
                              push
                                (Atom.make r.Schema.rname
                                   (List.mapi
                                      (fun j t' -> if j = i then Term.Const c else t')
                                      args)))
                            consts
                      | None -> ())
                  | _ -> ())
                args
            end
        | (_, opts) :: rest ->
            List.iter (fun t -> build (t :: acc) true rest) opts;
            let v = Printf.sprintf "_%s%d" fresh_base !fresh_id in
            incr fresh_id;
            build (Term.Var v :: acc) used_existing rest
      in
      build [] false options)
    schema.Schema.relations;
  List.rev !out

let learn_clause (prm : params) (p : Problem.t) uncovered =
  let schema = Instance.schema p.Problem.instance in
  let head = Problem.head p in
  let head_doms = Problem.head_domains p in
  let domains_of rel = Schema.domains schema rel in
  let rec grow body pos_vec neg_vec step =
    let pos_n = Coverage.count pos_vec and neg_n = Coverage.count neg_vec in
    if neg_n = 0 || step >= prm.clauselength then (body, pos_vec, neg_vec)
    else begin
      let vars =
        clause_vars (head, head_doms)
          (List.map (fun (a : Atom.t) -> (a, domains_of a.Atom.rel)) body)
      in
      let cands =
        candidates schema p.Problem.const_pool vars
          (Printf.sprintf "s%d" step)
          prm.max_candidates
      in
      let before = { Scoring.pos_covered = pos_n; neg_covered = neg_n } in
      let best = ref None in
      (* fallback when no candidate has information gain: the most
         precise strict reduction of negative coverage — FOIL keeps
         specializing while the clause covers negatives *)
      let fallback = ref None in
      List.iter
        (fun lit ->
          let body' = body @ [ lit ] in
          let c = Clause.make head body' in
          let pv = Coverage.vector ~within:pos_vec p.Problem.pos_cov c in
          let p1 = Coverage.count pv in
          if p1 > 0 then begin
            let nv = Coverage.vector ~within:neg_vec p.Problem.neg_cov c in
            let after = { Scoring.pos_covered = p1; neg_covered = Coverage.count nv } in
            let gain = Scoring.foil_gain ~before ~after in
            (match !best with
            | Some (bg, ba, _, _, _) when bg > gain || (bg = gain && ba.Scoring.pos_covered >= p1)
              -> ()
            | _ -> if gain > 0.001 then best := Some (gain, after, [ lit ], pv, nv));
            if p1 >= prm.minpos && after.Scoring.neg_covered < neg_n then begin
              let prec = Scoring.precision after in
              match !fallback with
              | Some (bp, ba, _, _, _)
                when bp > prec
                     || (bp = prec && ba.Scoring.pos_covered >= p1) -> ()
              | _ -> fallback := Some (prec, after, [ lit ], pv, nv)
            end
          end)
        cands;
      if !best = None then best := !fallback;
      (* Plateau: no single literal gains or cuts negatives. FOIL's
         determinate-literal mechanism is approximated by a bounded
         two-literal lookahead — add a variable-introducing literal
         together with one consumer of its fresh variables (the
         co-publication pattern needs exactly this). *)
      if !best = None && step + 2 <= prm.clauselength then begin
        let budget = ref 400 in
        let consider lit1 lit2 =
          if !budget > 0 then begin
            decr budget;
            let c = Clause.make head (body @ [ lit1; lit2 ]) in
            let pv = Coverage.vector ~within:pos_vec p.Problem.pos_cov c in
            let p1 = Coverage.count pv in
            if p1 >= prm.minpos then begin
              let nv = Coverage.vector ~within:neg_vec p.Problem.neg_cov c in
              let after =
                { Scoring.pos_covered = p1; neg_covered = Coverage.count nv }
              in
              if after.Scoring.neg_covered < neg_n then begin
                let gain = Scoring.foil_gain ~before ~after in
                match !best with
                | Some (bg, _, _, _, _) when bg >= gain -> ()
                | _ -> best := Some (gain, after, [ lit1; lit2 ], pv, nv)
              end
            end
          end
        in
        List.iter
          (fun lit1 ->
            let fresh1 =
              List.filter (fun v -> String.length v > 0 && v.[0] = '_') (Atom.vars lit1)
            in
            if fresh1 <> [] then begin
              let vars1 =
                vars
                @ List.filter_map
                    (fun v ->
                      let rec pos_of i = function
                        | [] -> None
                        | Term.Var v' :: _ when String.equal v v' -> Some i
                        | _ :: tl -> pos_of (i + 1) tl
                      in
                      match pos_of 0 (Array.to_list lit1.Atom.args) with
                      | Some i ->
                          let doms = domains_of lit1.Atom.rel in
                          Some (v, List.nth doms i)
                      | None -> None)
                    fresh1
              in
              let cands2 =
                candidates schema p.Problem.const_pool vars1
                  (Printf.sprintf "t%d" step)
                  200
              in
              List.iter
                (fun lit2 ->
                  if List.exists (fun v -> List.mem v fresh1) (Atom.vars lit2) then
                    consider lit1 lit2)
                cands2
            end)
          cands
      end;
      match !best with
      | None -> (body, pos_vec, neg_vec)
      | Some (gain, after, lits, pv, nv) ->
          if Sys.getenv_opt "FOIL_DEBUG" <> None then
            Fmt.epr "[foil] step %d: + %a (gain %.2f, p=%d n=%d)@." step
              Fmt.(list ~sep:comma Atom.pp)
              lits gain after.Scoring.pos_covered after.Scoring.neg_covered;
          grow (body @ lits) pv nv (step + List.length lits)
    end
  in
  let pos_vec0 = uncovered in
  let neg_vec0 = Array.make (Coverage.length p.Problem.neg_cov) true in
  let body, pos_vec, neg_vec = grow [] pos_vec0 neg_vec0 0 in
  let stats =
    {
      Scoring.pos_covered = Coverage.count pos_vec;
      neg_covered = Coverage.count neg_vec;
    }
  in
  if body = [] then None
  else if not (Scoring.acceptable ~min_precision:prm.min_precision ~minpos:prm.minpos stats)
  then None
  else
    let clause = Clause.make head body in
    (* full positive coverage (not restricted to uncovered) for the
       covering loop's bookkeeping *)
    let full_pos = Coverage.vector p.Problem.pos_cov clause in
    Some (clause, full_pos)

(** [learn ?params p] runs FOIL's covering loop. *)
let learn ?(params = default_params) (p : Problem.t) =
  Obs.Span.with_span span_learn @@ fun () ->
  let outcome =
    Covering.run
      ~target:p.Problem.target.Schema.rname
      ~learn_clause:(fun uncovered -> learn_clause params p uncovered)
      ~max_clauses:params.max_clauses
      (Examples.n_pos p.Problem.train)
  in
  outcome.Covering.definition

(* ------------------------- unified API --------------------------- *)

let params_of_config (c : Learner.config) =
  {
    default_params with
    clauselength = c.Learner.clauselength;
    min_precision = c.Learner.min_precision;
    minpos = c.Learner.minpos;
    max_clauses = c.Learner.max_clauses;
  }

(** FOIL behind the unified {!Learner.S} surface. *)
module Unified : Learner.S =
  (val Learner.make ~name:"foil" (fun c p -> learn ~params:(params_of_config c) p))

let () = Learner.register (module Unified)
