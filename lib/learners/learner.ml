(** Unified learner API: shared config, module type, registry. See the
    interface for the design rationale. *)

open Castor_relational
open Castor_logic
open Castor_ilp
module Obs = Castor_obs.Obs

type config = {
  clauselength : int;
  min_precision : float;
  minpos : int;
  max_clauses : int;
  sample : int;
  beam : int;
  safe : bool;
  domains : int;
  backend : Backend.spec option;
}

let default_config =
  {
    clauselength = 6;
    min_precision = 0.67;
    minpos = 2;
    max_clauses = 30;
    sample = 5;
    beam = 2;
    safe = false;
    domains = 1;
    backend = None;
  }

module Report = struct
  type t = { learner : string; definition : Clause.definition; seconds : float }

  let pp ppf r =
    Fmt.pf ppf "@[<v>%s learned %d clause(s) in %.2fs:@,%a@]" r.learner
      (List.length r.definition.Clause.clauses)
      r.seconds Clause.pp_definition r.definition
end

module type S = sig
  val name : string

  val default_config : config

  val learn : ?gate:Problem.gate -> ?config:config -> Problem.t -> Report.t
end

exception Unknown_learner of string

let () =
  Printexc.register_printer (function
    | Unknown_learner n -> Some (Fmt.str "Unknown_learner %S" n)
    | _ -> None)

let registry : (string, (module S)) Hashtbl.t = Hashtbl.create 16

let canonical = String.lowercase_ascii

let register (module L : S) = Hashtbl.replace registry (canonical L.name) (module L : S)

let find_opt name = Hashtbl.find_opt registry (canonical name)

let find name =
  match find_opt name with
  | Some l -> l
  | None -> raise (Unknown_learner name)

let names () =
  Hashtbl.fold (fun k _ acc -> k :: acc) registry [] |> List.sort compare

let learn ~name ?gate ?config p =
  let module L = (val find name) in
  L.learn ?gate ?config p

let c_runs = Obs.Counter.create "learners.api.runs"

(* The shared run protocol every [make]-built learner follows: optional
   re-analysis gate, coverage fan-out over the configured domain count
   and re-basing onto the configured storage backend (both restored on
   exit, including on exceptions), wall-clock timing. *)
let make ~name ?(defaults = default_config) run : (module S) =
  (module struct
    let name = name

    let default_config = defaults

    let learn ?gate ?(config = defaults) (p : Problem.t) =
      Obs.Counter.incr c_runs;
      (match gate with Some g -> Problem.recheck ~gate:g p | None -> ());
      Coverage.set_domains p.Problem.pos_cov config.domains;
      Coverage.set_domains p.Problem.neg_cov config.domains;
      let prev_pos = Coverage.backend_spec p.Problem.pos_cov in
      let prev_neg = Coverage.backend_spec p.Problem.neg_cov in
      (match config.backend with
      | Some spec ->
          Coverage.set_backend p.Problem.pos_cov spec;
          Coverage.set_backend p.Problem.neg_cov spec
      | None -> ());
      Fun.protect
        ~finally:(fun () ->
          Coverage.set_domains p.Problem.pos_cov 1;
          Coverage.set_domains p.Problem.neg_cov 1;
          Coverage.set_backend p.Problem.pos_cov prev_pos;
          Coverage.set_backend p.Problem.neg_cov prev_neg)
      @@ fun () ->
      let t0 = Unix.gettimeofday () in
      let definition = run config p in
      { Report.learner = name; definition; seconds = Unix.gettimeofday () -. t0 }
  end)
