(** Domain-safe observability: metrics and tracing for the learning
    hot paths.

    The paper's evaluation hinges on knowing where learning time goes
    — coverage tests "dominate the time for learning" (Section 7.5.3)
    — and this repo fans coverage tests out over OCaml domains, so the
    instrumentation itself must be race-free or the numbers are noise.
    Every instrument lives in a central registry and is rendered by
    {!report} (text) and {!to_json} (JSON), which the benches and the
    CLI consume.

    Concurrency contract:

    - {!Counter.incr} writes a {e domain-local} scratch cell — no
      contention on the hot path. Worker domains must call {!flush} at
      task boundaries (the {!module:Parallel} pool does); after the
      tasks of all domains have completed and flushed, totals read by
      {!Counter.value} are exact, not approximate.
    - {!Span} and {!Reservoir} updates go straight to [Atomic]/mutex
      state; they are exact at any time.
    - Instruments are registered at module-initialization time, before
      any worker domain exists; creating instruments while other
      domains are already recording is not supported.
    - {!reset} assumes no parallel tasks are in flight. *)

module Counter : sig
  type t

  (** [create name] registers a counter. [name] must be unique;
      re-registering a name returns the existing counter. *)
  val create : ?help:string -> string -> t

  val incr : t -> unit

  val add : t -> int -> unit

  (** [value c] flushes the calling domain's scratch and returns the
      total. Exact once concurrent tasks have completed (their pool
      flushes at task boundaries). *)
  val value : t -> int

  val reset : t -> unit

  val name : t -> string
end

module Span : sig
  (** A named monotonic timer: cumulative time, call count, and a
      log-bucketed latency histogram. *)
  type t

  val create : ?help:string -> string -> t

  (** [with_span s f] times [f ()] on the monotonic clock, recording
      even when [f] raises. *)
  val with_span : t -> (unit -> 'a) -> 'a

  (** [record_ns s ns] records an externally measured duration. *)
  val record_ns : t -> int -> unit

  val count : t -> int

  (** Cumulative seconds. *)
  val total_s : t -> float

  (** [quantile s q] approximates the [q]-quantile (0 ≤ q ≤ 1) of the
      recorded durations in seconds, from the log-bucketed histogram
      (the estimate is the geometric midpoint of the bucket containing
      the rank, so it is within a factor √2). NaN when empty. *)
  val quantile : t -> float -> float

  (** Largest recorded duration in seconds; 0 when empty. *)
  val max_s : t -> float

  val reset : t -> unit

  val name : t -> string
end

module Reservoir : sig
  (** Keeps the [capacity] slowest labelled events seen since the last
      reset — the diagnosis tool for "which clauses made coverage
      testing slow". *)
  type t

  val create : ?help:string -> ?capacity:int -> string -> t

  (** [note r seconds label] offers an event; kept only if it is among
      the slowest seen. Cheap (no lock) when it is not. *)
  val note : t -> float -> string -> unit

  (** Slowest first. *)
  val slowest : t -> (float * string) list

  val reset : t -> unit

  val name : t -> string
end

(** Flush the calling domain's counter scratch into the shared
    totals. Worker pools call this at task boundaries. *)
val flush : unit -> unit

(** Zero every registered instrument. Call between measurements, with
    no parallel tasks in flight. *)
val reset : unit -> unit

(** Human-readable metrics block: non-zero counters, active spans with
    count / total / mean / p50 / p90 / p99 / max, reservoir heads. *)
val report : unit -> string

(** The full registry as a JSON object:
    [{"counters":{...},"spans":[...],"reservoirs":[...]}]. *)
val to_json : unit -> string
