(* See obs.mli for the concurrency contract. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let registry_mutex = Mutex.create ()

(* ---------------------------------------------------------------- *)
(* Counters: Atomic totals + per-domain scratch                      *)
(* ---------------------------------------------------------------- *)

module Counter = struct
  type t = { name : string; help : string; id : int; total : int Atomic.t }

  (* registration order; read-only once workers run *)
  let registered : t list ref = ref []

  let next_id = Atomic.make 0

  (* Scratch cells of the calling domain, indexed by counter id. The
     array is grown lazily, so a domain spawned before the last
     registration still sees every counter. *)
  let scratch_key : int array Domain.DLS.key =
    Domain.DLS.new_key (fun () -> [||])

  let scratch () =
    let n = Atomic.get next_id in
    let a = Domain.DLS.get scratch_key in
    if Array.length a >= n then a
    else begin
      let b = Array.make n 0 in
      Array.blit a 0 b 0 (Array.length a);
      Domain.DLS.set scratch_key b;
      b
    end

  let flush () =
    let a = Domain.DLS.get scratch_key in
    List.iter
      (fun c ->
        if c.id < Array.length a && a.(c.id) <> 0 then begin
          ignore (Atomic.fetch_and_add c.total a.(c.id));
          a.(c.id) <- 0
        end)
      !registered

  let create ?(help = "") name =
    Mutex.lock registry_mutex;
    let c =
      match List.find_opt (fun c -> String.equal c.name name) !registered with
      | Some c -> c
      | None ->
          let c =
            { name; help; id = Atomic.fetch_and_add next_id 1; total = Atomic.make 0 }
          in
          registered := !registered @ [ c ];
          c
    in
    Mutex.unlock registry_mutex;
    c

  let add c n =
    let a = scratch () in
    a.(c.id) <- a.(c.id) + n

  let incr c = add c 1

  let value c =
    flush ();
    Atomic.get c.total

  let reset c =
    let a = scratch () in
    if c.id < Array.length a then a.(c.id) <- 0;
    Atomic.set c.total 0

  let name c = c.name
end

(* ---------------------------------------------------------------- *)
(* Spans: monotonic timers with log-bucketed latency histograms      *)
(* ---------------------------------------------------------------- *)

module Span = struct
  (* bucket i holds durations whose bit length is i, i.e. ns in
     [2^(i-1), 2^i); 63 buckets cover the whole positive int range *)
  let n_buckets = 63

  type t = {
    name : string;
    help : string;
    count : int Atomic.t;
    total_ns : int Atomic.t;
    max_ns : int Atomic.t;
    buckets : int Atomic.t array;
  }

  let registered : t list ref = ref []

  let create ?(help = "") name =
    Mutex.lock registry_mutex;
    let s =
      match List.find_opt (fun s -> String.equal s.name name) !registered with
      | Some s -> s
      | None ->
          let s =
            {
              name;
              help;
              count = Atomic.make 0;
              total_ns = Atomic.make 0;
              max_ns = Atomic.make 0;
              buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
            }
          in
          registered := !registered @ [ s ];
          s
    in
    Mutex.unlock registry_mutex;
    s

  let bucket_of ns =
    (* bit length of ns: 0 -> 0, [2^(i-1), 2^i) -> i *)
    let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
    min (n_buckets - 1) (go 0 ns)

  (* geometric midpoint of bucket i, in ns *)
  let bucket_mid i =
    if i = 0 then 0. else Float.of_int (1 lsl (i - 1)) *. sqrt 2.

  let record_ns s ns =
    let ns = max 0 ns in
    ignore (Atomic.fetch_and_add s.count 1);
    ignore (Atomic.fetch_and_add s.total_ns ns);
    ignore (Atomic.fetch_and_add s.buckets.(bucket_of ns) 1);
    let rec bump () =
      let cur = Atomic.get s.max_ns in
      if ns > cur && not (Atomic.compare_and_set s.max_ns cur ns) then bump ()
    in
    bump ()

  let with_span s f =
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> record_ns s (now_ns () - t0)) f

  let count s = Atomic.get s.count

  let total_s s = Float.of_int (Atomic.get s.total_ns) *. 1e-9

  let quantile s q =
    let total = count s in
    if total = 0 then Float.nan
    else begin
      let rank = Float.to_int (ceil (q *. Float.of_int total)) in
      let rank = max 1 (min total rank) in
      let acc = ref 0 and result = ref (Float.of_int (Atomic.get s.max_ns)) in
      (try
         for i = 0 to n_buckets - 1 do
           acc := !acc + Atomic.get s.buckets.(i);
           if !acc >= rank then begin
             result := bucket_mid i;
             raise Exit
           end
         done
       with Exit -> ());
      !result *. 1e-9
    end

  let max_s s = Float.of_int (Atomic.get s.max_ns) *. 1e-9

  let reset s =
    Atomic.set s.count 0;
    Atomic.set s.total_ns 0;
    Atomic.set s.max_ns 0;
    Array.iter (fun b -> Atomic.set b 0) s.buckets

  let name s = s.name
end

(* ---------------------------------------------------------------- *)
(* Reservoirs: the K slowest labelled events                         *)
(* ---------------------------------------------------------------- *)

module Reservoir = struct
  type t = {
    name : string;
    help : string;
    capacity : int;
    lock : Mutex.t;
    mutable items : (float * string) list;  (** sorted slowest first *)
    floor : float Atomic.t;
        (** smallest kept duration once full: lock-free fast reject *)
  }

  let registered : t list ref = ref []

  let create ?(help = "") ?(capacity = 40) name =
    Mutex.lock registry_mutex;
    let r =
      match List.find_opt (fun r -> String.equal r.name name) !registered with
      | Some r -> r
      | None ->
          let r =
            {
              name;
              help;
              capacity;
              lock = Mutex.create ();
              items = [];
              floor = Atomic.make neg_infinity;
            }
          in
          registered := !registered @ [ r ];
          r
    in
    Mutex.unlock registry_mutex;
    r

  let note r dt label =
    if dt > Atomic.get r.floor then begin
      Mutex.lock r.lock;
      let rec insert = function
        | [] -> [ (dt, label) ]
        | (d, _) :: _ as rest when dt >= d -> (dt, label) :: rest
        | kept :: rest -> kept :: insert rest
      in
      let items = insert r.items in
      let items =
        if List.length items > r.capacity then
          List.filteri (fun i _ -> i < r.capacity) items
        else items
      in
      r.items <- items;
      if List.length items >= r.capacity then
        (match List.rev items with
        | (d, _) :: _ -> Atomic.set r.floor d
        | [] -> ());
      Mutex.unlock r.lock
    end

  let slowest r =
    Mutex.lock r.lock;
    let out = r.items in
    Mutex.unlock r.lock;
    out

  let reset r =
    Mutex.lock r.lock;
    r.items <- [];
    Atomic.set r.floor neg_infinity;
    Mutex.unlock r.lock

  let name r = r.name
end

(* ---------------------------------------------------------------- *)
(* Registry-wide operations                                          *)
(* ---------------------------------------------------------------- *)

let flush = Counter.flush

let reset () =
  flush ();
  List.iter Counter.reset !Counter.registered;
  List.iter Span.reset !Span.registered;
  List.iter Reservoir.reset !Reservoir.registered

let report () =
  flush ();
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let counters =
    List.filter (fun c -> Atomic.get c.Counter.total <> 0) !Counter.registered
  in
  let spans = List.filter (fun s -> Span.count s > 0) !Span.registered in
  let reservoirs =
    List.filter (fun r -> Reservoir.slowest r <> []) !Reservoir.registered
  in
  if counters = [] && spans = [] && reservoirs = [] then
    Buffer.add_string buf "(no recorded metrics)\n"
  else begin
    if counters <> [] then begin
      pf "counters:\n";
      List.iter
        (fun c -> pf "  %-34s %12d\n" c.Counter.name (Atomic.get c.Counter.total))
        counters
    end;
    if spans <> [] then begin
      pf "spans:%43s %10s %10s %10s %10s %10s\n" "count" "total s" "mean us"
        "p50 us" "p99 us" "max us";
      List.iter
        (fun s ->
          let n = Span.count s in
          let mean_us = Span.total_s s /. Float.of_int n *. 1e6 in
          pf "  %-40s %7d %10.3f %10.1f %10.1f %10.1f %10.1f\n" (Span.name s) n
            (Span.total_s s) mean_us
            (Span.quantile s 0.5 *. 1e6)
            (Span.quantile s 0.99 *. 1e6)
            (Span.max_s s *. 1e6))
        spans
    end;
    List.iter
      (fun r ->
        pf "slowest events (%s):\n" (Reservoir.name r);
        List.iteri
          (fun i (dt, label) ->
            if i < 10 then pf "  %8.4fs  %s\n" dt label)
          (Reservoir.slowest r))
      reservoirs
  end;
  Buffer.contents buf

(* minimal JSON encoder; labels may contain arbitrary bytes *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers may not be nan/inf; quantiles of empty spans are *)
let json_float f =
  if Float.is_finite f then Printf.sprintf "%.9g" f else "null"

let to_json () =
  flush ();
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "{\"counters\":{";
  List.iteri
    (fun i c ->
      pf "%s\"%s\":%d"
        (if i > 0 then "," else "")
        (json_escape c.Counter.name)
        (Atomic.get c.Counter.total))
    !Counter.registered;
  pf "},\"spans\":[";
  List.iteri
    (fun i s ->
      pf
        "%s{\"name\":\"%s\",\"count\":%d,\"total_s\":%s,\"p50_s\":%s,\"p90_s\":%s,\"p99_s\":%s,\"max_s\":%s}"
        (if i > 0 then "," else "")
        (json_escape (Span.name s))
        (Span.count s)
        (json_float (Span.total_s s))
        (json_float (Span.quantile s 0.5))
        (json_float (Span.quantile s 0.9))
        (json_float (Span.quantile s 0.99))
        (json_float (Span.max_s s)))
    !Span.registered;
  pf "],\"reservoirs\":[";
  List.iteri
    (fun i r ->
      pf "%s{\"name\":\"%s\",\"events\":["
        (if i > 0 then "," else "")
        (json_escape (Reservoir.name r));
      List.iteri
        (fun j (dt, label) ->
          pf "%s{\"seconds\":%s,\"label\":\"%s\"}"
            (if j > 0 then "," else "")
            (json_float dt) (json_escape label))
        (Reservoir.slowest r);
      pf "]}")
    !Reservoir.registered;
  pf "]}";
  Buffer.contents buf
