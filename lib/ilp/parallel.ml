(** Work-sharing across OCaml domains, used to parallelize coverage
    tests (Section 7.5.3: "Castor divides E in subsets and performs
    coverage testing for each subset in parallel").

    Workers are long-lived domains fed from a shared task queue, so
    the per-call overhead is a few condition-variable signals rather
    than domain spawns. When the runtime reports a single hardware
    thread, requests for parallelism fall back to sequential
    evaluation — extra domains can only add overhead there (the
    Figure 2 experiment records exactly this on single-core hosts). *)

module Obs = Castor_obs.Obs

type task = unit -> unit

let queue : task Queue.t = Queue.create ()

let mutex = Mutex.create ()

let nonempty = Condition.create ()

let n_workers = ref 0

let worker () =
  while true do
    Mutex.lock mutex;
    while Queue.is_empty queue do
      Condition.wait nonempty mutex
    done;
    let t = Queue.pop queue in
    Mutex.unlock mutex;
    (* a raising task must not kill the worker; the caller detects the
       missing result *)
    (try t () with _ -> ())
  done

(* Workers are daemons: they hold no resources that need cleanup, and
   process exit tears them down. *)
let ensure_workers n =
  while !n_workers < n do
    incr n_workers;
    ignore (Domain.spawn worker)
  done

let submit t =
  Mutex.lock mutex;
  Queue.push t queue;
  Condition.signal nonempty;
  Mutex.unlock mutex

(** Number of hardware threads reported by the runtime. *)
let recommended_domains () = Domain.recommended_domain_count ()

(** [init ~domains n f] is [Array.init n f] computed by up to
    [domains] domains, worker [k] taking indices k, k+d, k+2d, ... —
    strided, because expensive tests cluster (e.g. the failing
    negatives of a coverage vector). [f] must be thread-safe (coverage
    tests are pure). Falls back to sequential evaluation for tiny
    arrays and on single-core hosts; [force] overrides the single-core
    fallback (tests use it to exercise real worker domains).

    If [f] raises, the first exception is re-raised in the caller
    after every worker has finished its task, so the pool is left
    clean for later calls.

    Each task flushes the worker's domain-local {!Obs} counter scratch
    before signalling completion, so counter totals read after [init]
    returns are exact. *)
let init ?(force = false) ~domains n (f : int -> 'b) : 'b array =
  let domains = if force then domains else min domains (recommended_domains ()) in
  if domains <= 1 || n < 8 then Array.init n f
  else begin
    let d = min domains ((n + 7) / 8) in
    ensure_workers (d - 1);
    let results : 'b option array = Array.make n None in
    let remaining = ref (d - 1) in
    let done_m = Mutex.create () in
    let done_cv = Condition.create () in
    let failure : exn option Atomic.t = Atomic.make None in
    let note_exn e = ignore (Atomic.compare_and_set failure None (Some e)) in
    let compute k =
      try
        let i = ref k in
        while !i < n do
          results.(!i) <- Some (f !i);
          i := !i + d
        done
      with e -> note_exn e
    in
    for k = 1 to d - 1 do
      submit (fun () ->
          (* decrement even if [f] raised, so the caller never hangs;
             flush counter scratch first so totals are exact once the
             caller resumes *)
          Fun.protect
            ~finally:(fun () ->
              Obs.flush ();
              Mutex.lock done_m;
              decr remaining;
              Condition.signal done_cv;
              Mutex.unlock done_m)
            (fun () -> compute k))
    done;
    compute 0;
    Mutex.lock done_m;
    while !remaining > 0 do
      Condition.wait done_cv done_m
    done;
    Mutex.unlock done_m;
    match Atomic.get failure with
    | Some e -> raise e
    | None ->
        Array.map
          (function Some v -> v | None -> assert false)
          results
  end

(** [map ~domains f arr] maps in parallel. *)
let map ?force ~domains f arr =
  init ?force ~domains (Array.length arr) (fun i -> f arr.(i))
