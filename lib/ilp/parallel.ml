(** Work-sharing across OCaml domains, used to parallelize coverage
    tests (Section 7.5.3: "Castor divides E in subsets and performs
    coverage testing for each subset in parallel").

    Workers are long-lived domains fed from a shared task queue, so
    the per-call overhead is a few condition-variable signals rather
    than domain spawns. When the runtime reports a single hardware
    thread, requests for parallelism fall back to sequential
    evaluation — extra domains can only add overhead there (the
    Figure 2 experiment records exactly this on single-core hosts). *)

module Obs = Castor_obs.Obs

(* [tasks] counts the worker-side task closures actually submitted to
   the pool — zero when a call fell back to sequential evaluation, so
   tests can assert that forced parallelism really fanned out. *)
let c_tasks = Obs.Counter.create "ilp.parallel.tasks"

(* chunks pulled from the shared cursor, across caller and workers *)
let c_chunks = Obs.Counter.create "ilp.parallel.chunks"

type task = unit -> unit

let queue : task Queue.t = Queue.create ()

let mutex = Mutex.create ()

let nonempty = Condition.create ()

(* read/CAS'd by the caller in [ensure_workers] while dying workers
   decrement concurrently, so it must be atomic rather than a ref *)
let n_workers = Atomic.make 0

(* Asynchronous/fatal exceptions must not be swallowed: a worker that
   ran out of memory or stack is in an unknown state and its domain
   must die (and be respawned on the next [ensure_workers]). *)
let is_fatal = function Out_of_memory | Stack_overflow -> true | _ -> false

let worker () =
  while true do
    Mutex.lock mutex;
    while Queue.is_empty queue do
      Condition.wait nonempty mutex
    done;
    let t = Queue.pop queue in
    Mutex.unlock mutex;
    (* an ordinary raising task must not kill the worker — the task
       wrapper in [init] routes its exception through [note_exn] and
       the caller detects the missing result; fatal exceptions
       re-raise and terminate the domain *)
    try t () with
    | e when is_fatal e ->
        Atomic.decr n_workers;
        raise e
    | _ -> ()
  done

(* Workers are daemons: they hold no resources that need cleanup, and
   process exit tears them down. The CAS loop claims each slot before
   spawning, so a concurrent fatal-death decrement can never be lost
   and the pool can never overshoot [n]. *)
let rec ensure_workers n =
  let cur = Atomic.get n_workers in
  if cur < n then
    if Atomic.compare_and_set n_workers cur (cur + 1) then begin
      ignore (Domain.spawn worker);
      ensure_workers n
    end
    else ensure_workers n

let submit t =
  Mutex.lock mutex;
  Queue.push t queue;
  Condition.signal nonempty;
  Mutex.unlock mutex

(** Number of hardware threads reported by the runtime. *)
let recommended_domains () = Domain.recommended_domain_count ()

(** [init ~domains n f] is [Array.init n f] computed by up to
    [domains] domains. Indices are handed out in chunks from a shared
    atomic cursor, so expensive clusters (e.g. the failing negatives
    of a coverage vector) spread over whichever workers are free
    instead of landing on one stride. [f] must be thread-safe
    (coverage tests are pure).

    Falls back to sequential evaluation for tiny arrays and on
    single-core hosts; [force] overrides both fallbacks (tests use it
    to exercise real worker domains even over small arrays).

    If [f] raises, the first exception is re-raised in the caller
    after every worker has finished, so the pool is left clean for
    later calls.

    Each worker flushes its domain-local {!Obs} counter scratch once
    per task — i.e. once per [init] call it participates in, not once
    per index chunk — before signalling completion, so counter totals
    read after [init] returns are exact at batched-flush cost. *)
let init ?(force = false) ~domains n (f : int -> 'b) : 'b array =
  let domains =
    if force then domains else min domains (recommended_domains ())
  in
  if domains <= 1 || n = 0 || (n < 8 && not force) then Array.init n f
  else begin
    let d = if force then min domains n else min domains ((n + 7) / 8) in
    if d <= 1 then Array.init n f
    else begin
      ensure_workers (d - 1);
      let results : 'b option array = Array.make n None in
      let remaining = ref (d - 1) in
      let done_m = Mutex.create () in
      let done_cv = Condition.create () in
      let failure : exn option Atomic.t = Atomic.make None in
      let note_exn e = ignore (Atomic.compare_and_set failure None (Some e)) in
      (* a few chunks per participant balances stealing overhead
         against load skew *)
      let chunk = max 1 (min 32 (n / (d * 4))) in
      let next = Atomic.make 0 in
      let compute () =
        try
          let continue_ = ref true in
          while !continue_ do
            let start = Atomic.fetch_and_add next chunk in
            if start >= n then continue_ := false
            else begin
              Obs.Counter.incr c_chunks;
              for i = start to min n (start + chunk) - 1 do
                results.(i) <- Some (f i)
              done
            end
          done
        with e ->
          (* record for the caller; a fatal exception additionally
             propagates so the hosting domain dies rather than keep
             computing in an unknown state *)
          note_exn e;
          if is_fatal e then raise e
      in
      for _k = 1 to d - 1 do
        submit (fun () ->
            Obs.Counter.incr c_tasks;
            (* decrement even if [f] raised, so the caller never
               hangs; flush counter scratch first so totals are exact
               once the caller resumes *)
            Fun.protect
              ~finally:(fun () ->
                Obs.flush ();
                Mutex.lock done_m;
                decr remaining;
                Condition.signal done_cv;
                Mutex.unlock done_m)
              compute)
      done;
      (* the caller participates too; its fatal exception is already
         in [failure] and re-raised after the join below — raising
         here would skip the join and leave workers racing the next
         batch. Only fatal exceptions reach this handler: [compute]
         records every exception in [failure] and re-raises just the
         fatal ones, so nothing else can be absorbed. *)
      (try compute () with e when is_fatal e -> ());
      Mutex.lock done_m;
      while !remaining > 0 do
        Condition.wait done_cv done_m
      done;
      Mutex.unlock done_m;
      match Atomic.get failure with
      | Some e -> raise e
      | None ->
          Array.map (function Some v -> v | None -> assert false) results
    end
  end

(** [map ~domains f arr] maps in parallel. *)
let map ?force ~domains f arr =
  init ?force ~domains (Array.length arr) (fun i -> f arr.(i))
