(** Plain negative reduction, as used by Golem and ProGolem
    (Sections 6.3-6.4): a body literal is non-essential when removing
    it does not increase the number of covered negative examples;
    non-essential literals are dropped, scanning from the end of the
    clause. Castor replaces this with the inclusion-class-aware
    Algorithm 5 (see {!Castor_core.Reduction}).

    The per-candidate counts come from {!Coverage.covered_count},
    i.e. full coverage vectors whose evaluation strategy the
    {!Planner} chooses per clause from backend statistics. *)

open Castor_logic
module Obs = Castor_obs.Obs

let span_reduce = Obs.Span.create "ilp.negreduce.reduce"

(** [reduce ?require_safe neg_cov c] drops non-essential literals.
    With [require_safe], a removal that would unbind a head variable
    is skipped (Section 7.3). *)
let reduce ?(require_safe = false) (neg_cov : Coverage.t) (c : Clause.t) =
  Obs.Span.with_span span_reduce @@ fun () ->
  let baseline = Coverage.covered_count neg_cov c in
  let current = ref c in
  let i = ref (Clause.length c - 1) in
  while !i >= 0 do
    let body = Array.of_list !current.Clause.body in
    if !i < Array.length body then begin
      let candidate =
        Clause.head_connected
          {
            !current with
            Clause.body = Array.to_list body |> List.filteri (fun j _ -> j <> !i);
          }
      in
      let ok_safe = (not require_safe) || Clause.is_safe candidate in
      if
        ok_safe
        && Clause.length candidate < Clause.length !current
        && Coverage.covered_count neg_cov candidate <= baseline
      then current := candidate
    end;
    decr i
  done;
  !current
