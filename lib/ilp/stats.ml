(** Operation counters for the work that dominates learning time
    (Section 7.5: coverage tests "dominate the time for learning").

    This module is now a thin compatibility facade over
    {!Castor_obs.Obs} counters: increments go to domain-local scratch
    that the {!Parallel} pool flushes at task boundaries, so — unlike
    the earlier mutable-record implementation — the totals are exact
    even when coverage tests fan out over domains. The snapshot/diff
    API is kept for the benches and tests. *)

module Obs = Castor_obs.Obs

let c_subsumption_tests = Obs.Counter.create "ilp.subsumption_tests"

let c_coverage_vectors = Obs.Counter.create "ilp.coverage_vectors"

let c_cache_hits = Obs.Counter.create "ilp.cache_hits"

let c_saturations = Obs.Counter.create "ilp.saturations"

let c_armg_calls = Obs.Counter.create "ilp.armg_calls"

let c_blocking_removals = Obs.Counter.create "ilp.blocking_removals"

type t = {
  subsumption_tests : int;
  coverage_vectors : int;
  cache_hits : int;
  saturations : int;
  armg_calls : int;
  blocking_removals : int;
}

let reset () =
  Obs.Counter.reset c_subsumption_tests;
  Obs.Counter.reset c_coverage_vectors;
  Obs.Counter.reset c_cache_hits;
  Obs.Counter.reset c_saturations;
  Obs.Counter.reset c_armg_calls;
  Obs.Counter.reset c_blocking_removals

(** [snapshot ()] reads the counters, so a caller can diff before and
    after a run. *)
let snapshot () =
  {
    subsumption_tests = Obs.Counter.value c_subsumption_tests;
    coverage_vectors = Obs.Counter.value c_coverage_vectors;
    cache_hits = Obs.Counter.value c_cache_hits;
    saturations = Obs.Counter.value c_saturations;
    armg_calls = Obs.Counter.value c_armg_calls;
    blocking_removals = Obs.Counter.value c_blocking_removals;
  }

let diff (after : t) (before : t) =
  {
    subsumption_tests = after.subsumption_tests - before.subsumption_tests;
    coverage_vectors = after.coverage_vectors - before.coverage_vectors;
    cache_hits = after.cache_hits - before.cache_hits;
    saturations = after.saturations - before.saturations;
    armg_calls = after.armg_calls - before.armg_calls;
    blocking_removals = after.blocking_removals - before.blocking_removals;
  }

let pp ppf (s : t) =
  Fmt.pf ppf
    "subsumption tests %d, coverage vectors %d (cache hits %d), saturations %d, armg calls %d, blocking removals %d"
    s.subsumption_tests s.coverage_vectors s.cache_hits s.saturations
    s.armg_calls s.blocking_removals
