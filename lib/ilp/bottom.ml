(** Bottom-clause construction (Section 6.1).

    Starting from a ground target atom, the algorithm repeatedly
    scans the database for tuples containing in-play constants and
    adds them as ground literals; constants first seen at iteration
    [i] generate literals of depth at most [i+1]. The result is the
    {e saturation} (ground bottom clause); variabilizing it yields
    the bottom clause [⊥e] used by bottom-up learners.

    The [expand] hook is how Castor plugs its IND chase in
    (Section 7.1): whenever a tuple is admitted, [expand] may return
    further (relation, tuple) pairs to admit in the same iteration.

    Stopping conditions: [depth] bounds the number of iterations (the
    classic parameter); [max_terms] bounds the number of distinct
    constants, which is Castor's schema-independent stop condition
    (distinct variables are preserved by (de)composition, depths are
    not — Example 6.2). [per_relation_cap] bounds how many literals of
    one relation symbol a single in-play constant may contribute per
    iteration (the paper uses 10 on IMDb). *)

open Castor_relational
open Castor_logic
module Obs = Castor_obs.Obs

let span_saturation = Obs.Span.create "ilp.bottom.saturation"

(* Static-analysis post-pass: literals of the variabilized bottom
   clause dropped because they are θ-subsumed by the rest of the
   clause (Clause_lint's absorbed-literal rule). Pruned literals never
   reach ARMG, shrinking the Subsume hot path; the counters make the
   win measurable in the benches. *)
let c_pruned_literals = Obs.Counter.create "analysis.pruned_literals"

let c_pruned_clauses = Obs.Counter.create "analysis.pruned_clauses"

type params = {
  depth : int;
  max_terms : int option;
  per_relation_cap : int;
  no_expand_domains : string list;
      (** attribute domains whose constants are not put on the
          frontier — the counterpart of ILP mode declarations for
          low-selectivity "attribute" values (phases, course levels,
          bond types, ...). Domains are attached to attributes, which
          (de)composition preserves, so the filter is itself schema
          independent. *)
  const_domains : string list;
      (** attribute domains whose constants survive variabilization —
          the counterpart of ILP [#]-mode (constant) declarations;
          this is what lets clauses like [genre(g, drama)] or
          [student(x, prelim, 3)] (Example 6.5) be expressed *)
}

let default_params =
  {
    depth = 2;
    max_terms = None;
    per_relation_cap = 10;
    no_expand_domains = [];
    const_domains = [];
  }

(* canonical, schema-independent sort key of a tuple / literal group:
   the multiset of its constants, sorted and printed *)
let tuple_key (tu : Tuple.t) =
  Array.to_list tu |> List.map Value.to_string |> List.sort compare
  |> String.concat "\x00"

(* The key is the SET of constants of the group's full chase closure:
   the closure is the reconstructed joined row, whose constant set is
   identical across (de)compositions, whereas literal multisets are
   not (a shared entity is stored once under a decomposed schema but
   repeated per joined row under a composed one). *)
let group_key (lits : Atom.t list) =
  List.concat_map
    (fun (a : Atom.t) -> List.map Value.to_string (Atom.constants a))
    lits
  |> List.sort_uniq compare |> String.concat "\x00"

(** Retries of a [max_terms]-truncated saturation with a doubled
    budget (see {!saturation}). *)
let c_budget_growths = Obs.Counter.create "ilp.saturation.budget_growths"

(* how many times a truncated saturation's budget may double before we
   accept the cut — 3 doublings = 8× the configured budget *)
let max_budget_growths = 3

(* One saturation pass at a fixed budget. Returns the ground clause
   plus whether the [max_terms] budget cut it short — i.e. the budget
   tripped while frontier constants were still pending and iterations
   remained, so a larger budget could admit more literals. *)
let saturate_once ~expand ?backend ~params inst (e : Atom.t) =
  (* The frontier neighborhood query always reads through the
     {!Backend} seam; the default wraps [inst] itself, and
     {!Coverage.build} passes whatever backend its spec selected.
     Hits are canonically re-sorted below, so any backend serving the
     same tuple set is equivalent. *)
  let backend =
    match backend with Some b -> b | None -> Backend.of_instance inst
  in
  let lookup =
    let module B = (val backend : Backend.S) in
    B.tuples_containing
  in
  let schema = Instance.schema inst in
  let rels = List.map (fun (r : Schema.relation) -> r.Schema.rname) schema.Schema.relations in
  let expandable_pos =
    (* positions of each relation whose domain may join the frontier *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (r : Schema.relation) ->
        let flags =
          List.map
            (fun (a : Schema.attribute) ->
              not (List.mem a.Schema.domain params.no_expand_domains))
            r.Schema.attrs
        in
        Hashtbl.replace tbl r.Schema.rname (Array.of_list flags))
      schema.Schema.relations;
    tbl
  in
  let body = ref [] in
  let present : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let constants : (Value.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let n_constants () = Hashtbl.length constants in
  let pending_constants = ref [] in
  let note_constant v =
    if not (Hashtbl.mem constants v) then begin
      Hashtbl.replace constants v ();
      pending_constants := v :: !pending_constants
    end
  in
  Array.iter
    (function Term.Const v -> note_constant v | Term.Var _ -> ())
    e.Atom.args;
  let admit rel (tu : Tuple.t) =
    let key = rel ^ Fmt.str "%a" Tuple.pp tu in
    if Hashtbl.mem present key then false
    else begin
      Hashtbl.replace present key ();
      let flags = Hashtbl.find expandable_pos rel in
      Array.iteri (fun i v -> if flags.(i) then note_constant v) tu;
      true
    end
  in
  let over_budget () =
    match params.max_terms with
    | Some m -> n_constants () >= m
    | None -> false
  in
  let truncated = ref false in
  (try
     for i = 1 to params.depth do
       if over_budget () then begin
         if !pending_constants <> [] then truncated := true;
         raise Exit
       end;
       (* canonical frontier order: by constant value *)
       let in_play = List.sort Value.compare !pending_constants in
       pending_constants := [];
       let groups = ref [] in
       List.iter
         (fun v ->
           List.iter
             (fun rel ->
               (* canonical hit order so per-relation caps select the
                  same data in every schema — and, via the total
                  tie-break, independently of the lookup provider's
                  enumeration order *)
               let hits =
                 List.sort
                   (fun a b ->
                     let c = compare (tuple_key a) (tuple_key b) in
                     if c <> 0 then c else Tuple.compare a b)
                   (lookup rel v)
               in
               let rec take n = function
                 | [] -> ()
                 | tu :: rest ->
                     if n <= 0 then ()
                     else begin
                       let was_new = admit rel tu in
                       if was_new then begin
                         (* IND chase: the group is the triggering
                            tuple plus its joining closure. The key is
                            computed over the WHOLE closure — even
                            tuples admitted earlier by other groups —
                            so it stays schema independent; only the
                            new literals are emitted. *)
                         let closure = expand rel tu in
                         let chased = List.filter (fun (r, t) -> admit r t) closure in
                         let all_lits =
                           Atom.of_tuple rel tu
                           :: List.map (fun (r, t) -> Atom.of_tuple r t) closure
                         in
                         let new_lits =
                           Atom.of_tuple rel tu
                           :: List.map (fun (r, t) -> Atom.of_tuple r t) chased
                         in
                         groups := (group_key all_lits, new_lits) :: !groups
                       end;
                       take (if was_new then n - 1 else n) rest
                     end
               in
               take params.per_relation_cap hits)
             rels)
         in_play;
       let sorted = List.sort (fun (a, _) (b, _) -> compare a b) (List.rev !groups) in
       List.iter (fun (_, lits) -> List.iter (fun l -> body := l :: !body) lits) sorted;
       if over_budget () then begin
         if !pending_constants <> [] && i < params.depth then truncated := true;
         raise Exit
       end
     done
   with Exit -> ());
  (Clause.make e (List.rev !body), !truncated)

(** [saturation ?expand ~params inst e] builds the ground bottom
    clause of example [e] relative to [inst].

    Castor's ARMG and negative reduction need the literal order of
    saturations to {e correspond} across composition/decomposition
    (Lemmas 7.5 and 7.7 assume an order-preserving mapping between
    equivalent bottom clauses). Admission order as such is schema
    dependent — relation lists differ across schemas — so the literals
    of each iteration are emitted as {e groups} (a triggering tuple
    together with its IND-chase closure, i.e. one inclusion-class
    instance) sorted by the group's constant multiset, which is pure
    data and therefore identical across information-equivalent
    schemas.

    {e Adaptive budget}: a [max_terms] cut is itself schema
    {e dependent} — the same budget admits different constant sets
    under different decompositions (the fuzzer-found caveat in
    DESIGN.md), undermining the Lemma 7.5 correspondence exactly when
    the budget binds. So a saturation that tripped the budget with
    frontier work remaining is retried from scratch with the budget
    doubled, up to {!max_budget_growths} times or until it completes
    untruncated; retries are counted under
    [ilp.saturation.budget_growths]. *)
let saturation ?(expand = fun _ _ -> []) ?backend ~params inst (e : Atom.t) =
  Obs.Span.with_span span_saturation @@ fun () ->
  Obs.Counter.incr Stats.c_saturations;
  let rec go params growths =
    let clause, truncated = saturate_once ~expand ?backend ~params inst e in
    match params.max_terms with
    | Some m when truncated && growths < max_budget_growths ->
        Obs.Counter.incr c_budget_growths;
        go { params with max_terms = Some (2 * m) } (growths + 1)
    | _ -> clause
  in
  go params 0

(** [variabilize ~schema ~params c] replaces constants by variables
    (one fresh variable per distinct constant), except at positions
    whose attribute domain is listed in [params.const_domains] — those
    keep their constant, as with ILP constant-mode declarations. Head
    constants are always variabilized. *)
let variabilize ~schema ~params (c : Clause.t) =
  let module VM = Value.Map in
  let table = ref VM.empty in
  let counter = ref 0 in
  let var_for const =
    match VM.find_opt const !table with
    | Some v -> v
    | None ->
        let v = Printf.sprintf "V%d" !counter in
        incr counter;
        table := VM.add const v !table;
        v
  in
  let keep_pos = Hashtbl.create 16 in
  List.iter
    (fun (r : Schema.relation) ->
      Hashtbl.replace keep_pos r.Schema.rname
        (Array.of_list
           (List.map
              (fun (a : Schema.attribute) ->
                List.mem a.Schema.domain params.const_domains)
              r.Schema.attrs)))
    schema.Schema.relations;
  let conv_head (a : Atom.t) =
    {
      a with
      Atom.args =
        Array.map
          (function
            | Term.Const v -> Term.Var (var_for v)
            | Term.Var _ as t -> t)
          a.Atom.args;
    }
  in
  let conv_body (a : Atom.t) =
    let keep =
      Option.value
        ~default:(Array.make (Atom.arity a) false)
        (Hashtbl.find_opt keep_pos a.Atom.rel)
    in
    {
      a with
      Atom.args =
        Array.mapi
          (fun i t ->
            match t with
            | Term.Const v when not keep.(i) -> Term.Var (var_for v)
            | t -> t)
          a.Atom.args;
    }
  in
  { Clause.head = conv_head c.Clause.head; body = List.map conv_body c.Clause.body }

(** [prune_redundant bc] drops statically redundant literals from a
    variabilized bottom clause — the analysis pass's provably-safe
    pruning: removed literals are θ-subsumed by the rest of the
    clause, so the result is θ-equivalent to [bc] and every coverage
    vector is unchanged. Counted under [analysis.pruned_literals]. *)
let prune_redundant (bc : Clause.t) =
  let pruned, n = Castor_analysis.Clause_lint.prune_redundant bc in
  if n > 0 then begin
    Obs.Counter.add c_pruned_literals n;
    Obs.Counter.incr c_pruned_clauses
  end;
  pruned

(** [bottom_clause ?expand ?backend ?prune ~params inst e] is the
    variabilized bottom clause [⊥e]. With [~prune:true] the statically
    redundant literals are dropped before the clause is handed to
    ARMG. *)
let bottom_clause ?expand ?backend ?(prune = false) ~params inst e =
  let sat = saturation ?expand ?backend ~params inst e in
  let bc = variabilize ~schema:(Instance.schema inst) ~params sat in
  if prune then prune_redundant bc else bc
