(** Asymmetric relative minimal generalization (Algorithm 3).

    Given an ordered clause [C] (typically a bottom clause ⊥e) and a
    positive example [e'], repeatedly locate and remove the {e
    blocking atom} — the first body literal [Li] such that the prefix
    [T ← L1..Li] fails to cover [e'] — then drop literals that are no
    longer head-connected, until the clause covers [e'].

    Prefix coverage is antitone in the prefix length (adding literals
    only specializes), so the blocking atom is found by binary search
    with O(log n) coverage tests instead of a linear scan. Each test
    goes through {!Coverage.covers}, whose {!Planner} picks the
    cheaper of the semi-join kernel and subsumption per prefix.

    The [repair] hook runs right after each blocking-atom removal;
    Castor passes the IND-enforcement step of Section 7.2.1 and plain
    ProGolem passes the identity. *)

open Castor_logic
module Obs = Castor_obs.Obs

let span_generalize = Obs.Span.create "ilp.armg.generalize"

let prefix_clause (c : Clause.t) k =
  { c with Clause.body = List.filteri (fun i _ -> i < k) c.Clause.body }

(** [generalize ?repair cov c i] computes armg(C, e_i) where [e_i] is
    the [i]-th example of [cov]. Returns [None] when even the bare
    head fails to cover [e_i] (then no generalization of [C] along
    this example exists). *)
let generalize ?(repair = fun c -> c) (cov : Coverage.t) (c : Clause.t) i =
  Obs.Span.with_span span_generalize @@ fun () ->
  Obs.Counter.incr Stats.c_armg_calls;
  let covers_prefix c k = Coverage.covers cov (prefix_clause c k) i in
  if not (covers_prefix c 0) then None
  else
    let current = ref c in
    let continue = ref true in
    while !continue do
      let n = Clause.length !current in
      if covers_prefix !current n then continue := false
      else begin
        (* least k in [1..n] with prefix(k) failing; prefix(0) covers *)
        let lo = ref 0 and hi = ref n in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if covers_prefix !current mid then lo := mid else hi := mid
        done;
        let blocking = !hi - 1 in
        Obs.Counter.incr Stats.c_blocking_removals;
        let body = List.filteri (fun j _ -> j <> blocking) !current.Clause.body in
        current := Clause.head_connected (repair { !current with Clause.body = body });
        if Clause.length !current = 0 then continue := false
      end
    done;
    Some !current
