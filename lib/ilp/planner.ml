(** Cost-based coverage planning.

    Every candidate clause admits up to three evaluation strategies:
    reusing a {e cached vector} (free), the {e batched semi-join}
    kernel ({!Castor_relational.Algebra.semijoin_batch}), and
    per-example {e indexed θ-subsumption} ({!Castor_logic.Subsume}).
    Earlier the dispatch was hardcoded in {!Coverage} — acyclic always
    rode the kernel, cyclic always fell back — and even the first
    cost-based planner kept a forced [Cyclic] reason because the
    kernel could not evaluate cyclic bodies at all. Since the kernel
    runs over a generalized hypertree decomposition
    ({!Castor_relational.Hypergraph.decompose}) with worst-case-
    optimal bag materialization, {e every} clause is kernel-eligible
    and the choice is purely the estimate an RDBMS optimizer would
    make, fed by {!Backend} statistics:

    - a semi-join program scans, per pattern, either the whole
      relation ([cardinality]) or — when the pattern carries a
      constant — one index bucket, estimated as
      [cardinality / distinct_count] at that column; every multi-edge
      bag of the decomposition additionally pays its worst-case
      materialization bound, the product of its members' scan
      estimates (the AGM-style bound the leapfrog join cannot
      exceed);
    - a subsumption pass runs one search per undecided example, whose
      matching work grows with the candidate length and the bottom
      clauses it is matched against — estimated as
      [n_undecided × clause_len × avg_bottom_len × branching].

    Both estimates are in "rows touched", so they are comparable; the
    cheaper strategy wins. The batch kernel dominates on full vectors
    (one program amortized over all undecided examples) while a single
    [covers] probe usually prefers subsumption — exactly the split the
    old hardcoded dispatch could not express. Wide (cyclic-core)
    decompositions often price themselves out on big relations and
    land on subsumption — but by cost, never by force.

    Decisions, decomposition widths and estimated-vs-actual costs are
    recorded under [ilp.planner.*]; {!note_actual} is fed with the
    observed row/step counts so any metrics dump shows how honest the
    model is. *)

open Castor_relational
open Castor_logic
module Obs = Castor_obs.Obs

let c_decisions = Obs.Counter.create "ilp.planner.decisions"

let c_choice_semijoin = Obs.Counter.create "ilp.planner.choice.semijoin"

let c_choice_subsumption = Obs.Counter.create "ilp.planner.choice.subsumption"

let c_choice_cached = Obs.Counter.create "ilp.planner.choice.cached"

(** Summed estimated cost of the chosen strategies, in rows; compare
    with [ilp.planner.actual_cost] for model calibration. *)
let c_est_cost = Obs.Counter.create "ilp.planner.est_cost"

let c_actual_cost = Obs.Counter.create "ilp.planner.actual_cost"

let c_stat_invalidations = Obs.Counter.create "ilp.planner.stat_invalidations"

(** Summed decomposition width over every costed decision, and the
    number of decisions whose clause needed a wide (width >= 2, i.e.
    cyclic-core) decomposition — together they expose how often the
    planner prices a cyclic body instead of forcing a fallback. *)
let c_width_sum = Obs.Counter.create "ilp.planner.decomp_width"

let c_wide_decisions = Obs.Counter.create "ilp.planner.decomp_wide"

(* Planner-owned statistics memo: [distinct_count] probes keyed by
   (relation, column) and stamped with the generation of the store
   they were read from. Hash substrates compute distinct counts by
   rescanning the column, so the same few probes repeated for every
   candidate clause would make estimation itself O(n). The memo is
   only ever touched from (single-threaded) cost estimation, and it
   MUST be dropped when the serving store is swapped out from under
   the planner ({!Coverage.set_backend} re-bases onto a new substrate
   whose generation counter starts over — a stale entry stamped by the
   old store could otherwise match the new store's generation by
   coincidence and serve the wrong statistic). *)
let stat_memo : (string * int, int * int) Hashtbl.t = Hashtbl.create 64

(** Drop every memoized statistic. Called on re-base
    ({!Coverage.set_backend}); counted under
    [ilp.planner.stat_invalidations]. *)
let invalidate_statistics () =
  Obs.Counter.incr c_stat_invalidations;
  Hashtbl.reset stat_memo

(** Number of live memoized statistics (exposed for the re-base
    regression test). *)
let statistics_size () = Hashtbl.length stat_memo

type strategy =
  | Semijoin of Algebra.pattern list * Hypergraph.decomposition
      (** run the batched kernel on these patterns (head included)
          over this decomposition of their variable hypergraph *)
  | Subsumption  (** per-example θ-subsumption against the bottoms *)

type reason =
  | Cost  (** both strategies applicable; the estimates decided *)
  | No_store  (** no example-saturation backend — kernel unavailable *)
  | Disabled  (** batch kernel toggled off (differential testing) *)

type decision = {
  strategy : strategy;
  reason : reason;
  est_semijoin : float;  (** rows a kernel pass would scan; [infinity] when inapplicable *)
  est_subsumption : float;  (** rows a subsumption pass would touch *)
  width : int;
      (** decomposition width of the clause hypergraph: 1 acyclic,
          >= 2 cyclic core, 0 when no decomposition was computed
          ([No_store]/[Disabled]) *)
}

(** Rough branching factor of the subsumption search per candidate
    literal × bottom literal pair (backtracking, restarts). *)
let subsumption_branching = 4.0

let pattern_of_atom (a : Atom.t) =
  {
    Algebra.prel = a.Atom.rel;
    pargs =
      Array.map
        (function
          | Term.Var v -> Algebra.Avar v
          | Term.Const c -> Algebra.Aconst c)
        a.Atom.args;
  }

(* One distinct-count statistic, through the memo. A backend with the
   [pushdown] capability serves exact O(1) statistics natively
   (columnar posting lists), so it bypasses the memo entirely; hash
   substrates answer by rescanning the column, so their probes are
   memoized per (relation, column, generation). *)
let distinct_stat (backend : Backend.t) rel pos =
  let module B = (val backend) in
  if B.capabilities.Backend.pushdown then B.distinct_count rel pos
  else begin
    let g = B.generation () in
    match Hashtbl.find_opt stat_memo (rel, pos) with
    | Some (g', n) when g' = g -> n
    | _ ->
        let n = B.distinct_count rel pos in
        Hashtbl.replace stat_memo (rel, pos) (g, n);
        n
  end

(* Estimated rows one pattern scan touches across all partitions: the
   relation cardinality scaled by the selectivity of every
   constant-bearing column under the independence assumption —
   [card × Π_j 1/distinct_count(j)] — a full scan when the pattern
   carries no constant. Pattern arg j lives at stored column j+1
   (column 0 is the example id). *)
let scan_estimate (backend : Backend.t) (p : Algebra.pattern) =
  let module B = (val backend) in
  if not (B.has_relation p.Algebra.prel) then 0.
  else begin
    let card = float_of_int (B.cardinality p.Algebra.prel) in
    let est = ref card in
    Array.iteri
      (fun j a ->
        match a with
        | Algebra.Aconst _ ->
            let d = distinct_stat backend p.Algebra.prel (j + 1) in
            if d > 0 then est := !est /. float_of_int d
        | Algebra.Avar _ -> ())
      p.Algebra.pargs;
    !est
  end

(* Estimated kernel cost: every pattern is scanned once, and every
   multi-edge bag of the decomposition additionally pays its
   worst-case materialization bound — the product of its members'
   scan estimates (clamped to >= 1 row each), which the
   worst-case-optimal bag join cannot exceed. *)
let est_semijoin backend patterns (decomp : Hypergraph.decomposition) =
  let pats = Array.of_list patterns in
  let scans =
    Array.fold_left (fun acc p -> acc +. scan_estimate backend p) 0. pats
  in
  Array.fold_left
    (fun acc members ->
      match members with
      | [] | [ _ ] -> acc
      | members ->
          acc
          +. List.fold_left
               (fun prod e ->
                 prod *. Float.max 1. (scan_estimate backend pats.(e)))
               1. members)
    scans decomp.Hypergraph.bags

let est_subsumption ~n_undecided ~clause_len ~avg_bottom_len =
  float_of_int n_undecided *. float_of_int clause_len *. avg_bottom_len
  *. subsumption_branching

let record decision =
  Obs.Counter.incr c_decisions;
  let est =
    match decision.strategy with
    | Semijoin _ ->
        Obs.Counter.incr c_choice_semijoin;
        decision.est_semijoin
    | Subsumption ->
        Obs.Counter.incr c_choice_subsumption;
        decision.est_subsumption
  in
  if Float.is_finite est then
    Obs.Counter.add c_est_cost (int_of_float (Float.min est 1e12));
  decision

(** [choose ~batch_enabled ~ex_store ~n_undecided ~avg_bottom_len
    clause] plans the coverage test of [clause] over [n_undecided]
    still-undecided examples. [ex_store] is the example-saturation
    backend the kernel would run on ([None] disables it); statistics
    are read from it. [decompose] builds (or serves from a memo —
    {!Coverage} passes its per-canonical-key cache) the generalized
    hypertree decomposition of the clause's pattern hypergraph. The
    decision is recorded under [ilp.planner.*]. *)
let choose ~batch_enabled ~(ex_store : Backend.t option) ~n_undecided
    ~avg_bottom_len ?(decompose = Hypergraph.decompose) (clause : Clause.t) =
  let clause_len = 1 + List.length clause.Clause.body in
  let est_subs = est_subsumption ~n_undecided ~clause_len ~avg_bottom_len in
  match ex_store with
  | None ->
      record
        {
          strategy = Subsumption;
          reason = No_store;
          est_semijoin = infinity;
          est_subsumption = est_subs;
          width = 0;
        }
  | Some _ when not batch_enabled ->
      record
        {
          strategy = Subsumption;
          reason = Disabled;
          est_semijoin = infinity;
          est_subsumption = est_subs;
          width = 0;
        }
  | Some store ->
      (* head included: it must match the bottom clause's head under
         the same substitution, so it is one more join edge *)
      let patterns =
        List.map pattern_of_atom (clause.Clause.head :: clause.Clause.body)
      in
      let decomp = decompose (List.map Algebra.pattern_vars patterns) in
      let width = decomp.Hypergraph.width in
      Obs.Counter.add c_width_sum width;
      if width > 1 then Obs.Counter.incr c_wide_decisions;
      let est_sj = est_semijoin store patterns decomp in
      let strategy =
        if est_sj <= est_subs then Semijoin (patterns, decomp)
        else Subsumption
      in
      record
        {
          strategy;
          reason = Cost;
          est_semijoin = est_sj;
          est_subsumption = est_subs;
          width;
        }

(** A cache hit is the third strategy — counted so the decision mix
    (cached / semi-join / subsumption) is visible in one dump. *)
let note_cached () =
  Obs.Counter.incr c_decisions;
  Obs.Counter.incr c_choice_cached

(** [note_actual n] records the observed cost of an executed plan —
    kernel rows actually scanned, or subsumption search steps actually
    taken — next to the estimate that chose it. Parallel fan-out
    flushes worker counters at pool boundaries, so per-call deltas are
    a close (not exact) account under [domains > 1]. *)
let note_actual n = if n > 0 then Obs.Counter.add c_actual_cost n

(* Distinct variables of an atom, in first-occurrence order. *)
let atom_vars (a : Atom.t) =
  Array.fold_left
    (fun acc t ->
      match t with
      | Term.Var v when not (List.mem v acc) -> v :: acc
      | _ -> acc)
    [] a.Atom.args
  |> List.rev

let rename_atom subst (a : Atom.t) =
  {
    a with
    Atom.args =
      Array.map
        (function
          | Term.Var v as t -> (
              match List.assoc_opt v subst with
              | Some w -> Term.Var w
              | None -> t)
          | t -> t)
        a.Atom.args;
  }

(* Cyclicity of the clause's pattern hypergraph as the planner sees it
   (head included). *)
let clause_cyclic (c : Clause.t) =
  let patterns = List.map pattern_of_atom (c.Clause.head :: c.Clause.body) in
  not (Hypergraph.is_acyclic (List.map Algebra.pattern_vars patterns))

(** [close_cycle clause] appends body literals that close a variable
    cycle, turning the clause's join hypergraph cyclic — the workload
    generator shared by the [cyclic] bench experiment, the fuzz
    sweep's planner check and the differential tests. It reuses
    relations already present in the body (so the closed clause stays
    evaluable against the same store): given literals
    [r(... X .. Y ...)] and [s(... Y .. Z ...)], it appends a copy of
    the first with [X -> Z, Y -> X], closing the triangle
    [X—Y—Z—X]; when no such pair exists it chains two renamed copies
    of a single two-variable literal through a fresh variable. Returns
    [None] when no closing literal makes the hypergraph cyclic (e.g. a
    body whose literals already share all their variables). *)
let close_cycle (clause : Clause.t) =
  let body = Array.of_list clause.Clause.body in
  let n = Array.length body in
  let closed = ref None in
  (* triangle through two distinct body literals *)
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if !closed = None && i <> j then
        match atom_vars body.(i) with
        | x :: y :: _ -> (
            let vs_j = atom_vars body.(j) in
            if List.mem y vs_j then
              match List.find_opt (fun z -> z <> x && z <> y) vs_j with
              | Some z ->
                  let lit = rename_atom [ (x, z); (y, x) ] body.(i) in
                  let c =
                    { clause with Clause.body = clause.Clause.body @ [ lit ] }
                  in
                  if clause_cyclic c then closed := Some c
              | None -> ())
        | _ -> ()
    done
  done;
  (* fallback: chain one literal with itself through a fresh variable *)
  if !closed = None then begin
    let used =
      List.concat_map atom_vars (clause.Clause.head :: clause.Clause.body)
    in
    let fresh =
      let rec go i =
        let v = "Vcyc" ^ string_of_int i in
        if List.mem v used then go (i + 1) else v
      in
      go 0
    in
    Array.iter
      (fun a ->
        if !closed = None then
          match atom_vars a with
          | x :: y :: _ ->
              let l1 = rename_atom [ (x, y); (y, fresh) ] a in
              let l2 = rename_atom [ (x, fresh); (y, x) ] a in
              let c =
                { clause with Clause.body = clause.Clause.body @ [ l1; l2 ] }
              in
              if clause_cyclic c then closed := Some c
          | _ -> ())
      body
  end;
  !closed
