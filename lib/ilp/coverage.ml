(** Coverage testing (Section 7.5.3-7.5.4).

    A candidate clause [C] covers example [e] iff [C] θ-subsumes the
    ground bottom clause [⊥e]. The ground bottom clauses of all
    training examples are precomputed once per (dataset, schema) and
    reused by every learner, exactly like the paper's per-example
    saturations.

    Two optimizations from the paper are implemented here: a
    memoization table keyed by {!Clause.canonical_key} — a structural,
    variable-normalized key, so α-equivalent clauses produced by
    different ARMG paths share one entry — and the generality
    shortcut: when testing a clause known to be more general than a
    previously tested one, the examples already covered need not be
    re-tested. Coverage tests can also be fanned out over domains
    ({!Parallel}). *)

open Castor_logic
module Obs = Castor_obs.Obs

type t = {
  examples : Atom.t array;
  bottoms : Clause.t array;  (** ground bottom clause per example *)
  max_steps : int;
  cache : (string, bool array) Hashtbl.t;
  mutable cache_enabled : bool;
  mutable domains : int;
  mutable force_parallel : bool;
      (** fan out even when the runtime reports one hardware thread —
          used by tests that must exercise real worker domains *)
}

(** [build ?expand ~params ~max_steps inst examples] precomputes the
    saturations of [examples]. *)
let build ?expand ~params ?(max_steps = 250_000) inst (examples : Atom.t array) =
  let bottoms =
    Array.map (fun e -> Bottom.saturation ?expand ~params inst e) examples
  in
  {
    examples;
    bottoms;
    max_steps;
    cache = Hashtbl.create 256;
    cache_enabled = true;
    domains = 1;
    force_parallel = false;
  }

let length t = Array.length t.examples

(** Wall-clock spent in batch [vector] calls and in single [covers]
    tests — the benches report where learning time goes from these. *)
let span_vector = Obs.Span.create "ilp.coverage.vector"

let span_covers = Obs.Span.create "ilp.coverage.covers"

(** Slowest [vector] calls, with the clause as label; for performance
    diagnosis in the benches. *)
let slow_vectors = Obs.Reservoir.create ~capacity:40 "ilp.coverage.slow_vectors"

(* The structural-key cache, made visible: [key_builds] is how often
   the canonical key is computed (its cost used to hide inside
   [Clause.to_string]); hits land in {!Stats.c_cache_hits}, misses
   here, so hit rate is derivable from any metrics dump. *)
let c_key_builds = Obs.Counter.create "ilp.coverage.key_builds"

let c_cache_misses = Obs.Counter.create "ilp.coverage.cache_misses"

let cache_key clause =
  Obs.Counter.incr c_key_builds;
  Clause.canonical_key clause

(** [sub t idxs] is the coverage structure restricted to the examples
    at [idxs] — saturations are shared, so cross-validation folds cost
    nothing extra. *)
let sub t idxs =
  {
    examples = Array.map (fun i -> t.examples.(i)) idxs;
    bottoms = Array.map (fun i -> t.bottoms.(i)) idxs;
    max_steps = t.max_steps;
    cache = Hashtbl.create 64;
    cache_enabled = t.cache_enabled;
    domains = t.domains;
    force_parallel = t.force_parallel;
  }

let set_domains t n = t.domains <- max 1 n

let set_force_parallel t b = t.force_parallel <- b

let set_cache t b = t.cache_enabled <- b

let clear_cache t = Hashtbl.reset t.cache

(** [covers t clause i] tests coverage of the [i]-th example alone. A
    full vector cached for the same (α-equivalent) clause answers
    without a subsumption test. *)
let covers t clause i =
  Obs.Span.with_span span_covers @@ fun () ->
  match
    if t.cache_enabled then Hashtbl.find_opt t.cache (cache_key clause)
    else None
  with
  | Some v ->
      Obs.Counter.incr Stats.c_cache_hits;
      v.(i)
  | None ->
      Obs.Counter.incr Stats.c_subsumption_tests;
      Subsume.subsumes ~max_steps:t.max_steps clause t.bottoms.(i)

(** [vector ?assume ?within t clause] returns the boolean coverage
    vector of [clause] over all examples.

    [assume] marks examples already known to be covered (because
    [clause] generalizes a clause that covered them); those are not
    re-tested. [within] marks the only examples that can possibly be
    covered (because [clause] specializes a clause whose coverage was
    [within]); the rest are reported uncovered without testing. These
    are the paper's coverage-test reuse optimizations
    (Section 7.5.4). *)
let vector ?assume ?within t clause =
  (* masked queries bypass the cache: their vectors are only valid for
     that particular mask *)
  let cacheable = t.cache_enabled && assume = None && within = None in
  let key = cache_key clause in
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      Obs.Span.record_ns span_vector (Float.to_int (dt *. 1e9));
      Obs.Reservoir.note slow_vectors dt key)
  @@ fun () ->
  Obs.Counter.incr Stats.c_coverage_vectors;
  match (if t.cache_enabled then Hashtbl.find_opt t.cache key else None) with
  | Some v ->
      Obs.Counter.incr Stats.c_cache_hits;
      (* a cached unmasked vector answers masked queries exactly *)
      (match within with
      | Some mask -> Array.mapi (fun i b -> b && mask.(i)) v
      | None -> Array.copy v)
  | None ->
      if t.cache_enabled then Obs.Counter.incr c_cache_misses;
      let test i =
        match within with
        | Some mask when not mask.(i) -> false
        | _ -> (
            match assume with
            | Some known when known.(i) -> true
            | _ ->
                Obs.Counter.incr Stats.c_subsumption_tests;
                Subsume.subsumes ~max_steps:t.max_steps clause t.bottoms.(i))
      in
      let v =
        if t.domains <= 1 then Array.init (length t) test
        else
          Parallel.init ~force:t.force_parallel ~domains:t.domains (length t)
            test
      in
      if cacheable then Hashtbl.replace t.cache key (Array.copy v);
      v

let count v = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v

(** [covered_count ?assume ?within t clause] = number of covered
    examples. *)
let covered_count ?assume ?within t clause =
  count (vector ?assume ?within t clause)
