(** Coverage testing (Section 7.5.3-7.5.4).

    A candidate clause [C] covers example [e] iff [C] θ-subsumes the
    ground bottom clause [⊥e]. The ground bottom clauses of all
    training examples are precomputed once per (dataset, schema) and
    reused by every learner, exactly like the paper's per-example
    saturations.

    Two optimizations from the paper are implemented here: a
    memoization table keyed by {!Clause.canonical_key} — a structural,
    variable-normalized key, so α-equivalent clauses produced by
    different ARMG paths share one entry — and the generality
    shortcut: when testing a clause known to be more general than a
    previously tested one, the examples already covered need not be
    re-tested. Coverage tests can also be fanned out over domains
    ({!Parallel}). *)

open Castor_relational
open Castor_logic
module Obs = Castor_obs.Obs

type t = {
  examples : Atom.t array;
  bottoms : Clause.t array;  (** ground bottom clause per example *)
  max_steps : int;
  cache : (string, bool array) Hashtbl.t;
  mutable cache_enabled : bool;
  mutable domains : int;
  mutable force_parallel : bool;
      (** fan out even when the runtime reports one hardware thread —
          used by tests that must exercise real worker domains *)
  store : Store.t option;
      (** sharded store of the ground saturations, keyed by example id
          (column 0 of every relation) — the operand of the batched
          semi-join kernel; [None] when the kernel cannot apply (e.g.
          the target relation shadows a schema relation) *)
  eids : int array;
      (** example id in [store] of each local example; restriction via
          {!sub} remaps indexes but shares the store *)
  mutable batch_enabled : bool;
}

(* Load every ground saturation into a sharded store: relation R of
   arity a is stored with arity a + 1, column 0 carrying the example
   id (also the partitioning key, so one example's literals are
   shard-local). The target relation holds the head atoms. *)
let example_store ~shards inst (examples : Atom.t array)
    (bottoms : Clause.t array) =
  if Array.length examples = 0 then None
  else begin
    let schema = Instance.schema inst in
    let rels =
      List.map
        (fun (r : Schema.relation) ->
          (r.Schema.rname, List.length r.Schema.attrs + 1))
        schema.Schema.relations
    in
    let trel = examples.(0).Atom.rel in
    let tarity = Atom.arity examples.(0) in
    let uniform =
      Array.for_all
        (fun (e : Atom.t) ->
          String.equal e.Atom.rel trel && Atom.arity e = tarity)
        examples
    in
    if (not uniform) || List.mem_assoc trel rels then None
    else begin
      let store = Store.create ~shards (rels @ [ (trel, tarity + 1) ]) in
      Array.iteri
        (fun i (c : Clause.t) ->
          let eid = Value.int i in
          let put (a : Atom.t) =
            if Atom.is_ground a then
              ignore
                (Store.add store a.Atom.rel
                   (Array.append [| eid |] (Atom.to_tuple a)))
          in
          put c.Clause.head;
          List.iter put c.Clause.body)
        bottoms;
      Some store
    end
  end

(** [build ?expand ~params ~max_steps ?shards inst examples]
    precomputes the saturations of [examples]. Saturation neighborhood
    queries and the batched coverage kernel both run against sharded
    {!Castor_relational.Store}s partitioned across [shards]. *)
let build ?expand ~params ?(max_steps = 250_000)
    ?(shards = Store.default_shards) inst (examples : Atom.t array) =
  let inst_store = Store.of_instance ~shards inst in
  let lookup rel v = Store.tuples_containing inst_store rel v in
  let bottoms =
    Array.map (fun e -> Bottom.saturation ?expand ~lookup ~params inst e) examples
  in
  {
    examples;
    bottoms;
    max_steps;
    cache = Hashtbl.create 256;
    cache_enabled = true;
    domains = 1;
    force_parallel = false;
    store = example_store ~shards inst examples bottoms;
    eids = Array.init (Array.length examples) Fun.id;
    batch_enabled = true;
  }

let length t = Array.length t.examples

(** Wall-clock spent in batch [vector] calls and in single [covers]
    tests — the benches report where learning time goes from these. *)
let span_vector = Obs.Span.create "ilp.coverage.vector"

let span_covers = Obs.Span.create "ilp.coverage.covers"

(** Slowest [vector] calls, with the clause as label; for performance
    diagnosis in the benches. *)
let slow_vectors = Obs.Reservoir.create ~capacity:40 "ilp.coverage.slow_vectors"

(* The structural-key cache, made visible: [key_builds] is how often
   the canonical key is computed (its cost used to hide inside
   [Clause.to_string]); hits land in {!Stats.c_cache_hits}, misses
   here, so hit rate is derivable from any metrics dump. *)
let c_key_builds = Obs.Counter.create "ilp.coverage.key_builds"

let c_cache_misses = Obs.Counter.create "ilp.coverage.cache_misses"

let cache_key clause =
  Obs.Counter.incr c_key_builds;
  Clause.canonical_key clause

(** [sub t idxs] is the coverage structure restricted to the examples
    at [idxs] — saturations are shared, so cross-validation folds cost
    nothing extra. *)
let sub t idxs =
  {
    examples = Array.map (fun i -> t.examples.(i)) idxs;
    bottoms = Array.map (fun i -> t.bottoms.(i)) idxs;
    max_steps = t.max_steps;
    cache = Hashtbl.create 64;
    cache_enabled = t.cache_enabled;
    domains = t.domains;
    force_parallel = t.force_parallel;
    store = t.store;
    eids = Array.map (fun i -> t.eids.(i)) idxs;
    batch_enabled = t.batch_enabled;
  }

let set_domains t n = t.domains <- max 1 n

let set_force_parallel t b = t.force_parallel <- b

let set_cache t b = t.cache_enabled <- b

(** [set_batch t b] toggles the batched semi-join kernel; with [false]
    every test goes through per-example θ-subsumption (the
    differential battery compares the two). *)
let set_batch t b = t.batch_enabled <- b

(** The example-saturation store, when the kernel is available — lets
    learners reuse it for their own neighborhood queries. *)
let store t = t.store

let clear_cache t = Hashtbl.reset t.cache

(* ---------------- batched semi-join coverage ----------------------- *)

(* How often a vector call could ride the kernel vs. fell back to
   per-example subsumption because the clause is not acyclic-join
   shaped. *)
let c_batch_eligible = Obs.Counter.create "ilp.coverage.batch_eligible"

let c_batch_fallbacks = Obs.Counter.create "ilp.coverage.batch_fallbacks"

let pattern_of_atom (a : Atom.t) =
  {
    Algebra.prel = a.Atom.rel;
    pargs =
      Array.map
        (function
          | Term.Var v -> Algebra.Avar v
          | Term.Const c -> Algebra.Aconst c)
        a.Atom.args;
  }

(* The kernel applies when the clause — head included, since the head
   must match the bottom clause's head under the same substitution —
   is an acyclic join (GYO over the literals' variable sets; adding
   the shared example-id column preserves acyclicity). *)
let batch_plan t clause =
  match t.store with
  | None -> None
  | Some store ->
      if not t.batch_enabled then None
      else begin
        let patterns =
          List.map pattern_of_atom (clause.Clause.head :: clause.Clause.body)
        in
        match Hypergraph.join_forest (List.map Algebra.pattern_vars patterns) with
        | Some _ ->
            Obs.Counter.incr c_batch_eligible;
            Some (store, patterns)
        | None ->
            Obs.Counter.incr c_batch_fallbacks;
            None
      end

(* Answer one vector through the kernel: collect the examples the
   masks leave undecided, query their ids in one batch (fanned out
   over the Parallel pool when domains > 1), then fill in the masked
   positions. *)
let batched_vector ?assume ?within t store patterns =
  let n = Array.length t.examples in
  let undecided i =
    (match within with Some m when not m.(i) -> false | _ -> true)
    && match assume with Some k when k.(i) -> false | _ -> true
  in
  let positions =
    Array.of_list
      (List.filter undecided (List.init n Fun.id))
  in
  let eids = Array.map (fun i -> t.eids.(i)) positions in
  let fanout =
    if t.domains <= 1 then None
    else
      Some
        (fun shards f ->
          Parallel.init ~force:t.force_parallel ~domains:t.domains shards f)
  in
  let res = Algebra.semijoin_batch ?fanout store ~patterns ~eids in
  let v =
    Array.init n (fun i ->
        match within with
        | Some m when not m.(i) -> false
        | _ -> ( match assume with Some k when k.(i) -> true | _ -> false))
  in
  Array.iteri (fun j pos -> v.(pos) <- res.(j)) positions;
  v

(** [covers t clause i] tests coverage of the [i]-th example alone. A
    full vector cached for the same (α-equivalent) clause answers
    without a subsumption test. *)
let covers t clause i =
  Obs.Span.with_span span_covers @@ fun () ->
  match
    if t.cache_enabled then Hashtbl.find_opt t.cache (cache_key clause)
    else None
  with
  | Some v ->
      Obs.Counter.incr Stats.c_cache_hits;
      v.(i)
  | None ->
      Obs.Counter.incr Stats.c_subsumption_tests;
      Subsume.subsumes ~max_steps:t.max_steps clause t.bottoms.(i)

(** [vector ?assume ?within t clause] returns the boolean coverage
    vector of [clause] over all examples.

    [assume] marks examples already known to be covered (because
    [clause] generalizes a clause that covered them); those are not
    re-tested. [within] marks the only examples that can possibly be
    covered (because [clause] specializes a clause whose coverage was
    [within]); the rest are reported uncovered without testing. These
    are the paper's coverage-test reuse optimizations
    (Section 7.5.4). *)
let vector ?assume ?within t clause =
  (* masked queries bypass the cache: their vectors are only valid for
     that particular mask *)
  let cacheable = t.cache_enabled && assume = None && within = None in
  let key = cache_key clause in
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      Obs.Span.record_ns span_vector (Float.to_int (dt *. 1e9));
      Obs.Reservoir.note slow_vectors dt key)
  @@ fun () ->
  Obs.Counter.incr Stats.c_coverage_vectors;
  match (if t.cache_enabled then Hashtbl.find_opt t.cache key else None) with
  | Some v ->
      Obs.Counter.incr Stats.c_cache_hits;
      (* a cached unmasked vector answers masked queries exactly *)
      (match within with
      | Some mask -> Array.mapi (fun i b -> b && mask.(i)) v
      | None -> Array.copy v)
  | None ->
      if t.cache_enabled then Obs.Counter.incr c_cache_misses;
      let v =
        match batch_plan t clause with
        | Some (store, patterns) ->
            (* acyclic-join clause: one semi-join program per shard
               answers the whole batch *)
            batched_vector ?assume ?within t store patterns
        | None ->
            (* cyclic (or kernel-less) clause: per-example subsumption *)
            let test i =
              match within with
              | Some mask when not mask.(i) -> false
              | _ -> (
                  match assume with
                  | Some known when known.(i) -> true
                  | _ ->
                      Obs.Counter.incr Stats.c_subsumption_tests;
                      Subsume.subsumes ~max_steps:t.max_steps clause
                        t.bottoms.(i))
            in
            if t.domains <= 1 then Array.init (length t) test
            else
              Parallel.init ~force:t.force_parallel ~domains:t.domains
                (length t) test
      in
      if cacheable then Hashtbl.replace t.cache key (Array.copy v);
      v

let count v = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v

(** [covered_count ?assume ?within t clause] = number of covered
    examples. *)
let covered_count ?assume ?within t clause =
  count (vector ?assume ?within t clause)
