(** Coverage testing (Section 7.5.3-7.5.4).

    A candidate clause [C] covers example [e] iff [C] θ-subsumes the
    ground bottom clause [⊥e]. The ground bottom clauses of all
    training examples are precomputed once per (dataset, schema) and
    reused by every learner, exactly like the paper's per-example
    saturations.

    All data access goes through the {!Castor_relational.Backend}
    seam: [build] takes a {!Backend.spec} selecting the substrate
    (flat instance or sharded store), saturation reads through it, and
    the example-saturation database the batch kernel runs on is itself
    a backend. Strategy selection per candidate clause — cached
    vector, batched semi-join, per-example subsumption — is delegated
    to the cost-based {!Planner}.

    Two optimizations from the paper are implemented here: a
    memoization table keyed by {!Clause.canonical_key} — a structural,
    variable-normalized key, so α-equivalent clauses produced by
    different ARMG paths share one entry — and the generality
    shortcut: when testing a clause known to be more general than a
    previously tested one, the examples already covered need not be
    re-tested. Coverage tests can also be fanned out over domains
    ({!Parallel}).

    {2 Online updates}

    The structure subscribes to the source backend's delta stream
    ({!Backend.subscribe}). When the source mutates, the next coverage
    query drains the pending deltas and {e patches} itself instead of
    rebuilding: the private saturation substrate absorbs the batch
    ([Backend.apply]), only the examples whose neighborhood shares a
    constant with a delta tuple are re-saturated, their facts are
    add/removed in place inside the eid-keyed example store, and
    memoized vectors are lazily re-tested at exactly the patched
    example positions. A full rebuild survives only as a fallback —
    when a delta touches the target relation (retracting or creating
    label support) or when the delta log cannot account for the whole
    generation gap — counted separately under
    [ilp.coverage.full_refreshes]. *)

open Castor_relational
open Castor_logic
module Obs = Castor_obs.Obs

(* One memoized coverage vector. [egen] is the source generation the
   bits are valid at; an entry left behind by an incremental refresh
   is patched lazily (only the positions the refresh re-saturated are
   re-tested) instead of being thrown away. *)
type entry = { mutable egen : int; ev : bool array }

type t = {
  examples : Atom.t array;
  mutable bottoms : Clause.t array;
      (** ground bottom clause per example; patched (affected examples
          only) or rebuilt by {!refresh} when the source mutates *)
  max_steps : int;
  cache : (string, entry) Hashtbl.t;
  mutable cache_enabled : bool;
  mutable domains : int;
  mutable force_parallel : bool;
      (** fan out even when the runtime reports one hardware thread —
          used by tests that must exercise real worker domains *)
  inst : Instance.t;  (** the source database the examples live in *)
  source : Backend.t;
      (** zero-copy backend over [inst]; its delta stream drives the
          incremental refresh and its generation marks staleness *)
  mutable data : Backend.t;
      (** the saturation substrate ([spec] over [inst]); kept alive
          across refreshes so deltas can be absorbed instead of
          reloading the whole instance *)
  mutable spec : Backend.spec;
      (** which substrate saturation lookups and the example store are
          built on; {!set_backend} switches it *)
  expand : (string -> Tuple.t -> (string * Tuple.t) list) option;
  params : Bottom.params;
  mutable ex_store : Backend.t option;
      (** backend holding the ground saturations, keyed by example id
          (column 0 of every relation) — the operand of the batched
          semi-join kernel; [None] when the kernel cannot apply (e.g.
          the target relation shadows a schema relation) *)
  mutable eids : int array;
      (** example id in [ex_store] of each local example; restriction
          via {!sub} remaps indexes but shares the store *)
  mutable batch_enabled : bool;
  mutable src_gen : int;
      (** [source]'s generation when [bottoms]/[ex_store] were last
          brought up to date *)
  pending : Delta.t list ref;
      (** deltas the subscription delivered since [src_gen], newest
          first; drained by {!refresh} *)
  mutable dirty_log : (int * int array) list;
      (** incremental-refresh history, newest first: [(gen, affected)]
          records that reaching generation [gen] re-saturated exactly
          the local positions [affected] — what lazy cache patching
          replays *)
  mutable log_floor : int;
      (** generation below which the retained [dirty_log] no longer
          covers history; entries with [egen < log_floor] cannot be
          patched and are recomputed in full *)
  decomps : (string, string * Hypergraph.decomposition) Hashtbl.t;
      (** hypertree decompositions memoized per clause canonical key,
          next to the coverage memo; the value carries the
          order-sensitive variable signature the entry was built from
          (see {!Hypergraph.signature}) because the canonical key
          sorts body literals — an α-equivalent clause presenting its
          literals in a different order must not reuse positional bag
          indexes. Decompositions depend only on clause structure,
          never on data, so entries are never invalidated; [sub]
          shares the table. Main-thread only, like [cache]. *)
}

(* Load every ground saturation into an example-keyed backend:
   relation R of arity a is stored with arity a + 1, column 0 carrying
   the example id (also the partitioning key, so one example's
   literals are partition-local). The target relation holds the head
   atoms. *)
let example_store ~spec inst (examples : Atom.t array)
    (bottoms : Clause.t array) =
  if Array.length examples = 0 then None
  else begin
    let schema = Instance.schema inst in
    let rels =
      List.map
        (fun (r : Schema.relation) ->
          (r.Schema.rname, List.length r.Schema.attrs + 1))
        schema.Schema.relations
    in
    let trel = examples.(0).Atom.rel in
    let tarity = Atom.arity examples.(0) in
    let uniform =
      Array.for_all
        (fun (e : Atom.t) ->
          String.equal e.Atom.rel trel && Atom.arity e = tarity)
        examples
    in
    if (not uniform) || List.mem_assoc trel rels then None
    else begin
      let backend = Backend.create spec (rels @ [ (trel, tarity + 1) ]) in
      let module B = (val backend : Backend.S) in
      Array.iteri
        (fun i (c : Clause.t) ->
          let eid = Value.int i in
          let put (a : Atom.t) =
            if Atom.is_ground a then
              ignore
                (B.add a.Atom.rel (Array.append [| eid |] (Atom.to_tuple a)))
          in
          put c.Clause.head;
          List.iter put c.Clause.body)
        bottoms;
      Some backend
    end
  end

let saturate_all ?expand ~params ~backend inst examples =
  Array.map
    (fun e -> Bottom.saturation ?expand ~backend ~params inst e)
    examples

(** [build ?expand ~params ~max_steps ?backend inst examples]
    precomputes the saturations of [examples]. [backend] selects the
    storage substrate ({!Backend.spec}; default the sharded store)
    that both saturation neighborhood queries and the batched coverage
    kernel run against. The structure subscribes to [inst]'s delta
    stream, so later mutations are absorbed incrementally. *)
let build ?expand ~params ?(max_steps = 250_000)
    ?(backend = Backend.default_spec) inst (examples : Atom.t array) =
  let source = Backend.of_instance inst in
  let data = Backend.load backend inst in
  let bottoms = saturate_all ?expand ~params ~backend:data inst examples in
  let pending = ref [] in
  Backend.subscribe source (fun ds -> pending := List.rev_append ds !pending);
  let src_gen = Backend.generation source in
  {
    examples;
    bottoms;
    max_steps;
    cache = Hashtbl.create 256;
    cache_enabled = true;
    domains = 1;
    force_parallel = false;
    inst;
    source;
    data;
    spec = backend;
    expand;
    params;
    ex_store = example_store ~spec:backend inst examples bottoms;
    eids = Array.init (Array.length examples) Fun.id;
    batch_enabled = true;
    src_gen;
    pending;
    dirty_log = [];
    log_floor = src_gen;
    decomps = Hashtbl.create 64;
  }

let length t = Array.length t.examples

(** Wall-clock spent in batch [vector] calls and in single [covers]
    tests — the benches report where learning time goes from these. *)
let span_vector = Obs.Span.create "ilp.coverage.vector"

let span_covers = Obs.Span.create "ilp.coverage.covers"

(** Slowest [vector] calls, with the clause as label; for performance
    diagnosis in the benches. *)
let slow_vectors = Obs.Reservoir.create ~capacity:40 "ilp.coverage.slow_vectors"

(* The structural-key cache, made visible: [key_builds] is how often
   the canonical key is computed (its cost used to hide inside
   [Clause.to_string]); hits land in {!Stats.c_cache_hits}, misses
   here, so hit rate is derivable from any metrics dump. *)
let c_key_builds = Obs.Counter.create "ilp.coverage.key_builds"

let c_cache_misses = Obs.Counter.create "ilp.coverage.cache_misses"

(** How often a stale source was detected and brought up to date (by
    either path — see [full_refreshes] for the expensive one). *)
let c_refreshes = Obs.Counter.create "ilp.coverage.refreshes"

(** Fallback rebuilds: bottoms, example store and memo table all
    recomputed from scratch because a delta touched the target
    relation or the delta log could not account for the generation
    gap. The online-update promise is this counter staying at zero on
    non-target mutation streams. *)
let c_full_refreshes = Obs.Counter.create "ilp.coverage.full_refreshes"

(** Deltas absorbed incrementally (patch path, per delta). *)
let c_delta_applied = Obs.Counter.create "ilp.coverage.delta_applied"

(** Per-example incremental re-saturations triggered by deltas. *)
let c_delta_rounds = Obs.Counter.create "ilp.saturation.delta_rounds"

(** Memoized vectors lazily re-tested at patched positions only. *)
let c_cache_patches = Obs.Counter.create "ilp.coverage.cache_patches"

let cache_key t clause =
  ignore t;
  Obs.Counter.incr c_key_builds;
  Clause.canonical_key clause

(* How many incremental-refresh history entries are retained for lazy
   cache patching; a vector untouched for longer is recomputed. *)
let dirty_log_cap = 32

(* ---------------- refresh: full fallback ---------------------------- *)

(* Rebuild everything derived from the source instance, from scratch.
   The planner's statistics memo is dropped too: it may hold
   distinct counts stamped by the example store being replaced. *)
let full_refresh t gen =
  Obs.Counter.incr c_full_refreshes;
  let data = Backend.load t.spec t.inst in
  t.data <- data;
  t.bottoms <-
    saturate_all ?expand:t.expand ~params:t.params ~backend:data t.inst
      t.examples;
  t.ex_store <- example_store ~spec:t.spec t.inst t.examples t.bottoms;
  t.eids <- Array.init (Array.length t.examples) Fun.id;
  Hashtbl.reset t.cache;
  t.dirty_log <- [];
  t.log_floor <- gen;
  Planner.invalidate_statistics ();
  t.src_gen <- gen

(* ---------------- refresh: incremental patch ------------------------ *)

(* Swap example [i]'s saturation inside the shared example store:
   delete the old clause's facts under the example's eid, insert the
   new clause's. Set semantics make the sequence idempotent, so a
   parent and a [sub] structure patching the same shared store (same
   eid, same old/new clauses — saturation is deterministic) converge
   to the same state. *)
let patch_ex_store t i (old_b : Clause.t) (new_b : Clause.t) =
  match t.ex_store with
  | None -> ()
  | Some store ->
      let module B = (val store : Backend.S) in
      let eid = Value.int t.eids.(i) in
      let del (a : Atom.t) =
        if Atom.is_ground a then
          ignore (B.remove a.Atom.rel (Array.append [| eid |] (Atom.to_tuple a)))
      in
      let put (a : Atom.t) =
        if Atom.is_ground a then
          ignore (B.add a.Atom.rel (Array.append [| eid |] (Atom.to_tuple a)))
      in
      del old_b.Clause.head;
      List.iter del old_b.Clause.body;
      put new_b.Clause.head;
      List.iter put new_b.Clause.body

(* Conservative affectedness: example [i]'s saturation can only change
   if a delta tuple shares a constant with its current neighborhood.
   Sound in both directions: an added tuple enters the neighborhood
   only through a lookup on an in-neighborhood constant (so it shares
   one), and a removed tuple can only have participated in such a
   lookup if it mentions an in-neighborhood constant — bottoms are
   ground, so "neighborhood constants" is exactly the constants of
   the bottom clause (head included). *)
let affected_positions t ds =
  let dvals : (Value.t, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun d -> Array.iter (fun v -> Hashtbl.replace dvals v ()) (Delta.tuple d))
    ds;
  let atom_touched (a : Atom.t) =
    Array.exists
      (function Term.Const v -> Hashtbl.mem dvals v | Term.Var _ -> false)
      a.Atom.args
  in
  let clause_touched (c : Clause.t) =
    atom_touched c.Clause.head || List.exists atom_touched c.Clause.body
  in
  Array.of_list
    (List.filter
       (fun i -> clause_touched t.bottoms.(i))
       (List.init (Array.length t.bottoms) Fun.id))

let incremental_refresh t ds gen =
  (* catch the private saturation substrate up; set semantics make
     re-application a no-op when [data] aliases the source (the Flat
     zero-copy wrapper) or when a shared [sub] already absorbed it *)
  Backend.apply t.data ds;
  Obs.Counter.add c_delta_applied (List.length ds);
  let affected = affected_positions t ds in
  Array.iter
    (fun i ->
      Obs.Counter.incr c_delta_rounds;
      let old_b = t.bottoms.(i) in
      let new_b =
        Bottom.saturation ?expand:t.expand ~backend:t.data ~params:t.params
          t.inst t.examples.(i)
      in
      t.bottoms.(i) <- new_b;
      patch_ex_store t i old_b new_b)
    affected;
  if Array.length affected > 0 then begin
    t.dirty_log <- (gen, affected) :: t.dirty_log;
    (* bound the history; vectors older than the retained window are
       recomputed instead of patched *)
    let rec take k = function
      | x :: tl when k > 0 ->
          let kept, dropped = take (k - 1) tl in
          (x :: kept, dropped)
      | rest -> ([], rest)
    in
    let kept, dropped = take dirty_log_cap t.dirty_log in
    (match dropped with
    | (g, _) :: _ ->
        t.dirty_log <- kept;
        t.log_floor <- g
    | [] -> ())
  end;
  t.src_gen <- gen

(* Bring the structure up to date with the source. The subscribed
   delta stream must account for the whole generation gap (it always
   does single-threaded; the length check is a defensive fallback) and
   must not touch the target relation — the example store keys label
   facts by eid and the fallback keeps that path simple and obviously
   correct. Everything else rides the patch path. *)
let refresh t =
  let gen = Backend.generation t.source in
  if gen <> t.src_gen then begin
    Obs.Counter.incr c_refreshes;
    let ds = List.rev !(t.pending) in
    t.pending := [];
    let lost = List.length ds <> gen - t.src_gen in
    let target_touched =
      List.exists
        (fun d ->
          let r = Delta.rel d in
          Array.exists (fun (e : Atom.t) -> String.equal e.Atom.rel r) t.examples)
        ds
    in
    if lost || target_touched then full_refresh t gen
    else incremental_refresh t ds gen
  end

(** [sub t idxs] is the coverage structure restricted to the examples
    at [idxs] — saturations and the example store are shared, so
    cross-validation folds cost nothing extra. The restriction gets
    its own delta subscription (seeded with the parent's outstanding
    deltas), so both structures absorb later mutations independently
    and idempotently. *)
let sub t idxs =
  let pending = ref !(t.pending) in
  Backend.subscribe t.source (fun ds -> pending := List.rev_append ds !pending);
  {
    examples = Array.map (fun i -> t.examples.(i)) idxs;
    bottoms = Array.map (fun i -> t.bottoms.(i)) idxs;
    max_steps = t.max_steps;
    cache = Hashtbl.create 64;
    cache_enabled = t.cache_enabled;
    domains = t.domains;
    force_parallel = t.force_parallel;
    inst = t.inst;
    source = t.source;
    data = t.data;
    spec = t.spec;
    expand = t.expand;
    params = t.params;
    ex_store = t.ex_store;
    eids = Array.map (fun i -> t.eids.(i)) idxs;
    batch_enabled = t.batch_enabled;
    src_gen = t.src_gen;
    pending;
    dirty_log = [];
    log_floor = t.src_gen;
    decomps = t.decomps;
  }

let set_domains t n = t.domains <- max 1 n

let set_force_parallel t b = t.force_parallel <- b

let set_cache t b = t.cache_enabled <- b

(** [set_batch t b] toggles the batched semi-join kernel; with [false]
    the planner routes every test through per-example θ-subsumption
    (the differential battery compares the two). *)
let set_batch t b = t.batch_enabled <- b

(** The backend spec the structure currently runs on. *)
let backend_spec t = t.spec

(** [set_backend t spec] re-bases the structure on another storage
    substrate: the saturation substrate and the example-saturation
    store are rebuilt under [spec] and subsequent refreshes patch
    through them. Bottom clauses are canonical — independent of the
    serving backend — so they are kept; coverage semantics are
    unchanged by construction. The planner's memoized statistics are
    invalidated: they were stamped with the replaced store's
    generations, which the fresh substrate restarts. *)
let set_backend t spec =
  if spec <> t.spec then begin
    t.spec <- spec;
    t.data <- Backend.load spec t.inst;
    t.ex_store <- example_store ~spec t.inst t.examples t.bottoms;
    t.eids <- Array.init (Array.length t.examples) Fun.id;
    Planner.invalidate_statistics ()
  end

(** The example-saturation backend, when the kernel is available —
    lets learners reuse it for their own neighborhood queries. *)
let store t = t.ex_store

let clear_cache t = Hashtbl.reset t.cache

(* ---------------- planner-dispatched evaluation -------------------- *)

(* Kept beside the planner's own counters: how often a test was
   kernel-eligible (store available, batching on — whatever strategy
   the cost model then picked). Since the kernel runs over a
   generalized hypertree decomposition, cyclic clauses are eligible
   too and the forced-fallback counter is retired: it stays recorded
   (CI pins it) but nothing increments it anymore. *)
let c_batch_eligible = Obs.Counter.create "ilp.coverage.batch_eligible"

let c_batch_fallbacks = Obs.Counter.create "ilp.coverage.batch_fallbacks"

let note_plan_reason (d : Planner.decision) =
  match d.Planner.reason with
  | Planner.Cost -> Obs.Counter.incr c_batch_eligible
  | Planner.No_store | Planner.Disabled -> ()

(** Decomposition-memo hits: a planner probe of an α-equivalent
    candidate served without rebuilding the hypertree decomposition. *)
let c_decomp_hits = Obs.Counter.create "ilp.coverage.decomp_memo_hits"

(* Decomposition through the per-canonical-key memo. The entry stores
   the order-sensitive variable signature it was computed from: the
   canonical key sorts body literals, so an α-equivalent clause whose
   literals arrive in a different order would make the memoized
   positional bag indexes meaningless — such an entry is transparently
   recomputed and replaced. Entries depend only on clause structure
   (never on data), so no invalidation on refresh or re-base. *)
let memo_decompose t key sorts =
  let vsig = Hypergraph.signature sorts in
  match Hashtbl.find_opt t.decomps key with
  | Some (s, d) when String.equal s vsig ->
      Obs.Counter.incr c_decomp_hits;
      d
  | _ ->
      let d = Hypergraph.decompose sorts in
      Hashtbl.replace t.decomps key (vsig, d);
      d

let avg_bottom_len t =
  let n = Array.length t.bottoms in
  if n = 0 then 0.
  else
    float_of_int
      (Array.fold_left
         (fun acc (c : Clause.t) -> acc + 1 + List.length c.Clause.body)
         0 t.bottoms)
    /. float_of_int n

let plan t ~key ~n_undecided clause =
  let d =
    Planner.choose ~batch_enabled:t.batch_enabled ~ex_store:t.ex_store
      ~n_undecided ~avg_bottom_len:(avg_bottom_len t)
      ~decompose:(memo_decompose t key) clause
  in
  note_plan_reason d;
  d

(* Run the kernel for the given undecided local example indexes and
   note the work it actually did (rows scanned plus leapfrog seeks)
   against the planner's estimate. *)
let run_semijoin t patterns decomp positions =
  match t.ex_store with
  | None -> invalid_arg "Coverage.run_semijoin: no example store"
  | Some store ->
      let eids = Array.map (fun i -> t.eids.(i)) positions in
      (* snapshot the mutable knobs before building the worker-seeding
         closure: a concurrent [set_domains]/[set_force_parallel] must
         not change the fan-out shape mid-run *)
      let force = t.force_parallel and domains = t.domains in
      let fanout =
        if domains <= 1 then None
        else Some (fun parts f -> Parallel.init ~force ~domains parts f)
      in
      let work () =
        Obs.Counter.value Algebra.c_rows_scanned
        + Obs.Counter.value Algebra.c_leapfrog_seeks
      in
      let work0 = work () in
      let res =
        Algebra.semijoin_batch ?fanout ~decomposition:decomp store ~patterns
          ~eids
      in
      Planner.note_actual (work () - work0);
      res

(* [bottoms] and [max_steps] are threaded explicitly (not read off
   [t]) so the worker closures built over this function hold an
   immutable snapshot — a concurrent [refresh] swapping [t.bottoms]
   cannot tear a running vector computation. *)
let subsumes_noted ~max_steps (bottoms : Clause.t array) clause i =
  Obs.Counter.incr Stats.c_subsumption_tests;
  let steps0 = Obs.Counter.value Subsume.c_steps in
  let r = Subsume.subsumes ~max_steps clause bottoms.(i) in
  Planner.note_actual (Obs.Counter.value Subsume.c_steps - steps0);
  r

(* Coverage bits of [clause] at exactly the given local positions —
   the planner dispatches, the workload is the positions array. Both
   the vector miss path and lazy cache patching funnel through here.
   [key] is the clause's canonical key, already computed by every
   caller; it addresses the decomposition memo. *)
let compute_positions t ~key clause (positions : int array) =
  if Array.length positions = 0 then [||]
  else
    match
      (plan t ~key ~n_undecided:(Array.length positions) clause)
        .Planner.strategy
    with
    | Planner.Semijoin (patterns, decomp) ->
        run_semijoin t patterns decomp positions
    | Planner.Subsumption ->
        (* the test closure runs on worker domains, so it captures a
           snapshot of the mutable state it needs instead of reading
           fields of [t] concurrently *)
        let bottoms = t.bottoms and max_steps = t.max_steps in
        let k = Array.length positions in
        let test j = subsumes_noted ~max_steps bottoms clause positions.(j) in
        let force = t.force_parallel and domains = t.domains in
        if domains <= 1 then Array.init k test
        else Parallel.init ~force ~domains k test

(* Dirty positions of a cache entry stamped [egen]: the union of every
   retained incremental refresh newer than it. *)
let dirty_since t egen =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (g, affected) ->
      if g > egen then
        Array.iter (fun i -> Hashtbl.replace seen i ()) affected)
    t.dirty_log;
  Array.of_list (List.sort compare (Hashtbl.fold (fun i () acc -> i :: acc) seen []))

(* Cache lookup with lazy patching: a fresh entry answers directly; an
   entry left stale by incremental refreshes is re-tested at exactly
   the positions those refreshes re-saturated, then promoted to the
   current generation; an entry older than the retained history reads
   as a miss (the caller recomputes and replaces it). *)
let cached_vector t clause key =
  if not t.cache_enabled then None
  else
    match Hashtbl.find_opt t.cache key with
    | None -> None
    | Some e when e.egen = t.src_gen -> Some e.ev
    | Some e when e.egen >= t.log_floor ->
        let dirty = dirty_since t e.egen in
        let bits = compute_positions t ~key clause dirty in
        Array.iteri (fun j pos -> e.ev.(pos) <- bits.(j)) dirty;
        e.egen <- t.src_gen;
        Obs.Counter.incr c_cache_patches;
        Some e.ev
    | Some _ -> None

(** [covers t clause i] tests coverage of the [i]-th example alone. A
    full vector cached for the same (α-equivalent) clause answers
    without any test; otherwise the planner picks between a
    single-example kernel run and one subsumption search — for one
    undecided example the cost model almost always prefers the
    latter. *)
let covers t clause i =
  Obs.Span.with_span span_covers @@ fun () ->
  refresh t;
  let key = cache_key t clause in
  match cached_vector t clause key with
  | Some v ->
      Obs.Counter.incr Stats.c_cache_hits;
      Planner.note_cached ();
      v.(i)
  | None -> (
      match (plan t ~key ~n_undecided:1 clause).Planner.strategy with
      | Planner.Semijoin (patterns, decomp) ->
          (run_semijoin t patterns decomp [| i |]).(0)
      | Planner.Subsumption ->
          subsumes_noted ~max_steps:t.max_steps t.bottoms clause i)

(** [vector ?assume ?within t clause] returns the boolean coverage
    vector of [clause] over all examples.

    [assume] marks examples already known to be covered (because
    [clause] generalizes a clause that covered them); those are not
    re-tested. [within] marks the only examples that can possibly be
    covered (because [clause] specializes a clause whose coverage was
    [within]); the rest are reported uncovered without testing. These
    are the paper's coverage-test reuse optimizations
    (Section 7.5.4). *)
let vector ?assume ?within t clause =
  refresh t;
  (* masked queries bypass cache insertion: their vectors are only
     valid for that particular mask *)
  let cacheable = t.cache_enabled && assume = None && within = None in
  let key = cache_key t clause in
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      Obs.Span.record_ns span_vector (Float.to_int (dt *. 1e9));
      Obs.Reservoir.note slow_vectors dt key)
  @@ fun () ->
  Obs.Counter.incr Stats.c_coverage_vectors;
  match cached_vector t clause key with
  | Some v ->
      Obs.Counter.incr Stats.c_cache_hits;
      Planner.note_cached ();
      (* a cached unmasked vector answers masked queries exactly *)
      (match within with
      | Some mask -> Array.mapi (fun i b -> b && mask.(i)) v
      | None -> Array.copy v)
  | None ->
      if t.cache_enabled then Obs.Counter.incr c_cache_misses;
      let n = length t in
      let undecided i =
        (match within with Some m when not m.(i) -> false | _ -> true)
        && match assume with Some k when k.(i) -> false | _ -> true
      in
      let positions =
        Array.of_list (List.filter undecided (List.init n Fun.id))
      in
      let bits = compute_positions t ~key clause positions in
      let v =
        Array.init n (fun i ->
            match within with
            | Some m when not m.(i) -> false
            | _ -> (
                match assume with Some k when k.(i) -> true | _ -> false))
      in
      Array.iteri (fun j pos -> v.(pos) <- bits.(j)) positions;
      if cacheable then
        Hashtbl.replace t.cache key { egen = t.src_gen; ev = Array.copy v };
      v

let count v = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 v

(** [covered_count ?assume ?within t clause] = number of covered
    examples. *)
let covered_count ?assume ?within t clause =
  count (vector ?assume ?within t clause)
