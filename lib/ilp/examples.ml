(** Training and testing examples.

    Examples are ground atoms of the target relation (which is not
    part of the schema); positives and negatives are kept separate, as
    in Definition 3.1. *)

open Castor_logic

type t = { pos : Atom.t array; neg : Atom.t array }

let make ~pos ~neg = { pos = Array.of_list pos; neg = Array.of_list neg }

let n_pos t = Array.length t.pos

let n_neg t = Array.length t.neg

(** Deterministic in-place Fisher-Yates shuffle. *)
let shuffle rng arr =
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

(** [folds ~seed k t] splits [t] into [k] (train, test) pairs for
    cross validation, stratified so each fold keeps the
    positive/negative ratio. *)
let folds ~seed k t =
  let rng = Random.State.make [| seed |] in
  let pos = shuffle rng t.pos and neg = shuffle rng t.neg in
  let split arr i =
    let n = Array.length arr in
    let test = ref [] and train = ref [] in
    Array.iteri
      (fun j x -> if j mod k = i then test := x :: !test else train := x :: !train)
      arr;
    ignore n;
    (List.rev !train, List.rev !test)
  in
  List.init k (fun i ->
      let ptr, pte = split pos i and ntr, nte = split neg i in
      ( { pos = Array.of_list ptr; neg = Array.of_list ntr },
        { pos = Array.of_list pte; neg = Array.of_list nte } ))

(** [subsample ~seed ~pos:np ~neg:nn t] keeps at most [np] positives
    and [nn] negatives, selected uniformly. *)
let subsample ~seed ~pos:np ~neg:nn t =
  let rng = Random.State.make [| seed |] in
  let take n arr =
    let a = shuffle rng arr in
    Array.sub a 0 (min n (Array.length a))
  in
  { pos = take np t.pos; neg = take nn t.neg }

(** [closed_world_negatives ~seed ~ratio inst target pos] samples
    pseudo-negative examples under the closed-world assumption: random
    tuples over the target's attribute domains (drawn from the values
    actually occurring in [inst]) that are not among the positives.
    This is how a learner restricted to safe clauses can be trained
    from positive examples only (Section 7.3) — and how the paper's
    UW-CSE and IMDb negatives were produced (Section 9.1.1). *)
let closed_world_negatives ~seed ?(ratio = 2) inst
    (target : Castor_relational.Schema.relation) (pos : Atom.t array) =
  let open Castor_relational in
  let rng = Random.State.make [| seed |] in
  let schema = Instance.schema inst in
  (* candidate constants per target argument: values stored under any
     attribute with the same domain *)
  let pool_of (a : Schema.attribute) =
    List.concat_map
      (fun (r : Schema.relation) ->
        List.filter_map
          (fun (a' : Schema.attribute) ->
            if String.equal a'.Schema.domain a.Schema.domain then
              Some (Instance.column_values inst r.Schema.rname a'.Schema.aname)
            else None)
          r.Schema.attrs
        |> List.concat)
      schema.Schema.relations
    |> List.sort_uniq Value.compare |> Array.of_list
  in
  let pools = List.map pool_of target.Schema.attrs in
  if List.exists (fun p -> Array.length p = 0) pools then [||]
  else begin
    let is_pos a = Array.exists (Atom.equal a) pos in
    let out = ref [] in
    let seen = Hashtbl.create 64 in
    let want = ratio * Array.length pos in
    let attempts = ref 0 in
    while List.length !out < want && !attempts < 100 * want do
      incr attempts;
      let args =
        List.map
          (fun pool -> Term.Const pool.(Random.State.int rng (Array.length pool)))
          pools
      in
      let a = Atom.make target.Schema.rname args in
      let key = Atom.to_string a in
      if (not (Hashtbl.mem seen key)) && not (is_pos a) then begin
        Hashtbl.replace seen key ();
        out := a :: !out
      end
    done;
    Array.of_list (List.rev !out)
  end

(** Relation name the examples are drawn from, when it is uniform
    across positives and negatives; [None] on empty or mixed sets. *)
let target_relation t =
  let names =
    Array.to_list (Array.append t.pos t.neg)
    |> List.map (fun (a : Atom.t) -> a.Atom.rel)
    |> List.sort_uniq String.compare
  in
  match names with [ r ] -> Some r | _ -> None

(** [mutation_stream ~seed ?length inst t] draws a deterministic
    interleaved add/remove delta stream over the {e non-target}
    relations of [inst] — the tuple-stream shape the online coverage
    path absorbs without a full refresh. Removals pick stored tuples;
    additions recombine stored column values into (usually fresh)
    tuples, so both directions stay inside the attribute domains.
    Ineffective deltas (re-removing, re-adding) may occur and are
    dropped by the substrate on application. Used by the incremental
    bench replay and the mutation-stream differential battery. *)
let mutation_stream ~seed ?(length = 16) inst t =
  let open Castor_relational in
  let rng = Random.State.make [| seed |] in
  let target = Option.value ~default:"" (target_relation t) in
  let rels =
    List.filter
      (fun (r : Schema.relation) ->
        (not (String.equal r.Schema.rname target))
        && Instance.cardinality inst r.Schema.rname > 0)
      (Instance.schema inst).Schema.relations
    |> Array.of_list
  in
  if Array.length rels = 0 then []
  else
    List.init length (fun _ ->
        let r = rels.(Random.State.int rng (Array.length rels)) in
        let rel = r.Schema.rname in
        let stored = Array.of_list (Instance.tuples inst rel) in
        if Random.State.bool rng then
          Delta.Remove (rel, stored.(Random.State.int rng (Array.length stored)))
        else
          let arity = List.length r.Schema.attrs in
          let tu =
            Array.init arity (fun j ->
                let row = stored.(Random.State.int rng (Array.length stored)) in
                row.(j))
          in
          Delta.Add (rel, tu))

let pp ppf t =
  Fmt.pf ppf "%d positive / %d negative examples" (n_pos t) (n_neg t)
