lib/learners/progol.ml: Array Atom Bottom Castor_ilp Castor_logic Castor_relational Clause Coverage Covering Examples List Problem Schema Scoring Term
