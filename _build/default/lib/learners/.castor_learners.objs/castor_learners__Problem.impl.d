lib/learners/problem.ml: Atom Bottom Castor_ilp Castor_logic Castor_relational Clause Coverage Examples Instance List Printf Random Schema Term Value
