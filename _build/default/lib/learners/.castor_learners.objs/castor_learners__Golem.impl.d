lib/learners/golem.ml: Array Castor_ilp Castor_logic Castor_relational Clause Coverage Covering Examples Lgg List Minimize Negreduce Problem Random Schema Scoring
