lib/learners/foil.ml: Array Atom Castor_ilp Castor_logic Castor_relational Clause Coverage Covering Examples Fmt Instance List Printf Problem Schema Scoring String Sys Term
