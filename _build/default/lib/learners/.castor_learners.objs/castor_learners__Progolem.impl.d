lib/learners/progolem.ml: Armg Array Atom Bottom Castor_ilp Castor_logic Castor_relational Clause Coverage Covering Examples Fmt Fun List Negreduce Problem Random Schema Scoring Sys
