(** A learning task handed to any of the learners: the background
    database, the declared target relation (with typed attributes so
    top-down learners can type their variables), training examples,
    and precomputed coverage structures over the positives and
    negatives. *)

open Castor_relational
open Castor_logic
open Castor_ilp

type t = {
  instance : Instance.t;
  target : Schema.relation;
      (** target relation declaration; not part of the schema *)
  train : Examples.t;
  pos_cov : Coverage.t;  (** coverage over [train.pos] *)
  neg_cov : Coverage.t;  (** coverage over [train.neg] *)
  const_pool : (string * Value.t list) list;
      (** per-domain constants that top-down learners may place in
          literals (e.g. phases, course levels, genres) *)
  bottom_params : Bottom.params;
      (** saturation parameters used for the coverage structures; the
          bottom-clause-based learners inherit them so hypothesis and
          coverage spaces agree *)
  rng : Random.State.t;
}

(** [head p] is the most general head atom [T(X0, .., Xn-1)]. *)
let head p =
  Atom.make p.target.Schema.rname
    (List.mapi (fun i _ -> Term.Var (Printf.sprintf "X%d" i)) p.target.Schema.attrs)

(** Domains of the head variables, in order. *)
let head_domains p = List.map (fun a -> a.Schema.domain) p.target.Schema.attrs

(** [make ?bottom_params ?const_pool ?seed ?expand inst target train]
    assembles a problem, precomputing the example saturations. The
    optional [expand] hook threads Castor's IND chase into the
    saturations used for coverage testing. *)
let make ?(bottom_params = Bottom.default_params) ?(const_pool = []) ?(seed = 42)
    ?expand ?(max_steps = 40_000) instance target (train : Examples.t) =
  {
    instance;
    target;
    train;
    pos_cov = Coverage.build ?expand ~params:bottom_params ~max_steps instance train.Examples.pos;
    neg_cov = Coverage.build ?expand ~params:bottom_params ~max_steps instance train.Examples.neg;
    const_pool;
    bottom_params;
    rng = Random.State.make [| seed |];
  }

(** A learner maps a problem to a Horn definition of the target. *)
type learner = t -> Clause.definition
