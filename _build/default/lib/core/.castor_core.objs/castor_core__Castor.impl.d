lib/core/castor.ml: Bottom Castor_ilp Castor_learners Castor_logic Castor_relational Coverage Covering Examples Inclusion Ind_repair Instance Minimize Plan Problem Progolem Reduction Schema
