lib/core/reduction.ml: Array Atom Castor_ilp Castor_logic Castor_relational Clause Coverage Fun Hashtbl List Plan Queue String Term
