lib/core/plan.ml: Array Castor_relational Fmt Hashtbl Inclusion Instance List Option Schema Tuple
