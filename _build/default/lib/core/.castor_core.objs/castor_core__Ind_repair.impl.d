lib/core/ind_repair.ml: Array Atom Castor_logic Castor_relational Clause List Plan String Term
