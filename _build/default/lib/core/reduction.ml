(** Castor's negative reduction over inclusion-class instances
    (Algorithm 5) and its safe variant (Section 7.3.3).

    Literals are grouped into {e instances of inclusion classes}: a
    literal together with the partner literals reachable through the
    schema's INDs with matching projections. Reduction then removes
    whole instances — never splitting one — which is what keeps the
    operation equivalent across composition/decomposition
    (Lemma 7.8): an instance over the decomposed schema corresponds to
    a single literal over the composed one. *)

open Castor_logic
open Castor_ilp

let project_terms (a : Atom.t) positions =
  List.map (fun p -> a.Atom.args.(p)) positions

(** [instances plan body] computes, for each body literal, the
    inclusion-class instance it starts; identical instances are kept
    once, in order of their starting literal. Literals of relations
    outside every inclusion class form singleton instances. Each
    instance is a sorted list of body indexes. *)
let instances (plan : Plan.t) (body : Atom.t array) =
  let n = Array.length body in
  let closure j =
    let in_cl = Array.make n false in
    in_cl.(j) <- true;
    let queue = Queue.create () in
    Queue.add j queue;
    while not (Queue.is_empty queue) do
      let k = Queue.pop queue in
      List.iter
        (fun (cl : Plan.chase_link) ->
          let mine = project_terms body.(k) cl.Plan.src_pos in
          for l = 0 to n - 1 do
            if
              (not in_cl.(l))
              && String.equal body.(l).Atom.rel
                   cl.Plan.link.Castor_relational.Inclusion.dst
              && List.for_all2 Term.equal mine (project_terms body.(l) cl.Plan.dst_pos)
            then begin
              in_cl.(l) <- true;
              Queue.add l queue
            end
          done)
        (Plan.chase_links plan body.(k).Atom.rel)
    done;
    List.filteri (fun i _ -> in_cl.(i)) (List.init n Fun.id)
  in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun j ->
      let c = closure j in
      let key = String.concat "," (List.map string_of_int c) in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some c
      end)
    (List.init n Fun.id)

let inst_vars body inst =
  List.fold_left
    (fun acc i -> Term.Set.union acc (Atom.var_set body.(i)))
    Term.Set.empty inst

let clause_of_instances head (body : Atom.t array) insts =
  let keep = Array.make (Array.length body) false in
  List.iter (fun inst -> List.iter (fun i -> keep.(i) <- true) inst) insts;
  Clause.make head
    (List.filteri (fun i _ -> keep.(i)) (Array.to_list body))

(* shortest chain of instances connecting [target] to the head
   variables, via shared variables; excludes [target] itself *)
let head_connecting body head_vars insts target =
  let arr = Array.of_list insts in
  let n = Array.length arr in
  let vars = Array.map (fun i -> inst_vars body i) arr in
  let t_idx =
    let rec go i = if i >= n then -1 else if arr.(i) == target then i else go (i + 1) in
    go 0
  in
  if t_idx < 0 then []
  else if not (Term.Set.is_empty (Term.Set.inter vars.(t_idx) head_vars)) then []
  else begin
    (* BFS from head-adjacent instances towards target *)
    let parent = Array.make n (-2) in
    let queue = Queue.create () in
    Array.iteri
      (fun i v ->
        if i <> t_idx && not (Term.Set.is_empty (Term.Set.inter v head_vars)) then begin
          parent.(i) <- -1;
          Queue.add i queue
        end)
      vars;
    let found = ref (-1) in
    while !found < 0 && not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      if not (Term.Set.is_empty (Term.Set.inter vars.(i) vars.(t_idx))) then
        found := i
      else
        Array.iteri
          (fun j v ->
            if
              parent.(j) = -2 && j <> t_idx
              && not (Term.Set.is_empty (Term.Set.inter vars.(i) v))
            then begin
              parent.(j) <- i;
              Queue.add j queue
            end)
          vars
    done;
    if !found < 0 then []
    else begin
      let rec walk i acc = if i < 0 then acc else walk parent.(i) (arr.(i) :: acc) in
      walk !found []
    end
  end

(** [reduce plan ?safe neg_cov c] removes non-essential inclusion-class
    instances from [c] without increasing negative coverage. With
    [safe], instances are first ordered by the number of head
    variables they carry and discarded instances that are the sole
    carriers of a head variable are retained (Section 7.3.3), so the
    result stays safe. *)
let reduce (plan : Plan.t) ?(safe = false) (neg_cov : Coverage.t) (c : Clause.t) =
  if c.Clause.body = [] then c
  else begin
    let body = Array.of_list c.Clause.body in
    let head_vars = Atom.var_set c.Clause.head in
    let full_neg = Coverage.covered_count neg_cov c in
    let insts0 = instances plan body in
    let insts0 =
      if not safe then insts0
      else
        (* stable sort: more head variables first *)
        List.stable_sort
          (fun a b ->
            let count i =
              Term.Set.cardinal (Term.Set.inter (inst_vars body i) head_vars)
            in
            compare (count b) (count a))
          insts0
    in
    let current = ref insts0 in
    let finished = ref false in
    let result = ref c in
    while not !finished do
      let arr = Array.of_list !current in
      let n = Array.length arr in
      (* first i such that instances 0..i reach the full clause's
         negative coverage *)
      let rec find_i i acc =
        if i >= n then n - 1
        else
          let acc = arr.(i) :: acc in
          let cl = clause_of_instances c.Clause.head body (List.rev acc) in
          if Coverage.covered_count neg_cov cl = full_neg then i
          else find_i (i + 1) acc
      in
      let i = find_i 0 [] in
      let yi = arr.(i) in
      let h = head_connecting body head_vars !current yi in
      let prefix = Array.to_list (Array.sub arr 0 i) in
      let kept_n =
        List.filter (fun x -> not (List.memq x h) && not (x == yi)) prefix
      in
      let base = h @ [ yi ] @ kept_n in
      let extra =
        if not safe then []
        else begin
          (* retain discarded instances that carry otherwise-lost head
             variables *)
          let have =
            List.fold_left
              (fun acc inst -> Term.Set.union acc (inst_vars body inst))
              Term.Set.empty base
          in
          let missing = Term.Set.diff head_vars have in
          if Term.Set.is_empty missing then []
          else begin
            let still = ref missing and out = ref [] in
            Array.iter
              (fun inst ->
                if (not (List.memq inst base)) && not (Term.Set.is_empty !still)
                then begin
                  let vs = Term.Set.inter (inst_vars body inst) !still in
                  if not (Term.Set.is_empty vs) then begin
                    out := inst :: !out;
                    still := Term.Set.diff !still vs
                  end
                end)
              arr;
            List.rev !out
          end
        end
      in
      let next =
        (* dedup, preserving first occurrence *)
        let seen = ref [] in
        List.filter
          (fun x ->
            if List.memq x !seen then false
            else begin
              seen := x :: !seen;
              true
            end)
          (base @ extra)
      in
      if List.length next = List.length !current then begin
        result := clause_of_instances c.Clause.head body next;
        finished := true
      end
      else current := next
    done;
    !result
  end
