(** The IND-enforcement step of Castor's ARMG (Section 7.2.1).

    After a blocking atom is removed, the canonical database instance
    of the clause must keep satisfying the schema's INDs: a literal
    [R1(u1)] is dropped when some required IND [R1[X] (=|⊆) R2[X]] has
    no partner literal [R2(u2)] in the clause with matching projection
    [π_X(u1) = π_X(u2)]. Dropping a literal can orphan others, so the
    check iterates to a fixpoint. This is what makes Castor's ARMG
    commute with composition/decomposition (Lemma 7.7, Example 7.6). *)

open Castor_logic

let project_terms (a : Atom.t) positions =
  List.map (fun p -> a.Atom.args.(p)) positions

let satisfied body (a : Atom.t) (cl : Plan.chase_link) =
  let mine = project_terms a cl.Plan.src_pos in
  List.exists
    (fun (b : Atom.t) ->
      String.equal b.Atom.rel cl.Plan.link.Castor_relational.Inclusion.dst
      && (not (b == a))
      && List.for_all2 Term.equal mine (project_terms b cl.Plan.dst_pos))
    body

(** [repair plan c] removes literals whose required INDs are unmatched
    in [c]'s body, iterating to a fixpoint. *)
let repair (plan : Plan.t) (c : Clause.t) =
  let changed = ref true in
  let body = ref c.Clause.body in
  while !changed do
    changed := false;
    let keep (a : Atom.t) =
      List.for_all
        (fun cl ->
          (not cl.Plan.link.Castor_relational.Inclusion.required)
          || satisfied !body a cl)
        (Plan.chase_links plan a.Atom.rel)
    in
    let body' = List.filter keep !body in
    if List.length body' <> List.length !body then begin
      body := body';
      changed := true
    end
  done;
  { c with Clause.body = !body }
