(** Precision / recall of a learned definition over a labeled test set
    (Section 9.1.3). *)

type t = { precision : float; recall : float }

(** [of_counts ~tp ~fp ~pos_total] — precision is TP/(TP+FP) (0 when
    the definition covers nothing), recall is TP over the number of
    positive test examples. *)
let of_counts ~tp ~fp ~pos_total =
  {
    precision = (if tp + fp = 0 then 0. else float_of_int tp /. float_of_int (tp + fp));
    recall = (if pos_total = 0 then 0. else float_of_int tp /. float_of_int pos_total);
  }

let average l =
  let n = float_of_int (List.length l) in
  if l = [] then { precision = 0.; recall = 0. }
  else
    {
      precision = List.fold_left (fun a m -> a +. m.precision) 0. l /. n;
      recall = List.fold_left (fun a m -> a +. m.recall) 0. l /. n;
    }

let f1 m =
  if m.precision +. m.recall = 0. then 0.
  else 2. *. m.precision *. m.recall /. (m.precision +. m.recall)

let pp ppf m = Fmt.pf ppf "P=%.2f R=%.2f" m.precision m.recall
