(** Plain-text table rendering in the layout of the paper's result
    tables: one block per schema variant, one row per algorithm with
    precision, recall and learning time. *)

let hline width = String.make width '-'

(** [table ~title rows] groups rows by schema and prints the
    algorithm × (precision, recall, time) matrix. *)
let table ~title (rows : Experiment.row list) =
  let schemas =
    List.fold_left
      (fun acc (r : Experiment.row) ->
        if List.mem r.Experiment.schema_name acc then acc
        else acc @ [ r.Experiment.schema_name ])
      [] rows
  in
  let algos =
    List.fold_left
      (fun acc (r : Experiment.row) ->
        if List.mem r.Experiment.algo acc then acc else acc @ [ r.Experiment.algo ])
      [] rows
  in
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%s\n%s\n" title (hline (String.length title));
  pf "%-22s %-11s" "Algorithm" "Metric";
  List.iter (fun s -> pf " %12s" s) schemas;
  pf "\n%s\n" (hline (34 + (13 * List.length schemas)));
  List.iter
    (fun algo ->
      let cell schema f =
        match
          List.find_opt
            (fun (r : Experiment.row) ->
              String.equal r.Experiment.algo algo
              && String.equal r.Experiment.schema_name schema)
            rows
        with
        | Some r -> f r
        | None -> "-"
      in
      pf "%-22s %-11s" algo "Precision";
      List.iter
        (fun s ->
          pf " %12s"
            (cell s (fun r -> Printf.sprintf "%.2f" r.Experiment.metrics.Metrics.precision)))
        schemas;
      pf "\n%-22s %-11s" "" "Recall";
      List.iter
        (fun s ->
          pf " %12s"
            (cell s (fun r -> Printf.sprintf "%.2f" r.Experiment.metrics.Metrics.recall)))
        schemas;
      pf "\n%-22s %-11s" "" "Time (s)";
      List.iter
        (fun s -> pf " %12s" (cell s (fun r -> Printf.sprintf "%.2f" r.Experiment.time_s)))
        schemas;
      pf "\n%s\n" (hline (34 + (13 * List.length schemas))))
    algos;
  Buffer.contents buf

(** [series ~title ~xlabel points] prints a one-dimensional sweep
    (used for Figure 2 / Figure 3 output). Each point is
    [(x, (label, value) list)]. *)
let series ~title ~xlabel (points : (string * (string * float) list) list) =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "%s\n%s\n" title (hline (String.length title));
  let labels =
    match points with [] -> [] | (_, l) :: _ -> List.map fst l
  in
  pf "%-14s" xlabel;
  List.iter (fun l -> pf " %14s" l) labels;
  pf "\n";
  List.iter
    (fun (x, vals) ->
      pf "%-14s" x;
      List.iter (fun (_, v) -> pf " %14.3f" v) vals;
      pf "\n")
    points;
  Buffer.contents buf
