lib/eval/algos.ml: Castor Castor_core Castor_learners Experiment Foil Golem Printf Progol Progolem
