lib/eval/metrics.ml: Fmt List
