lib/eval/report.ml: Buffer Experiment List Metrics Printf String
