(** Global counters for the operations that dominate learning time
    (Section 7.5: coverage tests "dominate the time for learning").
    The benches report them; they are plain counters, reset between
    measurements. Counter updates are not atomic — parallel coverage
    tests may drop increments — so treat the numbers as measurements,
    not ground truth. *)

type t = {
  mutable subsumption_tests : int;
  mutable coverage_vectors : int;
  mutable cache_hits : int;
  mutable saturations : int;
  mutable armg_calls : int;
  mutable blocking_removals : int;
}

let current =
  {
    subsumption_tests = 0;
    coverage_vectors = 0;
    cache_hits = 0;
    saturations = 0;
    armg_calls = 0;
    blocking_removals = 0;
  }

let reset () =
  current.subsumption_tests <- 0;
  current.coverage_vectors <- 0;
  current.cache_hits <- 0;
  current.saturations <- 0;
  current.armg_calls <- 0;
  current.blocking_removals <- 0

(** [snapshot ()] copies the counters, so a caller can diff before and
    after a run. *)
let snapshot () = { current with subsumption_tests = current.subsumption_tests }

let diff (after : t) (before : t) =
  {
    subsumption_tests = after.subsumption_tests - before.subsumption_tests;
    coverage_vectors = after.coverage_vectors - before.coverage_vectors;
    cache_hits = after.cache_hits - before.cache_hits;
    saturations = after.saturations - before.saturations;
    armg_calls = after.armg_calls - before.armg_calls;
    blocking_removals = after.blocking_removals - before.blocking_removals;
  }

let pp ppf (s : t) =
  Fmt.pf ppf
    "subsumption tests %d, coverage vectors %d (cache hits %d), saturations %d, armg calls %d, blocking removals %d"
    s.subsumption_tests s.coverage_vectors s.cache_hits s.saturations
    s.armg_calls s.blocking_removals
