(** Clause scoring shared by the learners. *)

type stats = { pos_covered : int; neg_covered : int }

let stats ~pos_cov ~neg_cov =
  { pos_covered = Coverage.count pos_cov; neg_covered = Coverage.count neg_cov }

(** Coverage score [p − n] — the schema-agnostic evaluation function
    the paper recommends for beam search (Section 6.4). *)
let coverage s = s.pos_covered - s.neg_covered

(** Compression score [p − n − length], Progol-style. *)
let compression ~len s = s.pos_covered - s.neg_covered - len

(** Training precision [p / (p + n)]; 0 on empty coverage. *)
let precision s =
  if s.pos_covered + s.neg_covered = 0 then 0.
  else float_of_int s.pos_covered /. float_of_int (s.pos_covered + s.neg_covered)

(** [acceptable ~min_precision ~minpos s] is the paper's minimum
    condition on candidate clauses (minacc / minprec = 0.67, minpos =
    2 in the experiments). *)
let acceptable ~min_precision ~minpos s =
  s.pos_covered >= minpos && precision s >= min_precision

(** FOIL information gain of specializing a clause covering [p0]/[n0]
    into one covering [p1]/[n1]. *)
let foil_gain ~before ~after =
  let info p n =
    if p = 0 then 0.
    else -.(log (float_of_int p /. float_of_int (p + n)) /. log 2.)
  in
  float_of_int after.pos_covered
  *. (info before.pos_covered before.neg_covered
     -. info after.pos_covered after.neg_covered)
