lib/ilp/examples.ml: Array Atom Castor_logic Castor_relational Fmt Hashtbl Instance List Random Schema String Term Value
