lib/ilp/parallel.ml: Array Condition Domain Fun Mutex Queue
