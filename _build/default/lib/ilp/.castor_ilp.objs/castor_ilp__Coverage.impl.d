lib/ilp/coverage.ml: Array Atom Bottom Castor_logic Clause Fun Hashtbl List Parallel Stats Subsume Unix
