lib/ilp/armg.ml: Castor_logic Clause Coverage List Stats
