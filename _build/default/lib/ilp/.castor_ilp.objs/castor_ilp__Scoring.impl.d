lib/ilp/scoring.ml: Coverage
