lib/ilp/bottom.ml: Array Atom Castor_logic Castor_relational Clause Fmt Hashtbl Instance List Option Printf Schema Stats String Term Tuple Value
