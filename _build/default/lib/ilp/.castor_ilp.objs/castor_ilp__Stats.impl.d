lib/ilp/stats.ml: Fmt
