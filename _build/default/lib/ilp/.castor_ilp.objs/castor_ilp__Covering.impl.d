lib/ilp/covering.ml: Array Castor_logic Clause List
