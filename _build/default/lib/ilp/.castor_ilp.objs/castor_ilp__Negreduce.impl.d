lib/ilp/negreduce.ml: Array Castor_logic Clause Coverage List
