(** The generic covering loop (Algorithm 1).

    Learns one clause at a time with a supplied [learn_clause]
    procedure, adds it to the hypothesis if it meets the minimum
    condition, discards the positives it covers, and repeats until no
    positives remain or no further clause can be learned. *)

open Castor_logic

type outcome = {
  definition : Clause.definition;
  uncovered_pos : int;  (** positives left uncovered by the hypothesis *)
}

(** [run ~target ~learn_clause ~pos_cov n_pos] drives the loop.

    [learn_clause uncovered] receives the boolean mask of positives
    still to cover and returns a clause together with its coverage
    vector over {e all} positives, or [None] when no acceptable clause
    exists. [max_clauses] guards against degenerate non-progress. *)
let run ~target ~(learn_clause : bool array -> (Clause.t * bool array) option)
    ?(max_clauses = 50) n_pos =
  let uncovered = Array.make n_pos true in
  let n_uncovered () = Array.fold_left (fun a b -> if b then a + 1 else a) 0 uncovered in
  let clauses = ref [] in
  let continue = ref true in
  while !continue && n_uncovered () > 0 && List.length !clauses < max_clauses do
    match learn_clause (Array.copy uncovered) with
    | None -> continue := false
    | Some (clause, pos_cov) ->
        let progress = ref false in
        Array.iteri
          (fun i c ->
            if c && uncovered.(i) then begin
              uncovered.(i) <- false;
              progress := true
            end)
          pos_cov;
        if !progress then clauses := clause :: !clauses else continue := false
  done;
  {
    definition = { Clause.target; clauses = List.rev !clauses };
    uncovered_pos = n_uncovered ();
  }
