(** Least general generalization (Plotkin), the generalization
    operator of Golem (Section 6.3).

    [lgg] of two terms is the term itself when they are equal, and
    otherwise a variable chosen consistently per distinct pair of
    terms; [lgg] of two clauses is the clause formed by the pairwise
    lggs of all compatible literals (same relation symbol and arity),
    sharing one pair-to-variable table across the whole clause. *)

type table = (string, Term.t) Hashtbl.t
(* keyed by the printed pair, which is unambiguous because constants
   and variables print distinctly in our term language *)

let fresh_counter = ref 0

let lgg_term (table : table) t1 t2 =
  if Term.equal t1 t2 then t1
  else
    let key = Term.to_string t1 ^ "|" ^ Term.to_string t2 in
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None ->
        let v = Term.Var (Printf.sprintf "G%d" !fresh_counter) in
        incr fresh_counter;
        Hashtbl.add table key v;
        v

let lgg_atom (table : table) (a : Atom.t) (b : Atom.t) =
  if (not (String.equal a.Atom.rel b.Atom.rel)) || Atom.arity a <> Atom.arity b
  then None
  else
    Some
      {
        a with
        Atom.args = Array.init (Atom.arity a) (fun i -> lgg_term table a.Atom.args.(i) b.Atom.args.(i));
      }

(** [clauses ?max_literals c1 c2] computes [lgg(C1, C2)].

    The result size is bounded by [|C1|·|C2|]; [max_literals] truncates
    the body (keeping literal pairs in order) to keep Golem tractable,
    mirroring the size caps real implementations use (Section 6.3
    discusses the exponential growth of repeated rlggs). Returns [None]
    when the heads are incompatible. *)
let clauses ?(max_literals = 1200) (c1 : Clause.t) (c2 : Clause.t) =
  (* keep variable spaces disjoint so accidental sharing does not
     over-specialize the result *)
  let c1 = Clause.rename_apart "_a" c1 and c2 = Clause.rename_apart "_b" c2 in
  let table : table = Hashtbl.create 64 in
  match lgg_atom table c1.Clause.head c2.Clause.head with
  | None -> None
  | Some head ->
      let body = ref [] in
      let count = ref 0 in
      (try
         List.iter
           (fun a ->
             List.iter
               (fun b ->
                 match lgg_atom table a b with
                 | Some l ->
                     body := l :: !body;
                     incr count;
                     if !count >= max_literals then raise Exit
                 | None -> ())
               c2.Clause.body)
           c1.Clause.body
       with Exit -> ());
      let c = Clause.make head (List.rev !body) in
      Some (Clause.dedup_body (Clause.head_connected c))

(** Relative least general generalization of two saturations (ground
    bottom clauses): their lgg, since the background knowledge is
    already folded into the saturations (Section 6.3). *)
let rlgg ?max_literals sat1 sat2 = clauses ?max_literals sat1 sat2
