(** First-order terms: variables or constants (no function symbols, as
    in the paper's function-free Horn language). *)

open Castor_relational

type t =
  | Var of string
  | Const of Value.t

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const x, Const y -> Value.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let equal a b = compare a b = 0

let is_var = function Var _ -> true | Const _ -> false

let is_const = function Const _ -> true | Var _ -> false

let to_string = function
  | Var v -> v
  | Const c -> Value.to_string c

let pp ppf t = Fmt.string ppf (to_string t)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
