(** Substitutions: finite maps from variable names to terms. *)

module M = Map.Make (String)

type t = Term.t M.t

let empty : t = M.empty

let find v (s : t) = M.find_opt v s

let bind v term (s : t) : t = M.add v term s

let mem v (s : t) = M.mem v s

let of_list l : t = List.fold_left (fun s (v, t) -> bind v t s) empty l

let to_list (s : t) = M.bindings s

(** [apply_term s t] replaces a bound variable by its image; unbound
    variables and constants are unchanged. *)
let apply_term (s : t) = function
  | Term.Const _ as c -> c
  | Term.Var v as t -> ( match find v s with Some t' -> t' | None -> t)

let apply_atom (s : t) (a : Atom.t) =
  { a with Atom.args = Array.map (apply_term s) a.Atom.args }

(** [match_term s pat target] extends [s] so that [pat] maps to
    [target]; [target]'s variables are treated as frozen (skolem)
    constants, which is the matching used by θ-subsumption. *)
let match_term (s : t) pat target =
  match pat with
  | Term.Const c -> (
      match target with
      | Term.Const c' when Castor_relational.Value.equal c c' -> Some s
      | _ -> None)
  | Term.Var v -> (
      match find v s with
      | Some bound -> if Term.equal bound target then Some s else None
      | None -> Some (bind v target s))

(** [match_atom s pat target] matches argument-wise; relations and
    arities must agree. *)
let match_atom (s : t) (pat : Atom.t) (target : Atom.t) =
  if
    (not (String.equal pat.Atom.rel target.Atom.rel))
    || Array.length pat.Atom.args <> Array.length target.Atom.args
  then None
  else
    let n = Array.length pat.Atom.args in
    let rec go s i =
      if i >= n then Some s
      else
        match match_term s pat.Atom.args.(i) target.Atom.args.(i) with
        | Some s' -> go s' (i + 1)
        | None -> None
    in
    go s 0
