(** The definition mapping δτ of Proposition 3.7: rewriting Horn
    clauses across composition / decomposition transformations so that
    the rewritten clause returns the same result over [τ(I)] as the
    original does over [I].

    Both directions are literal-local unfoldings of the (inverse)
    transformation's Horn definitions:

    - decomposition of [R] into parts [P1..Pn]: a literal [R(ū)] is
      replaced by the conjunction [P1(ū|P1), ..., Pn(ū|Pn)] — the
      body of τ⁻¹'s definition of [R];
    - composition of parts [P1..Pn] into [R]: a literal [Pi(ū)] is
      replaced by [R(ū′)] where [ū′] extends [ū] with fresh
      existential variables at the attributes [Pi] does not carry.
      On instances in the image of the transformation this is exact,
      because the INDs with equality guarantee every part tuple
      extends to a joined tuple (Definition 4.1). *)

open Castor_relational

let fresh_counter = ref 0

let fresh_var () =
  let v = Printf.sprintf "F%d" !fresh_counter in
  incr fresh_counter;
  Term.Var v

(* positions of [attrs] within [sort] *)
let positions_in sort attrs =
  List.map
    (fun a ->
      let rec go i = function
        | [] -> raise Not_found
        | x :: _ when String.equal x a -> i
        | _ :: tl -> go (i + 1) tl
      in
      go 0 sort)
    attrs

let rewrite_literal_decompose schema rel parts (a : Atom.t) =
  if not (String.equal a.Atom.rel rel) then [ a ]
  else
    let sort = Schema.sort schema rel in
    List.map
      (fun (pname, pattrs) ->
        let ps = positions_in sort pattrs in
        Atom.make pname (List.map (fun p -> a.Atom.args.(p)) ps))
      parts

let rewrite_literal_compose schema parts into composed_sort (a : Atom.t) =
  if not (List.mem a.Atom.rel parts) then [ a ]
  else
    let part_sort = Schema.sort schema a.Atom.rel in
    let arg_of attr =
      match positions_in part_sort [ attr ] with
      | [ p ] -> a.Atom.args.(p)
      | _ -> fresh_var ()
      | exception Not_found -> fresh_var ()
    in
    [ Atom.make into (List.map arg_of composed_sort) ]

(** [clause schema ops c] rewrites clause [c], defined over [schema],
    through the transformation [ops]. The head (a target relation not
    in the schema) is left untouched. *)
let clause (schema : Schema.t) (ops : Transform.t) (c : Clause.t) =
  let step (schema, c) op =
    let schema' = Transform.apply_schema schema [ op ] in
    let body =
      match op with
      | Transform.Decompose { rel; parts } ->
          List.concat_map (rewrite_literal_decompose schema rel parts) c.Clause.body
      | Transform.Compose { parts; into } ->
          let composed_sort = Schema.sort schema' into in
          List.concat_map
            (rewrite_literal_compose schema parts into composed_sort)
            c.Clause.body
    in
    (schema', Clause.dedup_body { c with Clause.body })
  in
  let _, c' = List.fold_left step (schema, c) ops in
  c'

(** [definition schema ops d] maps every clause of [d]. *)
let definition schema ops (d : Clause.definition) =
  { d with Clause.clauses = List.map (clause schema ops) d.Clause.clauses }
