(** Clause minimization by redundant-literal elimination
    (Section 7.5.5).

    A body literal [L] is redundant in [C] when [C] θ-subsumes
    [C − {L}] (the converse always holds since [C − {L}] ⊆ [C]); then
    [C ≡ C − {L}].

    Full θ-reduction is NP-hard, so — like the paper, which uses a
    polynomial-time approximation of the subsumption test — we use a
    sound approximation with two tiers:

    - the {e absorbed-literal} rule: [L] is redundant when some other
      literal [L'] of the same relation matches [L] under a
      substitution that only renames variables {e private} to [L]
      (variables occurring nowhere else in the clause). Extending that
      substitution with the identity everywhere else witnesses
      [Cθ ⊆ C − {L}]. This runs in O(n·m·arity) per pass and catches
      the bulk of bottom-clause redundancy;
    - optionally, for clauses up to [exact_below] literals, a full
      budgeted subsumption test per literal.

    A timed-out or failed test conservatively keeps the literal, so
    the result is always equivalent to the input. *)

(* occurrence count of each variable across head and body *)
let var_counts (c : Clause.t) =
  let tbl = Hashtbl.create 64 in
  let note (a : Atom.t) =
    List.iter
      (fun v ->
        Hashtbl.replace tbl v (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
      (Atom.vars a)
  in
  note c.Clause.head;
  List.iter note c.Clause.body;
  tbl

(* does [l'] absorb [l], renaming only variables private to [l]? *)
let absorbs counts (l : Atom.t) (l' : Atom.t) =
  String.equal l.Atom.rel l'.Atom.rel
  && Array.length l.Atom.args = Array.length l'.Atom.args
  &&
  let sigma = Hashtbl.create 4 in
  let ok = ref true in
  Array.iteri
    (fun i t ->
      if !ok then
        match t, l'.Atom.args.(i) with
        | Term.Const a, Term.Const b -> if not (Castor_relational.Value.equal a b) then ok := false
        | Term.Var v, t' -> (
            (* count of a private var inside l may exceed 1 if it
               repeats within l itself; private = all occurrences in l *)
            let occurs_in_l =
              List.length (List.filter (String.equal v) (Atom.vars l))
            in
            let total = Option.value ~default:0 (Hashtbl.find_opt counts v) in
            if total > occurs_in_l then begin
              (* v occurs elsewhere: must map to itself *)
              if not (Term.equal t t') then ok := false
            end
            else
              match Hashtbl.find_opt sigma v with
              | Some prev -> if not (Term.equal prev t') then ok := false
              | None -> Hashtbl.replace sigma v t')
        | Term.Const _, Term.Var _ -> ok := false)
    l.Atom.args;
  !ok

(** [reduce_absorbed c] applies the absorbed-literal rule to a
    fixpoint (linear passes). *)
let reduce_absorbed (c : Clause.t) =
  let changed = ref true in
  let current = ref c in
  while !changed do
    changed := false;
    let counts = var_counts !current in
    let body = Array.of_list !current.Clause.body in
    let removed = Array.make (Array.length body) false in
    Array.iteri
      (fun i l ->
        if not removed.(i) then
          Array.iteri
            (fun j l' ->
              if i <> j && (not removed.(i)) && not removed.(j) then
                if absorbs counts l l' then begin
                  removed.(i) <- true;
                  changed := true
                end)
            body)
      body;
    current :=
      {
        !current with
        Clause.body =
          List.filteri (fun i _ -> not removed.(i)) (Array.to_list body);
      }
  done;
  !current

(** [reduce ?max_steps ?exact_below c] — absorbed-literal passes, then
    (for clauses shorter than [exact_below]) the exact budgeted
    reduction. *)
let reduce ?(max_steps = 8_000) ?(exact_below = 40) (c : Clause.t) =
  let c = reduce_absorbed c in
  if Clause.length c >= exact_below then c
  else begin
    let removed = ref true in
    let current = ref c in
    while !removed do
      removed := false;
      let body = Array.of_list !current.Clause.body in
      let n = Array.length body in
      (try
         for i = n - 1 downto 0 do
           let without =
             {
               !current with
               Clause.body =
                 Array.to_list body |> List.filteri (fun j _ -> j <> i);
             }
           in
           if Subsume.subsumes ~max_steps !current without then begin
             current := without;
             removed := true;
             raise Exit (* restart scan on the shrunk clause *)
           end
         done
       with Exit -> ())
    done;
    !current
  end

(** [reduction_ratio c] reports how much {!reduce} shrinks [c]:
    [(original_length, reduced_length)] — the statistic the paper
    quotes ("reduces the size of bottom-clauses ... by 13–19%"). *)
let reduction_ratio ?max_steps ?exact_below c =
  let r = reduce ?max_steps ?exact_below c in
  (Clause.length c, Clause.length r)
