(** Translating learned Horn definitions to SQL.

    The paper's Castor runs on top of an RDBMS (Section 7.5.1); a
    learned definition is ultimately a database query. This module
    renders a safe Horn clause as a [SELECT DISTINCT ... FROM ... JOIN]
    statement over the schema's relations — shared variables become
    equality predicates, constants become literals — and a definition
    as a [UNION] of its clauses. Useful for deploying learned
    definitions as views.

    @raise Invalid_argument on unsafe clauses (their SQL would need
    the unbound head column to range over the whole domain). *)

open Castor_relational

let quote_value = function
  | Value.Int n -> string_of_int n
  | Value.Str s -> "'" ^ s ^ "'"

(* each body literal becomes a FROM entry with an alias t0, t1, ... *)
let clause_to_sql (schema : Schema.t) (cl : Clause.t) =
  if not (Clause.is_safe cl) then
    invalid_arg "Sql.clause_to_sql: unsafe clause";
  let aliases = List.mapi (fun i (a : Atom.t) -> (Printf.sprintf "t%d" i, a)) cl.Clause.body in
  (* first column where each variable is bound *)
  let binding = Hashtbl.create 16 in
  let conditions = ref [] in
  List.iter
    (fun (alias, (a : Atom.t)) ->
      let sort = Schema.sort schema a.Atom.rel in
      List.iteri
        (fun i col ->
          let expr = alias ^ "." ^ col in
          match a.Atom.args.(i) with
          | Term.Const v -> conditions := (expr ^ " = " ^ quote_value v) :: !conditions
          | Term.Var x -> (
              match Hashtbl.find_opt binding x with
              | None -> Hashtbl.add binding x expr
              | Some expr0 -> conditions := (expr ^ " = " ^ expr0) :: !conditions))
        sort)
    aliases;
  let select =
    Atom.vars cl.Clause.head
    |> List.map (fun x ->
           match Hashtbl.find_opt binding x with
           | Some expr -> expr ^ " AS " ^ String.lowercase_ascii x
           | None -> assert false (* safe clause: every head var is bound *))
    |> String.concat ", "
  in
  let select =
    (* constant head arguments are selected as literals *)
    let consts =
      Array.to_list cl.Clause.head.Atom.args
      |> List.filter_map (function
           | Term.Const v -> Some (quote_value v)
           | Term.Var _ -> None)
    in
    String.concat ", " (List.filter (fun s -> s <> "") (select :: consts))
  in
  let from =
    aliases
    |> List.map (fun (alias, (a : Atom.t)) -> a.Atom.rel ^ " AS " ^ alias)
    |> String.concat ", "
  in
  let where =
    match List.rev !conditions with
    | [] -> ""
    | cs -> "\nWHERE " ^ String.concat "\n  AND " cs
  in
  Printf.sprintf "SELECT DISTINCT %s\nFROM %s%s" select from where

(** [definition_to_sql schema def] — the [UNION] of the clauses'
    queries. *)
let definition_to_sql schema (def : Clause.definition) =
  match def.Clause.clauses with
  | [] -> invalid_arg "Sql.definition_to_sql: empty definition"
  | clauses -> String.concat "\nUNION\n" (List.map (clause_to_sql schema) clauses)

(** [create_view schema def] — a [CREATE VIEW] statement named after
    the target relation. *)
let create_view schema (def : Clause.definition) =
  Printf.sprintf "CREATE VIEW %s AS\n%s;" def.Clause.target
    (definition_to_sql schema def)
