(** Definite Horn clauses [T(u) <- L1(u1), ..., Ln(un)].

    The body is an ordered list: ProGolem and Castor treat clauses as
    ordered clauses (Section 6.4), and the bottom-clause construction
    order is what their ARMG operators rely on. Two clauses that
    differ only in body order are θ-equivalent, and all equivalence
    checks go through subsumption, so keeping the list ordered loses
    nothing. *)

type t = { head : Atom.t; body : Atom.t list }

(** A Horn definition: a set of clauses sharing the same head relation
    (a union of conjunctive queries). *)
type definition = { target : string; clauses : t list }

let make head body = { head; body }

let length c = List.length c.body

(** Distinct variable names of the clause, head first then body in
    order of first occurrence. *)
let variables c =
  let add acc a =
    List.fold_left
      (fun (seen, order) v ->
        if List.mem v seen then (seen, order) else (v :: seen, v :: order))
      acc (Atom.vars a)
  in
  let _, rev = List.fold_left add (add ([], []) c.head) c.body in
  List.rev rev

let num_variables c = List.length (variables c)

(** Variables appearing in the head — the paper's head-variables. *)
let head_vars c = Atom.vars c.head

(** [is_safe c] holds when every head variable occurs in the body
    (Section 7.3). *)
let is_safe c =
  let body_vars =
    List.fold_left
      (fun s a -> Term.Set.union s (Atom.var_set a))
      Term.Set.empty c.body
  in
  List.for_all (fun v -> Term.Set.mem (Term.Var v) body_vars) (head_vars c)

let apply_subst s c =
  { head = Subst.apply_atom s c.head; body = List.map (Subst.apply_atom s) c.body }

(** [head_connected c] removes body literals that are not connected to
    the head through a chain of shared variables, preserving order —
    the clean-up step of ARMG (Algorithm 3). Fully ground literals are
    kept: they are self-contained conditions on the database, not
    dangling existentials, and dropping them would change the clause's
    meaning. *)
let head_connected c =
  let reached = ref (Atom.var_set c.head) in
  let changed = ref true in
  let kept = Array.make (List.length c.body) false in
  let body = Array.of_list c.body in
  while !changed do
    changed := false;
    Array.iteri
      (fun i a ->
        if not kept.(i) then begin
          let vs = Atom.var_set a in
          if
            Term.Set.is_empty vs
            || not (Term.Set.is_empty (Term.Set.inter vs !reached))
          then begin
            kept.(i) <- true;
            reached := Term.Set.union !reached vs;
            changed := true
          end
        end)
      body
  done;
  {
    c with
    body =
      List.filteri (fun i _ -> kept.(i)) (Array.to_list body |> List.map Fun.id);
  }

(** [variabilize c] replaces every constant by a variable, one fresh
    variable per distinct constant (the bottom-clause variabilization
    step, Section 6.1). Returns the new clause and the constant-to-
    variable mapping. *)
let variabilize ?(prefix = "V") c =
  let module VM = Castor_relational.Value.Map in
  let table = ref VM.empty in
  let counter = ref 0 in
  let var_for const =
    match VM.find_opt const !table with
    | Some v -> v
    | None ->
        let v = Printf.sprintf "%s%d" prefix !counter in
        incr counter;
        table := VM.add const v !table;
        v
  in
  let conv (a : Atom.t) =
    {
      a with
      Atom.args =
        Array.map
          (function
            | Term.Const c -> Term.Var (var_for c)
            | Term.Var _ as v -> v)
          a.Atom.args;
    }
  in
  let c' = { head = conv c.head; body = List.map conv c.body } in
  (c', !table)

(** [rename_apart suffix c] renames every variable by appending
    [suffix], used to keep clause pairs variable-disjoint before lgg. *)
let rename_apart suffix c =
  let ren = function
    | Term.Var v -> Term.Var (v ^ suffix)
    | Term.Const _ as t -> t
  in
  let conv (a : Atom.t) = { a with Atom.args = Array.map ren a.Atom.args } in
  { head = conv c.head; body = List.map conv c.body }

(** Removes duplicate body literals, keeping first occurrences. *)
let dedup_body c =
  let seen = Hashtbl.create 16 in
  let body =
    List.filter
      (fun a ->
        let k = Atom.to_string a in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      c.body
  in
  { c with body }

let pp ppf c =
  if c.body = [] then Fmt.pf ppf "%a." Atom.pp c.head
  else
    Fmt.pf ppf "@[<hov2>%a :-@ %a.@]" Atom.pp c.head
      Fmt.(list ~sep:(any ",@ ") Atom.pp)
      c.body

let to_string c = Fmt.str "%a" pp c

let pp_definition ppf (d : definition) =
  if d.clauses = [] then Fmt.pf ppf "(empty definition for %s)" d.target
  else Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp) d.clauses

let definition_to_string d = Fmt.str "%a" pp_definition d
