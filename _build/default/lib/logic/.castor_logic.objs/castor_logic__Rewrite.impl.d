lib/logic/rewrite.ml: Array Atom Castor_relational Clause List Printf Schema String Term Transform
