lib/logic/lgg.ml: Array Atom Clause Hashtbl List Printf String Term
