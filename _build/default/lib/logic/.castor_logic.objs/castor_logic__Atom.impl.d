lib/logic/atom.ml: Array Castor_relational Fmt Hashtbl Int List Set String Term Tuple
