lib/logic/term.ml: Castor_relational Fmt Map Set String Value
