lib/logic/datalog.ml: Array Atom Castor_relational Clause Hashtbl Instance List Schema Subst Term Tuple
