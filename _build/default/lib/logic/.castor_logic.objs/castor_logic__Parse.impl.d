lib/logic/parse.ml: Atom Castor_relational Clause Lexer List String Term Value
