lib/logic/subst.ml: Array Atom Castor_relational List Map String Term
