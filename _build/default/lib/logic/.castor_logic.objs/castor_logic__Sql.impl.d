lib/logic/sql.ml: Array Atom Castor_relational Clause Hashtbl List Printf Schema String Term Value
