lib/logic/minimize.ml: Array Atom Castor_relational Clause Hashtbl List Option String Subsume Term
