lib/logic/subsume.ml: Array Atom Clause Hashtbl List Option Subst Term
