lib/logic/eval.ml: Array Atom Castor_relational Clause Instance List Subst Term Tuple Value
