lib/logic/clause.ml: Array Atom Castor_relational Fmt Fun Hashtbl List Printf Subst Term
