(** Atoms [R(u1, ..., un)]. A ground atom has only constant
    arguments; ground atoms double as training examples. *)

open Castor_relational

type t = { rel : string; args : Term.t array }

let make rel args = { rel; args = Array.of_list args }

let of_tuple rel (tuple : Tuple.t) =
  { rel; args = Array.map (fun v -> Term.Const v) tuple }

let arity a = Array.length a.args

let is_ground a = Array.for_all Term.is_const a.args

(** [to_tuple a] extracts the constants of a ground atom.
    @raise Invalid_argument on a non-ground atom. *)
let to_tuple a : Tuple.t =
  Array.map
    (function Term.Const v -> v | Term.Var _ -> invalid_arg "Atom.to_tuple")
    a.args

let equal a b =
  String.equal a.rel b.rel
  && Array.length a.args = Array.length b.args
  && (let rec go i =
        i >= Array.length a.args || (Term.equal a.args.(i) b.args.(i) && go (i + 1))
      in
      go 0)

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else
    let c = Int.compare (Array.length a.args) (Array.length b.args) in
    if c <> 0 then c
    else
      let rec go i =
        if i >= Array.length a.args then 0
        else
          let c = Term.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let hash a = Hashtbl.hash (a.rel, Array.map Term.to_string a.args)

(** Variables occurring in the atom, left to right, with duplicates. *)
let vars a =
  Array.fold_right
    (fun t acc -> match t with Term.Var v -> v :: acc | Term.Const _ -> acc)
    a.args []

let var_set a = List.fold_left (fun s v -> Term.Set.add (Term.Var v) s) Term.Set.empty (vars a)

(** Constants occurring in the atom, left to right. *)
let constants a =
  Array.fold_right
    (fun t acc -> match t with Term.Const c -> c :: acc | Term.Var _ -> acc)
    a.args []

let pp ppf a =
  Fmt.pf ppf "%s(%a)" a.rel Fmt.(array ~sep:(any ",") Term.pp) a.args

let to_string a = Fmt.str "%a" pp a

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
