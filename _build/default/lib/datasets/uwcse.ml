(** Synthetic UW-CSE: an academic-department database with the paper's
    Original schema (Table 1) and its composed variants, the INDs of
    Table 5, and the advisedBy target of Section 1.

    The planted signal mirrors the benchmark: an advisee shares
    publications with their advisor and is in a late phase of the
    program; co-publication noise between students and non-advisor
    professors and missing co-publications for some advised pairs keep
    precision and recall away from 1, as in Table 10. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Dataset

type config = {
  n_students : int;
  n_profs : int;
  n_courses : int;
  n_terms : int;
  seed : int;
}

let default_config =
  { n_students = 80; n_profs = 24; n_courses = 36; n_terms = 5; seed = 7 }

let person = "person"

let schema =
  let a = Schema.attribute in
  Schema.make
    ~fds:
      [
        { Schema.fd_rel = "inPhase"; fd_lhs = [ "stud" ]; fd_rhs = [ "phase" ] };
        { Schema.fd_rel = "yearsInProgram"; fd_lhs = [ "stud" ]; fd_rhs = [ "years" ] };
        { Schema.fd_rel = "hasPosition"; fd_lhs = [ "prof" ]; fd_rhs = [ "position" ] };
        { Schema.fd_rel = "courseLevel"; fd_lhs = [ "crs" ]; fd_rhs = [ "level" ] };
      ]
    ~inds:
      [
        Schema.ind_with_equality "student" [ "stud" ] "inPhase" [ "stud" ];
        Schema.ind_with_equality "student" [ "stud" ] "yearsInProgram" [ "stud" ];
        Schema.ind_with_equality "professor" [ "prof" ] "hasPosition" [ "prof" ];
        Schema.ind_with_equality "taughtBy" [ "prof" ] "professor" [ "prof" ];
        Schema.ind_with_equality "ta" [ "crs" ] "taughtBy" [ "crs" ];
        Schema.ind_with_equality "courseLevel" [ "crs" ] "taughtBy" [ "crs" ];
        Schema.ind_subset "ta" [ "stud" ] "student" [ "stud" ];
        Schema.ind_subset "publication" [ "person" ] "inDepartment" [ "person" ];
      ]
    [
      Schema.relation "student" [ a ~domain:person "stud" ];
      Schema.relation "inPhase" [ a ~domain:person "stud"; a ~domain:"phase" "phase" ];
      Schema.relation "yearsInProgram"
        [ a ~domain:person "stud"; a ~domain:"years" "years" ];
      Schema.relation "professor" [ a ~domain:person "prof" ];
      Schema.relation "hasPosition"
        [ a ~domain:person "prof"; a ~domain:"position" "position" ];
      Schema.relation "publication"
        [ a ~domain:"title" "title"; a ~domain:person "person" ];
      Schema.relation "inDepartment" [ a ~domain:person "person" ];
      Schema.relation "courseLevel" [ a ~domain:"crs" "crs"; a ~domain:"level" "level" ];
      Schema.relation "taughtBy"
        [ a ~domain:"crs" "crs"; a ~domain:person "prof"; a ~domain:"term" "term" ];
      Schema.relation "ta"
        [ a ~domain:"crs" "crs"; a ~domain:person "stud"; a ~domain:"term" "term" ];
    ]

let phases = [ "pre_quals"; "post_quals"; "post_generals" ]

let positions = [ "faculty"; "adjunct"; "emeritus" ]

let levels = [ "level_300"; "level_400"; "level_500" ]

(** The paper's schema variants: Original (base), 4NF, Denormalized-1,
    Denormalized-2 (Section 9.1.1). *)
let to_4nf : Transform.t =
  [
    Transform.Compose
      { parts = [ "student"; "inPhase"; "yearsInProgram" ]; into = "student" };
    Transform.Compose { parts = [ "professor"; "hasPosition" ]; into = "professor" };
  ]

let to_denorm1 : Transform.t =
  to_4nf
  @ [ Transform.Compose { parts = [ "courseLevel"; "taughtBy" ]; into = "courseTaught" } ]

let to_denorm2 : Transform.t =
  to_4nf
  @ [
      Transform.Compose
        { parts = [ "courseLevel"; "taughtBy"; "professor" ]; into = "courseProf" };
    ]

(** The paper's Example 3.2 target: [collaborated(x,y)] — two persons
    co-authored a publication. It has an exact definition over every
    schema variant ([collaborated(x,y) ← publication(p,x),
    publication(p,y)]), so it plays the same role for UW-CSE that
    dramaDirector plays for IMDb. Built on top of a generated dataset:
    positives are the co-author pairs, negatives are sampled
    non-co-author pairs. *)
let collaborated ?(seed = 19) (ds : Dataset.t) =
  let inst = ds.Dataset.instance in
  let pubs = Instance.tuples inst "publication" in
  let pairs = ref [] in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          if Value.equal t1.(0) t2.(0) && not (Value.equal t1.(1) t2.(1)) then
            pairs := (t1.(1), t2.(1)) :: !pairs)
        pubs)
    pubs;
  let is_collab a b =
    List.exists (fun (x, y) -> Value.equal a x && Value.equal b y) !pairs
  in
  let dedup =
    List.sort_uniq compare (List.map (fun (a, b) -> (Value.to_string a, a, b)) !pairs)
    |> List.map (fun (_, a, b) -> (a, b))
  in
  let people =
    List.sort_uniq Value.compare
      (List.map (fun (t : Castor_relational.Tuple.t) -> t.(0))
         (Instance.tuples inst "inDepartment"))
  in
  let rng = Dataset.Gen.rng seed in
  let mk (a, b) = Atom.make "collaborated" [ Term.Const a; Term.Const b ] in
  let pos = List.map mk dedup in
  let neg =
    Dataset.Gen.sample_pairs rng (2 * List.length pos) people people
      ~avoid:(fun a b -> Value.equal a b || is_collab a b)
    |> List.map mk
  in
  let target =
    Schema.relation "collaborated"
      [ Schema.attribute ~domain:person "p1"; Schema.attribute ~domain:person "p2" ]
  in
  let golden =
    {
      Clause.target = "collaborated";
      clauses =
        [
          Clause.make
            (Atom.make "collaborated" [ Term.Var "x"; Term.Var "y" ])
            [
              Atom.make "publication" [ Term.Var "p"; Term.Var "x" ];
              Atom.make "publication" [ Term.Var "p"; Term.Var "y" ];
            ];
        ];
    }
  in
  {
    ds with
    Dataset.name = "uw-cse-collaborated";
    target;
    examples = Examples.make ~pos ~neg;
    golden = Some golden;
  }

let generate ?(config = default_config) () =
  let rng = Gen.rng config.seed in
  let inst = Instance.create schema in
  let studs = List.init config.n_students (fun i -> Value.str (Printf.sprintf "stud%d" i)) in
  let profs = List.init config.n_profs (fun i -> Value.str (Printf.sprintf "prof%d" i)) in
  let courses = List.init config.n_courses (fun i -> Value.str (Printf.sprintf "crs%d" i)) in
  let terms = List.init config.n_terms (fun i -> Value.str (Printf.sprintf "term%d" i)) in
  let title_counter = ref 0 in
  let fresh_title () =
    incr title_counter;
    Value.str (Printf.sprintf "title%d" !title_counter)
  in
  (* students: phase correlated with years *)
  let years_of = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let years = 1 + Random.State.int rng 7 in
      Hashtbl.replace years_of s years;
      let phase =
        if years <= 2 then "pre_quals"
        else if years <= 4 then "post_quals"
        else "post_generals"
      in
      Instance.add_list inst "student" [ s ];
      Instance.add_list inst "inDepartment" [ s ];
      Instance.add_list inst "inPhase" [ s; Value.str phase ];
      Instance.add_list inst "yearsInProgram" [ s; Value.int years ])
    studs;
  (* professors: position, and every professor teaches *)
  List.iter
    (fun p ->
      let position = if Gen.chance rng 0.75 then "faculty" else Gen.pick_list rng positions in
      Instance.add_list inst "professor" [ p ];
      Instance.add_list inst "inDepartment" [ p ];
      Instance.add_list inst "hasPosition" [ p; Value.str position ])
    profs;
  (* courses: level, taught by some professor, with >= 1 TA *)
  List.iteri
    (fun i c ->
      Instance.add_list inst "courseLevel" [ c; Value.str (Gen.pick_list rng levels) ];
      (* round-robin ensures every professor appears in taughtBy,
         satisfying the IND with equality taughtBy[prof]=professor[prof] *)
      let p = List.nth profs (i mod config.n_profs) in
      let t = Gen.pick_list rng terms in
      Instance.add_list inst "taughtBy" [ c; p; t ];
      let s = Gen.pick_list rng studs in
      Instance.add_list inst "ta" [ c; s; t ];
      if Gen.chance rng 0.4 then begin
        let s2 = Gen.pick_list rng studs in
        Instance.add_list inst "ta" [ c; s2; Gen.pick_list rng terms ]
      end)
    courses;
  (* advising: late-phase students get an advisor *)
  let advised = ref [] in
  List.iter
    (fun s ->
      if Hashtbl.find years_of s >= 3 then begin
        let p = Gen.pick_list rng profs in
        advised := (s, p) :: !advised
      end)
    studs;
  let advised = !advised in
  let co_publish a b =
    let t = fresh_title () in
    Instance.add_list inst "publication" [ t; a ];
    Instance.add_list inst "publication" [ t; b ]
  in
  (* signal: ~75% of advised pairs co-publish (recall < 1) *)
  List.iter
    (fun (s, p) ->
      if Gen.chance rng 0.75 then
        for _ = 1 to 1 + Random.State.int rng 2 do
          co_publish s p
        done)
    advised;
  (* noise: solo professor publications, student-peer papers, and some
     student/non-advisor co-publications (precision < 1) *)
  List.iter
    (fun p ->
      for _ = 1 to Random.State.int rng 3 do
        Instance.add_list inst "publication" [ fresh_title (); p ]
      done)
    profs;
  for _ = 1 to config.n_students / 4 do
    co_publish (Gen.pick_list rng studs) (Gen.pick_list rng studs)
  done;
  let is_advised s p = List.exists (fun (s', p') -> Value.equal s s' && Value.equal p p') advised in
  List.iter
    (fun (s, p) -> co_publish s p)
    (Gen.sample_pairs rng (config.n_students / 8) studs profs ~avoid:is_advised);
  (* examples: positives = advised pairs, negatives = 2x sampled
     non-advised pairs (closed-world, Section 9.1.1) *)
  let pos = List.map (fun (s, p) -> Atom.make "advisedBy" [ Term.Const s; Term.Const p ]) advised in
  let neg =
    Gen.sample_pairs rng (2 * List.length advised) studs profs ~avoid:is_advised
    |> List.map (fun (s, p) -> Atom.make "advisedBy" [ Term.Const s; Term.Const p ])
  in
  let target =
    Schema.relation "advisedBy"
      [ Schema.attribute ~domain:person "stud"; Schema.attribute ~domain:person "prof" ]
  in
  {
    name = "uw-cse";
    schema;
    instance = inst;
    target;
    examples = Examples.make ~pos ~neg;
    const_pool =
      [
        ("phase", List.map Value.str phases);
        ("years", List.init 7 (fun i -> Value.int (i + 1)));
        ("level", List.map Value.str levels);
        ("position", List.map Value.str positions);
      ];
    variants =
      [
        ("original", []);
        ("4nf", to_4nf);
        ("denorm1", to_denorm1);
        ("denorm2", to_denorm2);
      ];
    no_expand_domains = [ "phase"; "years"; "position"; "level"; "term" ];
    golden = None;
  }
