(** Synthetic HIV (NCI AIDS antiviral screen): compounds made of typed
    atoms connected by typed bonds, with the paper's Initial, 4NF-1
    and 4NF-2 schemas (Table 3) and INDs (Table 4).

    The planted activity motif is structural — an aromatic bond from a
    nitrogen atom to a carbon atom carrying property p2_1 — so any
    good clause must assemble bond information. Under 4NF-2 that
    information is split across bondSource/bondTarget, which is
    exactly what defeats the top-down baselines in Table 9. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Dataset

type config = {
  n_compounds : int;
  atoms_per_compound : int * int;  (** min, max *)
  seed : int;
}

let default_config = { n_compounds = 150; atoms_per_compound = (4, 9); seed = 11 }

(** Scaled-up configuration playing the role of the paper's HIV-Large
    (the default plays HIV-2K4K). *)
let large_config = { n_compounds = 600; atoms_per_compound = (4, 9); seed = 11 }

let elements = [ "C"; "N"; "O"; "S" ]

let properties = [ "p2_0"; "p2_1"; "p3_0" ]

let schema =
  let a = Schema.attribute in
  let unary name domain attr = Schema.relation name [ a ~domain attr ] in
  Schema.make
    ~fds:
      [
        { Schema.fd_rel = "bType1"; fd_lhs = [ "bd" ]; fd_rhs = [ "t1" ] };
        { Schema.fd_rel = "bType2"; fd_lhs = [ "bd" ]; fd_rhs = [ "t2" ] };
        { Schema.fd_rel = "bType3"; fd_lhs = [ "bd" ]; fd_rhs = [ "t3" ] };
      ]
    ~inds:
      ([
         Schema.ind_with_equality "bonds" [ "bd" ] "bType1" [ "bd" ];
         Schema.ind_with_equality "bonds" [ "bd" ] "bType2" [ "bd" ];
         Schema.ind_with_equality "bonds" [ "bd" ] "bType3" [ "bd" ];
         Schema.ind_subset "bonds" [ "atm1" ] "compound" [ "atm" ];
         Schema.ind_subset "bonds" [ "atm2" ] "compound" [ "atm" ];
       ]
      @ List.map
          (fun e -> Schema.ind_subset ("element_" ^ e) [ "atm" ] "compound" [ "atm" ])
          elements
      @ List.map
          (fun p -> Schema.ind_subset p [ "atm" ] "compound" [ "atm" ])
          properties)
    ([
       Schema.relation "compound" [ a ~domain:"comp" "comp"; a ~domain:"atm" "atm" ];
       Schema.relation "bonds"
         [ a ~domain:"bd" "bd"; a ~domain:"atm" "atm1"; a ~domain:"atm" "atm2" ];
       Schema.relation "bType1" [ a ~domain:"bd" "bd"; a ~domain:"t1" "t1" ];
       Schema.relation "bType2" [ a ~domain:"bd" "bd"; a ~domain:"t2" "t2" ];
       Schema.relation "bType3" [ a ~domain:"bd" "bd"; a ~domain:"t3" "t3" ];
     ]
    @ List.map (fun e -> unary ("element_" ^ e) "atm" "atm") elements
    @ List.map (fun p -> unary p "atm" "atm") properties)

(** 4NF-1 composes the bond relation with its three type relations;
    4NF-2 instead splits the bond endpoints apart (Table 3). *)
let to_4nf1 : Transform.t =
  [
    Transform.Compose
      { parts = [ "bonds"; "bType1"; "bType2"; "bType3" ]; into = "bonds" };
  ]

let to_4nf2 : Transform.t =
  [
    Transform.Decompose
      {
        rel = "bonds";
        parts = [ ("bondSource", [ "bd"; "atm1" ]); ("bondTarget", [ "bd"; "atm2" ]) ];
      };
  ]

let generate ?(config = default_config) () =
  let rng = Gen.rng config.seed in
  let inst = Instance.create schema in
  let atom_counter = ref 0 and bond_counter = ref 0 in
  let lo, hi = config.atoms_per_compound in
  let actives = ref [] and inactives = ref [] in
  for ci = 0 to config.n_compounds - 1 do
    let comp = Value.str (Printf.sprintf "comp%d" ci) in
    let n_atoms = lo + Random.State.int rng (hi - lo + 1) in
    let atoms =
      List.init n_atoms (fun _ ->
          incr atom_counter;
          Value.str (Printf.sprintf "atm%d" !atom_counter))
    in
    let elem_of = Hashtbl.create 8 and props_of = Hashtbl.create 8 in
    List.iter
      (fun atm ->
        Instance.add_list inst "compound" [ comp; atm ];
        let e = Gen.pick_list rng elements in
        Hashtbl.replace elem_of atm e;
        Instance.add_list inst ("element_" ^ e) [ atm ];
        let props = List.filter (fun _ -> Gen.chance rng 0.3) properties in
        Hashtbl.replace props_of atm props;
        List.iter (fun p -> Instance.add_list inst p [ atm ]) props)
      atoms;
    let add_bond a1 a2 t1 t2 t3 =
      incr bond_counter;
      let bd = Value.str (Printf.sprintf "bd%d" !bond_counter) in
      Instance.add_list inst "bonds" [ bd; a1; a2 ];
      Instance.add_list inst "bType1" [ bd; Value.int t1 ];
      Instance.add_list inst "bType2" [ bd; Value.int t2 ];
      Instance.add_list inst "bType3" [ bd; Value.int t3 ]
    in
    (* random skeleton: chain plus a few extra bonds *)
    let arr = Array.of_list atoms in
    for i = 0 to Array.length arr - 2 do
      add_bond arr.(i)
        arr.(i + 1)
        (1 + Random.State.int rng 3)
        (Random.State.int rng 2) (Random.State.int rng 2)
    done;
    for _ = 1 to n_atoms / 3 do
      let a1 = Gen.pick rng arr and a2 = Gen.pick rng arr in
      if not (Value.equal a1 a2) then
        add_bond a1 a2 (1 + Random.State.int rng 3) (Random.State.int rng 2)
          (Random.State.int rng 2)
    done;
    (* plant the activity motif in ~1/3 of compounds: aromatic bond
       (t2 = 1) from a nitrogen to a carbon with property p2_1 *)
    let make_active = ci mod 3 = 0 in
    if make_active then begin
      let a1 = Gen.pick rng arr and a2 = Gen.pick rng arr in
      let retype atm e =
        let old = Hashtbl.find elem_of atm in
        if not (String.equal old e) then begin
          (* atoms may carry one element relation only; we simply add
             the new one — multiple element tags are harmless noise *)
          Instance.add_list inst ("element_" ^ e) [ atm ];
          Hashtbl.replace elem_of atm e
        end
      in
      retype a1 "N";
      retype a2 "C";
      if not (List.mem "p2_1" (Hashtbl.find props_of a2)) then
        Instance.add_list inst "p2_1" [ a2 ];
      add_bond a1 a2 2 1 0
    end;
    (* label with ~4% noise *)
    let flip = Gen.chance rng 0.04 in
    let label = if flip then not make_active else make_active in
    if label then actives := comp :: !actives else inactives := comp :: !inactives
  done;
  let mk c = Atom.make "hivActive" [ Term.Const c ] in
  let pos = List.rev_map mk !actives in
  let neg = List.rev_map mk !inactives in
  let target =
    Schema.relation "hivActive" [ Schema.attribute ~domain:"comp" "comp" ]
  in
  {
    name = "hiv";
    schema;
    instance = inst;
    target;
    examples = Examples.make ~pos ~neg;
    const_pool =
      [
        ("t1", List.init 3 (fun i -> Value.int (i + 1)));
        ("t2", [ Value.int 0; Value.int 1 ]);
        ("t3", [ Value.int 0; Value.int 1 ]);
      ];
    variants = [ ("initial", []); ("4nf-1", to_4nf1); ("4nf-2", to_4nf2) ];
    no_expand_domains = [ "t1"; "t2"; "t3" ];
    golden = None;
  }
