(** A miniature family database for the quickstart example and smoke
    tests: people in a random forest of families, with a decomposed
    variant that splits the person relation — enough to watch Castor
    learn [grandparent] and stay schema independent, without the full
    benchmark machinery. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Dataset

let person = "person"

let schema =
  let a = Schema.attribute in
  Schema.make
    ~fds:
      [
        { Schema.fd_rel = "gender"; fd_lhs = [ "p" ]; fd_rhs = [ "g" ] };
        { Schema.fd_rel = "ageGroup"; fd_lhs = [ "p" ]; fd_rhs = [ "age" ] };
      ]
    ~inds:
      [
        Schema.ind_with_equality "gender" [ "p" ] "ageGroup" [ "p" ];
        Schema.ind_subset "parent" [ "x" ] "gender" [ "p" ];
        Schema.ind_subset "parent" [ "y" ] "gender" [ "p" ];
      ]
    [
      Schema.relation "parent" [ a ~domain:person "x"; a ~domain:person "y" ];
      Schema.relation "gender" [ a ~domain:person "p"; a ~domain:"gender" "g" ];
      Schema.relation "ageGroup" [ a ~domain:person "p"; a ~domain:"age" "age" ];
    ]

(** Variant that composes gender and ageGroup into one person
    relation. *)
let to_composed : Transform.t =
  [ Transform.Compose { parts = [ "gender"; "ageGroup" ]; into = "person" } ]

type config = { n_roots : int; depth : int; seed : int }

let default_config = { n_roots = 12; depth = 3; seed = 3 }

let generate ?(config = default_config) () =
  let rng = Gen.rng config.seed in
  let inst = Instance.create schema in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Value.str (Printf.sprintf "p%d" !counter)
  in
  let people = ref [] in
  let add_person p depth =
    people := (p, depth) :: !people;
    Instance.add_list inst "gender"
      [ p; Value.str (if Gen.chance rng 0.5 then "male" else "female") ];
    Instance.add_list inst "ageGroup"
      [
        p;
        Value.str
          (match depth with 0 -> "senior" | 1 -> "adult" | _ -> "young");
      ]
  in
  let rec grow p depth =
    if depth < config.depth then begin
      let n_children = 1 + Random.State.int rng 3 in
      for _ = 1 to n_children do
        let c = fresh () in
        add_person c (depth + 1);
        Instance.add_list inst "parent" [ p; c ];
        grow c (depth + 1)
      done
    end
  in
  for _ = 1 to config.n_roots do
    let r = fresh () in
    add_person r 0;
    grow r 0
  done;
  (* grandparent pairs via the parent relation *)
  let parents = Instance.tuples inst "parent" in
  let gp = ref [] in
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          if Value.equal t1.(1) t2.(0) then gp := (t1.(0), t2.(1)) :: !gp)
        parents)
    parents;
  let is_gp a b = List.exists (fun (x, y) -> Value.equal a x && Value.equal b y) !gp in
  let all_people = List.map fst !people in
  let mk (a, b) = Atom.make "grandparent" [ Term.Const a; Term.Const b ] in
  let pos = List.map mk !gp in
  let neg =
    Gen.sample_pairs rng (2 * List.length pos) all_people all_people ~avoid:is_gp
    |> List.map mk
  in
  let target =
    Schema.relation "grandparent"
      [ Schema.attribute ~domain:person "a"; Schema.attribute ~domain:person "b" ]
  in
  let golden =
    {
      Clause.target = "grandparent";
      clauses =
        [
          Clause.make
            (Atom.make "grandparent" [ Term.Var "x"; Term.Var "z" ])
            [
              Atom.make "parent" [ Term.Var "x"; Term.Var "y" ];
              Atom.make "parent" [ Term.Var "y"; Term.Var "z" ];
            ];
        ];
    }
  in
  {
    name = "family";
    schema;
    instance = inst;
    target;
    examples = Examples.make ~pos ~neg;
    const_pool =
      [
        ("gender", [ Value.str "male"; Value.str "female" ]);
        ("age", [ Value.str "senior"; Value.str "adult"; Value.str "young" ]);
      ];
    variants = [ ("base", []); ("composed", to_composed) ];
    no_expand_domains = [ "gender"; "age" ];
    golden = Some golden;
  }
