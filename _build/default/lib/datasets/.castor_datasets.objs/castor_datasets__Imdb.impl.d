lib/datasets/imdb.ml: Array Atom Castor_ilp Castor_logic Castor_relational Clause Dataset Examples Gen Instance List Printf Random Schema Term Transform Value
