lib/datasets/uwcse.ml: Array Atom Castor_ilp Castor_logic Castor_relational Clause Dataset Examples Gen Hashtbl Instance List Printf Random Schema Term Transform Value
