lib/datasets/hiv.ml: Array Atom Castor_ilp Castor_logic Castor_relational Dataset Examples Gen Hashtbl Instance List Printf Random Schema String Term Transform Value
