lib/datasets/dataset.ml: Array Atom Buffer Castor_ilp Castor_logic Castor_relational Clause Examples Filename Fmt Hashtbl Instance Lexer List Random Schema String Sys Text Transform Tuple Value
