(** Synthetic IMDb/JMDB: movies, directors, genres, actors and
    countries under the paper's JMDB, Stanford and Denormalized
    schemas (Tables 6-8).

    The dramaDirector target has an exact Datalog definition over
    every variant, so the experiment measures whether a learner can
    find it under each schema (Table 11: Castor reaches precision and
    recall 1 everywhere). The equality INDs that the paper enforced by
    trimming tuples are enforced here by generation: every movie has a
    genre and a director, every genre/director/actor is used. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Dataset

type config = {
  n_movies : int;
  n_directors : int;
  n_actors : int;
  n_countries : int;
  seed : int;
}

let default_config =
  { n_movies = 220; n_directors = 80; n_actors = 150; n_countries = 12; seed = 13 }

let genres =
  [ "drama"; "comedy"; "action"; "thriller"; "documentary"; "horror"; "romance"; "scifi" ]

let schema =
  let a = Schema.attribute in
  Schema.make
    ~fds:
      [
        { Schema.fd_rel = "movie"; fd_lhs = [ "id" ]; fd_rhs = [ "title"; "year" ] };
        { Schema.fd_rel = "genre"; fd_lhs = [ "gid" ]; fd_rhs = [ "gname" ] };
        { Schema.fd_rel = "director"; fd_lhs = [ "did" ]; fd_rhs = [ "dname" ] };
        { Schema.fd_rel = "actor"; fd_lhs = [ "aid" ]; fd_rhs = [ "aname" ] };
      ]
    ~inds:
      [
        Schema.ind_with_equality "movies2genre" [ "gid" ] "genre" [ "gid" ];
        Schema.ind_with_equality "movies2director" [ "did" ] "director" [ "did" ];
        Schema.ind_with_equality "movies2actor" [ "aid" ] "actor" [ "aid" ];
        Schema.ind_with_equality "movies2genre" [ "id" ] "movie" [ "id" ];
        Schema.ind_with_equality "movies2director" [ "id" ] "movie" [ "id" ];
        Schema.ind_subset "movies2actor" [ "id" ] "movie" [ "id" ];
        Schema.ind_subset "movies2country" [ "id" ] "movie" [ "id" ];
        Schema.ind_subset "movies2country" [ "cid" ] "country" [ "cid" ];
      ]
    [
      Schema.relation "movie"
        [ a ~domain:"movie" "id"; a ~domain:"title" "title"; a ~domain:"year" "year" ];
      Schema.relation "genre" [ a ~domain:"genre" "gid"; a ~domain:"gname" "gname" ];
      Schema.relation "director"
        [ a ~domain:"director" "did"; a ~domain:"dname" "dname" ];
      Schema.relation "actor" [ a ~domain:"actor" "aid"; a ~domain:"aname" "aname" ];
      Schema.relation "country"
        [ a ~domain:"country" "cid"; a ~domain:"cname" "cname" ];
      Schema.relation "movies2genre"
        [ a ~domain:"movie" "id"; a ~domain:"genre" "gid" ];
      Schema.relation "movies2director"
        [ a ~domain:"movie" "id"; a ~domain:"director" "did" ];
      Schema.relation "movies2actor"
        [ a ~domain:"movie" "id"; a ~domain:"actor" "aid" ];
      Schema.relation "movies2country"
        [ a ~domain:"movie" "id"; a ~domain:"country" "cid" ];
    ]

(** Stanford composes the movie-genre-director star into one wide
    movie relation; Denormalized folds each entity into its bridge
    relation (Tables 6-7). *)
let to_stanford : Transform.t =
  [
    Transform.Compose
      { parts = [ "movie"; "movies2genre"; "movies2director" ]; into = "movie" };
  ]

let to_denormalized : Transform.t =
  [
    Transform.Compose
      { parts = [ "movies2genre"; "genre" ]; into = "movies2genre" };
    Transform.Compose
      { parts = [ "movies2director"; "director" ]; into = "movies2director" };
    Transform.Compose { parts = [ "movies2actor"; "actor" ]; into = "movies2actor" };
  ]

let generate ?(config = default_config) () =
  let rng = Gen.rng config.seed in
  let inst = Instance.create schema in
  let gids = List.mapi (fun i g -> (Value.str (Printf.sprintf "g%d" i), g)) genres in
  List.iter
    (fun (gid, g) -> Instance.add_list inst "genre" [ gid; Value.str g ])
    gids;
  let directors =
    List.init config.n_directors (fun i -> Value.str (Printf.sprintf "d%d" i))
  in
  List.iteri
    (fun i d ->
      Instance.add_list inst "director" [ d; Value.str (Printf.sprintf "dname%d" i) ])
    directors;
  let actors = List.init config.n_actors (fun i -> Value.str (Printf.sprintf "a%d" i)) in
  List.iteri
    (fun i ac ->
      Instance.add_list inst "actor" [ ac; Value.str (Printf.sprintf "aname%d" i) ])
    actors;
  let countries =
    List.init config.n_countries (fun i -> Value.str (Printf.sprintf "c%d" i))
  in
  List.iteri
    (fun i c ->
      Instance.add_list inst "country" [ c; Value.str (Printf.sprintf "cname%d" i) ])
    countries;
  (* movies: round-robin over directors, genres and actors guarantees
     the equality INDs (every entity is used, every movie complete) *)
  let garr = Array.of_list (List.map fst gids) in
  let darr = Array.of_list directors and aarr = Array.of_list actors in
  for i = 0 to config.n_movies - 1 do
    let m = Value.str (Printf.sprintf "m%d" i) in
    Instance.add_list inst "movie"
      [ m; Value.str (Printf.sprintf "title%d" i); Value.int (2001 + (i mod 15)) ];
    let g = if i < Array.length garr then garr.(i) else Gen.pick rng garr in
    Instance.add_list inst "movies2genre" [ m; g ];
    if Gen.chance rng 0.25 then
      Instance.add_list inst "movies2genre" [ m; Gen.pick rng garr ];
    let d = if i < Array.length darr then darr.(i) else darr.(i mod Array.length darr)
    in
    Instance.add_list inst "movies2director" [ m; d ];
    let a = if i < Array.length aarr then aarr.(i) else Gen.pick rng aarr in
    Instance.add_list inst "movies2actor" [ m; a ];
    if Gen.chance rng 0.6 then
      Instance.add_list inst "movies2actor" [ m; Gen.pick rng aarr ];
    if Gen.chance rng 0.7 then
      Instance.add_list inst "movies2country" [ m; Gen.pick_list rng countries ]
  done;
  (* second pass: any actor still unused gets a movie (equality IND) *)
  let used = Instance.column_values inst "movies2actor" "aid" in
  List.iter
    (fun ac ->
      if not (List.exists (Value.equal ac) used) then
        Instance.add_list inst "movies2actor"
          [ Value.str (Printf.sprintf "m%d" (Random.State.int rng config.n_movies)); ac ])
    actors;
  (* target: directors of at least one drama movie — exact definition *)
  let drama_gid = fst (List.hd gids) in
  let is_drama_director d =
    List.exists
      (fun m2d ->
        Value.equal m2d.(1) d
        && List.exists
             (fun m2g -> Value.equal m2g.(0) m2d.(0) && Value.equal m2g.(1) drama_gid)
             (Instance.tuples inst "movies2genre"))
      (Instance.tuples inst "movies2director")
  in
  let pos_dirs = List.filter is_drama_director directors in
  let neg_dirs = List.filter (fun d -> not (is_drama_director d)) directors in
  let mk d = Atom.make "dramaDirector" [ Term.Const d ] in
  let target =
    Schema.relation "dramaDirector" [ Schema.attribute ~domain:"director" "did" ]
  in
  let golden =
    {
      Clause.target = "dramaDirector";
      clauses =
        [
          Clause.make
            (Atom.make "dramaDirector" [ Term.Var "x" ])
            [
              Atom.make "movies2director" [ Term.Var "m"; Term.Var "x" ];
              Atom.make "movies2genre" [ Term.Var "m"; Term.Var "g" ];
              Atom.make "genre" [ Term.Var "g"; Term.Const (Value.str "drama") ];
            ];
        ];
    }
  in
  {
    name = "imdb";
    schema;
    instance = inst;
    target;
    examples = Examples.make ~pos:(List.map mk pos_dirs) ~neg:(List.map mk neg_dirs);
    const_pool = [ ("gname", List.map Value.str genres) ];
    variants =
      [
        ("jmdb", []);
        ("stanford", to_stanford);
        ("denormalized", to_denormalized);
      ];
    no_expand_domains =
      [ "title"; "year"; "gname"; "dname"; "aname"; "country"; "cname" ];
    golden = Some golden;
  }
