lib/qlearn/a2.ml: Array Castor_logic Clause Lgg List Minimize Oracle Subsume
