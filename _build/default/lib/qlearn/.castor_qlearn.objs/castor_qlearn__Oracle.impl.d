lib/qlearn/oracle.ml: Array Atom Castor_logic Castor_relational Clause Hashtbl List Printf Subsume Term Value
