lib/qlearn/bounds.ml: Castor_relational Float Fmt List Schema
