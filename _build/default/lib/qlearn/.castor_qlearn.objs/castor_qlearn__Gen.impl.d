lib/qlearn/gen.ml: Array Atom Castor_logic Castor_relational Clause Fun List Printf Random Schema String Term
