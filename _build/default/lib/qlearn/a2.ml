(** The A2 query-based Horn learner (Khardon 1999), as implemented by
    LogAn-H (Arias, Khardon & Maloberti 2007) and analyzed in
    Section 8 / Theorem 8.1.

    The learner maintains a sequence [S] of counterexample clauses.
    On a positive counterexample it first {e minimizes} it — dropping
    body literals one at a time, each drop validated by one membership
    query — then tries to {e pair} it with each stored clause: if the
    lgg of the pair is still entailed (one more MQ on a grounding of
    the lgg), the stored clause is replaced by the minimized lgg;
    otherwise the counterexample is appended. The hypothesis presented
    at each equivalence query is the variabilization of [S].

    The MQ cost is dominated by counterexample minimization, which is
    linear in the number of body literals — and decomposition
    multiplies literal counts, which is exactly why the measured query
    complexity in Figure 3 rises on more decomposed schemas. *)

open Castor_logic

type result = {
  hypothesis : Clause.definition;
  eqs : int;
  mqs : int;
  converged : bool;
}

(* drop body literals right to left; a drop survives when the reduced
   clause is still entailed by the target (one MQ each) *)
let minimize_counterexample oracle (gc : Clause.t) =
  let body = ref (Array.of_list gc.Clause.body) in
  let i = ref (Array.length !body - 1) in
  let current () = { gc with Clause.body = Array.to_list !body } in
  while !i >= 0 do
    let without =
      Array.to_list !body |> List.filteri (fun j _ -> j <> !i) |> Array.of_list
    in
    let candidate = { gc with Clause.body = Array.to_list without } in
    if Oracle.membership oracle candidate then body := without;
    decr i
  done;
  current ()

let variabilize_clause (gc : Clause.t) = fst (Clause.variabilize gc)

let hypothesis_of target_name s =
  { Clause.target = target_name; clauses = List.map variabilize_clause s }

(** [learn ?max_rounds ~target_name oracle] runs A2 until the oracle
    accepts the hypothesis (or the round budget runs out) and reports
    the query counts. *)
let learn ?(max_rounds = 200) ~target_name (oracle : Oracle.t) =
  let s : Clause.t list ref = ref [] in
  let converged = ref false in
  let rounds = ref 0 in
  while (not !converged) && !rounds < max_rounds do
    incr rounds;
    match Oracle.equivalence oracle (hypothesis_of target_name !s) with
    | Oracle.Correct -> converged := true
    | Oracle.Negative_counterexample gc ->
        (* an over-general stored clause produced it; drop the first
           hypothesis clause subsuming the counterexample *)
        s :=
          (match
             List.partition
               (fun c -> Subsume.subsumes (variabilize_clause c) gc)
               !s
           with
          | _offender :: rest_off, keep -> rest_off @ keep
          | [], keep -> keep)
    | Oracle.Positive_counterexample gc -> (
        let mgc = minimize_counterexample oracle gc in
        (* pairing: try to fold into an existing clause *)
        let rec pair acc = function
          | [] -> None
          | c :: rest -> (
              match Lgg.clauses c mgc with
              | None -> pair (c :: acc) rest
              | Some g ->
                  let g = Minimize.reduce_absorbed g in
                  let grounded = Oracle.ground oracle g in
                  if Oracle.membership oracle grounded then
                    Some (List.rev acc @ (g :: rest))
                  else pair (c :: acc) rest)
        in
        match pair [] !s with
        | Some s' -> s := s'
        | None -> s := !s @ [ mgc ])
  done;
  let eqs, mqs = Oracle.counts oracle in
  {
    hypothesis = hypothesis_of target_name !s;
    eqs;
    mqs;
    converged = !converged;
  }
