(** The oracle of query-based learning (Section 8), in the "automatic
    user" mode of LogAn-H used by the paper's Figure 3 experiment: the
    oracle knows the hidden target Horn definition and answers

    - {b membership queries} (MQ): is this ground clause's head
      entailed by the target given its body? — decided by
      θ-subsumption of some target clause into the queried clause;
    - {b equivalence queries} (EQ): is this hypothesis equivalent to
      the target? — decided clause-wise by mutual θ-subsumption;
      when not, a counterexample is returned: a grounding (by fresh
      skolem constants) of a target clause the hypothesis misses, or
      of a hypothesis clause the target does not entail.

    Both query counters are exposed; they are the measurements of the
    query-complexity experiment. *)

open Castor_relational
open Castor_logic

type t = {
  target : Clause.definition;
  mutable eqs : int;
  mutable mqs : int;
  mutable skolem : int;
}

let make target = { target; eqs = 0; mqs = 0; skolem = 0 }

let counts t = (t.eqs, t.mqs)

(** [ground t c] replaces each variable of [c] by a fresh skolem
    constant. *)
let ground t (c : Clause.t) =
  let table = Hashtbl.create 16 in
  let conv (a : Atom.t) =
    {
      a with
      Atom.args =
        Array.map
          (function
            | Term.Const _ as k -> k
            | Term.Var v -> (
                match Hashtbl.find_opt table v with
                | Some k -> k
                | None ->
                    t.skolem <- t.skolem + 1;
                    let k = Term.Const (Value.str (Printf.sprintf "sk%d" t.skolem)) in
                    Hashtbl.add table v k;
                    k))
          a.Atom.args;
    }
  in
  { Clause.head = conv c.Clause.head; body = List.map conv c.Clause.body }

(** [membership t gc] — one MQ. [gc] is a (usually ground) clause; the
    answer is whether the target entails its head from its body. *)
let membership t (gc : Clause.t) =
  t.mqs <- t.mqs + 1;
  List.exists (fun c -> Subsume.subsumes c gc) t.target.Clause.clauses

type eq_answer =
  | Correct
  | Positive_counterexample of Clause.t  (** ground; target-entailed, hypothesis-missed *)
  | Negative_counterexample of Clause.t  (** ground; hypothesis-entailed, target-missed *)

(** [equivalence t h] — one EQ. *)
let equivalence t (h : Clause.definition) =
  t.eqs <- t.eqs + 1;
  let missed_target =
    List.find_opt
      (fun c -> not (List.exists (fun hc -> Subsume.subsumes hc c) h.Clause.clauses))
      t.target.Clause.clauses
  in
  match missed_target with
  | Some c -> Positive_counterexample (ground t c)
  | None -> (
      let extra =
        List.find_opt
          (fun hc ->
            not (List.exists (fun c -> Subsume.subsumes c hc) t.target.Clause.clauses))
          h.Clause.clauses
      in
      match extra with
      | Some hc -> Negative_counterexample (ground t hc)
      | None -> Correct)
