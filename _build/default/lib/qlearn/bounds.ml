(** The asymptotic query-complexity bounds of Theorem 8.1.

    Khardon's A2 asks at most [O(m² p k^(a+3k) + n m p k^(a+k))]
    equivalence plus membership queries and at least [Ω(m p k^a)]
    (the VC dimension of the hypothesis language), where

    - [p] — number of relation symbols in the schema,
    - [a] — largest relation arity,
    - [k] — largest number of variables in a clause,
    - [m] — number of clauses in the target definition,
    - [n] — largest number of constants in a counterexample.

    Theorem 8.1 exhibits a decomposition under which the lower bound
    over one schema exceeds the upper bound over the other — the
    theoretical counterpart of the Figure 3 measurements. The numbers
    here are the raw bound expressions (in log-space to keep them
    finite), for printing next to the measured query counts. *)

open Castor_relational

type schema_params = { p : int; a : int }

(** [of_schema s] extracts [p] and [a]. *)
let of_schema (s : Schema.t) =
  {
    p = List.length s.Schema.relations;
    a =
      List.fold_left
        (fun m (r : Schema.relation) -> max m (List.length r.Schema.attrs))
        1 s.Schema.relations;
  }

let log_f x = log (float_of_int (max 1 x))

(** [log_lower ~m ~k sp] = log Ω(m p k^a). *)
let log_lower ~m ~k sp =
  log_f m +. log_f sp.p +. (float_of_int sp.a *. log_f k)

(** [log_upper ~m ~k ~n sp] = log O(m² p k^(a+3k) + n m p k^(a+k)),
    computed as a log-sum-exp of the two terms. *)
let log_upper ~m ~k ~n sp =
  let t1 =
    (2. *. log_f m) +. log_f sp.p +. (float_of_int (sp.a + (3 * k)) *. log_f k)
  in
  let t2 =
    log_f n +. log_f m +. log_f sp.p +. (float_of_int (sp.a + k) *. log_f k)
  in
  let hi = Float.max t1 t2 and lo = Float.min t1 t2 in
  hi +. log1p (exp (lo -. hi))

(** [crossover ~m ~k ~n r s] — Theorem 8.1's separation test: does the
    lower bound under schema [r] exceed the upper bound under [s]?
    (Requires sufficiently large [k] and [a]; see the proof.) *)
let crossover ~m ~k ~n (r : Schema.t) (s : Schema.t) =
  log_lower ~m ~k (of_schema r) > log_upper ~m ~k ~n (of_schema s)

(** A report line for the Figure 3 output. *)
let report ~m ~k ~n (name : string) (s : Schema.t) =
  let sp = of_schema s in
  Fmt.str "%-10s p=%2d a=%d  log Ω=%6.1f  log O=%6.1f" name sp.p sp.a
    (log_lower ~m ~k sp) (log_upper ~m ~k ~n sp)
