(** Random Horn-definition generator for the query-complexity
    experiment (Section 9.4).

    Following the paper: each definition has a fresh head relation of
    random arity; every clause's body is built from randomly chosen
    schema relations populated with variables (each position picks a
    new variable until the clause reaches its variable budget, or an
    already-used one); every head variable must occur in the body; no
    constants or function symbols. Definitions generated over one
    schema are mapped to the others with the definition mapping δτ. *)

open Castor_relational
open Castor_logic

let var i = Term.Var (Printf.sprintf "v%d" i)

(** [random_definition ~rng ~schema ~target_name ~n_clauses ~n_vars ()]
    draws a definition with [n_clauses] clauses of [n_vars] distinct
    variables each. *)
let random_definition ~rng ~(schema : Schema.t) ~target_name ~n_clauses ~n_vars () =
  let rels = Array.of_list schema.Schema.relations in
  let max_arity =
    Array.fold_left
      (fun m (r : Schema.relation) -> max m (List.length r.Schema.attrs))
      1 rels
  in
  let clause ci =
    ignore ci;
    let head_arity = 1 + Random.State.int rng (min max_arity n_vars) in
    let head = Atom.make target_name (List.init head_arity var) in
    (* grow body until every variable up to n_vars has been used and
       all head variables occur in the body *)
    let used = Array.make n_vars false in
    let next_new = ref 0 in
    let pick_var () =
      (* introduce a new variable while the budget allows, otherwise
         reuse uniformly *)
      if !next_new < n_vars && (Random.State.bool rng || !next_new < head_arity)
      then begin
        let i = !next_new in
        incr next_new;
        used.(i) <- true;
        var i
      end
      else begin
        let i = Random.State.int rng (max 1 !next_new) in
        used.(i) <- true;
        var i
      end
    in
    let body = ref [] in
    let head_covered () =
      let covered = Array.make head_arity false in
      List.iter
        (fun (a : Atom.t) ->
          List.iter
            (fun v ->
              for i = 0 to head_arity - 1 do
                if String.equal v (Printf.sprintf "v%d" i) then covered.(i) <- true
              done)
            (Atom.vars a))
        !body;
      Array.for_all Fun.id covered
    in
    let guard = ref 0 in
    while
      (!next_new < n_vars || not (head_covered ())) && !guard < 100
    do
      incr guard;
      let r = rels.(Random.State.int rng (Array.length rels)) in
      let arity = List.length r.Schema.attrs in
      let lit = Atom.make r.Schema.rname (List.init arity (fun _ -> pick_var ())) in
      body := !body @ [ lit ]
    done;
    (* force any still-uncovered head variable into the body *)
    if not (head_covered ()) then begin
      let r = rels.(0) in
      let arity = List.length r.Schema.attrs in
      for i = 0 to head_arity - 1 do
        let in_body =
          List.exists
            (fun (a : Atom.t) -> List.mem (Printf.sprintf "v%d" i) (Atom.vars a))
            !body
        in
        if not in_body then
          body :=
            !body
            @ [
                Atom.make r.Schema.rname
                  (List.init arity (fun j -> if j = 0 then var i else pick_var ()));
              ]
      done
    end;
    Clause.make head !body
  in
  { Clause.target = target_name; clauses = List.init n_clauses clause }
