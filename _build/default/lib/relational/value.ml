(** Constants stored in database tuples.

    The paper fixes a countably infinite domain [D] of values. We use
    tagged integers and strings; every dataset generator mints string
    constants that encode their entity kind (e.g. ["stud12"]) so that
    constants from different attribute domains never collide. *)

type t =
  | Int of int
  | Str of string

let compare (a : t) (b : t) =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)

(** [to_string v] renders the constant the way it appears in learned
    Datalog clauses. *)
let to_string = function
  | Int x -> string_of_int x
  | Str s -> s

let pp ppf v = Fmt.string ppf (to_string v)

(** Convenience constructors. *)
let int n = Int n

let str s = Str s

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
