(** Join-acyclicity of a set of relation sorts, via GYO reduction.

    The paper only considers decompositions whose reconstruction join
    is acyclic (Section 4); Proposition 7.4 then guarantees the derived
    INDs with equality are non-cyclic, which is what makes Castor's
    IND chase terminate without scanning. *)

module SS = Set.Make (String)

(** [is_acyclic sorts] decides whether the natural join of relations
    with the given attribute sets is acyclic, using the
    Graham–Yu–Ozsoyoglu ear-removal procedure: repeatedly delete
    (1) attributes occurring in a single hyperedge and (2) hyperedges
    contained in another hyperedge; the join is acyclic iff the
    hypergraph reduces to nothing (or a single edge). *)
let is_acyclic (sorts : string list list) =
  let edges = ref (List.map SS.of_list sorts) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* count attribute occurrences *)
    let counts = Hashtbl.create 16 in
    List.iter
      (fun e ->
        SS.iter
          (fun a ->
            Hashtbl.replace counts a
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts a)))
          e)
      !edges;
    (* rule 1: drop attributes unique to one edge *)
    let edges' =
      List.map
        (fun e -> SS.filter (fun a -> Hashtbl.find counts a > 1) e)
        !edges
    in
    if edges' <> !edges then begin
      edges := edges';
      changed := true
    end;
    (* rule 2: drop empty edges and edges contained in another edge *)
    let rec drop_contained acc = function
      | [] -> List.rev acc
      | e :: rest ->
          let contained =
            SS.is_empty e
            || List.exists (fun f -> SS.subset e f) rest
            || List.exists (fun f -> SS.subset e f) acc
          in
          if contained then drop_contained acc rest
          else drop_contained (e :: acc) rest
    in
    let edges'' = drop_contained [] !edges in
    if List.length edges'' <> List.length !edges then begin
      edges := edges'';
      changed := true
    end
  done;
  List.length !edges <= 1
