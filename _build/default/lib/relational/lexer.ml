(** A small hand-rolled lexer shared by the text formats (schema
    files, fact files, Datalog clauses). *)

type token =
  | Ident of string  (** identifiers: letters, digits, '_', leading letter *)
  | Int of int
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Dot
  | Colon
  | Arrow  (** -> *)
  | Turnstile  (** :- *)
  | Eq  (** = *)
  | Subset  (** <= *)
  | Eof

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "%s" s
  | Int n -> Fmt.pf ppf "%d" n
  | Lparen -> Fmt.string ppf "("
  | Rparen -> Fmt.string ppf ")"
  | Lbracket -> Fmt.string ppf "["
  | Rbracket -> Fmt.string ppf "]"
  | Comma -> Fmt.string ppf ","
  | Dot -> Fmt.string ppf "."
  | Colon -> Fmt.string ppf ":"
  | Arrow -> Fmt.string ppf "->"
  | Turnstile -> Fmt.string ppf ":-"
  | Eq -> Fmt.string ppf "="
  | Subset -> Fmt.string ppf "<="
  | Eof -> Fmt.string ppf "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(** [tokenize s] lexes [s]; ['%'] starts a to-end-of-line comment.
    @raise Error on an unexpected character. *)
let tokenize (s : string) : token list =
  let n = String.length s in
  let out = ref [] in
  let push t = out := t :: !out in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then begin
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit s.[!j] do
        incr j
      done;
      push (Int (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      push (Ident (String.sub s !i (!j - !i)));
      i := !j
    end
    else begin
      (match c with
      | '(' -> push Lparen
      | ')' -> push Rparen
      | '[' -> push Lbracket
      | ']' -> push Rbracket
      | ',' -> push Comma
      | '.' -> push Dot
      | '=' -> push Eq
      | ':' ->
          if !i + 1 < n && s.[!i + 1] = '-' then begin
            push Turnstile;
            incr i
          end
          else push Colon
      | '-' ->
          if !i + 1 < n && s.[!i + 1] = '>' then begin
            push Arrow;
            incr i
          end
          else error "stray '-' at offset %d" !i
      | '<' ->
          if !i + 1 < n && s.[!i + 1] = '=' then begin
            push Subset;
            incr i
          end
          else error "stray '<' at offset %d" !i
      | c -> error "unexpected character %C at offset %d" c !i);
      incr i
    end
  done;
  List.rev (Eof :: !out)

(** A mutable token cursor for recursive-descent parsers. *)
type cursor = { mutable tokens : token list }

let cursor tokens = { tokens }

let peek c = match c.tokens with [] -> Eof | t :: _ -> t

let advance c = match c.tokens with [] -> () | _ :: rest -> c.tokens <- rest

let next c =
  let t = peek c in
  advance c;
  t

(** [expect c t] consumes the next token, failing unless it is [t]. *)
let expect c t =
  let got = next c in
  if got <> t then error "expected %a but found %a" pp_token t pp_token got

(** [ident c] consumes and returns an identifier. *)
let ident c =
  match next c with
  | Ident s -> s
  | t -> error "expected identifier but found %a" pp_token t
