(** Composition / decomposition schema transformations (Section 4).

    A transformation is a finite sequence of operations, each either a
    vertical decomposition of one relation into parts (projection) or a
    composition of several relations into one (natural join). Applying
    a transformation to a schema rewrites the relation symbols and
    constraints; applying it to an instance computes [τ(I)].

    Decomposition follows Definition 4.1: the parts must cover the
    sort, the reconstruction join must be acyclic, and INDs with
    equality are added between every pair of parts that share
    attributes. Constraints of the original schema that fall entirely
    inside one part are carried over. *)

type op =
  | Decompose of { rel : string; parts : (string * string list) list }
      (** split [rel] into named parts, each keeping the listed
          attributes (in the listed order) *)
  | Compose of { parts : string list; into : string }
      (** natural-join [parts] into a single relation [into]; the
          result's sort is the deduplicated concatenation of the parts'
          sorts in part order *)

type t = op list

exception Illegal of string

let illegal fmt = Fmt.kstr (fun s -> raise (Illegal s)) fmt

(* ------------------------------------------------------------------ *)
(* Schema-level application                                            *)
(* ------------------------------------------------------------------ *)

let attr_of (r : Schema.relation) name =
  match List.find_opt (fun (a : Schema.attribute) -> String.equal a.aname name) r.attrs with
  | Some a -> a
  | None -> illegal "attribute %s not in relation %s" name r.rname

let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

(* Rewrites constraints of a decomposed relation onto the part that
   contains all their attributes; constraints spanning parts are
   dropped (they are implied by the derived INDs plus part-local
   constraints for the transformations we use). *)
let rehome_constraints_decompose (s : Schema.t) rel (parts : (string * string list) list) =
  let home attrs =
    List.find_opt (fun (_, pattrs) -> subset attrs pattrs) parts
  in
  let fds =
    List.filter_map
      (fun (fd : Schema.fd) ->
        if not (String.equal fd.fd_rel rel) then Some fd
        else
          match home (fd.fd_lhs @ fd.fd_rhs) with
          | Some (pname, _) -> Some { fd with fd_rel = pname }
          | None -> None)
      s.Schema.fds
  in
  let inds =
    List.filter_map
      (fun (ind : Schema.ind) ->
        let fix_side r attrs =
          if String.equal r rel then
            match home attrs with
            | Some (pname, _) -> Some pname
            | None -> None
          else Some r
        in
        match fix_side ind.sub_rel ind.sub_attrs, fix_side ind.sup_rel ind.sup_attrs with
        | Some sub, Some sup -> Some { ind with sub_rel = sub; sup_rel = sup }
        | _ -> None)
      s.Schema.inds
  in
  (fds, inds)

let apply_op_schema (s : Schema.t) = function
  | Decompose { rel; parts } ->
      let r = Schema.find_relation s rel in
      let sort = List.map (fun (a : Schema.attribute) -> a.aname) r.attrs in
      let covered = List.concat_map snd parts in
      if not (subset sort covered && subset covered sort) then
        illegal "decomposition of %s does not cover its sort exactly" rel;
      List.iter
        (fun (pname, _) ->
          if Schema.mem_relation s pname && not (String.equal pname rel) then
            illegal "decomposition part %s already exists" pname)
        parts;
      if not (Hypergraph.is_acyclic (List.map snd parts)) then
        illegal "decomposition of %s has a cyclic reconstruction join" rel;
      let fds, inds = rehome_constraints_decompose s rel parts in
      let part_rels =
        List.map
          (fun (pname, attrs) ->
            Schema.relation pname (List.map (attr_of r) attrs))
          parts
      in
      (* Definition 4.1 second condition: INDs with equality between
         every pair of parts sharing attributes. *)
      let derived =
        let rec pairs = function
          | [] -> []
          | p :: rest -> List.map (fun q -> (p, q)) rest @ pairs rest
        in
        List.filter_map
          (fun ((p, pa), (q, qa)) ->
            let x = List.filter (fun a -> List.mem a qa) pa in
            if x = [] then None else Some (Schema.ind_with_equality p x q x))
          (pairs parts)
      in
      let s = Schema.remove_relation s rel in
      let s = List.fold_left Schema.add_relation s part_rels in
      { s with Schema.fds; inds = inds @ derived }
  | Compose { parts; into } ->
      if List.length parts < 2 then illegal "composition needs >= 2 parts";
      let rels = List.map (Schema.find_relation s) parts in
      (* connectivity: the join must not degenerate to a product *)
      let sorts = List.map (fun (r : Schema.relation) -> List.map (fun (a : Schema.attribute) -> a.aname) r.attrs) rels in
      if not (Hypergraph.is_acyclic sorts) then
        illegal "composition %s has a cyclic join" into;
      let attrs =
        List.fold_left
          (fun acc (r : Schema.relation) ->
            List.fold_left
              (fun acc (a : Schema.attribute) ->
                if List.exists (fun (b : Schema.attribute) -> String.equal a.aname b.aname) acc
                then acc
                else acc @ [ a ])
              acc r.attrs)
          [] rels
      in
      let in_parts r = List.mem r parts in
      let fds =
        List.map
          (fun (fd : Schema.fd) ->
            if in_parts fd.fd_rel then { fd with fd_rel = into } else fd)
          s.Schema.fds
      in
      let inds =
        List.filter_map
          (fun (ind : Schema.ind) ->
            let sub = if in_parts ind.sub_rel then into else ind.sub_rel in
            let sup = if in_parts ind.sup_rel then into else ind.sup_rel in
            if String.equal sub sup && ind.sub_attrs = ind.sup_attrs then None
            else Some { ind with sub_rel = sub; sup_rel = sup })
          s.Schema.inds
      in
      let s = List.fold_left Schema.remove_relation s parts in
      let s = Schema.add_relation s (Schema.relation into attrs) in
      { s with Schema.fds; inds }

(** [apply_schema s t] applies the operations in order. *)
let apply_schema s (t : t) = List.fold_left apply_op_schema s t

(* ------------------------------------------------------------------ *)
(* Instance-level application (τ)                                      *)
(* ------------------------------------------------------------------ *)

let copy_relations src dst names =
  List.iter
    (fun rel ->
      List.iter (fun tu -> Instance.add dst rel tu) (Instance.tuples src rel))
    names

let apply_op_instance inst op =
  let s = Instance.schema inst in
  let s' = apply_op_schema s op in
  let out = Instance.create s' in
  (match op with
  | Decompose { rel; parts } ->
      copy_relations inst out
        (List.filter (fun r -> not (String.equal r rel)) (Instance.relation_names inst));
      List.iter
        (fun (pname, attrs) ->
          List.iter (fun tu -> Instance.add out pname tu) (Algebra.project inst rel attrs))
        parts
  | Compose { parts; into } ->
      copy_relations inst out
        (List.filter (fun r -> not (List.mem r parts)) (Instance.relation_names inst));
      let joined =
        Algebra.natural_join_all (List.map (Algebra.table_of_relation inst) parts)
      in
      let want = Schema.sort s' into in
      let joined = Algebra.reorder joined want in
      List.iter (fun tu -> Instance.add out into tu) joined.Algebra.trows);
  out

(** [apply_instance i t] computes [τ(I)]. *)
let apply_instance inst (t : t) = List.fold_left apply_op_instance inst t

(* ------------------------------------------------------------------ *)
(* Inverse transformation (τ⁻¹)                                        *)
(* ------------------------------------------------------------------ *)

(** [inverse s t] builds the inverse transformation of [t], valid for
    instances in the image of [τ]. Each decomposition inverts to the
    composition of its parts and vice versa; [s] is the schema [t]
    applies to (needed to recover part sorts when inverting a
    composition). *)
let inverse (s : Schema.t) (t : t) =
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map (fun p -> x :: p)
              (permutations (List.filter (fun y -> y != x) l)))
          l
  in
  let dedup_concat sorts =
    List.fold_left
      (fun acc s ->
        List.fold_left (fun acc a -> if List.mem a acc then acc else acc @ [ a ]) acc s)
      [] sorts
  in
  let rec go s acc = function
    | [] -> acc (* already reversed *)
    | op :: rest ->
        let inv =
          match op with
          | Decompose { rel; parts } ->
              (* choose a part order whose recomposition restores the
                 original column order, when one exists — instance
                 equality after a round trip is order-sensitive *)
              let original_sort = Schema.sort s rel in
              let named = List.map fst parts in
              let order =
                if List.length named <= 6 then
                  List.find_opt
                    (fun perm ->
                      dedup_concat
                        (List.map (fun p -> List.assoc p parts) perm)
                      = original_sort)
                    (permutations named)
                else None
              in
              Compose { parts = Option.value ~default:named order; into = rel }
          | Compose { parts; into } ->
              Decompose
                {
                  rel = into;
                  parts =
                    List.map (fun p -> (p, Schema.sort s p)) parts;
                }
        in
        go (apply_op_schema s op) (inv :: acc) rest
  in
  go s [] t

(** [is_identity_on s t i] checks [τ⁻¹(τ(I)) = I] — the invertibility
    half of information equivalence (Section 3.2.1). *)
let round_trips inst (t : t) =
  let s = Instance.schema inst in
  let fwd = apply_instance inst t in
  let back = apply_instance fwd (inverse s t) in
  Instance.equal inst back

let pp_op ppf = function
  | Decompose { rel; parts } ->
      Fmt.pf ppf "decompose %s -> %a" rel
        Fmt.(list ~sep:comma (fun ppf (n, a) -> pf ppf "%s(%a)" n (list ~sep:(any ",") string) a))
        parts
  | Compose { parts; into } ->
      Fmt.pf ppf "compose %a -> %s" Fmt.(list ~sep:comma string) parts into

let pp = Fmt.(list ~sep:(any "; ") pp_op)
