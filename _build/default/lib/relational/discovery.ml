(** Dependency discovery from database instances.

    The paper's HIV dataset "is stored in flat files and does not have
    any information about its constraints. We explored the database
    for possible dependencies" (Section 9.1.1) — this module is that
    exploration: it proposes the functional and inclusion dependencies
    that hold in a given instance, so Castor can be applied to
    constraint-less data dumps.

    Discovered dependencies are necessarily {e candidates}: they hold
    in the instance at hand and must be vetted against domain
    knowledge before being trusted as schema constraints (a spurious
    IND with equality would make Castor chase unrelated tuples). *)

(* distinct projection of a relation on one attribute *)
let unary_projection inst rel aname =
  Value.Set.of_list (Instance.column_values inst rel aname)

(** [unary_inds ?same_domain_only inst] discovers all unary INDs
    [R\[a\] ⊆ S\[b\]] (and upgrades symmetric pairs to INDs with
    equality). With [same_domain_only] (default), only attribute pairs
    with the same declared domain are compared — cross-domain
    containments (e.g. two unrelated integer columns) are almost
    always coincidences. Trivial self-INDs are omitted. *)
let unary_inds ?(same_domain_only = true) inst =
  let schema = Instance.schema inst in
  let columns =
    List.concat_map
      (fun (r : Schema.relation) ->
        List.map
          (fun (a : Schema.attribute) ->
            (r.Schema.rname, a.Schema.aname, a.Schema.domain))
          r.Schema.attrs)
      schema.Schema.relations
  in
  let projections =
    List.map
      (fun (rel, aname, dom) -> ((rel, aname, dom), unary_projection inst rel aname))
      columns
  in
  let subset_of =
    List.concat_map
      (fun ((r1, a1, d1), p1) ->
        List.filter_map
          (fun ((r2, a2, d2), p2) ->
            if String.equal r1 r2 && String.equal a1 a2 then None
            else if same_domain_only && not (String.equal d1 d2) then None
            else if Value.Set.is_empty p1 then None
            else if Value.Set.subset p1 p2 then Some ((r1, a1), (r2, a2))
            else None)
          projections)
      projections
  in
  (* upgrade symmetric pairs to INDs with equality, keep one direction *)
  let has_reverse (s, t) = List.exists (fun (s', t') -> s' = t && t' = s) subset_of in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (((r1, a1), (r2, a2)) as ind) ->
      let key_fwd = (r1, a1, r2, a2) and key_bwd = (r2, a2, r1, a1) in
      if Hashtbl.mem seen key_fwd || Hashtbl.mem seen key_bwd then None
      else begin
        Hashtbl.replace seen key_fwd ();
        if has_reverse ind then
          Some (Schema.ind_with_equality r1 [ a1 ] r2 [ a2 ])
        else Some (Schema.ind_subset r1 [ a1 ] r2 [ a2 ])
      end)
    subset_of

(* all non-empty subsets of [l] with size <= k, smallest first *)
let rec subsets_up_to k l =
  if k <= 0 then [ [] ]
  else
    match l with
    | [] -> [ [] ]
    | x :: rest ->
        let without = subsets_up_to k rest in
        let with_x = List.map (fun s -> x :: s) (subsets_up_to (k - 1) rest) in
        without @ with_x

(** [fds ?max_lhs inst rel] discovers the minimal functional
    dependencies [X -> a] holding in [inst.rel] with [|X| ≤ max_lhs]
    (default 2) — a bounded-levelwise search in the style of TANE.
    Only FDs not implied by a discovered FD with a smaller LHS are
    reported. *)
let fds ?(max_lhs = 2) inst rel =
  let r = Schema.find_relation (Instance.schema inst) rel in
  let attrs = List.map (fun (a : Schema.attribute) -> a.Schema.aname) r.Schema.attrs in
  let tuples = Instance.tuples inst rel in
  let holds lhs rhs =
    if List.mem rhs lhs then false
    else
      let pos_l = Schema.positions r lhs and pos_r = Schema.positions r [ rhs ] in
      let table = Hashtbl.create 64 in
      List.for_all
        (fun tu ->
          let key = Fmt.str "%a" Tuple.pp (Tuple.project pos_l tu) in
          let v = Fmt.str "%a" Tuple.pp (Tuple.project pos_r tu) in
          match Hashtbl.find_opt table key with
          | Some v' -> String.equal v v'
          | None ->
              Hashtbl.add table key v;
              true)
        tuples
  in
  let candidates =
    List.filter (fun s -> s <> [] && List.length s <= max_lhs) (subsets_up_to max_lhs attrs)
  in
  let found = ref [] in
  let implied lhs rhs =
    List.exists
      (fun (fd : Schema.fd) ->
        fd.Schema.fd_rhs = [ rhs ]
        && List.for_all (fun a -> List.mem a lhs) fd.Schema.fd_lhs)
      !found
  in
  List.iter
    (fun lhs ->
      List.iter
        (fun rhs ->
          if (not (implied lhs rhs)) && holds lhs rhs then
            found :=
              !found @ [ { Schema.fd_rel = rel; fd_lhs = lhs; fd_rhs = [ rhs ] } ])
        attrs)
    (List.sort (fun a b -> compare (List.length a) (List.length b)) candidates);
  !found

(** [annotate inst] returns the instance's schema enriched with every
    discovered unary IND and bounded FD. *)
let annotate ?(max_lhs = 2) inst =
  let schema = Instance.schema inst in
  let inds = unary_inds inst in
  let fds_all =
    List.concat_map
      (fun (r : Schema.relation) -> fds ~max_lhs inst r.Schema.rname)
      schema.Schema.relations
  in
  { schema with Schema.inds = schema.Schema.inds @ inds; fds = schema.Schema.fds @ fds_all }
