(** Tuples are fixed-arity arrays of constants.

    A tuple by itself carries no attribute names; its positions are
    interpreted against the sort of the relation that stores it. *)

type t = Value.t array

let arity (t : t) = Array.length t

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  && (let rec go i = i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1)) in
      go 0)

let compare (a : t) (b : t) =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash (t : t) = Hashtbl.hash (Array.map Value.hash t)

(** [project positions t] keeps the listed positions, in order. *)
let project positions (t : t) = Array.map (fun i -> t.(i)) (Array.of_list positions)

(** [mem v t] tests whether constant [v] occurs in [t]. *)
let mem v (t : t) = Array.exists (Value.equal v) t

let of_list vs : t = Array.of_list vs

let to_list (t : t) = Array.to_list t

let pp ppf (t : t) =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") Value.pp) t

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
