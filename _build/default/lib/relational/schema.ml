(** Relational schemas: relation symbols with typed sorts, plus
    functional and inclusion dependencies (the constraint set Σ of the
    paper, Section 2.2).

    Attributes are identified by name; natural join joins on shared
    attribute names. Each attribute also names a {e domain} (a logical
    type such as ["person"] or ["course"]): the learners use domains to
    type variables so that candidate literals never equate a student
    with a course. *)

type attribute = {
  aname : string;  (** attribute symbol, unique within a relation *)
  domain : string;  (** logical type of the values stored under it *)
}

type relation = {
  rname : string;
  attrs : attribute list;  (** the sort of the relation, in column order *)
}

(** Functional dependency [lhs -> rhs] over relation [fd_rel]
    (attribute names). *)
type fd = { fd_rel : string; fd_lhs : string list; fd_rhs : string list }

(** Inclusion dependency [sub_rel\[sub_attrs\] ⊆ sup_rel\[sup_attrs\]].
    When [equality] is true the reverse inclusion also holds and the
    pair is an "IND with equality" in the paper's terminology
    ([R\[X\] = S\[Y\]]). *)
type ind = {
  sub_rel : string;
  sub_attrs : string list;
  sup_rel : string;
  sup_attrs : string list;
  equality : bool;
}

type t = { relations : relation list; fds : fd list; inds : ind list }

let empty = { relations = []; fds = []; inds = [] }

let attribute ~domain aname = { aname; domain }

let relation rname attrs = { rname; attrs }

let make ?(fds = []) ?(inds = []) relations = { relations; fds; inds }

exception Unknown_relation of string

(** [find_relation s name] looks up a relation symbol.
    @raise Unknown_relation when absent. *)
let find_relation s name =
  match List.find_opt (fun r -> String.equal r.rname name) s.relations with
  | Some r -> r
  | None -> raise (Unknown_relation name)

let mem_relation s name =
  List.exists (fun r -> String.equal r.rname name) s.relations

let arity s name = List.length (find_relation s name).attrs

(** [sort s name] returns the attribute names of relation [name], in
    column order — the paper's [sort(R)]. *)
let sort s name = List.map (fun a -> a.aname) (find_relation s name).attrs

(** [domains s name] returns the attribute domains in column order. *)
let domains s name = List.map (fun a -> a.domain) (find_relation s name).attrs

(** [positions rel names] maps attribute [names] to their column
    positions inside [rel].
    @raise Not_found if a name is missing. *)
let positions rel names =
  List.map
    (fun n ->
      let rec go i = function
        | [] -> raise Not_found
        | a :: _ when String.equal a.aname n -> i
        | _ :: tl -> go (i + 1) tl
      in
      go 0 rel.attrs)
    names

(** Shared attribute names of two relations, in the column order of the
    first — the join attributes of a natural join. *)
let shared_attrs r1 r2 =
  List.filter_map
    (fun a ->
      if List.exists (fun b -> String.equal a.aname b.aname) r2.attrs then
        Some a.aname
      else None)
    r1.attrs

(** INDs with equality in which relation [name] participates
    (Section 7.1 uses these to chase joining tuples). *)
let equality_inds_of s name =
  List.filter
    (fun i ->
      i.equality && (String.equal i.sub_rel name || String.equal i.sup_rel name))
    s.inds

(** All INDs (either direction) in which relation [name] participates. *)
let inds_of s name =
  List.filter
    (fun i -> String.equal i.sub_rel name || String.equal i.sup_rel name)
    s.inds

let add_relation s r = { s with relations = s.relations @ [ r ] }

let remove_relation s name =
  { s with relations = List.filter (fun r -> not (String.equal r.rname name)) s.relations }

let add_fd s fd = { s with fds = s.fds @ [ fd ] }

let add_ind s ind = { s with inds = s.inds @ [ ind ] }

(** [ind_with_equality r x s_ y] builds the IND with equality
    [r\[x\] = s_\[y\]]. *)
let ind_with_equality sub_rel sub_attrs sup_rel sup_attrs =
  { sub_rel; sub_attrs; sup_rel; sup_attrs; equality = true }

(** [ind_subset r x s_ y] builds the one-directional IND
    [r\[x\] ⊆ s_\[y\]]. *)
let ind_subset sub_rel sub_attrs sup_rel sup_attrs =
  { sub_rel; sub_attrs; sup_rel; sup_attrs; equality = false }

(** [weaken_inds s] downgrades every IND with equality to a plain
    subset IND — used by the general decomposition/composition
    experiments (Section 7.4 / Table 12). *)
let weaken_inds s =
  { s with inds = List.map (fun i -> { i with equality = false }) s.inds }

let pp_relation ppf r =
  Fmt.pf ppf "%s(%a)" r.rname
    Fmt.(list ~sep:(any ",") string)
    (List.map (fun a -> a.aname) r.attrs)

let pp_ind ppf i =
  Fmt.pf ppf "%s[%a] %s %s[%a]" i.sub_rel
    Fmt.(list ~sep:(any ",") string)
    i.sub_attrs
    (if i.equality then "=" else "⊆")
    i.sup_rel
    Fmt.(list ~sep:(any ",") string)
    i.sup_attrs

let pp ppf s =
  Fmt.pf ppf "@[<v>%a@,%a@]"
    Fmt.(list ~sep:cut pp_relation)
    s.relations
    Fmt.(list ~sep:cut pp_ind)
    s.inds
