(** Normalization theory: attribute-set closure, candidate keys, BCNF
    analysis, and a decomposition advisor that emits
    composition/decomposition {!Transform} operations.

    This automates the paper's construction of schema variants: the
    UW-CSE "4NF schema" of Table 1 is exactly what {!bcnf_decompose}
    proposes in reverse, and {!compose_advisor} proposes the inverse
    compositions (student + inPhase + yearsInProgram → student) from
    the INDs with equality, the way a database designer denormalizes
    for usability (Section 1). *)

module SS = Set.Make (String)

(** [closure fds xs] is the attribute-set closure [xs⁺] under the FDs
    (Armstrong's axioms, computed by the standard fixpoint). *)
let closure (fds : Schema.fd list) xs =
  let current = ref (SS.of_list xs) in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (fd : Schema.fd) ->
        if
          List.for_all (fun a -> SS.mem a !current) fd.Schema.fd_lhs
          && not (List.for_all (fun a -> SS.mem a !current) fd.Schema.fd_rhs)
        then begin
          current := List.fold_left (fun s a -> SS.add a s) !current fd.Schema.fd_rhs;
          changed := true
        end)
      fds
  done;
  SS.elements !current

(** [implies fds fd] — is [fd] implied by [fds]? *)
let implies fds (fd : Schema.fd) =
  let cl = closure fds fd.Schema.fd_lhs in
  List.for_all (fun a -> List.mem a cl) fd.Schema.fd_rhs

(** [is_superkey fds ~sort xs] — does [xs] determine the whole sort? *)
let is_superkey fds ~sort xs =
  let cl = SS.of_list (closure fds xs) in
  List.for_all (fun a -> SS.mem a cl) sort

(* subsets in increasing size, for minimal-key search *)
let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let without = subsets rest in
      without @ List.map (fun s -> x :: s) without

(** [candidate_keys fds ~sort] — all minimal keys of a relation with
    attribute set [sort] (exponential in arity; sorts here are small). *)
let candidate_keys fds ~sort =
  let all =
    List.filter (fun s -> s <> [] && is_superkey fds ~sort s) (subsets sort)
  in
  let minimal k =
    not
      (List.exists
         (fun k' ->
           List.length k' < List.length k && List.for_all (fun a -> List.mem a k) k')
         all)
  in
  List.filter minimal all |> List.map (List.sort compare) |> List.sort_uniq compare

(** The FDs of [fds] that violate BCNF for a relation with [sort]:
    non-trivial [X -> Y] where [X] is not a superkey. *)
let bcnf_violations fds ~sort =
  List.filter
    (fun (fd : Schema.fd) ->
      List.for_all (fun a -> List.mem a sort) (fd.Schema.fd_lhs @ fd.Schema.fd_rhs)
      && (not (List.for_all (fun a -> List.mem a fd.Schema.fd_lhs) fd.Schema.fd_rhs))
      && not (is_superkey fds ~sort fd.Schema.fd_lhs))
    fds

let in_bcnf fds ~sort = bcnf_violations fds ~sort = []

(** [bcnf_decompose schema rel] proposes a {!Transform.op} decomposing
    [rel] by the classic BCNF algorithm: while some FD [X -> Y]
    violates BCNF, split off [X ∪ Y] and keep [sort − Y]. Returns
    [None] when [rel] is already in BCNF w.r.t. its declared FDs.
    Part names are [rel_1, rel_2, ...]. The resulting join is a chain
    on the successive [X]s, hence acyclic, and Definition 4.1's INDs
    with equality are added by {!Transform.apply_schema}. *)
let bcnf_decompose (schema : Schema.t) rel =
  let sort = Schema.sort schema rel in
  let fds = List.filter (fun (fd : Schema.fd) -> String.equal fd.Schema.fd_rel rel) schema.Schema.fds in
  let parts = ref [] in
  let counter = ref 0 in
  let fresh_name () =
    incr counter;
    Printf.sprintf "%s_%d" rel !counter
  in
  let rec go sort =
    match bcnf_violations fds ~sort with
    | [] -> parts := !parts @ [ (fresh_name (), sort) ]
    | fd :: _ ->
        let x = fd.Schema.fd_lhs in
        (* the split-off fragment: X+ restricted to sort *)
        let xplus = closure fds x in
        let frag =
          List.filter (fun a -> List.mem a xplus) sort
        in
        let frag = if List.length frag = List.length sort then x @ fd.Schema.fd_rhs else frag in
        parts := !parts @ [ (fresh_name (), List.filter (fun a -> List.mem a frag) sort) ];
        let rest =
          List.filter (fun a -> List.mem a x || not (List.mem a frag)) sort
        in
        go rest
  in
  if in_bcnf fds ~sort then None
  else begin
    go sort;
    Some (Transform.Decompose { rel; parts = !parts })
  end

(* column-level equivalence induced by the INDs with equality: two
   (relation, attribute) columns are equivalent when connected by a
   chain of unary equality INDs *)
let column_classes (schema : Schema.t) =
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None -> x
    | Some p ->
        let r = find p in
        Hashtbl.replace parent x r;
        r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter
    (fun (i : Schema.ind) ->
      if i.Schema.equality then
        List.iter2
          (fun a b -> union (i.Schema.sub_rel, a) (i.Schema.sup_rel, b))
          i.Schema.sub_attrs i.Schema.sup_attrs)
    schema.Schema.inds;
  find

(** [compose_advisor schema] proposes compositions a designer might
    apply for usability: for every inclusion class whose members join
    losslessly — every shared attribute of every member pair is
    covered by a (transitively implied) IND with equality, and the
    join is acyclic — compose the members into one relation named
    after the first. This is the Original → 4NF direction of Table 1.
    Members whose extra shared attributes carry no IND (e.g. ta and
    taughtBy sharing both course and term while only the course IND
    holds) are left out: joining them would drop tuples. *)
let compose_advisor (schema : Schema.t) =
  let inc = Inclusion.build ~mode:`Equality_only schema in
  let col_class = column_classes schema in
  let pair_ok r s_ =
    let shared =
      Schema.shared_attrs (Schema.find_relation schema r) (Schema.find_relation schema s_)
    in
    List.for_all (fun a -> col_class (r, a) = col_class (s_, a)) shared
  in
  (* greedily drop members that join unsafely with an earlier member;
     hub relations (most equality INDs) are considered first so that
     e.g. taughtBy survives and the unsafely-joining ta is dropped *)
  let refine cls =
    let degree r = List.length (Schema.equality_inds_of schema r) in
    let cls =
      List.stable_sort (fun a b -> compare (degree b, a) (degree a, b)) cls
    in
    List.fold_left
      (fun acc r -> if List.for_all (fun r' -> pair_ok r' r) acc then acc @ [ r ] else acc)
      [] cls
  in
  List.filter_map
    (fun cls ->
      let cls = refine cls in
      if List.length cls < 2 then None
      else if not (Hypergraph.is_acyclic (List.map (Schema.sort schema) cls)) then None
      else
        (* compose in an order where consecutive parts share attributes *)
        let rec order acc remaining =
          match remaining with
          | [] -> List.rev acc
          | _ -> (
              let joins r =
                match acc with
                | [] -> true
                | _ ->
                    List.exists
                      (fun p ->
                        Schema.shared_attrs
                          (Schema.find_relation schema p)
                          (Schema.find_relation schema r)
                        <> [])
                      acc
              in
              match List.partition joins remaining with
              | next :: rest_joinable, rest ->
                  order (next :: acc) (rest_joinable @ rest)
              | [], _ ->
                  (* a disconnected member cannot be natural-joined:
                     leave it out of the proposal *)
                  List.rev acc)
        in
        let parts = order [] cls in
        if List.length parts < 2 then None
        else Some (Transform.Compose { parts; into = List.hd parts }))
    (Inclusion.classes inc)
