lib/relational/discovery.ml: Fmt Hashtbl Instance List Schema String Tuple Value
