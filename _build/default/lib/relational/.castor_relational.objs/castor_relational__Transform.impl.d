lib/relational/transform.ml: Algebra Fmt Hypergraph Instance List Option Schema String
