lib/relational/tuple.ml: Array Fmt Hashtbl Int Set Value
