lib/relational/schema.ml: Fmt List String
