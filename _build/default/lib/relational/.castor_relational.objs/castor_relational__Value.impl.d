lib/relational/value.ml: Fmt Hashtbl Int Map Set String
