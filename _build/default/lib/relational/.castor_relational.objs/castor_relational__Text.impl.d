lib/relational/text.ml: Fmt Instance Lexer List Schema Value
