lib/relational/normalize.ml: Hashtbl Hypergraph Inclusion List Printf Schema Set String Transform
