lib/relational/algebra.ml: Array Hashtbl Instance List Option Schema String Tuple
