lib/relational/instance.ml: Array Fmt Hashtbl List Option Schema String Tuple Value
