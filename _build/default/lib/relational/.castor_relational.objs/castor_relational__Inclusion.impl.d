lib/relational/inclusion.ml: Hashtbl Hypergraph List Option Schema String
