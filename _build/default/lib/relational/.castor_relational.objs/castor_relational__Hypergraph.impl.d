lib/relational/hypergraph.ml: Hashtbl List Option Set String
