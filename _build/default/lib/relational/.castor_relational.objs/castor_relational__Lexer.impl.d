lib/relational/lexer.ml: Fmt List String
