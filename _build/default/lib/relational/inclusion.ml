(** Inclusion classes (Definition 7.1) and the IND chase metadata used
    by Castor's bottom-clause construction.

    An inclusion class is a maximal set of relation symbols connected
    by INDs with equality over their shared attributes. During
    bottom-clause construction, whenever Castor adds a tuple of a
    relation in a class, it follows every IND of the class to pull in
    the tuples that join with it (Section 7.1). In "general IND" mode
    (Section 7.4) subset INDs are followed too. *)

type link = {
  src : string;  (** relation the chase starts from *)
  dst : string;  (** relation whose matching tuples are fetched *)
  src_attrs : string list;
  dst_attrs : string list;
  equality : bool;
  required : bool;
      (** whether a [src] literal must have a matching [dst] partner in
          a clause: true for INDs with equality (both directions) and
          for the sub ⊆ sup direction of subset INDs; false for the
          sup → sub direction of subset INDs (Section 7.4) *)
}

type t = {
  schema : Schema.t;
  links_by_rel : (string, link list) Hashtbl.t;
  classes : string list list;  (** connected components, each sorted *)
}

(** IND usage policy: [`Equality_only] is Castor's default (bijective
    decomposition / composition); [`Subset_too] is the Section 7.4
    extension used in the Table 12 experiment. *)
type mode = [ `Equality_only | `Subset_too ]

let links_of_ind mode (ind : Schema.ind) =
  let fwd =
    {
      src = ind.sup_rel;
      dst = ind.sub_rel;
      src_attrs = ind.sup_attrs;
      dst_attrs = ind.sub_attrs;
      equality = ind.equality;
      required = ind.equality;
    }
  and bwd =
    {
      src = ind.sub_rel;
      dst = ind.sup_rel;
      src_attrs = ind.sub_attrs;
      dst_attrs = ind.sup_attrs;
      equality = ind.equality;
      required = true;
    }
  in
  match mode, ind.equality with
  | `Equality_only, false -> []
  | `Equality_only, true -> [ fwd; bwd ]
  | `Subset_too, _ ->
      (* A subset IND sub ⊆ sup is chased in both directions: from a
         sup tuple we look for matching sub tuples (there may be none)
         and from a sub tuple the matching sup tuples must exist. *)
      [ fwd; bwd ]

(** [build ?mode schema] precomputes chase links and connected
    components. *)
let build ?(mode : mode = `Equality_only) (schema : Schema.t) =
  let links_by_rel = Hashtbl.create 16 in
  let add (l : link) =
    let cur = Option.value ~default:[] (Hashtbl.find_opt links_by_rel l.src) in
    (* avoid exact duplicates from symmetric IND declarations *)
    if
      not
        (List.exists
           (fun m ->
             String.equal m.dst l.dst && m.src_attrs = l.src_attrs
             && m.dst_attrs = l.dst_attrs)
           cur)
    then Hashtbl.replace links_by_rel l.src (cur @ [ l ])
  in
  List.iter (fun ind -> List.iter add (links_of_ind mode ind)) schema.Schema.inds;
  (* connected components over the link graph *)
  let names = List.map (fun (r : Schema.relation) -> r.Schema.rname) schema.Schema.relations in
  let visited = Hashtbl.create 16 in
  let component seed =
    let acc = ref [] in
    let rec dfs n =
      if not (Hashtbl.mem visited n) then begin
        Hashtbl.replace visited n ();
        acc := n :: !acc;
        List.iter (fun l -> dfs l.dst)
          (Option.value ~default:[] (Hashtbl.find_opt links_by_rel n))
      end
    in
    dfs seed;
    List.sort String.compare !acc
  in
  let classes =
    List.filter_map
      (fun n ->
        if Hashtbl.mem visited n then None
        else
          let c = component n in
          if List.length c > 1 then Some c else None)
      names
  in
  { schema; links_by_rel; classes }

(** [links t rel] returns the chase links starting at [rel]. *)
let links t rel = Option.value ~default:[] (Hashtbl.find_opt t.links_by_rel rel)

(** [class_of t rel] returns the inclusion class containing [rel], or
    [None] when [rel] participates in no IND. *)
let class_of t rel = List.find_opt (fun c -> List.mem rel c) t.classes

let classes t = t.classes

(** [non_cyclic t] checks Proposition 7.4's precondition on every
    class: the sorts of the member relations form an acyclic join, so
    the IND chase needs no global consistency scan. *)
let non_cyclic t =
  List.for_all
    (fun cls -> Hypergraph.is_acyclic (List.map (Schema.sort t.schema) cls))
    t.classes

(** Positions of a link's attributes in its source and destination
    relations, precomputed for the chase. *)
let link_positions t (l : link) =
  let src_rel = Schema.find_relation t.schema l.src in
  let dst_rel = Schema.find_relation t.schema l.dst in
  (Schema.positions src_rel l.src_attrs, Schema.positions dst_rel l.dst_attrs)
