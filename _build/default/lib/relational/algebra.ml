(** Relational algebra over {!Instance}: projection and natural join.

    These are the two operators that define the paper's decomposition
    (projection) and composition (natural join) Horn transformations
    (Section 4). *)

(** [project inst rel attrs] computes [π_attrs(inst.rel)] as a
    duplicate-free tuple list in the order of [attrs]. *)
let project inst rel attrs =
  let r = Schema.find_relation (Instance.schema inst) rel in
  let pos = Schema.positions r attrs in
  let seen = ref Tuple.Set.empty in
  List.rev
    (List.fold_left
       (fun acc tu ->
         let p = Tuple.project pos tu in
         if Tuple.Set.mem p !seen then acc
         else begin
           seen := Tuple.Set.add p !seen;
           p :: acc
         end)
       [] (Instance.tuples inst rel))

(** A named intermediate relation: attribute list plus tuples. Natural
    join is defined over these so multi-way joins can be folded. *)
type table = { tattrs : Schema.attribute list; trows : Tuple.t list }

let table_of_relation inst rel =
  let r = Schema.find_relation (Instance.schema inst) rel in
  { tattrs = r.Schema.attrs; trows = Instance.tuples inst rel }

(** [natural_join a b] joins on all shared attribute names. The result
    keeps [a]'s attributes followed by [b]'s non-shared attributes.
    Raises [Invalid_argument] when the relations share no attribute
    (the paper restricts natural join to avoid Cartesian products). *)
let natural_join a b =
  let shared =
    List.filter
      (fun (x : Schema.attribute) ->
        List.exists (fun (y : Schema.attribute) -> String.equal x.aname y.aname) b.tattrs)
      a.tattrs
  in
  if shared = [] then invalid_arg "natural_join: no shared attributes";
  let pos_in attrs name =
    let rec go i = function
      | [] -> raise Not_found
      | (x : Schema.attribute) :: _ when String.equal x.aname name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 attrs
  in
  let a_pos = List.map (fun (x : Schema.attribute) -> pos_in a.tattrs x.aname) shared in
  let b_pos = List.map (fun (x : Schema.attribute) -> pos_in b.tattrs x.aname) shared in
  let b_extra =
    List.filter
      (fun (x : Schema.attribute) ->
        not (List.exists (fun (y : Schema.attribute) -> String.equal x.aname y.aname) shared))
      b.tattrs
  in
  let b_extra_pos = List.map (fun (x : Schema.attribute) -> pos_in b.tattrs x.aname) b_extra in
  (* hash join keyed on the shared projection of b *)
  let tbl = Hashtbl.create (List.length b.trows) in
  List.iter
    (fun tu ->
      let key = Tuple.project b_pos tu in
      let h = Tuple.hash key in
      let existing = Option.value ~default:[] (Hashtbl.find_opt tbl h) in
      Hashtbl.replace tbl h ((key, tu) :: existing))
    b.trows;
  let rows =
    List.concat_map
      (fun ta ->
        let key = Tuple.project a_pos ta in
        match Hashtbl.find_opt tbl (Tuple.hash key) with
        | None -> []
        | Some candidates ->
            List.filter_map
              (fun (k, tb) ->
                if Tuple.equal k key then
                  Some
                    (Array.append ta
                       (Array.of_list (List.map (fun p -> tb.(p)) b_extra_pos)))
                else None)
              candidates)
      a.trows
  in
  (* dedup *)
  let seen = ref Tuple.Set.empty in
  let rows =
    List.filter
      (fun r ->
        if Tuple.Set.mem r !seen then false
        else begin
          seen := Tuple.Set.add r !seen;
          true
        end)
      rows
  in
  { tattrs = a.tattrs @ b_extra; trows = rows }

(** [natural_join_all tables] folds {!natural_join} left to right. *)
let natural_join_all = function
  | [] -> invalid_arg "natural_join_all: empty"
  | t :: ts -> List.fold_left natural_join t ts

(** [select tbl pred] keeps the rows satisfying [pred]. *)
let select tbl pred = { tbl with trows = List.filter pred tbl.trows }

(** [reorder tbl attrs] permutes the columns of [tbl] to follow
    [attrs] (which must be a permutation of a subset of its columns,
    duplicates removed). *)
let reorder tbl attrs =
  let pos name =
    let rec go i = function
      | [] -> raise Not_found
      | (x : Schema.attribute) :: _ when String.equal x.Schema.aname name -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 tbl.tattrs
  in
  let ps = List.map pos attrs in
  {
    tattrs = List.map (fun p -> List.nth tbl.tattrs p) ps;
    trows = List.map (fun r -> Tuple.project ps r) tbl.trows;
  }
