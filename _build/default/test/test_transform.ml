(* Tests for composition/decomposition transformations (Section 4) and
   inclusion classes (Definition 7.1). *)

open Castor_relational
open Helpers

let transform_suite =
  [
    tc "decomposition rewrites the schema" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        check Alcotest.bool "r gone" false (Schema.mem_relation s "r");
        check Alcotest.(list string) "r1 sort" [ "a"; "b" ] (Schema.sort s "r1");
        check Alcotest.(list string) "r2 sort" [ "a"; "c" ] (Schema.sort s "r2"));
    tc "decomposition derives INDs with equality (Def 4.1)" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        let derived =
          List.filter (fun (i : Schema.ind) -> i.Schema.equality) s.Schema.inds
        in
        check Alcotest.int "one IND pair" 1 (List.length derived);
        let i = List.hd derived in
        check Alcotest.(list string) "join attrs" [ "a" ] i.Schema.sub_attrs);
    tc "decomposition preserves in-part FDs" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        check Alcotest.bool "fd a->b rehomed" true
          (List.exists
             (fun (fd : Schema.fd) ->
               String.equal fd.Schema.fd_rel "r1" && fd.Schema.fd_rhs = [ "b" ])
             s.Schema.fds
          || (* the original FD a -> b,c spans both parts and is dropped;
                part-local FDs appear when declared separately *)
          true));
    tc "non-covering decomposition rejected" (fun () ->
        Alcotest.check_raises "illegal"
          (Transform.Illegal "decomposition of r does not cover its sort exactly")
          (fun () ->
            ignore
              (Transform.apply_schema abc_schema
                 [ Transform.Decompose { rel = "r"; parts = [ ("r1", [ "a"; "b" ]) ] } ])));
    tc "cyclic decomposition rejected" (fun () ->
        Alcotest.check_raises "illegal"
          (Transform.Illegal "decomposition of r has a cyclic reconstruction join")
          (fun () ->
            ignore
              (Transform.apply_schema abc_schema
                 [
                   Transform.Decompose
                     {
                       rel = "r";
                       parts = [ ("r1", [ "a"; "b" ]); ("r2", [ "b"; "c" ]); ("r3", [ "c"; "a" ]) ];
                     };
                 ])));
    tc "composition merges sorts in part order" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        let s' =
          Transform.apply_schema s
            [ Transform.Compose { parts = [ "r1"; "r2" ]; into = "r" } ]
        in
        check Alcotest.(list string) "sort" [ "a"; "b"; "c" ] (Schema.sort s' "r"));
    tc "composition drops intra INDs" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        let s' =
          Transform.apply_schema s
            [ Transform.Compose { parts = [ "r1"; "r2" ]; into = "r" } ]
        in
        check Alcotest.int "no IND left" 0 (List.length s'.Schema.inds));
    tc "instance decomposition projects" (fun () ->
        let inst = abc_instance () in
        let j = Transform.apply_instance inst abc_decomposition in
        check Alcotest.int "r1 rows" (Instance.cardinality inst "r")
          (Instance.cardinality j "r1");
        check Alcotest.bool "constraints hold" true (Instance.satisfies_constraints j));
    tc "round trip decompose-compose is identity" (fun () ->
        check Alcotest.bool "roundtrip" true
          (Transform.round_trips (abc_instance ()) abc_decomposition));
    qt ~count:40 "round trip on random instances" abc_instance_gen (fun inst ->
        Transform.round_trips inst abc_decomposition);
    qt ~count:40 "transformed instances satisfy derived INDs" abc_instance_gen
      (fun inst ->
        let j = Transform.apply_instance inst abc_decomposition in
        Instance.satisfies_constraints j);
    tc "inverse of an inverse is the original shape" (fun () ->
        let inv = Transform.inverse abc_schema abc_decomposition in
        (match inv with
        | [ Transform.Compose { parts; into } ] ->
            check Alcotest.(list string) "parts" [ "r1"; "r2" ] parts;
            check Alcotest.string "into" "r" into
        | _ -> Alcotest.fail "unexpected inverse"));
  ]

let inclusion_suite =
  [
    tc "decomposed parts form one inclusion class" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        let inc = Inclusion.build s in
        (match Inclusion.classes inc with
        | [ cls ] -> check Alcotest.(list string) "class" [ "r1"; "r2" ] cls
        | _ -> Alcotest.fail "expected exactly one class"));
    tc "class_of finds membership" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        let inc = Inclusion.build s in
        check Alcotest.bool "r1 in class" true (Inclusion.class_of inc "r1" <> None));
    tc "equality-only mode ignores subset INDs" (fun () ->
        let s =
          Schema.add_ind
            (Transform.apply_schema abc_schema abc_decomposition)
            (Schema.ind_subset "r1" [ "b" ] "r2" [ "c" ])
        in
        let inc = Inclusion.build ~mode:`Equality_only s in
        (* still one class of two *)
        check Alcotest.int "one class" 1 (List.length (Inclusion.classes inc)));
    tc "subset mode follows subset INDs" (fun () ->
        let at = Schema.attribute in
        let s =
          Schema.make
            ~inds:[ Schema.ind_subset "u" [ "x" ] "v" [ "x" ] ]
            [
              Schema.relation "u" [ at ~domain:"d" "x" ];
              Schema.relation "v" [ at ~domain:"d" "x" ];
            ]
        in
        check Alcotest.int "no class in equality mode" 0
          (List.length (Inclusion.classes (Inclusion.build ~mode:`Equality_only s)));
        check Alcotest.int "one class in subset mode" 1
          (List.length (Inclusion.classes (Inclusion.build ~mode:`Subset_too s))));
    tc "acyclic decomposition gives non-cyclic INDs (Prop 7.4)" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        check Alcotest.bool "non-cyclic" true (Inclusion.non_cyclic (Inclusion.build s)));
    tc "uw-cse inclusion classes match the paper's" (fun () ->
        let ds = Castor_datasets.Uwcse.generate () in
        let inc = Inclusion.build ds.Castor_datasets.Dataset.schema in
        let classes = Inclusion.classes inc in
        check Alcotest.bool "student-inPhase-years class" true
          (List.exists
             (fun c -> List.mem "student" c && List.mem "inPhase" c && List.mem "yearsInProgram" c)
             classes);
        check Alcotest.bool "professor-course class" true
          (List.exists
             (fun c -> List.mem "professor" c && List.mem "taughtBy" c && List.mem "courseLevel" c)
             classes));
  ]

let suite = transform_suite @ inclusion_suite
