(* Tests for the synthetic dataset generators: constraints hold,
   variants are information equivalent, examples are consistent with
   the planted concepts. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Castor_datasets
open Helpers

let datasets =
  [
    ("family", lazy (Family.generate ()));
    ("uwcse", lazy (Uwcse.generate ()));
    ("hiv", lazy (Hiv.generate ()));
    ("imdb", lazy (Imdb.generate ()));
  ]

let per_dataset name (dsl : Dataset.t Lazy.t) =
  [
    tc (name ^ ": base instance satisfies its constraints") (fun () ->
        let ds = Lazy.force dsl in
        check Alcotest.(list string) "no violations" [] (Instance.violations ds.Dataset.instance));
    tc (name ^ ": every variant satisfies its constraints") (fun () ->
        let ds = Lazy.force dsl in
        List.iter
          (fun (vname, _) ->
            let v = Dataset.variant_named ds vname in
            check Alcotest.(list string) (vname ^ " ok") []
              (Instance.violations v.Dataset.vinstance))
          ds.Dataset.variants);
    tc (name ^ ": every variant transformation round-trips") (fun () ->
        let ds = Lazy.force dsl in
        List.iter
          (fun (vname, tr) ->
            check Alcotest.bool (vname ^ " roundtrip") true
              (Transform.round_trips ds.Dataset.instance tr))
          ds.Dataset.variants);
    tc (name ^ ": positive and negative examples are disjoint") (fun () ->
        let ds = Lazy.force dsl in
        let ex = ds.Dataset.examples in
        Array.iter
          (fun p ->
            check Alcotest.bool "not negative" false
              (Array.exists (Atom.equal p) ex.Examples.neg))
          ex.Examples.pos);
    tc (name ^ ": generation is deterministic") (fun () ->
        let ds1 = Lazy.force dsl in
        let regenerate () =
          match name with
          | "family" -> Family.generate ()
          | "uwcse" -> Uwcse.generate ()
          | "hiv" -> Hiv.generate ()
          | _ -> Imdb.generate ()
        in
        let ds2 = regenerate () in
        check Alcotest.bool "same instance" true
          (Instance.equal ds1.Dataset.instance ds2.Dataset.instance);
        check Alcotest.int "same #pos"
          (Array.length ds1.Dataset.examples.Examples.pos)
          (Array.length ds2.Dataset.examples.Examples.pos));
  ]

let golden_suite =
  [
    tc "family golden definition separates the examples" (fun () ->
        let ds = Family.generate () in
        match ds.Dataset.golden with
        | None -> Alcotest.fail "family has a golden definition"
        | Some g ->
            let inst = ds.Dataset.instance in
            Array.iter
              (fun e ->
                check Alcotest.bool "covers positive" true (Eval.definition_covers inst g e))
              ds.Dataset.examples.Examples.pos;
            Array.iter
              (fun e ->
                check Alcotest.bool "rejects negative" false (Eval.definition_covers inst g e))
              ds.Dataset.examples.Examples.neg);
    tc "imdb golden definition separates the examples" (fun () ->
        let ds = Imdb.generate () in
        match ds.Dataset.golden with
        | None -> Alcotest.fail "imdb has a golden definition"
        | Some g ->
            let inst = ds.Dataset.instance in
            Array.iter
              (fun e ->
                check Alcotest.bool "covers positive" true (Eval.definition_covers inst g e))
              ds.Dataset.examples.Examples.pos;
            Array.iter
              (fun e ->
                check Alcotest.bool "rejects negative" false (Eval.definition_covers inst g e))
              ds.Dataset.examples.Examples.neg);
    tc "imdb golden definition maps across every variant" (fun () ->
        let ds = Imdb.generate () in
        match ds.Dataset.golden with
        | None -> Alcotest.fail "golden"
        | Some g ->
            List.iter
              (fun (vname, tr) ->
                let v = Dataset.variant_named ds vname in
                let g' = Rewrite.definition ds.Dataset.schema tr g in
                Array.iter
                  (fun e ->
                    check Alcotest.bool (vname ^ " covers positive") true
                      (Eval.definition_covers v.Dataset.vinstance g' e))
                  ds.Dataset.examples.Examples.pos)
              ds.Dataset.variants);
    tc "uwcse schemas follow Table 1" (fun () ->
        let ds = Uwcse.generate () in
        let v4 = Dataset.variant_named ds "4nf" in
        check Alcotest.(list string) "student sort" [ "stud"; "phase"; "years" ]
          (Schema.sort v4.Dataset.vschema "student");
        check Alcotest.(list string) "professor sort" [ "prof"; "position" ]
          (Schema.sort v4.Dataset.vschema "professor"));
    tc "hiv 4nf-1 composes the bond relations (Table 3)" (fun () ->
        let ds = Hiv.generate () in
        let v = Dataset.variant_named ds "4nf-1" in
        check Alcotest.(list string) "bonds sort" [ "bd"; "atm1"; "atm2"; "t1"; "t2"; "t3" ]
          (Schema.sort v.Dataset.vschema "bonds"));
    tc "hiv 4nf-2 splits the bond endpoints (Table 3)" (fun () ->
        let ds = Hiv.generate () in
        let v = Dataset.variant_named ds "4nf-2" in
        check Alcotest.(list string) "source" [ "bd"; "atm1" ]
          (Schema.sort v.Dataset.vschema "bondSource");
        check Alcotest.(list string) "target" [ "bd"; "atm2" ]
          (Schema.sort v.Dataset.vschema "bondTarget"));
    tc "imdb stanford schema composes the movie star (Table 6)" (fun () ->
        let ds = Imdb.generate () in
        let v = Dataset.variant_named ds "stanford" in
        check Alcotest.(list string) "movie sort" [ "id"; "title"; "year"; "gid"; "did" ]
          (Schema.sort v.Dataset.vschema "movie"));
  ]

let derive_suite =
  [
    tc "derive_value_domains separates categorical from entity domains" (fun () ->
        let ds = Family.generate () in
        let cat, ent = Dataset.derive_value_domains ds.Dataset.instance in
        (* gender has 2 values -> categorical; person has many -> entity *)
        check Alcotest.bool "gender categorical" true (List.mem_assoc "gender" cat);
        check Alcotest.bool "person entity" true (List.mem "person" ent));
    tc "of_instance wraps a raw problem with derived modes" (fun () ->
        let ds = Family.generate () in
        let wrapped =
          Dataset.of_instance ~name:"w" ~target:ds.Dataset.target ds.Dataset.instance
            ds.Dataset.examples
        in
        check Alcotest.bool "has const pool" true (wrapped.Dataset.const_pool <> []);
        check Alcotest.int "one base variant" 1 (List.length wrapped.Dataset.variants));
  ]

let suite =
  List.concat_map (fun (n, d) -> per_dataset n d) datasets
  @ golden_suite @ derive_suite
