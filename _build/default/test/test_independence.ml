(* End-to-end schema independence tests — the paper's headline claims.

   For every dataset, Castor's learned definitions must classify every
   example identically across all (information equivalent) schema
   variants (Lemmas 7.5, 7.7, 7.8 composed); the building blocks are
   also checked individually across schemas. FOIL's schema dependence
   (Theorem 5.1) is pinned as well, as a canary that the experiment
   is actually discriminating. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Castor_datasets
open Castor_eval
open Castor_core
open Helpers

let signatures ds algo =
  List.map
    (fun (vname, _) ->
      let prep = Experiment.prepare ds vname in
      let def = Experiment.train_full prep algo in
      Experiment.signature prep def)
    ds.Dataset.variants

let castor_si name (ds : Dataset.t) =
  tc (name ^ ": Castor output is data-equivalent across all variants") (fun () ->
      match signatures ds (Algos.castor ()) with
      | [] -> Alcotest.fail "no variants"
      | s0 :: rest ->
          List.iteri
            (fun i s ->
              check Alcotest.bool (Printf.sprintf "variant %d equals base" (i + 1)) true
                (s = s0))
            rest)

(* Lemma 7.5 operational check: Castor saturations over I and τ(I)
   carry the same information (transform the canonical instance of the
   saturation and compare ground atom sets). *)
let saturation_equivalence name (ds : Dataset.t) =
  tc (name ^ ": Castor bottom clauses are equivalent across variants (Lemma 7.5)")
    (fun () ->
      let base_prep = Experiment.prepare ds (fst (List.hd ds.Dataset.variants)) in
      let examples = base_prep.Experiment.all_pos.Coverage.examples in
      let n = min 5 (Array.length examples) in
      List.iter
        (fun (vname, tr) ->
          if tr <> [] then begin
            let prep = Experiment.prepare ds vname in
            for i = 0 to n - 1 do
              let sat_base = base_prep.Experiment.all_pos.Coverage.bottoms.(i) in
              let sat_var = prep.Experiment.all_pos.Coverage.bottoms.(i) in
              (* canonical instance of the base saturation, mapped by τ *)
              let canon schema (c : Clause.t) =
                let inst = Instance.create schema in
                List.iter
                  (fun (a : Atom.t) -> Instance.add inst a.Atom.rel (Atom.to_tuple a))
                  c.Clause.body;
                inst
              in
              let mapped =
                Transform.apply_instance (canon ds.Dataset.schema sat_base) tr
              in
              let atoms inst =
                List.concat_map
                  (fun rel ->
                    List.map
                      (fun tu -> Atom.to_string (Atom.of_tuple rel tu))
                      (Instance.tuples inst rel))
                  (Instance.relation_names inst)
                |> List.sort_uniq compare
              in
              let got = atoms (canon prep.Experiment.pvariant.Dataset.vschema sat_var) in
              let want = atoms mapped in
              check Alcotest.(list string)
                (Printf.sprintf "%s example %d" vname i)
                want got
            done
          end)
        ds.Dataset.variants)

let fast_suite =
  let family = Family.generate () in
  [
    castor_si "family" family;
    saturation_equivalence "family" family;
    tc "family: Castor-safe is also schema independent" (fun () ->
        let algo =
          Algos.castor ~params:{ Castor.default_params with safe = true } ()
        in
        match signatures family algo with
        | s0 :: rest -> List.iter (fun s -> check Alcotest.bool "equal" true (s = s0)) rest
        | [] -> Alcotest.fail "no variants");
  ]

let uwcse_suite =
  let uw = Uwcse.generate () in
  [
    castor_si "uwcse" uw;
    saturation_equivalence "uwcse" uw;
    tc "uwcse: FOIL is schema dependent (Thm 5.1 canary)" (fun () ->
        match signatures uw (Algos.foil ()) with
        | s0 :: rest ->
            check Alcotest.bool "some variant differs" true
              (List.exists (fun s -> s <> s0) rest)
        | [] -> Alcotest.fail "no variants");
    tc "uwcse: Castor armg commutes with τ on coverage (Lemma 7.7)" (fun () ->
        let prep_a = Experiment.prepare uw "original" in
        let prep_b = Experiment.prepare uw "4nf" in
        let setup prep =
          let n_pos = Coverage.length prep.Experiment.all_pos in
          let n_neg = Coverage.length prep.Experiment.all_neg in
          let problem =
            Experiment.problem_of_fold prep
              (Array.init n_pos Fun.id, [||])
              (Array.init n_neg Fun.id, [||])
              ~seed:17
          in
          let plan =
            Plan.build (Instance.schema problem.Castor_learners.Problem.instance)
          in
          (problem, plan)
        in
        let pa, plan_a = setup prep_a and pb, plan_b = setup prep_b in
        let bottom problem plan =
          let e = problem.Castor_learners.Problem.pos_cov.Coverage.examples.(0) in
          let params =
            Castor.bottom_params
              ~base:problem.Castor_learners.Problem.bottom_params
              Castor.default_params
          in
          Bottom.bottom_clause
            ~expand:(fun r tu ->
              Plan.expand plan problem.Castor_learners.Problem.instance r tu)
            ~params problem.Castor_learners.Problem.instance e
        in
        let ba = bottom pa plan_a and bb = bottom pb plan_b in
        for i = 1 to 6 do
          let ga =
            Armg.generalize ~repair:(Ind_repair.repair plan_a)
              pa.Castor_learners.Problem.pos_cov ba i
          in
          let gb =
            Armg.generalize ~repair:(Ind_repair.repair plan_b)
              pb.Castor_learners.Problem.pos_cov bb i
          in
          match ga, gb with
          | Some ga, Some gb ->
              let va = Coverage.vector pa.Castor_learners.Problem.pos_cov ga in
              let vb = Coverage.vector pb.Castor_learners.Problem.pos_cov gb in
              check Alcotest.bool (Printf.sprintf "armg(%d) coverage equal" i) true
                (va = vb)
          | None, None -> ()
          | _ -> Alcotest.fail "armg defined on one schema only"
        done);
  ]

let imdb_suite =
  let imdb = Imdb.generate () in
  [
    castor_si "imdb" imdb;
    tc "imdb: Castor finds the exact definition on every variant (Table 11)"
      (fun () ->
        List.iter
          (fun (vname, _) ->
            let prep = Experiment.prepare imdb vname in
            let def = Experiment.train_full prep (Algos.castor ()) in
            let n_pos = Coverage.length prep.Experiment.all_pos in
            let n_neg = Coverage.length prep.Experiment.all_neg in
            let m =
              Experiment.test_metrics prep def
                (Array.init n_pos Fun.id, Array.init n_neg Fun.id)
            in
            check (Alcotest.float 1e-9) (vname ^ " precision") 1. m.Metrics.precision;
            check (Alcotest.float 1e-9) (vname ^ " recall") 1. m.Metrics.recall)
          imdb.Dataset.variants);
  ]

let hiv_suite =
  let hiv = Hiv.generate () in
  [
    castor_si "hiv" hiv;
    tc "hiv: Castor metrics match across schemas while Aleph's vary (Table 9)"
      (fun () ->
        let metrics algo =
          List.map
            (fun (vname, _) ->
              let prep = Experiment.prepare hiv vname in
              let def = Experiment.train_full prep algo in
              let n_pos = Coverage.length prep.Experiment.all_pos in
              let n_neg = Coverage.length prep.Experiment.all_neg in
              Experiment.test_metrics prep def
                (Array.init n_pos Fun.id, Array.init n_neg Fun.id))
            hiv.Dataset.variants
        in
        (match metrics (Algos.castor ()) with
        | m0 :: rest ->
            List.iter
              (fun m ->
                check (Alcotest.float 1e-9) "precision equal" m0.Metrics.precision
                  m.Metrics.precision;
                check (Alcotest.float 1e-9) "recall equal" m0.Metrics.recall
                  m.Metrics.recall)
              rest
        | [] -> Alcotest.fail "no variants"));
  ]

let collaborated_suite =
  let ds = Uwcse.collaborated (Uwcse.generate ()) in
  [
    tc "Example 3.2: the collaborated golden definition separates the examples"
      (fun () ->
        match ds.Dataset.golden with
        | None -> Alcotest.fail "golden"
        | Some g ->
            let inst = ds.Dataset.instance in
            Array.iter
              (fun e ->
                check Alcotest.bool "covers positive" true
                  (Eval.definition_covers inst g e))
              ds.Dataset.examples.Examples.pos;
            Array.iter
              (fun e ->
                check Alcotest.bool "rejects negative" false
                  (Eval.definition_covers inst g e))
              ds.Dataset.examples.Examples.neg);
    tc "Example 3.2: Castor learns collaborated exactly, on every schema"
      (fun () ->
        List.iter
          (fun vname ->
            let prep = Experiment.prepare ds vname in
            let def = Experiment.train_full prep (Algos.castor ()) in
            let n_pos = Coverage.length prep.Experiment.all_pos in
            let n_neg = Coverage.length prep.Experiment.all_neg in
            let m =
              Experiment.test_metrics prep def
                (Array.init n_pos Fun.id, Array.init n_neg Fun.id)
            in
            check (Alcotest.float 1e-9) (vname ^ " precision") 1. m.Metrics.precision;
            check (Alcotest.float 1e-9) (vname ^ " recall") 1. m.Metrics.recall)
          [ "original"; "4nf"; "denorm2" ]);
  ]

let suite =
  fast_suite @ uwcse_suite @ imdb_suite @ hiv_suite @ collaborated_suite
