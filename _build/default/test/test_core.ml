(* Tests for the Castor core: plans (IND chase), IND repair,
   inclusion-instance negative reduction, the full learner. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Castor_learners
open Castor_core
open Helpers

let v s = Term.Var s

let family = Castor_datasets.Family.generate ()

let family_plan = Plan.build family.Castor_datasets.Dataset.schema

let family_problem () =
  let ds = family in
  let inst = ds.Castor_datasets.Dataset.instance in
  Problem.make
    ~expand:(fun r tu -> Plan.expand family_plan inst r tu)
    ~bottom_params:
      {
        Bottom.default_params with
        no_expand_domains = ds.Castor_datasets.Dataset.no_expand_domains;
        const_domains = List.map fst ds.Castor_datasets.Dataset.const_pool;
      }
    ~const_pool:ds.Castor_datasets.Dataset.const_pool inst
    ds.Castor_datasets.Dataset.target ds.Castor_datasets.Dataset.examples

(* ------------------------------- plan ------------------------------- *)

let plan_suite =
  [
    tc "chase pulls equality partners" (fun () ->
        let inst = family.Castor_datasets.Dataset.instance in
        (* gender[p] = ageGroup[p]: from a gender tuple the chase must
           fetch the matching ageGroup tuple *)
        let tu = List.hd (Instance.tuples inst "gender") in
        let got = Plan.expand family_plan inst "gender" tu in
        check Alcotest.bool "ageGroup partner" true
          (List.exists
             (fun (r, t) -> String.equal r "ageGroup" && Value.equal t.(0) tu.(0))
             got));
    tc "chase does not wander the data graph" (fun () ->
        let inst = family.Castor_datasets.Dataset.instance in
        let tu = List.hd (Instance.tuples inst "gender") in
        let got = Plan.expand family_plan inst "gender" tu in
        (* only the one partner relation is reachable in this class *)
        check Alcotest.bool "bounded" true (List.length got <= 2));
    tc "join_limit caps partners per link" (fun () ->
        let ds = Castor_datasets.Imdb.generate () in
        let inst = ds.Castor_datasets.Dataset.instance in
        let plan = Plan.build ~join_limit:2 ds.Castor_datasets.Dataset.schema in
        let d = List.hd (Instance.tuples inst "director") in
        let got = Plan.expand plan inst "director" d in
        let m2d = List.filter (fun (r, _) -> String.equal r "movies2director") got in
        check Alcotest.bool "capped" true (List.length m2d <= 2));
    tc "subset mode chases subset INDs too" (fun () ->
        let inst = family.Castor_datasets.Dataset.instance in
        let plan = Plan.build ~mode:`Subset_too family.Castor_datasets.Dataset.schema in
        (* parent[x] ⊆ gender[p]: chasing a parent tuple reaches gender *)
        let tu = List.hd (Instance.tuples inst "parent") in
        let got = Plan.expand plan inst "parent" tu in
        check Alcotest.bool "gender reached" true
          (List.exists (fun (r, _) -> String.equal r "gender") got));
  ]

(* ---------------------------- IND repair ---------------------------- *)

let repair_suite =
  let uw = Castor_datasets.Uwcse.generate () in
  let plan = Plan.build uw.Castor_datasets.Dataset.schema in
  let lit rel args = Atom.make rel args in
  [
    tc "orphaned class member removed (Example 7.6)" (fun () ->
        (* student(x) without inPhase/yearsInProgram partners violates
           the INDs with equality -> removed *)
        let c =
          Clause.make
            (lit "advisedBy" [ v "x"; v "y" ])
            [ lit "student" [ v "x" ]; lit "publication" [ v "t"; v "x" ] ]
        in
        let r = Ind_repair.repair plan c in
        check Alcotest.bool "student dropped" true
          (not (List.exists (fun (a : Atom.t) -> String.equal a.Atom.rel "student") r.Clause.body));
        check Alcotest.bool "publication kept" true
          (List.exists (fun (a : Atom.t) -> String.equal a.Atom.rel "publication") r.Clause.body));
    tc "complete class instance survives" (fun () ->
        let c =
          Clause.make
            (lit "advisedBy" [ v "x"; v "y" ])
            [
              lit "student" [ v "x" ];
              lit "inPhase" [ v "x"; v "p" ];
              lit "yearsInProgram" [ v "x"; v "n" ];
            ]
        in
        let r = Ind_repair.repair plan c in
        check Alcotest.int "all kept" 3 (Clause.length r));
    tc "mismatched projection does not count as partner" (fun () ->
        let c =
          Clause.make
            (lit "advisedBy" [ v "x"; v "y" ])
            [
              lit "student" [ v "x" ];
              lit "inPhase" [ v "OTHER"; v "p" ];
              lit "yearsInProgram" [ v "x"; v "n" ];
            ]
        in
        let r = Ind_repair.repair plan c in
        (* student(x) lacks an inPhase(x,_) partner -> cascade *)
        check Alcotest.bool "student dropped" true
          (not (List.exists (fun (a : Atom.t) -> String.equal a.Atom.rel "student") r.Clause.body)));
    tc "repair iterates to a fixpoint (cascade)" (fun () ->
        let c =
          Clause.make
            (lit "advisedBy" [ v "x"; v "y" ])
            [
              lit "student" [ v "x" ];
              lit "inPhase" [ v "x"; v "p" ];
              (* yearsInProgram missing entirely *)
            ]
        in
        let r = Ind_repair.repair plan c in
        check Alcotest.int "both dropped" 0 (Clause.length r));
  ]

(* ----------------------- inclusion-class instances ------------------ *)

let reduction_suite =
  let uw = Castor_datasets.Uwcse.generate () in
  let plan = Plan.build uw.Castor_datasets.Dataset.schema in
  let lit rel args = Atom.make rel args in
  [
    tc "instances group class members with matching projections" (fun () ->
        let body =
          [|
            lit "student" [ v "x" ];
            lit "inPhase" [ v "x"; v "p" ];
            lit "yearsInProgram" [ v "x"; v "n" ];
            lit "publication" [ v "t"; v "x" ];
          |]
        in
        let insts = Reduction.instances plan body in
        (* one instance of the student class (3 literals) + singleton
           publication *)
        check Alcotest.int "two instances" 2 (List.length insts);
        check Alcotest.bool "student instance has 3" true
          (List.exists (fun i -> List.length i = 3) insts));
    tc "two students give two instances" (fun () ->
        let body =
          [|
            lit "student" [ v "x" ];
            lit "inPhase" [ v "x"; v "p" ];
            lit "yearsInProgram" [ v "x"; v "n" ];
            lit "student" [ v "y" ];
            lit "inPhase" [ v "y"; v "q" ];
            lit "yearsInProgram" [ v "y"; v "m" ];
          |]
        in
        let insts = Reduction.instances plan body in
        check Alcotest.int "two instances" 2 (List.length insts));
    tc "reduction removes whole instances and preserves negatives" (fun () ->
        let p = family_problem () in
        let bc =
          Bottom.bottom_clause
            ~expand:(fun r tu -> Plan.expand family_plan p.Problem.instance r tu)
            ~params:p.Problem.bottom_params p.Problem.instance
            p.Problem.pos_cov.Coverage.examples.(0)
        in
        match Armg.generalize ~repair:(Ind_repair.repair family_plan) p.Problem.pos_cov bc 1 with
        | None -> Alcotest.fail "armg"
        | Some g ->
            let baseline = Coverage.covered_count p.Problem.neg_cov g in
            let red = Reduction.reduce family_plan p.Problem.neg_cov g in
            check Alcotest.bool "not longer" true (Clause.length red <= Clause.length g);
            check Alcotest.bool "negatives preserved" true
              (Coverage.covered_count p.Problem.neg_cov red <= baseline));
    tc "safe reduction keeps head variables" (fun () ->
        let p = family_problem () in
        let bc =
          Bottom.bottom_clause
            ~expand:(fun r tu -> Plan.expand family_plan p.Problem.instance r tu)
            ~params:p.Problem.bottom_params p.Problem.instance
            p.Problem.pos_cov.Coverage.examples.(0)
        in
        match Armg.generalize ~repair:(Ind_repair.repair family_plan) p.Problem.pos_cov bc 1 with
        | None -> Alcotest.fail "armg"
        | Some g ->
            let red = Reduction.reduce family_plan ~safe:true p.Problem.neg_cov g in
            check Alcotest.bool "safe" true (Clause.is_safe red));
  ]

(* ------------------------------ learner ----------------------------- *)

let castor_suite =
  [
    tc "Castor learns grandparent perfectly" (fun () ->
        let p = family_problem () in
        let def = Castor.learn p in
        check Alcotest.bool "nonempty" true (def.Clause.clauses <> []);
        let cover cov =
          List.fold_left
            (fun acc c ->
              let vec = Coverage.vector cov c in
              Array.mapi (fun i b -> b || acc.(i)) vec)
            (Array.make (Coverage.length cov) false)
            def.Clause.clauses
        in
        check Alcotest.int "all positives" (Coverage.length p.Problem.pos_cov)
          (Coverage.count (cover p.Problem.pos_cov));
        check Alcotest.int "no negatives" 0 (Coverage.count (cover p.Problem.neg_cov)));
    tc "safe mode produces safe definitions" (fun () ->
        let p = family_problem () in
        let def = Castor.learn ~params:{ Castor.default_params with safe = true } p in
        check Alcotest.bool "all safe" true (List.for_all Clause.is_safe def.Clause.clauses));
    tc "plan reuse does not change the output" (fun () ->
        let p1 = family_problem () in
        let d1 = Castor.learn ~params:{ Castor.default_params with reuse_plan = true } p1 in
        let p2 = family_problem () in
        let d2 = Castor.learn ~params:{ Castor.default_params with reuse_plan = false } p2 in
        check Alcotest.bool "same definitions" true (Subsume.definition_equivalent d1 d2));
    tc "parallel coverage does not change the output" (fun () ->
        let p1 = family_problem () in
        let d1 = Castor.learn ~params:{ Castor.default_params with domains = 1 } p1 in
        let p2 = family_problem () in
        let d2 = Castor.learn ~params:{ Castor.default_params with domains = 4 } p2 in
        check Alcotest.bool "same definitions" true (Subsume.definition_equivalent d1 d2));
    tc "minimize_bottom off still learns" (fun () ->
        let p = family_problem () in
        let def =
          Castor.learn ~params:{ Castor.default_params with minimize_bottom = false } p
        in
        check Alcotest.bool "nonempty" true (def.Clause.clauses <> []));
  ]

(* ------------------------- property checks -------------------------- *)

let property_suite =
  let p = family_problem () in
  let bottom i =
    Bottom.bottom_clause
      ~expand:(fun r tu -> Plan.expand family_plan p.Problem.instance r tu)
      ~params:p.Problem.bottom_params p.Problem.instance
      p.Problem.pos_cov.Coverage.examples.(i)
  in
  [
    qt ~count:20 "castor bottom clauses subsume their saturations"
      QCheck2.Gen.(int_bound (Coverage.length p.Problem.pos_cov - 1))
      (fun i -> Subsume.subsumes (bottom i) p.Problem.pos_cov.Coverage.bottoms.(i));
    qt ~count:20 "ind repair only removes literals"
      QCheck2.Gen.(int_bound (Coverage.length p.Problem.pos_cov - 1))
      (fun i ->
        let bc = bottom i in
        let r = Ind_repair.repair family_plan bc in
        List.for_all (fun l -> List.memq l bc.Clause.body) r.Clause.body);
    qt ~count:20 "repair is idempotent"
      QCheck2.Gen.(int_bound (Coverage.length p.Problem.pos_cov - 1))
      (fun i ->
        let r = Ind_repair.repair family_plan (bottom i) in
        Clause.length (Ind_repair.repair family_plan r) = Clause.length r);
    qt ~count:15 "armg + reduction never increase negative coverage"
      QCheck2.Gen.(
        tup2
          (int_bound (Coverage.length p.Problem.pos_cov - 1))
          (int_bound (Coverage.length p.Problem.pos_cov - 1)))
      (fun (s, i) ->
        match
          Armg.generalize ~repair:(Ind_repair.repair family_plan)
            p.Problem.pos_cov (bottom s) i
        with
        | None -> true
        | Some g ->
            let before = Coverage.covered_count p.Problem.neg_cov g in
            let red = Reduction.reduce family_plan p.Problem.neg_cov g in
            Coverage.covered_count p.Problem.neg_cov red <= before);
  ]

let suite =
  plan_suite @ repair_suite @ reduction_suite @ castor_suite @ property_suite
