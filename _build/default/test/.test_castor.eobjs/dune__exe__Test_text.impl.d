test/test_text.ml: Alcotest Array Atom Castor_datasets Castor_logic Castor_relational Clause Helpers Instance Lexer List Parse Schema Sql String Subst Subsume Term Text Value
