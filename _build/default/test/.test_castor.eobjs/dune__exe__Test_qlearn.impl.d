test/test_qlearn.ml: A2 Alcotest Array Atom Bounds Castor_datasets Castor_logic Castor_qlearn Castor_relational Clause Gen Helpers List Oracle Printf Random Rewrite Subsume Term Transform Value
