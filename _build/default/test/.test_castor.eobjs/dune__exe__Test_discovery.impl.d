test/test_discovery.ml: Alcotest Castor_datasets Castor_relational Discovery Helpers Instance List Normalize Printf Schema String Transform Value
