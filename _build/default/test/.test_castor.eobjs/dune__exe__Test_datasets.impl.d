test/test_datasets.ml: Alcotest Array Atom Castor_datasets Castor_ilp Castor_logic Castor_relational Dataset Eval Examples Family Helpers Hiv Imdb Instance Lazy List Rewrite Schema Transform Uwcse
