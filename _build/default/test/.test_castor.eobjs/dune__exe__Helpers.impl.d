test/helpers.ml: Alcotest Atom Castor_logic Castor_relational Clause Instance List Printf QCheck2 QCheck_alcotest Schema Term Transform Value
