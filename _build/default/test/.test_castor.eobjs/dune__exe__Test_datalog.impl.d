test/test_datalog.ml: Alcotest Castor_datasets Castor_logic Castor_relational Datalog Eval Helpers Instance List Parse Printf QCheck2 Schema Tuple Value
