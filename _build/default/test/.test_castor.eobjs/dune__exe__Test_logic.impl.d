test/test_logic.ml: Alcotest Array Atom Castor_logic Castor_relational Clause Eval Helpers Instance Lgg List Minimize Printf QCheck2 Rewrite Subst Subsume Term Transform Tuple Value
