test/test_castor.mli:
