test/test_transform.ml: Alcotest Castor_datasets Castor_relational Helpers Inclusion Instance List Schema String Transform
