test/test_relational.ml: Alcotest Algebra Array Castor_relational Fmt Helpers Hypergraph Instance List QCheck2 Schema Transform Tuple Value
