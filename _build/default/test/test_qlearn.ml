(* Tests for the query-based learning machinery: oracle semantics and
   the A2 learner (Section 8). *)

open Castor_relational
open Castor_logic
open Castor_qlearn
open Helpers

let v s = Term.Var s

let k s = Term.Const (Value.str s)

let co_pub =
  {
    Clause.target = "collab";
    clauses =
      [
        Clause.make
          (Atom.make "collab" [ v "x"; v "y" ])
          [ Atom.make "publication" [ v "p"; v "x" ]; Atom.make "publication" [ v "p"; v "y" ] ];
      ];
  }

let oracle_suite =
  [
    tc "membership accepts entailed ground clauses" (fun () ->
        let o = Oracle.make co_pub in
        let gc =
          Clause.make
            (Atom.make "collab" [ k "a"; k "b" ])
            [
              Atom.make "publication" [ k "t"; k "a" ];
              Atom.make "publication" [ k "t"; k "b" ];
              Atom.make "publication" [ k "u"; k "a" ];
            ]
        in
        check Alcotest.bool "yes" true (Oracle.membership o gc));
    tc "membership rejects non-entailed ground clauses" (fun () ->
        let o = Oracle.make co_pub in
        let gc =
          Clause.make
            (Atom.make "collab" [ k "a"; k "b" ])
            [
              Atom.make "publication" [ k "t"; k "a" ];
              Atom.make "publication" [ k "u"; k "b" ];
            ]
        in
        check Alcotest.bool "no" false (Oracle.membership o gc));
    tc "equivalence accepts the target itself" (fun () ->
        let o = Oracle.make co_pub in
        check Alcotest.bool "correct" true (Oracle.equivalence o co_pub = Oracle.Correct));
    tc "equivalence returns a positive counterexample for empty hypothesis" (fun () ->
        let o = Oracle.make co_pub in
        match Oracle.equivalence o { Clause.target = "collab"; clauses = [] } with
        | Oracle.Positive_counterexample gc ->
            check Alcotest.bool "ground" true (List.for_all Atom.is_ground gc.Clause.body);
            check Alcotest.bool "entailed" true (Oracle.membership o gc)
        | _ -> Alcotest.fail "expected positive counterexample");
    tc "query counters increment" (fun () ->
        let o = Oracle.make co_pub in
        ignore (Oracle.equivalence o co_pub);
        ignore (Oracle.membership o (Oracle.ground o (List.hd co_pub.Clause.clauses)));
        check Alcotest.(pair int int) "counts" (1, 1) (Oracle.counts o));
    tc "ground skolemizes consistently" (fun () ->
        let o = Oracle.make co_pub in
        let gc = Oracle.ground o (List.hd co_pub.Clause.clauses) in
        check Alcotest.bool "ground" true (List.for_all Atom.is_ground gc.Clause.body);
        (* the shared variable p maps to one skolem constant *)
        match gc.Clause.body with
        | [ a1; a2 ] -> check Alcotest.bool "shared skolem" true (Term.equal a1.Atom.args.(0) a2.Atom.args.(0))
        | _ -> Alcotest.fail "two literals");
  ]

let a2_suite =
  [
    tc "A2 recovers the co-publication definition" (fun () ->
        let o = Oracle.make co_pub in
        let r = A2.learn ~target_name:"collab" o in
        check Alcotest.bool "converged" true r.A2.converged;
        check Alcotest.bool "equivalent" true
          (Subsume.definition_equivalent r.A2.hypothesis co_pub));
    tc "A2 recovers a two-clause definition" (fun () ->
        let def =
          {
            Clause.target = "t";
            clauses =
              [
                Clause.make (Atom.make "t" [ v "x" ]) [ Atom.make "s" [ v "x" ] ];
                Clause.make (Atom.make "t" [ v "x" ])
                  [ Atom.make "p" [ v "x"; v "y" ]; Atom.make "q" [ v "y"; v "x" ] ];
              ];
          }
        in
        let o = Oracle.make def in
        let r = A2.learn ~target_name:"t" o in
        check Alcotest.bool "converged" true r.A2.converged;
        check Alcotest.bool "equivalent" true (Subsume.definition_equivalent r.A2.hypothesis def));
    tc "A2 on random UW-CSE targets converges" (fun () ->
        let ds = Castor_datasets.Uwcse.generate () in
        let schema =
          Transform.apply_schema ds.Castor_datasets.Dataset.schema
            Castor_datasets.Uwcse.to_denorm2
        in
        for seed = 1 to 10 do
          let def =
            Gen.random_definition
              ~rng:(Random.State.make [| seed |])
              ~schema ~target_name:"t" ~n_clauses:2 ~n_vars:5 ()
          in
          let o = Oracle.make def in
          let r = A2.learn ~target_name:"t" o in
          check Alcotest.bool (Printf.sprintf "seed %d converged" seed) true r.A2.converged
        done);
    tc "decomposed schema costs more MQs (Fig 3 shape)" (fun () ->
        let ds = Castor_datasets.Uwcse.generate () in
        let base = ds.Castor_datasets.Dataset.schema in
        let denorm2 = Transform.apply_schema base Castor_datasets.Uwcse.to_denorm2 in
        let inv = Transform.inverse base Castor_datasets.Uwcse.to_denorm2 in
        let total ops =
          let t = ref 0 in
          for seed = 1 to 12 do
            let def =
              Gen.random_definition
                ~rng:(Random.State.make [| seed |])
                ~schema:denorm2 ~target_name:"t" ~n_clauses:2 ~n_vars:6 ()
            in
            let def = Rewrite.definition denorm2 ops def in
            let o = Oracle.make def in
            let r = A2.learn ~target_name:"t" o in
            t := !t + r.A2.mqs
          done;
          !t
        in
        let mq_denorm2 = total [] in
        let mq_original = total inv in
        check Alcotest.bool "decomposition raises MQ cost" true (mq_original > mq_denorm2));
  ]

let gen_suite =
  [
    tc "random definitions have covered head variables" (fun () ->
        let ds = Castor_datasets.Uwcse.generate () in
        for seed = 1 to 20 do
          let def =
            Gen.random_definition
              ~rng:(Random.State.make [| seed |])
              ~schema:ds.Castor_datasets.Dataset.schema ~target_name:"t" ~n_clauses:3
              ~n_vars:6 ()
          in
          check Alcotest.int "clauses" 3 (List.length def.Clause.clauses);
          List.iter
            (fun c -> check Alcotest.bool "safe" true (Clause.is_safe c))
            def.Clause.clauses
        done);
    tc "random definitions contain no constants" (fun () ->
        let ds = Castor_datasets.Uwcse.generate () in
        let def =
          Gen.random_definition
            ~rng:(Random.State.make [| 3 |])
            ~schema:ds.Castor_datasets.Dataset.schema ~target_name:"t" ~n_clauses:2
            ~n_vars:5 ()
        in
        check Alcotest.bool "no constants" true
          (List.for_all
             (fun c ->
               List.for_all (fun (a : Atom.t) -> Atom.constants a = []) c.Clause.body)
             def.Clause.clauses));
  ]

let bounds_suite =
  [
    tc "bounds extract schema parameters" (fun () ->
        let ds = Castor_datasets.Uwcse.generate () in
        let sp = Bounds.of_schema ds.Castor_datasets.Dataset.schema in
        check Alcotest.int "p = #relations" 10 sp.Bounds.p;
        check Alcotest.int "a = max arity" 3 sp.Bounds.a);
    tc "upper bound dominates lower bound on one schema" (fun () ->
        let ds = Castor_datasets.Uwcse.generate () in
        let sp = Bounds.of_schema ds.Castor_datasets.Dataset.schema in
        check Alcotest.bool "lower <= upper" true
          (Bounds.log_lower ~m:2 ~k:6 sp <= Bounds.log_upper ~m:2 ~k:6 ~n:10 sp));
    tc "Theorem 8.1 separation on a wide-vs-binary decomposition" (fun () ->
        (* R(A1..A20) vs its decomposition into 19 binary relations:
           with the variable budget k fixed and the arity a > 3k + 2,
           the lower bound over R exceeds the upper bound over the
           decomposition ("sufficiently large k and a" in the proof) *)
        let at = Castor_relational.Schema.attribute in
        let wide =
          Castor_relational.Schema.make
            [
              Castor_relational.Schema.relation "r"
                (List.init 20 (fun i -> at ~domain:"d" (Printf.sprintf "a%d" i)));
            ]
        in
        let narrow =
          Castor_relational.Schema.make
            (List.init 19 (fun i ->
                 Castor_relational.Schema.relation
                   (Printf.sprintf "s%d" i)
                   [ at ~domain:"d" "a0"; at ~domain:"d" (Printf.sprintf "a%d" (i + 1)) ]))
        in
        check Alcotest.bool "crossover" true
          (Bounds.crossover ~m:1 ~k:5 ~n:10 wide narrow);
        (* and no crossover in the other direction *)
        check Alcotest.bool "no reverse crossover" false
          (Bounds.crossover ~m:1 ~k:5 ~n:10 narrow wide));
  ]

let suite = oracle_suite @ a2_suite @ gen_suite @ bounds_suite
