(* Tests for the evaluation harness: metrics, folds, experiment runner,
   report rendering. *)

open Castor_logic
open Castor_datasets
open Castor_eval
open Helpers

let metrics_suite =
  [
    tc "of_counts computes precision and recall" (fun () ->
        let m = Metrics.of_counts ~tp:8 ~fp:2 ~pos_total:16 in
        check (Alcotest.float 1e-9) "precision" 0.8 m.Metrics.precision;
        check (Alcotest.float 1e-9) "recall" 0.5 m.Metrics.recall);
    tc "empty coverage gives zero precision" (fun () ->
        let m = Metrics.of_counts ~tp:0 ~fp:0 ~pos_total:5 in
        check (Alcotest.float 1e-9) "precision" 0. m.Metrics.precision);
    tc "average of metrics" (fun () ->
        let m1 = Metrics.of_counts ~tp:1 ~fp:0 ~pos_total:1 in
        let m2 = Metrics.of_counts ~tp:0 ~fp:1 ~pos_total:1 in
        let a = Metrics.average [ m1; m2 ] in
        check (Alcotest.float 1e-9) "precision" 0.5 a.Metrics.precision);
    tc "f1 harmonic mean" (fun () ->
        let m = { Metrics.precision = 0.5; recall = 1.0 } in
        check (Alcotest.float 1e-6) "f1" (2. /. 3.) (Metrics.f1 m));
  ]

let experiment_suite =
  [
    tc "fold_indices partition and are disjoint" (fun () ->
        let folds = Experiment.fold_indices ~seed:3 5 23 in
        check Alcotest.int "five" 5 (List.length folds);
        List.iter
          (fun (train, test) ->
            check Alcotest.int "partition" 23 (Array.length train + Array.length test);
            Array.iter
              (fun i -> check Alcotest.bool "disjoint" false (Array.mem i train))
              test)
          folds);
    tc "prepare materializes the variant" (fun () ->
        let ds = Family.generate () in
        let prep = Experiment.prepare ds "composed" in
        check Alcotest.string "name" "composed" prep.Experiment.pvariant.Dataset.variant_name;
        check Alcotest.int "saturations for all positives"
          (Array.length ds.Dataset.examples.Castor_ilp.Examples.pos)
          (Castor_ilp.Coverage.length prep.Experiment.all_pos));
    tc "crossval produces sane metrics for Castor on family" (fun () ->
        let ds = Family.generate () in
        let prep = Experiment.prepare ds "base" in
        let row = Experiment.crossval ~folds:3 prep (Algos.castor ()) in
        check Alcotest.bool "precision ≥ 0.9" true
          (row.Experiment.metrics.Metrics.precision >= 0.9);
        check Alcotest.bool "recall ≥ 0.9" true
          (row.Experiment.metrics.Metrics.recall >= 0.9));
    tc "signature length covers all examples" (fun () ->
        let ds = Family.generate () in
        let prep = Experiment.prepare ds "base" in
        let def = Experiment.train_full prep (Algos.castor ()) in
        let s = Experiment.signature prep def in
        check Alcotest.int "length"
          (Array.length ds.Dataset.examples.Castor_ilp.Examples.pos
          + Array.length ds.Dataset.examples.Castor_ilp.Examples.neg)
          (Array.length s));
    tc "train_full returns a definition over the variant's schema" (fun () ->
        let ds = Family.generate () in
        let prep = Experiment.prepare ds "composed" in
        let def = Experiment.train_full prep (Algos.castor ()) in
        let rels =
          List.map
            (fun (r : Castor_relational.Schema.relation) -> r.Castor_relational.Schema.rname)
            prep.Experiment.pvariant.Dataset.vschema.Castor_relational.Schema.relations
        in
        check Alcotest.bool "uses variant relations" true
          (List.for_all
             (fun c ->
               List.for_all
                 (fun (a : Atom.t) -> List.mem a.Atom.rel rels)
                 c.Clause.body)
             def.Clause.clauses));
  ]

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

let report_suite =
  [
    tc "table renders algorithm rows and schema columns" (fun () ->
        let ds = Family.generate () in
        let prep = Experiment.prepare ds "base" in
        let row = Experiment.crossval ~folds:2 prep (Algos.castor ()) in
        let text = Report.table ~title:"T" [ row ] in
        check Alcotest.bool "has algo" true (contains text "Castor");
        check Alcotest.bool "has schema" true (contains text "base");
        check Alcotest.bool "has metric" true (contains text "Precision"));
    tc "series renders x labels and values" (fun () ->
        let text =
          Report.series ~title:"S" ~xlabel:"threads"
            [ ("1", [ ("t", 1.5) ]); ("2", [ ("t", 0.9) ]) ]
        in
        check Alcotest.bool "xlabel" true (contains text "threads");
        check Alcotest.bool "value" true (contains text "1.500"));
  ]

let positive_only_suite =
  [
    tc "positive-only Castor recovers grandparent" (fun () ->
        let ds = Family.generate () in
        let eval_prep = Experiment.prepare ds "base" in
        let po = Experiment.prepare_positive_only ds "base" in
        let def =
          Experiment.train_full po
            (Algos.castor
               ~params:{ Castor_core.Castor.default_params with safe = true }
               ())
        in
        check Alcotest.bool "safe clauses" true
          (List.for_all Clause.is_safe def.Clause.clauses);
        let n_pos = Castor_ilp.Coverage.length eval_prep.Experiment.all_pos in
        let n_neg = Castor_ilp.Coverage.length eval_prep.Experiment.all_neg in
        let m =
          Experiment.test_metrics eval_prep def
            (Array.init n_pos Fun.id, Array.init n_neg Fun.id)
        in
        check Alcotest.bool "precision ≥ 0.9 vs true labels" true
          (m.Metrics.precision >= 0.9);
        check Alcotest.bool "recall ≥ 0.9" true (m.Metrics.recall >= 0.9));
    tc "dataset export/import round trip" (fun () ->
        let ds = Family.generate () in
        let dir = Filename.temp_file "castor" "" in
        Sys.remove dir;
        Dataset.export ds dir;
        let ds' = Dataset.import ~name:"reimported" dir in
        check Alcotest.bool "same instance" true
          (Castor_relational.Instance.equal ds.Dataset.instance ds'.Dataset.instance);
        check Alcotest.int "same #pos"
          (Array.length ds.Dataset.examples.Castor_ilp.Examples.pos)
          (Array.length ds'.Dataset.examples.Castor_ilp.Examples.pos);
        check Alcotest.int "same #neg"
          (Array.length ds.Dataset.examples.Castor_ilp.Examples.neg)
          (Array.length ds'.Dataset.examples.Castor_ilp.Examples.neg);
        (* learning from the reimported dataset still works *)
        let prep = Experiment.prepare ds' "base" in
        let def = Experiment.train_full prep (Algos.castor ()) in
        check Alcotest.bool "learns" true (def.Clause.clauses <> []));
  ]

let suite = metrics_suite @ experiment_suite @ report_suite @ positive_only_suite
