(* Tests for dependency discovery and the normalization advisor. *)

open Castor_relational
open Helpers

let discovery_suite =
  [
    tc "unary INDs discovered on family (parent ⊆ gender)" (fun () ->
        let ds = Castor_datasets.Family.generate () in
        let found = Discovery.unary_inds ds.Castor_datasets.Dataset.instance in
        check Alcotest.bool "parent[x] ⊆ gender[p] (some direction)" true
          (List.exists
             (fun (i : Schema.ind) ->
               String.equal i.Schema.sub_rel "parent"
               && String.equal i.Schema.sup_rel "gender")
             found));
    tc "IND with equality discovered between gender and ageGroup" (fun () ->
        let ds = Castor_datasets.Family.generate () in
        let found = Discovery.unary_inds ds.Castor_datasets.Dataset.instance in
        check Alcotest.bool "equality found" true
          (List.exists
             (fun (i : Schema.ind) ->
               i.Schema.equality
               && ((String.equal i.Schema.sub_rel "gender" && String.equal i.Schema.sup_rel "ageGroup")
                  || (String.equal i.Schema.sub_rel "ageGroup" && String.equal i.Schema.sup_rel "gender")))
             found));
    tc "discovered INDs hold in the instance" (fun () ->
        let ds = Castor_datasets.Uwcse.generate () in
        let inst = ds.Castor_datasets.Dataset.instance in
        let found = Discovery.unary_inds inst in
        List.iter
          (fun ind -> check Alcotest.bool "holds" true (Instance.satisfies_ind inst ind))
          found);
    tc "hiv bond-type INDs with equality rediscovered (Table 4)" (fun () ->
        let ds = Castor_datasets.Hiv.generate () in
        let found = Discovery.unary_inds ds.Castor_datasets.Dataset.instance in
        check Alcotest.bool "bonds[bd] = bType1[bd]" true
          (List.exists
             (fun (i : Schema.ind) ->
               i.Schema.equality
               && ((String.equal i.Schema.sub_rel "bonds" && String.equal i.Schema.sup_rel "bType1")
                  || (String.equal i.Schema.sub_rel "bType1" && String.equal i.Schema.sup_rel "bonds")))
             found));
    tc "fd discovery finds declared dependencies" (fun () ->
        let inst = abc_instance () in
        let fds = Discovery.fds inst "r" in
        (* a -> b and a -> c hold by construction *)
        check Alcotest.bool "a -> b" true
          (List.exists
             (fun (fd : Schema.fd) -> fd.Schema.fd_lhs = [ "a" ] && fd.Schema.fd_rhs = [ "b" ])
             fds);
        check Alcotest.bool "a -> c" true
          (List.exists
             (fun (fd : Schema.fd) -> fd.Schema.fd_lhs = [ "a" ] && fd.Schema.fd_rhs = [ "c" ])
             fds));
    tc "fd discovery reports only minimal LHSs" (fun () ->
        let inst = abc_instance () in
        let fds = Discovery.fds ~max_lhs:2 inst "r" in
        check Alcotest.bool "no {a,b} -> c when a -> c holds" true
          (not
             (List.exists
                (fun (fd : Schema.fd) ->
                  List.length fd.Schema.fd_lhs = 2 && List.mem "a" fd.Schema.fd_lhs)
                fds)));
    qt ~count:25 "discovered FDs hold on random instances" abc_instance_gen
      (fun inst ->
        List.for_all (Instance.satisfies_fd inst) (Discovery.fds inst "r"));
    tc "annotate enriches the schema" (fun () ->
        let inst = abc_instance () in
        let s = Discovery.annotate inst in
        check Alcotest.bool "has fds" true (List.length s.Schema.fds >= 2));
  ]

let normalize_suite =
  [
    tc "closure computes X+" (fun () ->
        let fds =
          [
            { Schema.fd_rel = "r"; fd_lhs = [ "a" ]; fd_rhs = [ "b" ] };
            { Schema.fd_rel = "r"; fd_lhs = [ "b" ]; fd_rhs = [ "c" ] };
          ]
        in
        check Alcotest.(list string) "a+ = abc" [ "a"; "b"; "c" ]
          (List.sort compare (Normalize.closure fds [ "a" ])));
    tc "implies uses the closure" (fun () ->
        let fds =
          [
            { Schema.fd_rel = "r"; fd_lhs = [ "a" ]; fd_rhs = [ "b" ] };
            { Schema.fd_rel = "r"; fd_lhs = [ "b" ]; fd_rhs = [ "c" ] };
          ]
        in
        check Alcotest.bool "a -> c implied" true
          (Normalize.implies fds { Schema.fd_rel = "r"; fd_lhs = [ "a" ]; fd_rhs = [ "c" ] });
        check Alcotest.bool "c -> a not implied" false
          (Normalize.implies fds { Schema.fd_rel = "r"; fd_lhs = [ "c" ]; fd_rhs = [ "a" ] }));
    tc "candidate keys of abc relation" (fun () ->
        check Alcotest.(list (list string)) "a is the key" [ [ "a" ] ]
          (Normalize.candidate_keys abc_schema.Schema.fds ~sort:[ "a"; "b"; "c" ]));
    tc "bcnf detection" (fun () ->
        check Alcotest.bool "abc in bcnf" true
          (Normalize.in_bcnf abc_schema.Schema.fds ~sort:[ "a"; "b"; "c" ]));
    tc "bcnf_decompose splits a violating relation" (fun () ->
        (* r(a,b,c) with FD b -> c only: b is not a key -> violation *)
        let at = Schema.attribute in
        let s =
          Schema.make
            ~fds:[ { Schema.fd_rel = "r"; fd_lhs = [ "b" ]; fd_rhs = [ "c" ] } ]
            [
              Schema.relation "r"
                [ at ~domain:"da" "a"; at ~domain:"db" "b"; at ~domain:"dc" "c" ];
            ]
        in
        match Normalize.bcnf_decompose s "r" with
        | None -> Alcotest.fail "expected a decomposition"
        | Some op ->
            (* the decomposition must be applicable and invertible *)
            let s' = Transform.apply_schema s [ op ] in
            check Alcotest.bool "two parts" true (List.length s'.Schema.relations = 2);
            (* instances transform losslessly *)
            let inst = Instance.create s in
            List.iter
              (fun (a, b) ->
                Instance.add_list inst "r"
                  [
                    Value.str (Printf.sprintf "a%d" a);
                    Value.str (Printf.sprintf "b%d" b);
                    Value.str (Printf.sprintf "c%d" (b mod 2));
                  ])
              [ (1, 1); (2, 1); (3, 2); (4, 3) ];
            check Alcotest.bool "roundtrip" true (Transform.round_trips inst [ op ]));
    tc "bcnf_decompose returns None on BCNF relations" (fun () ->
        check Alcotest.bool "none" true (Normalize.bcnf_decompose abc_schema "r" = None));
    tc "compose_advisor proposes the UW-CSE compositions" (fun () ->
        let ds = Castor_datasets.Uwcse.generate () in
        let props = Normalize.compose_advisor ds.Castor_datasets.Dataset.schema in
        (* the student class composes student/inPhase/yearsInProgram *)
        check Alcotest.bool "student composition proposed" true
          (List.exists
             (function
               | Transform.Compose { parts; _ } ->
                   List.mem "student" parts && List.mem "inPhase" parts
                   && List.mem "yearsInProgram" parts
               | Transform.Decompose _ -> false)
             props);
        (* each proposal is actually applicable to the instance *)
        List.iter
          (fun op ->
            check Alcotest.bool "applies and round-trips" true
              (Transform.round_trips ds.Castor_datasets.Dataset.instance [ op ]))
          props);
  ]

let suite = discovery_suite @ normalize_suite
