(* Tests pinning the paper's formal claims, beyond the end-to-end
   schema-independence checks:

   - Example 6.2 / Lemma 6.3: depth-bounded bottom-clause construction
     is schema dependent — no depth value gives equivalent clauses
     across a composition.
   - Theorem 6.4: the rlgg operator is schema independent (on
     corresponding saturations it produces clauses with identical
     coverage).
   - Example 6.5 / Theorem 6.6: plain ARMG is schema dependent, while
     Castor's IND-aware ARMG commutes with the transformation.
   - Proposition 3.7: Horn transformations are definition bijective
     (see also Test_logic's δτ tests). *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Castor_datasets
open Castor_eval
open Castor_core
open Helpers

(* ---- fixtures: family dataset base vs composed variant ---------- *)

let family = Family.generate ()

let setup vname =
  let prep = Experiment.prepare family vname in
  let n_pos = Coverage.length prep.Experiment.all_pos in
  let n_neg = Coverage.length prep.Experiment.all_neg in
  let problem =
    Experiment.problem_of_fold prep
      (Array.init n_pos Fun.id, [||])
      (Array.init n_neg Fun.id, [||])
      ~seed:17
  in
  let plan = Plan.build (Instance.schema problem.Castor_learners.Problem.instance) in
  (prep, problem, plan)

let depth_dependence_suite =
  [
    tc "Lemma 6.3: depth-1 bottom clauses are not equivalent across composition"
      (fun () ->
        (* Example 6.2's shape: composing courseLevel and taughtBy
           brings the course level within depth 1 of the professor,
           while the decomposed schema needs the course id first — so
           equal depths carry different information *)
        let uw = Uwcse.generate () in
        let base = uw.Dataset.instance in
        let composed = Transform.apply_instance base Uwcse.to_denorm1 in
        let e = uw.Dataset.examples.Examples.pos.(0) in
        let params d =
          {
            Bottom.default_params with
            depth = d;
            no_expand_domains = uw.Dataset.no_expand_domains;
          }
        in
        let sat_base = Bottom.saturation ~params:(params 1) base e in
        let sat_comp = Bottom.saturation ~params:(params 1) composed e in
        (* the composed saturation mentions course levels (inside
           courseTaught literals); the decomposed one cannot reach
           courseLevel at depth 1 *)
        let mentions_level (c : Clause.t) rel =
          List.exists (fun (a : Atom.t) -> String.equal a.Atom.rel rel) c.Clause.body
        in
        check Alcotest.bool "composed sees levels at depth 1" true
          (mentions_level sat_comp "courseTaught");
        check Alcotest.bool "decomposed does not" false
          (mentions_level sat_base "courseLevel"));
    tc "the IND chase restores saturation equivalence at equal depth" (fun () ->
        let base = family.Dataset.instance in
        let composed = Transform.apply_instance base Family.to_composed in
        let e = family.Dataset.examples.Examples.pos.(0) in
        let chase inst = Castor.expand_hook inst in
        let params = { Bottom.default_params with depth = 1 } in
        let sat_base = Bottom.saturation ~expand:(chase base) ~params base e in
        let sat_comp =
          Bottom.saturation ~expand:(chase composed) ~params composed e
        in
        let canon schema (c : Clause.t) =
          let inst = Instance.create schema in
          List.iter
            (fun (a : Atom.t) -> Instance.add inst a.Atom.rel (Atom.to_tuple a))
            c.Clause.body;
          inst
        in
        let atoms inst =
          List.concat_map
            (fun rel ->
              List.map
                (fun tu -> Atom.to_string (Atom.of_tuple rel tu))
                (Instance.tuples inst rel))
            (Instance.relation_names inst)
          |> List.sort_uniq compare
        in
        let mapped =
          Transform.apply_instance
            (canon family.Dataset.schema sat_base)
            Family.to_composed
        in
        check Alcotest.(list string) "same information" (atoms mapped)
          (atoms (canon (Instance.schema composed) sat_comp)));
  ]

(* ---- Theorem 6.4: rlgg is schema independent --------------------- *)

let rlgg_suite =
  [
    tc "Thm 6.4: rlggs of corresponding saturations have equal coverage"
      (fun () ->
        let _, pa, _ = setup "base" in
        let _, pb, _ = setup "composed" in
        let module P = Castor_learners.Problem in
        for i = 0 to 4 do
          for j = i + 1 to 5 do
            let ga =
              Lgg.rlgg pa.P.pos_cov.Coverage.bottoms.(i)
                pa.P.pos_cov.Coverage.bottoms.(j)
            in
            let gb =
              Lgg.rlgg pb.P.pos_cov.Coverage.bottoms.(i)
                pb.P.pos_cov.Coverage.bottoms.(j)
            in
            match ga, gb with
            | Some ga, Some gb ->
                let va = Coverage.vector pa.P.pos_cov ga in
                let vb = Coverage.vector pb.P.pos_cov gb in
                check Alcotest.bool
                  (Printf.sprintf "rlgg(%d,%d) coverage equal" i j)
                  true (va = vb)
            | None, None -> ()
            | _ -> Alcotest.fail "rlgg defined under one schema only"
          done
        done);
  ]

(* ---- Example 6.5 / Theorem 6.6: plain ARMG is schema dependent,
        Castor's is not ------------------------------------------------ *)

let armg_suite =
  [
    tc "Example 6.5: plain ARMG generalizes non-equivalently" (fun () ->
        (* the example's exact scenario: the clause
             hardWorking(x) <- student(x), inPhase(x,prelim), years(x,3)
           vs its composed form student(x,prelim,3). Removing the
           blocking attribute literal keeps student(x) under the
           decomposed schema but drops everything under the composed
           one — without the IND repair the generalizations differ. *)
        let uw = Uwcse.generate () in
        let prep_a = Experiment.prepare uw "original" in
        let prep_b = Experiment.prepare uw "4nf" in
        let module P = Castor_learners.Problem in
        let problem prep =
          Experiment.problem_of_fold prep
            (Array.init (Coverage.length prep.Experiment.all_pos) Fun.id, [||])
            (Array.init (Coverage.length prep.Experiment.all_neg) Fun.id, [||])
            ~seed:17
        in
        let pa = problem prep_a and pb = problem prep_b in
        let diverged = ref false in
        for seed = 0 to 2 do
          let ba, _ = Clause.variabilize pa.P.pos_cov.Coverage.bottoms.(seed) in
          let bb, _ = Clause.variabilize pb.P.pos_cov.Coverage.bottoms.(seed) in
          for i = 0 to 8 do
            match
              (Armg.generalize pa.P.pos_cov ba i, Armg.generalize pb.P.pos_cov bb i)
            with
            | Some ga, Some gb ->
                if
                  Coverage.vector pa.P.pos_cov ga
                  <> Coverage.vector pb.P.pos_cov gb
                then diverged := true
            | _ -> ()
          done
        done;
        check Alcotest.bool "plain armg diverges somewhere" true !diverged);
    tc "Thm 6.6 counterpart: Castor's ARMG keeps coverage equal" (fun () ->
        let _, pa, plan_a = setup "base" in
        let _, pb, plan_b = setup "composed" in
        let module P = Castor_learners.Problem in
        for seed = 0 to 3 do
          let bottom problem plan =
            let e = problem.P.pos_cov.Coverage.examples.(seed) in
            Bottom.bottom_clause
              ~expand:(fun r tu -> Plan.expand plan problem.P.instance r tu)
              ~params:
                (Castor.bottom_params ~base:problem.P.bottom_params
                   Castor.default_params)
              problem.P.instance e
          in
          let ba = bottom pa plan_a and bb = bottom pb plan_b in
          for i = 0 to 6 do
            match
              ( Armg.generalize ~repair:(Ind_repair.repair plan_a) pa.P.pos_cov ba i,
                Armg.generalize ~repair:(Ind_repair.repair plan_b) pb.P.pos_cov bb i )
            with
            | Some ga, Some gb ->
                check Alcotest.bool
                  (Printf.sprintf "seed %d, e%d" seed i)
                  true
                  (Coverage.vector pa.P.pos_cov ga
                  = Coverage.vector pb.P.pos_cov gb)
            | None, None -> ()
            | _ -> Alcotest.fail "castor armg defined under one schema only"
          done
        done);
  ]

let suite = depth_dependence_suite @ rlgg_suite @ armg_suite
