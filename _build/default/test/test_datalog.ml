(* Tests for the semi-naive Datalog engine. *)

open Castor_relational
open Castor_logic
open Helpers

(* a small edge relation for reachability programs *)
let edge_schema =
  let at = Schema.attribute in
  Schema.make
    [ Schema.relation "edge" [ at ~domain:"node" "x"; at ~domain:"node" "y" ] ]

let edges l =
  let inst = Instance.create edge_schema in
  List.iter
    (fun (a, b) -> Instance.add_list inst "edge" [ Value.str a; Value.str b ])
    l;
  inst

let tuple2 a b = Tuple.of_list [ Value.str a; Value.str b ]

let suite =
  [
    tc "non-recursive program agrees with Eval" (fun () ->
        let inst = edges [ ("a", "b"); ("b", "c"); ("c", "d") ] in
        let def =
          Parse.definition "hop2(X, Z) :- edge(X, Y), edge(Y, Z)."
        in
        let via_eval = Eval.definition_answers inst def in
        let via_datalog = Datalog.definition_answers inst def in
        check Alcotest.bool "equal" true (Tuple.Set.equal via_eval via_datalog));
    tc "transitive closure reaches everything" (fun () ->
        let inst = edges [ ("a", "b"); ("b", "c"); ("c", "d") ] in
        let program =
          [
            Parse.clause "path(X, Y) :- edge(X, Y).";
            Parse.clause "path(X, Z) :- path(X, Y), edge(Y, Z).";
          ]
        in
        let ans = Datalog.query inst program "path" in
        check Alcotest.int "6 paths" 6 (Tuple.Set.cardinal ans);
        check Alcotest.bool "a->d" true (Tuple.Set.mem (tuple2 "a" "d") ans));
    tc "cyclic graphs terminate" (fun () ->
        let inst = edges [ ("a", "b"); ("b", "c"); ("c", "a") ] in
        let program =
          [
            Parse.clause "path(X, Y) :- edge(X, Y).";
            Parse.clause "path(X, Z) :- path(X, Y), edge(Y, Z).";
          ]
        in
        let ans = Datalog.query inst program "path" in
        (* complete digraph on 3 nodes *)
        check Alcotest.int "9 paths" 9 (Tuple.Set.cardinal ans));
    tc "mutual recursion across derived relations" (fun () ->
        let inst = edges [ ("a", "b"); ("b", "c"); ("c", "d"); ("d", "e") ] in
        let program =
          [
            Parse.clause "even(X, X) :- edge(X, Y).";
            Parse.clause "even(X, Z) :- odd(X, Y), edge(Y, Z).";
            Parse.clause "odd(X, Y) :- even(X, X2), edge(X2, Y).";
          ]
        in
        let even = Datalog.query inst program "even" in
        (* a reaches c and e in an even number of steps *)
        check Alcotest.bool "a->c even" true (Tuple.Set.mem (tuple2 "a" "c") even);
        check Alcotest.bool "a->e even" true (Tuple.Set.mem (tuple2 "a" "e") even);
        check Alcotest.bool "a->b not even" false (Tuple.Set.mem (tuple2 "a" "b") even));
    tc "unsafe clauses are rejected" (fun () ->
        let inst = edges [ ("a", "b") ] in
        let cl = Parse.clause "t(X, W) :- edge(X, Y)." in
        check Alcotest.bool "raises" true
          (try
             ignore (Datalog.run inst [ cl ]);
             false
           with Datalog.Unsafe_clause _ -> true));
    tc "learned definitions evaluate identically under Datalog" (fun () ->
        let ds = Castor_datasets.Family.generate () in
        match ds.Castor_datasets.Dataset.golden with
        | None -> Alcotest.fail "golden"
        | Some g ->
            let inst = ds.Castor_datasets.Dataset.instance in
            check Alcotest.bool "same answers" true
              (Tuple.Set.equal
                 (Eval.definition_answers inst g)
                 (Datalog.definition_answers inst g)));
    qt ~count:25 "datalog and eval agree on random edge programs"
      QCheck2.Gen.(list_size (int_range 0 15) (tup2 (int_bound 6) (int_bound 6)))
      (fun pairs ->
        let inst =
          edges (List.map (fun (a, b) -> (Printf.sprintf "n%d" a, Printf.sprintf "n%d" b)) pairs)
        in
        let def = Parse.definition "t(X, Z) :- edge(X, Y), edge(Y, Z)." in
        Tuple.Set.equal
          (Eval.definition_answers inst def)
          (Datalog.definition_answers inst def));
  ]
