(* Tests for the relational substrate: values, tuples, schemas,
   instances, algebra, hypergraph acyclicity. *)

open Castor_relational
open Helpers

(* ------------------------------ Value ------------------------------ *)

let value_suite =
  [
    tc "compare orders ints before strings" (fun () ->
        check Alcotest.bool "int < str" true (Value.compare (Value.int 5) (Value.str "a") < 0));
    tc "equal on same string" (fun () ->
        check Alcotest.bool "eq" true (Value.equal (Value.str "x") (Value.str "x")));
    tc "to_string" (fun () ->
        check Alcotest.string "int" "42" (Value.to_string (Value.int 42));
        check Alcotest.string "str" "abc" (Value.to_string (Value.str "abc")));
    qt "compare antisymmetric"
      QCheck2.Gen.(tup2 (int_bound 20) (int_bound 20))
      (fun (a, b) ->
        let va = Value.int a and vb = Value.int b in
        Value.compare va vb = -Value.compare vb va);
    qt "hash respects equality" QCheck2.Gen.(int_bound 50) (fun i ->
        Value.hash (Value.int i) = Value.hash (Value.int i));
  ]

(* ------------------------------ Tuple ------------------------------ *)

let tuple_suite =
  [
    tc "project keeps order" (fun () ->
        let t = Tuple.of_list [ Value.int 1; Value.int 2; Value.int 3 ] in
        let p = Tuple.project [ 2; 0 ] t in
        check Alcotest.string "projected" "(3, 1)" (Fmt.str "%a" Tuple.pp p));
    tc "mem finds constants" (fun () ->
        let t = Tuple.of_list [ Value.str "x"; Value.str "y" ] in
        check Alcotest.bool "x in" true (Tuple.mem (Value.str "x") t);
        check Alcotest.bool "z out" false (Tuple.mem (Value.str "z") t));
    qt "equal iff compare = 0"
      QCheck2.Gen.(tup2 (list_size (int_bound 4) (int_bound 5)) (list_size (int_bound 4) (int_bound 5)))
      (fun (a, b) ->
        let ta = Tuple.of_list (List.map Value.int a) in
        let tb = Tuple.of_list (List.map Value.int b) in
        Tuple.equal ta tb = (Tuple.compare ta tb = 0));
  ]

(* ------------------------------ Schema ----------------------------- *)

let schema_suite =
  [
    tc "sort and arity" (fun () ->
        check Alcotest.(list string) "sort r" [ "a"; "b"; "c" ] (Schema.sort abc_schema "r");
        check Alcotest.int "arity" 3 (Schema.arity abc_schema "r"));
    tc "positions" (fun () ->
        let r = Schema.find_relation abc_schema "r" in
        check Alcotest.(list int) "pos" [ 2; 0 ] (Schema.positions r [ "c"; "a" ]));
    tc "unknown relation raises" (fun () ->
        Alcotest.check_raises "raises" (Schema.Unknown_relation "nope") (fun () ->
            ignore (Schema.find_relation abc_schema "nope")));
    tc "shared_attrs of decomposed parts" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        let r1 = Schema.find_relation s "r1" and r2 = Schema.find_relation s "r2" in
        check Alcotest.(list string) "shared" [ "a" ] (Schema.shared_attrs r1 r2));
    tc "weaken_inds drops equality" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        let w = Schema.weaken_inds s in
        check Alcotest.bool "no equality left" true
          (List.for_all (fun (i : Schema.ind) -> not i.Schema.equality) w.Schema.inds));
    tc "equality_inds_of finds both directions" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        check Alcotest.bool "r1 has one" true (Schema.equality_inds_of s "r1" <> []);
        check Alcotest.bool "r2 has one" true (Schema.equality_inds_of s "r2" <> []));
  ]

(* ----------------------------- Instance ---------------------------- *)

let instance_suite =
  [
    tc "add dedups tuples" (fun () ->
        let inst = Instance.create abc_schema in
        Instance.add_list inst "r" [ Value.str "a"; Value.str "b"; Value.str "c" ];
        Instance.add_list inst "r" [ Value.str "a"; Value.str "b"; Value.str "c" ];
        check Alcotest.int "one tuple" 1 (Instance.cardinality inst "r"));
    tc "arity mismatch raises" (fun () ->
        let inst = Instance.create abc_schema in
        Alcotest.check_raises "raises" (Instance.Arity_mismatch "r") (fun () ->
            Instance.add_list inst "r" [ Value.str "a" ]));
    tc "find uses the index" (fun () ->
        let inst = abc_instance () in
        let hits = Instance.find inst "r" 1 (Value.str "b1") in
        check Alcotest.bool "nonempty" true (hits <> []);
        check Alcotest.bool "all match" true
          (List.for_all (fun tu -> Value.equal tu.(1) (Value.str "b1")) hits));
    tc "find_matching conjunction" (fun () ->
        let inst = abc_instance () in
        let hits = Instance.find_matching inst "r" [ (1, Value.str "b1"); (2, Value.str "c1") ] in
        check Alcotest.bool "all match both" true
          (List.for_all
             (fun tu ->
               Value.equal tu.(1) (Value.str "b1") && Value.equal tu.(2) (Value.str "c1"))
             hits));
    tc "tuples_containing searches all columns" (fun () ->
        let inst = abc_instance () in
        check Alcotest.int "a3 appears once" 1
          (List.length (Instance.tuples_containing inst "r" (Value.str "a3")));
        check Alcotest.bool "b1 appears in several" true
          (List.length (Instance.tuples_containing inst "r" (Value.str "b1")) > 1));
    tc "column_values distinct" (fun () ->
        let inst = abc_instance () in
        check Alcotest.int "4 b-values" 4 (List.length (Instance.column_values inst "r" "b")));
    tc "fd satisfied on fixture" (fun () ->
        let inst = abc_instance () in
        check Alcotest.(list string) "no violations" [] (Instance.violations inst));
    tc "fd violation detected" (fun () ->
        let inst = Instance.create abc_schema in
        Instance.add_list inst "r" [ Value.str "a"; Value.str "b1"; Value.str "c" ];
        Instance.add_list inst "r" [ Value.str "a"; Value.str "b2"; Value.str "c" ];
        check Alcotest.bool "violated" false (Instance.satisfies_constraints inst));
    tc "ind violation detected" (fun () ->
        let s = Transform.apply_schema abc_schema abc_decomposition in
        let inst = Instance.create s in
        Instance.add_list inst "r1" [ Value.str "a"; Value.str "b" ];
        (* r2 misses the matching a -> IND with equality broken *)
        check Alcotest.bool "violated" false (Instance.satisfies_constraints inst));
    tc "instance equality is content-based" (fun () ->
        let i1 = abc_instance () and i2 = abc_instance () in
        check Alcotest.bool "equal" true (Instance.equal i1 i2));
  ]

(* ----------------------------- Algebra ----------------------------- *)

let algebra_suite =
  [
    tc "project is duplicate-free" (fun () ->
        let inst = abc_instance () in
        let p = Algebra.project inst "r" [ "b" ] in
        check Alcotest.int "4 distinct" 4 (List.length p));
    tc "natural join recomposes a decomposition" (fun () ->
        let inst = abc_instance () in
        let j = Transform.apply_instance inst abc_decomposition in
        let t =
          Algebra.natural_join
            (Algebra.table_of_relation j "r1")
            (Algebra.table_of_relation j "r2")
        in
        check Alcotest.int "same cardinality" (Instance.cardinality inst "r")
          (List.length t.Algebra.trows));
    tc "join without shared attributes is rejected" (fun () ->
        let at = Schema.attribute in
        let s =
          Schema.make
            [
              Schema.relation "u" [ at ~domain:"d" "x" ];
              Schema.relation "v" [ at ~domain:"d" "y" ];
            ]
        in
        let inst = Instance.create s in
        Alcotest.check_raises "invalid" (Invalid_argument "natural_join: no shared attributes")
          (fun () ->
            ignore
              (Algebra.natural_join
                 (Algebra.table_of_relation inst "u")
                 (Algebra.table_of_relation inst "v"))));
    tc "reorder permutes columns" (fun () ->
        let inst = abc_instance ~n:1 () in
        let t = Algebra.table_of_relation inst "r" in
        let t' = Algebra.reorder t [ "c"; "a" ] in
        check Alcotest.int "two columns" 2 (List.length t'.Algebra.tattrs);
        check Alcotest.string "row" "(c0, a0)"
          (Fmt.str "%a" Castor_relational.Tuple.pp (List.hd t'.Algebra.trows)));
  ]

(* ---------------------------- Hypergraph --------------------------- *)

let hypergraph_suite =
  [
    tc "chain is acyclic" (fun () ->
        check Alcotest.bool "acyclic" true
          (Hypergraph.is_acyclic [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "d" ] ]));
    tc "triangle is cyclic" (fun () ->
        check Alcotest.bool "cyclic" false
          (Hypergraph.is_acyclic [ [ "a"; "b" ]; [ "b"; "c" ]; [ "c"; "a" ] ]));
    tc "star is acyclic" (fun () ->
        check Alcotest.bool "acyclic" true
          (Hypergraph.is_acyclic [ [ "k"; "x" ]; [ "k"; "y" ]; [ "k"; "z" ] ]));
    tc "paper's cyclic example (S3,S4,S5)" (fun () ->
        (* S3(A,B), S4(B,C), S5(B,A): cyclic per Section 4? the sorts
           share B pairwise and A twice -> edge contained: S5 ⊆ S3∪..;
           GYO reduces {a,b},{b,c},{b,a}: duplicates drop, then chain *)
        check Alcotest.bool "reduces" true
          (Hypergraph.is_acyclic [ [ "a"; "b" ]; [ "b"; "c" ]; [ "b"; "a" ] ]));
    tc "single relation is acyclic" (fun () ->
        check Alcotest.bool "acyclic" true (Hypergraph.is_acyclic [ [ "a"; "b"; "c" ] ]));
  ]

let suite =
  value_suite @ tuple_suite @ schema_suite @ instance_suite @ algebra_suite
  @ hypergraph_suite
