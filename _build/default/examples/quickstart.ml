(* Quickstart: build a small relational database with the public API,
   declare its constraints, learn a Datalog definition with Castor,
   and watch the definition survive a schema transformation.

     dune exec examples/quickstart.exe *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Castor_learners
open Castor_core

let () =
  (* 1. a schema: people with a parent relation, plus two per-person
     attribute relations linked by INDs with equality *)
  let a = Schema.attribute in
  let schema =
    Schema.make
      ~inds:
        [
          Schema.ind_with_equality "gender" [ "p" ] "ageGroup" [ "p" ];
          Schema.ind_subset "parent" [ "x" ] "gender" [ "p" ];
        ]
      [
        Schema.relation "parent" [ a ~domain:"person" "x"; a ~domain:"person" "y" ];
        Schema.relation "gender" [ a ~domain:"person" "p"; a ~domain:"g" "g" ];
        Schema.relation "ageGroup" [ a ~domain:"person" "p"; a ~domain:"age" "age" ];
      ]
  in
  (* 2. an instance: three generations *)
  let inst = Instance.create schema in
  let people =
    [
      ("ann", "female", "senior"); ("bob", "male", "senior");
      ("carol", "female", "adult"); ("dave", "male", "adult");
      ("eve", "female", "young"); ("frank", "male", "young");
      ("gina", "female", "young");
    ]
  in
  List.iter
    (fun (p, g, ag) ->
      Instance.add_list inst "gender" [ Value.str p; Value.str g ];
      Instance.add_list inst "ageGroup" [ Value.str p; Value.str ag ])
    people;
  List.iter
    (fun (x, y) -> Instance.add_list inst "parent" [ Value.str x; Value.str y ])
    [
      ("ann", "carol"); ("bob", "carol"); ("ann", "dave");
      ("carol", "eve"); ("carol", "frank"); ("dave", "gina");
    ];
  assert (Instance.satisfies_constraints inst);
  (* 3. training examples for a new target relation *)
  let gp = [ ("ann", "eve"); ("ann", "frank"); ("ann", "gina"); ("bob", "eve"); ("bob", "frank") ] in
  let atom (x, y) = Atom.make "grandparent" [ Term.Const (Value.str x); Term.Const (Value.str y) ] in
  let pos = List.map atom gp in
  let neg = List.map atom [ ("carol", "gina"); ("dave", "eve"); ("eve", "ann"); ("frank", "bob"); ("gina", "carol"); ("bob", "dave"); ("ann", "bob"); ("carol", "dave"); ("dave", "frank"); ("eve", "gina") ] in
  let target =
    Schema.relation "grandparent"
      [ Schema.attribute ~domain:"person" "a"; Schema.attribute ~domain:"person" "b" ]
  in
  (* 4. learn with Castor *)
  let expand = Castor.expand_hook inst in
  let problem =
    Problem.make ~expand
      ~bottom_params:{ Bottom.default_params with no_expand_domains = [ "g"; "age" ] }
      inst target (Examples.make ~pos ~neg)
  in
  let def = Castor.learn problem in
  Fmt.pr "Learned over the base schema:@.%a@.@." Clause.pp_definition def;
  (* 5. transform the schema (compose gender + ageGroup into person)
     and learn again: the output is equivalent *)
  let tr = [ Transform.Compose { parts = [ "gender"; "ageGroup" ]; into = "person" } ] in
  let inst' = Transform.apply_instance inst tr in
  Fmt.pr "Composed schema:@.%a@.@." Schema.pp (Instance.schema inst');
  let expand' = Castor.expand_hook inst' in
  let problem' =
    Problem.make ~expand:expand'
      ~bottom_params:{ Bottom.default_params with no_expand_domains = [ "g"; "age" ] }
      inst' target (Examples.make ~pos ~neg)
  in
  let def' = Castor.learn problem' in
  Fmt.pr "Learned over the composed schema:@.%a@.@." Clause.pp_definition def';
  (* 6. check the two definitions classify every example identically *)
  let covers inst def e = Eval.definition_covers inst def e in
  let agree =
    List.for_all
      (fun e -> covers inst def e = covers inst' def' e)
      (pos @ neg)
  in
  Fmt.pr "Definitions agree on all labeled examples: %b@." agree
