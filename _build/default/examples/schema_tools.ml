(* Schema tooling around the learner: discover dependencies in a raw
   instance, let the normalization advisor propose (de)compositions,
   evaluate a learned definition with the Datalog engine, and deploy
   it as a SQL view.

     dune exec examples/schema_tools.exe *)

open Castor_relational
open Castor_logic
open Castor_datasets
open Castor_eval

let () =
  let ds = Uwcse.generate () in
  let inst = ds.Dataset.instance in

  (* 1. dependency discovery on the raw data (the paper did this for
     the HIV flat files, Section 9.1.1) *)
  Fmt.pr "== discovered unary INDs (a sample) ==@.";
  let inds = Discovery.unary_inds inst in
  List.iteri (fun i ind -> if i < 8 then Fmt.pr "  %a@." Schema.pp_ind ind) inds;
  Fmt.pr "  ... %d in total@.@." (List.length inds);

  (* 2. the composition advisor recovers the paper's 4NF design from
     the Original schema's INDs with equality *)
  Fmt.pr "== composition proposals ==@.";
  let proposals = Normalize.compose_advisor ds.Dataset.schema in
  List.iter (fun op -> Fmt.pr "  %a@." Transform.pp_op op) proposals;

  (* 3. apply them and verify information equivalence *)
  let composed = Transform.apply_instance inst proposals in
  Fmt.pr "@.composed schema has %d relations (from %d); lossless: %b@.@."
    (List.length (Instance.schema composed).Schema.relations)
    (List.length ds.Dataset.schema.Schema.relations)
    (Transform.round_trips inst proposals);

  (* 4. learn over the composed instance, then evaluate the definition
     with the Datalog engine and render it as SQL *)
  let prep = Experiment.prepare ds "4nf" in
  (* safe mode: by default relational learners — Castor included — may
     emit unsafe Datalog (Section 7.3); evaluation and SQL need safe
     clauses *)
  let def =
    Experiment.train_full prep
      (Algos.castor ~params:{ Castor_core.Castor.default_params with safe = true } ())
  in
  Fmt.pr "== learned definition (4NF schema) ==@.%a@.@." Clause.pp_definition def;
  let answers =
    Datalog.definition_answers prep.Experiment.pvariant.Dataset.vinstance def
  in
  Fmt.pr "the definition derives %d advisedBy facts over the database@.@."
    (Tuple.Set.cardinal answers);
  Fmt.pr "== as a SQL view ==@.%s@."
    (Sql.create_view prep.Experiment.pvariant.Dataset.vschema
       { def with Clause.clauses = [ List.hd def.Clause.clauses ] })
