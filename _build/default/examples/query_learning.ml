(* Query-based learning (Section 8 / Figure 3): the A2 algorithm
   learns exact Horn definitions by asking equivalence and membership
   queries from an oracle. Its query complexity depends on the schema:
   the same target takes more membership queries over a decomposed
   schema, because counterexample minimization is linear in the number
   of body literals.

     dune exec examples/query_learning.exe *)

open Castor_relational
open Castor_logic
open Castor_datasets
open Castor_qlearn

let () =
  let ds = Uwcse.generate () in
  let base = ds.Dataset.schema in
  let denorm2 = Transform.apply_schema base Uwcse.to_denorm2 in
  let inv = Transform.inverse base Uwcse.to_denorm2 in
  (* one concrete target over the most composed schema *)
  let def =
    Gen.random_definition
      ~rng:(Random.State.make [| 7 |])
      ~schema:denorm2 ~target_name:"t" ~n_clauses:2 ~n_vars:6 ()
  in
  Fmt.pr "target over Denormalized-2:@.%a@.@." Clause.pp_definition def;
  List.iter
    (fun (name, ops) ->
      let mapped = Rewrite.definition denorm2 ops def in
      let oracle = Oracle.make mapped in
      let r = A2.learn ~target_name:"t" oracle in
      Fmt.pr "%-10s: EQs=%2d MQs=%3d converged=%b@." name r.A2.eqs r.A2.mqs
        r.A2.converged)
    [
      ("denorm2", []);
      ("denorm1", inv @ Uwcse.to_denorm1);
      ("4nf", inv @ Uwcse.to_4nf);
      ("original", inv);
    ];
  Fmt.pr
    "@.The more decomposed the schema, the more membership queries the@.same information costs (Theorem 8.1 / Figure 3).@."
