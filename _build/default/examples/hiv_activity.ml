(* HIV scenario (Table 9): learning anti-HIV activity of chemical
   compounds from their atom/bond structure. The activity motif spans
   the bond relation and its type relations, which the Initial schema
   splits across four relations, 4NF-1 composes into one, and 4NF-2
   splits even further (bondSource/bondTarget) — the decomposition
   that defeats the top-down baselines in the paper.

     dune exec examples/hiv_activity.exe *)

open Castor_logic
open Castor_datasets
open Castor_eval

let () =
  let ds = Hiv.generate () in
  Fmt.pr "HIV: %d active / %d inactive compounds, %d tuples@.@."
    (Array.length ds.Dataset.examples.Castor_ilp.Examples.pos)
    (Array.length ds.Dataset.examples.Castor_ilp.Examples.neg)
    (Castor_relational.Instance.size ds.Dataset.instance);
  List.iter
    (fun algo ->
      Fmt.pr "==================== %s ====================@." algo.Experiment.algo_name;
      List.iter
        (fun (vname, _) ->
          let prep = Experiment.prepare ds vname in
          let def = Experiment.train_full prep algo in
          let n_pos = Castor_ilp.Coverage.length prep.Experiment.all_pos in
          let n_neg = Castor_ilp.Coverage.length prep.Experiment.all_neg in
          let m =
            Experiment.test_metrics prep def
              (Array.init n_pos Fun.id, Array.init n_neg Fun.id)
          in
          Fmt.pr "[%-7s] %d clauses  precision %.2f  recall %.2f@." vname
            (List.length def.Clause.clauses) m.Metrics.precision m.Metrics.recall;
          (* print the first clause of each definition *)
          (match def.Clause.clauses with
          | c :: _ -> Fmt.pr "  first clause: %a@." Clause.pp c
          | [] -> ()))
        ds.Dataset.variants;
      Fmt.pr "@.")
    [ Algos.aleph_foil ~clauselength:10 (); Algos.castor () ]
