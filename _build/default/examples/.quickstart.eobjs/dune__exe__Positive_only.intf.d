examples/positive_only.mli:
