examples/positive_only.ml: Algos Array Castor_core Castor_datasets Castor_eval Castor_ilp Castor_logic Clause Experiment Family Fmt Fun Metrics
