examples/hiv_activity.ml: Algos Array Castor_datasets Castor_eval Castor_ilp Castor_logic Castor_relational Clause Dataset Experiment Fmt Fun Hiv List Metrics
