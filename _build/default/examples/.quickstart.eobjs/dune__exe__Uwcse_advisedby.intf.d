examples/uwcse_advisedby.mli:
