examples/imdb_drama.mli:
