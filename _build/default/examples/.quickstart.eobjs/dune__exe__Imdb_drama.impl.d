examples/imdb_drama.ml: Algos Array Castor_datasets Castor_eval Castor_ilp Castor_logic Clause Dataset Experiment Fmt Fun Imdb List Metrics Minimize Rewrite Unix
