examples/hiv_activity.mli:
