examples/quickstart.ml: Atom Bottom Castor Castor_core Castor_ilp Castor_learners Castor_logic Castor_relational Clause Eval Examples Fmt Instance List Problem Schema Term Transform Value
