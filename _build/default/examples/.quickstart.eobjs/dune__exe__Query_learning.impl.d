examples/query_learning.ml: A2 Castor_datasets Castor_logic Castor_qlearn Castor_relational Clause Dataset Fmt Gen List Oracle Random Rewrite Transform Uwcse
