examples/schema_tools.mli:
