examples/quickstart.mli:
