examples/query_learning.mli:
