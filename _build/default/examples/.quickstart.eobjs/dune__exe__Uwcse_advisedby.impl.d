examples/uwcse_advisedby.ml: Algos Array Castor_datasets Castor_eval Castor_ilp Castor_logic Clause Dataset Experiment Fmt Fun List Metrics Uwcse
