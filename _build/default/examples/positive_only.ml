(* Learning from positive examples only (Section 7.3): with safe-clause
   mode and closed-world pseudo-negatives, Castor learns grandparent
   without ever seeing a labeled negative.

     dune exec examples/positive_only.exe *)

open Castor_logic
open Castor_datasets
open Castor_eval

let () =
  let ds = Family.generate () in
  (* the true negatives are used only for evaluation *)
  let eval_prep = Experiment.prepare ds "base" in
  let po_prep = Experiment.prepare_positive_only ds "base" in
  Fmt.pr "training on %d positives and %d closed-world pseudo-negatives@.@."
    (Castor_ilp.Coverage.length po_prep.Experiment.all_pos)
    (Castor_ilp.Coverage.length po_prep.Experiment.all_neg);
  let algo =
    Algos.castor ~params:{ Castor_core.Castor.default_params with safe = true } ()
  in
  let def = Experiment.train_full po_prep algo in
  Fmt.pr "learned (safe clauses only):@.%a@.@." Clause.pp_definition def;
  let n_pos = Castor_ilp.Coverage.length eval_prep.Experiment.all_pos in
  let n_neg = Castor_ilp.Coverage.length eval_prep.Experiment.all_neg in
  let m =
    Experiment.test_metrics eval_prep def
      (Array.init n_pos Fun.id, Array.init n_neg Fun.id)
  in
  Fmt.pr "evaluated against the true labels: precision %.2f recall %.2f@."
    m.Metrics.precision m.Metrics.recall
