(* The paper's running example (Example 1.1): learning
   advisedBy(stud, prof) over the UW-CSE database under its Original
   and 4NF schemas.

   FOIL greedily picks over-specific first literals (phase / years
   constants) and ends up with different definitions on each schema;
   Castor's IND-aware bottom-up search returns definitions that are
   each other's image under the definition mapping δτ.

     dune exec examples/uwcse_advisedby.exe *)

open Castor_logic
open Castor_datasets
open Castor_eval

let () =
  let ds = Uwcse.generate () in
  Fmt.pr "UW-CSE: %d positive / %d negative examples of advisedBy@.@."
    (Array.length ds.Dataset.examples.Castor_ilp.Examples.pos)
    (Array.length ds.Dataset.examples.Castor_ilp.Examples.neg);
  List.iter
    (fun algo ->
      Fmt.pr "==================== %s ====================@." algo.Experiment.algo_name;
      let sigs =
        List.map
          (fun vname ->
            let prep = Experiment.prepare ds vname in
            let def = Experiment.train_full prep algo in
            let n_pos = Castor_ilp.Coverage.length prep.Experiment.all_pos in
            let n_neg = Castor_ilp.Coverage.length prep.Experiment.all_neg in
            let m =
              Experiment.test_metrics prep def
                (Array.init n_pos Fun.id, Array.init n_neg Fun.id)
            in
            Fmt.pr "@.[%s]  precision %.2f  recall %.2f@.%a@." vname
              m.Metrics.precision m.Metrics.recall Clause.pp_definition def;
            Experiment.signature prep def)
          [ "original"; "4nf" ]
      in
      (match sigs with
      | [ a; b ] ->
          Fmt.pr "@.=> output equivalent on the data across Original/4NF: %b@.@."
            (a = b)
      | _ -> ()))
    [ Algos.foil (); Algos.castor () ]
