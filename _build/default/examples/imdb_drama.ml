(* IMDb scenario (Table 11): dramaDirector has an exact Datalog
   definition over every schema variant; Castor recovers it — with
   precision and recall 1 — under JMDB, Stanford and Denormalized
   alike, and the three learned clauses are each other's δτ images.

     dune exec examples/imdb_drama.exe *)

open Castor_logic
open Castor_datasets
open Castor_eval

let () =
  let ds = Imdb.generate () in
  (match ds.Dataset.golden with
  | Some g -> Fmt.pr "ground-truth definition (JMDB schema):@.%a@.@." Clause.pp_definition g
  | None -> ());
  let algo = Algos.castor () in
  List.iter
    (fun (vname, _) ->
      let prep = Experiment.prepare ds vname in
      let t0 = Unix.gettimeofday () in
      let def = Experiment.train_full prep algo in
      let dt = Unix.gettimeofday () -. t0 in
      let n_pos = Castor_ilp.Coverage.length prep.Experiment.all_pos in
      let n_neg = Castor_ilp.Coverage.length prep.Experiment.all_neg in
      let m =
        Experiment.test_metrics prep def
          (Array.init n_pos Fun.id, Array.init n_neg Fun.id)
      in
      Fmt.pr "[%s] (%.2fs)  precision %.2f  recall %.2f@.%a@.@." vname dt
        m.Metrics.precision m.Metrics.recall Clause.pp_definition def)
    ds.Dataset.variants;
  (* show the definition mapping at work: rewrite the golden JMDB
     definition into the Stanford schema *)
  match ds.Dataset.golden with
  | Some g ->
      let mapped = Rewrite.definition ds.Dataset.schema Imdb.to_stanford g in
      Fmt.pr "golden definition rewritten to the Stanford schema via δτ:@.%a@."
        Clause.pp_definition
        { mapped with Clause.clauses = List.map Minimize.reduce mapped.Clause.clauses }
  | None -> ()
