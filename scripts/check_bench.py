#!/usr/bin/env python3
"""Flag counter/latency regressions in a bench metrics dump.

The bench harness (bench/main.ml) ends every experiment by writing
BENCH_<id>.json with the Obs registry contents:

    {"experiment": "<id>", "metrics": {"counters": {...}, "spans": [...]}}

This script compares such a dump against the checked-in baseline
(BENCH_baseline.json by default) and exits nonzero when:

  - a counter that was nonzero in the baseline dropped to zero
    (instrumentation or a whole code path silently lost);
  - a work counter (search steps, subsumption calls, saturations, ...)
    grew beyond the tolerance — the learner is doing materially more
    work for the same seeded experiment;
  - a span's total time grew beyond the (deliberately generous)
    latency tolerance — absolute times vary across machines, so only
    large multiples are flagged.

Counters the experiment is expected to keep nonzero (e.g. the
analysis pruner's analysis.pruned_literals) can be asserted with
--require-nonzero.

Only the Python standard library is used.
"""

import argparse
import json
import sys

# Seeded experiments are deterministic, so counters only move when the
# code changes; the slack absorbs intentional small drifts without
# letting a blow-up through.
COUNTER_GROWTH = 0.15  # +15 %
COUNTER_SLACK = 16  # absolute wiggle for tiny counters
LATENCY_GROWTH = 2.0  # spans may take up to 3x the baseline total
LATENCY_SLACK_S = 0.5


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    metrics = doc.get("metrics", doc)
    counters = metrics.get("counters", {})
    spans = {s["name"]: s for s in metrics.get("spans", [])}
    return doc.get("experiment", "?"), counters, spans


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="BENCH_<id>.json produced by this run")
    ap.add_argument(
        "--baseline", default="BENCH_baseline.json", help="checked-in reference dump"
    )
    ap.add_argument(
        "--require-nonzero",
        action="append",
        default=[],
        metavar="COUNTER",
        help="fail unless COUNTER is present and nonzero in the current run",
    )
    args = ap.parse_args()

    _, base_counters, base_spans = load(args.baseline)
    exp, cur_counters, cur_spans = load(args.current)

    problems = []

    for name in args.require_nonzero:
        if cur_counters.get(name, 0) <= 0:
            problems.append(f"required counter {name} is zero or missing")

    for name, base in sorted(base_counters.items()):
        cur = cur_counters.get(name)
        if cur is None:
            problems.append(f"counter {name} disappeared (baseline {base})")
            continue
        if base > 0 and cur == 0:
            problems.append(f"counter {name} dropped to zero (baseline {base})")
        limit = base * (1 + COUNTER_GROWTH) + COUNTER_SLACK
        if cur > limit:
            problems.append(
                f"counter {name} regressed: {base} -> {cur} "
                f"(limit {limit:.0f}, +{COUNTER_GROWTH:.0%} + {COUNTER_SLACK})"
            )

    for name, base in sorted(base_spans.items()):
        cur = cur_spans.get(name)
        if cur is None:
            problems.append(f"span {name} disappeared")
            continue
        base_t, cur_t = base.get("total_s") or 0.0, cur.get("total_s") or 0.0
        limit = base_t * (1 + LATENCY_GROWTH) + LATENCY_SLACK_S
        if cur_t > limit:
            problems.append(
                f"span {name} latency regressed: {base_t:.3f}s -> {cur_t:.3f}s "
                f"(limit {limit:.3f}s)"
            )

    print(f"check_bench: experiment {exp}: ", end="")
    if problems:
        print(f"{len(problems)} problem(s)")
        for p in problems:
            print(f"  REGRESSION: {p}")
        return 1
    print(
        f"ok ({len(base_counters)} counters, {len(base_spans)} spans "
        "within tolerance)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
