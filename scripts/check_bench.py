#!/usr/bin/env python3
"""Flag counter/latency regressions in a bench metrics dump.

The bench harness (bench/main.ml) ends every experiment by writing
BENCH_<id>.json with the Obs registry contents:

    {"experiment": "<id>", "metrics": {"counters": {...}, "spans": [...]}}

This script compares such a dump against the checked-in baseline
(BENCH_baseline.json by default) and exits nonzero when:

  - a counter that was nonzero in the baseline dropped to zero
    (instrumentation or a whole code path silently lost);
  - a work counter (search steps, subsumption calls, saturations, ...)
    grew beyond the tolerance — the learner is doing materially more
    work for the same seeded experiment;
  - a span's total time grew beyond the (deliberately generous)
    latency tolerance — absolute times vary across machines, so only
    large multiples are flagged.

Counters the experiment is expected to keep nonzero (e.g. the
analysis pruner's analysis.pruned_literals) can be asserted with
--require-nonzero; counters that must merely be recorded — e.g. the
subsumption engine's logic.subsume.restarts, legitimately zero when no
test exhausts its budget — with --require-present; counters that must
stay at exactly zero — e.g. ilp.coverage.full_refreshes on the
incremental experiment's non-target tuple stream — with --require-zero.

When both dumps carry the coverage-cache counters (ilp.cache_hits and
ilp.coverage.cache_misses), the cache hit rate is also compared: a
drop of more than HIT_RATE_DROP percentage points against the baseline
fails, so a cache-key change that silently stops matching α-equivalent
clauses is caught even while the raw counters stay within tolerance.

The baseline is either a single-experiment dump (the historical
format) or a multi-experiment file

    {"experiments": {"<id>": {"counters": {...}, "spans": [...]}, ...}}

in which case the entry matching the current dump's experiment id is
used. Regenerate the multi-experiment baseline from fresh dumps with

    python3 scripts/check_bench.py --merge-into BENCH_baseline.json \
        BENCH_ablation.json BENCH_coverage_batch.json

Only the Python standard library is used.
"""

import argparse
import json
import sys

# Seeded experiments are deterministic, so counters only move when the
# code changes; the slack absorbs intentional small drifts without
# letting a blow-up through.
COUNTER_GROWTH = 0.15  # +15 %
COUNTER_SLACK = 16  # absolute wiggle for tiny counters
LATENCY_GROWTH = 2.0  # spans may take up to 3x the baseline total
LATENCY_SLACK_S = 0.5
HIT_RATE_DROP = 5.0  # cache hit rate may drop at most 5 percentage points

HITS = "ilp.cache_hits"
MISSES = "ilp.coverage.cache_misses"


def hit_rate(counters):
    """Cache hit rate in percent, or None when the dump predates the
    hit/miss counters or the cache saw no lookups."""
    if HITS not in counters or MISSES not in counters:
        return None
    lookups = counters[HITS] + counters[MISSES]
    if lookups <= 0:
        return None
    return 100.0 * counters[HITS] / lookups


def unpack(metrics):
    counters = metrics.get("counters", {})
    spans = {s["name"]: s for s in metrics.get("spans", [])}
    return counters, spans


def load(path):
    with open(path) as fh:
        doc = json.load(fh)
    counters, spans = unpack(doc.get("metrics", doc))
    return doc.get("experiment", "?"), counters, spans


def load_baseline(path, experiment):
    """Baseline metrics for `experiment`: a multi-experiment file keyed
    by id, or the historical single-experiment dump applied as-is."""
    with open(path) as fh:
        doc = json.load(fh)
    if "experiments" in doc:
        entry = doc["experiments"].get(experiment)
        if entry is None:
            sys.exit(
                f"check_bench: baseline {path} has no entry for "
                f"experiment {experiment!r} "
                f"(has: {', '.join(sorted(doc['experiments']))})"
            )
        return unpack(entry)
    return unpack(doc.get("metrics", doc))


def merge_into(out_path, dump_paths):
    """Rebuild the multi-experiment baseline from fresh dumps, keeping
    any existing entries the dumps do not replace."""
    experiments = {}
    try:
        with open(out_path) as fh:
            doc = json.load(fh)
        if "experiments" in doc:
            experiments = doc["experiments"]
    except (FileNotFoundError, json.JSONDecodeError):
        pass
    for path in dump_paths:
        exp, counters, spans = load(path)
        experiments[exp] = {
            "counters": counters,
            "spans": sorted(spans.values(), key=lambda s: s["name"]),
        }
    with open(out_path, "w") as fh:
        json.dump({"experiments": experiments}, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(
        f"check_bench: wrote {out_path} "
        f"({len(experiments)} experiment(s): {', '.join(sorted(experiments))})"
    )
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "current", nargs="+", help="BENCH_<id>.json produced by this run"
    )
    ap.add_argument(
        "--baseline", default="BENCH_baseline.json", help="checked-in reference dump"
    )
    ap.add_argument(
        "--merge-into",
        metavar="BASELINE",
        help="instead of checking, merge the given dumps into BASELINE "
        "as a multi-experiment baseline",
    )
    ap.add_argument(
        "--require-nonzero",
        action="append",
        default=[],
        metavar="COUNTER",
        help="fail unless COUNTER is present and nonzero in the current run",
    )
    ap.add_argument(
        "--require-present",
        action="append",
        default=[],
        metavar="COUNTER",
        help="fail unless COUNTER is recorded in the current run (zero is fine)",
    )
    ap.add_argument(
        "--require-zero",
        action="append",
        default=[],
        metavar="COUNTER",
        help="fail unless COUNTER is recorded in the current run with value "
        "exactly zero — e.g. the incremental workload's promise that "
        "ilp.coverage.full_refreshes never fires",
    )
    ap.add_argument(
        "--require-less",
        action="append",
        default=[],
        metavar="A:B",
        help="fail unless counter A is strictly less than counter B in the "
        "current run (both must be recorded) — e.g. the columnar backend's "
        "scan work must stay below the flat layout's",
    )
    args = ap.parse_args()

    if args.merge_into:
        return merge_into(args.merge_into, args.current)

    status = 0
    for path in args.current:
        status = max(status, check_one(path, args))
    return status


def check_one(path, args):
    exp, cur_counters, cur_spans = load(path)
    base_counters, base_spans = load_baseline(args.baseline, exp)

    problems = []

    for name in args.require_nonzero:
        if cur_counters.get(name, 0) <= 0:
            problems.append(f"required counter {name} is zero or missing")

    for name in args.require_present:
        if name not in cur_counters:
            problems.append(f"required counter {name} is not recorded")

    for name in args.require_zero:
        if name not in cur_counters:
            problems.append(f"required counter {name} is not recorded")
        elif cur_counters[name] != 0:
            problems.append(
                f"counter {name} must be zero but is {cur_counters[name]}"
            )

    for pair in args.require_less:
        a, sep, b = pair.rpartition(":")
        if not sep or not a:
            problems.append(f"--require-less {pair!r} is not of the form A:B")
            continue
        if a not in cur_counters or b not in cur_counters:
            missing = ", ".join(n for n in (a, b) if n not in cur_counters)
            problems.append(f"--require-less {pair}: counter(s) missing: {missing}")
            continue
        if not cur_counters[a] < cur_counters[b]:
            problems.append(
                f"counter {a} ({cur_counters[a]}) is not strictly below "
                f"{b} ({cur_counters[b]})"
            )

    base_rate, cur_rate = hit_rate(base_counters), hit_rate(cur_counters)
    if base_rate is not None and cur_rate is not None:
        if cur_rate < base_rate - HIT_RATE_DROP:
            problems.append(
                f"cache hit rate regressed: {base_rate:.1f}% -> {cur_rate:.1f}% "
                f"(allowed drop {HIT_RATE_DROP:.0f} points)"
            )

    for name, base in sorted(base_counters.items()):
        cur = cur_counters.get(name)
        if cur is None:
            problems.append(f"counter {name} disappeared (baseline {base})")
            continue
        if base > 0 and cur == 0:
            problems.append(f"counter {name} dropped to zero (baseline {base})")
        limit = base * (1 + COUNTER_GROWTH) + COUNTER_SLACK
        if cur > limit:
            problems.append(
                f"counter {name} regressed: {base} -> {cur} "
                f"(limit {limit:.0f}, +{COUNTER_GROWTH:.0%} + {COUNTER_SLACK})"
            )

    for name, base in sorted(base_spans.items()):
        cur = cur_spans.get(name)
        if cur is None:
            problems.append(f"span {name} disappeared")
            continue
        base_t, cur_t = base.get("total_s") or 0.0, cur.get("total_s") or 0.0
        limit = base_t * (1 + LATENCY_GROWTH) + LATENCY_SLACK_S
        if cur_t > limit:
            problems.append(
                f"span {name} latency regressed: {base_t:.3f}s -> {cur_t:.3f}s "
                f"(limit {limit:.3f}s)"
            )

    print(f"check_bench: experiment {exp}: ", end="")
    if problems:
        print(f"{len(problems)} problem(s)")
        for p in problems:
            print(f"  REGRESSION: {p}")
        return 1
    print(
        f"ok ({len(base_counters)} counters, {len(base_spans)} spans "
        "within tolerance)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
