(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 9) plus the ablations called out in
   DESIGN.md.

     dune exec bench/main.exe            -- run everything
     dune exec bench/main.exe table9     -- one experiment
     (ids: table9 table10 table11 table12 table13 fig2 fig3 ex11
           ablation coverage_batch planner cyclic incremental
           sensitivity fuzz micro)

   Scale note: the datasets are synthetic, laptop-sized equivalents of
   the paper's (DESIGN.md, "Substitutions"); absolute numbers differ
   from the paper but the comparisons within each table are the
   experiment. *)

open Castor_relational
open Castor_logic
open Castor_datasets
open Castor_eval
open Castor_qlearn
module Obs = Castor_obs.Obs

let section title =
  Fmt.pr "@.======================================================================@.";
  Fmt.pr "%s@." title;
  Fmt.pr "======================================================================@."

(* ------------------------------------------------------------------ *)
(* Tables 9-11: algorithm x schema grids                               *)
(* ------------------------------------------------------------------ *)

let table9 () =
  section
    "Table 9 -- HIV: schema (in)dependence of learners (Initial / 4NF-1 / 4NF-2)";
  (* HIV-Large analogue: only the learners the paper reports as
     scaling to it (Aleph-FOIL and Castor) *)
  let large = Hiv.generate ~config:Hiv.large_config () in
  let rows_large =
    Experiment.grid ~folds:3 large
      ~variants:(List.map fst large.Dataset.variants)
      ~algos:
        [
          Algos.aleph_foil ~clauselength:10 ();
          Algos.aleph_foil ~clauselength:15 ();
          Algos.castor ();
        ]
  in
  print_string (Report.table ~title:"HIV-Large (synthetic, scaled)" rows_large);
  let ds = Hiv.generate () in
  let rows =
    Experiment.grid ~folds:3 ds
      ~variants:(List.map fst ds.Dataset.variants)
      ~algos:
        [
          Algos.aleph_foil ~clauselength:10 ();
          Algos.aleph_foil ~clauselength:15 ();
          Algos.aleph_progol ~clauselength:10 ();
          Algos.aleph_progol ~clauselength:15 ();
          Algos.castor ();
        ]
  in
  print_string (Report.table ~title:"HIV-2K4K (synthetic, scaled)" rows)

let table10 () =
  section
    "Table 10 -- UW-CSE: schema (in)dependence of learners (Original / 4NF / Denorm-1 / Denorm-2)";
  let ds = Uwcse.generate () in
  let algos =
    [
      Algos.foil ();
      Algos.aleph_foil ~clauselength:6 ();
      Algos.aleph_progol ~clauselength:6 ();
      Algos.progolem ();
      Algos.castor ();
    ]
  in
  let rows =
    Experiment.grid ~folds:5 ds
      ~variants:(List.map fst ds.Dataset.variants)
      ~algos
  in
  print_string (Report.table ~title:"UW-CSE (synthetic)" rows)

let table11 () =
  section
    "Table 11 -- IMDb: schema (in)dependence of learners (JMDB / Stanford / Denormalized)";
  let ds = Imdb.generate () in
  let algos =
    [
      Algos.aleph_foil ~clauselength:10 ();
      Algos.aleph_progol ~clauselength:10 ();
      Algos.castor ();
    ]
  in
  let rows =
    Experiment.grid ~folds:3 ds
      ~variants:(List.map fst ds.Dataset.variants)
      ~algos
  in
  print_string (Report.table ~title:"IMDb (synthetic)" rows)

(* ------------------------------------------------------------------ *)
(* Table 12: Castor with subset INDs only                              *)
(* ------------------------------------------------------------------ *)

let table12 () =
  section
    "Table 12 -- Castor using only INDs in subset form (general decomposition/composition)";
  let run ds folds =
    let weakened = { ds with Dataset.schema = Schema.weaken_inds ds.Dataset.schema } in
    Experiment.grid ~folds ~mode:`Subset_too weakened
      ~variants:(List.map fst weakened.Dataset.variants)
      ~algos:[ Algos.castor_subset () ]
  in
  print_string (Report.table ~title:"HIV, subset INDs" (run (Hiv.generate ()) 3));
  print_string (Report.table ~title:"UW-CSE, subset INDs" (run (Uwcse.generate ()) 5));
  print_string (Report.table ~title:"IMDb, subset INDs" (run (Imdb.generate ()) 3))

(* ------------------------------------------------------------------ *)
(* Table 13: stored-procedure (plan reuse) impact                      *)
(* ------------------------------------------------------------------ *)

let timed f =
  let t0 = Unix.gettimeofday () in
  let _ = f () in
  Unix.gettimeofday () -. t0

let table13 () =
  section "Table 13 -- impact of per-schema plan reuse (stored procedures) on Castor runtime";
  let measure ds vname =
    let prep = Experiment.prepare ds vname in
    (* warmup: keep allocator/major-heap state out of the comparison *)
    let _ = Experiment.train_full prep (Algos.castor ()) in
    let with_plan =
      timed (fun () ->
          Experiment.train_full prep
            (Algos.castor ~params:{ Castor_core.Castor.default_params with reuse_plan = true } ()))
    in
    let without_plan =
      timed (fun () ->
          Experiment.train_full prep
            (Algos.castor ~params:{ Castor_core.Castor.default_params with reuse_plan = false } ()))
    in
    (ds.Dataset.name, with_plan, without_plan)
  in
  let rows =
    [
      measure (Hiv.generate ()) "initial";
      measure (Imdb.generate ()) "jmdb";
      measure (Uwcse.generate ()) "original";
    ]
  in
  Fmt.pr "%-10s %20s %20s %10s@." "Dataset" "with plan reuse (s)"
    "without reuse (s)" "speedup";
  List.iter
    (fun (name, w, wo) ->
      Fmt.pr "%-10s %20.3f %20.3f %9.2fx@." name w wo (wo /. w))
    rows

(* ------------------------------------------------------------------ *)
(* Figure 2: parallel coverage testing                                 *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "Figure 2 -- Castor runtime vs coverage-test parallelism (domains)";
  Fmt.pr
    "hardware threads reported by the runtime: %d@.(on a single-core host the pool falls back to sequential runs, so the series is flat)@."
    (Castor_ilp.Parallel.recommended_domains ());
  let sweep ds vname =
    let prep = Experiment.prepare ds vname in
    (* warmup run: the first training run pays one-off allocator and
       major-heap costs that would be misread as a parallelism effect *)
    let _ = Experiment.train_full prep (Algos.castor ()) in
    List.map
      (fun domains ->
        let t =
          timed (fun () ->
              Experiment.train_full prep
                (Algos.castor
                   ~params:{ Castor_core.Castor.default_params with domains } ()))
        in
        (string_of_int domains, [ (ds.Dataset.name ^ " time (s)", t) ]))
      [ 1; 2; 4; 8 ]
  in
  print_string
    (Report.series ~title:"HIV-Large (initial schema)" ~xlabel:"threads"
       (sweep (Hiv.generate ~config:Hiv.large_config ()) "initial"));
  print_string
    (Report.series ~title:"IMDb (JMDB schema)" ~xlabel:"threads"
       (sweep (Imdb.generate ()) "jmdb"))

(* ------------------------------------------------------------------ *)
(* Figure 3: A2 query complexity                                       *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section
    "Figure 3 -- A2 average #EQ / #MQ per schema, random definitions over UW-CSE schemas";
  let ds = Uwcse.generate () in
  let base = ds.Dataset.schema in
  let denorm2 = Transform.apply_schema base Uwcse.to_denorm2 in
  let inv = Transform.inverse base Uwcse.to_denorm2 in
  let targets =
    [
      ("original", inv);
      ("4nf", inv @ Uwcse.to_4nf);
      ("denorm1", inv @ Uwcse.to_denorm1);
      ("denorm2", []);
    ]
  in
  let n = 50 in
  let per_vars measure =
    List.map
      (fun n_vars ->
        let vals =
          List.map
            (fun (name, ops) ->
              let total = ref 0 in
              for i = 1 to n do
                let def =
                  Gen.random_definition
                    ~rng:(Random.State.make [| (i * 31) + n_vars |])
                    ~schema:denorm2 ~target_name:"t"
                    ~n_clauses:(1 + (i mod 5))
                    ~n_vars ()
                in
                let def = Rewrite.definition denorm2 ops def in
                let oracle = Oracle.make def in
                let r = A2.learn ~target_name:"t" oracle in
                total := !total + measure r
              done;
              (name, float_of_int !total /. float_of_int n))
            targets
        in
        (string_of_int n_vars, vals))
      [ 4; 5; 6; 7; 8 ]
  in
  print_string
    (Report.series ~title:"Average equivalence queries (EQ)" ~xlabel:"variables"
       (per_vars (fun r -> r.A2.eqs)));
  print_string
    (Report.series ~title:"Average membership queries (MQ)" ~xlabel:"variables"
       (per_vars (fun r -> r.A2.mqs)));
  (* Theorem 8.1's asymptotic bounds for these schemas, for reference *)
  Fmt.pr "@.Theorem 8.1 bound expressions (m=3 clauses, k=6 variables, n=12 constants):@.";
  List.iter
    (fun (name, ops) ->
      let schema = Transform.apply_schema denorm2 ops in
      Fmt.pr "  %s@." (Bounds.report ~m:3 ~k:6 ~n:12 name schema))
    targets

(* ------------------------------------------------------------------ *)
(* Example 1.1: FOIL vs Castor across Original / 4NF                   *)
(* ------------------------------------------------------------------ *)

let ex11 () =
  section
    "Example 1.1 / Theorem 5.1 -- FOIL learns non-equivalent definitions across schemas; Castor does not";
  let ds = Uwcse.generate () in
  List.iter
    (fun algo ->
      Fmt.pr "@.--- %s ---@." algo.Experiment.algo_name;
      let sigs =
        List.map
          (fun vname ->
            let prep = Experiment.prepare ds vname in
            let def = Experiment.train_full prep algo in
            Fmt.pr "@.[%s]@.%a@." vname Clause.pp_definition def;
            Experiment.signature prep def)
          [ "original"; "4nf" ]
      in
      match sigs with
      | [ a; b ] ->
          Fmt.pr "@.=> %s delivers data-equivalent output over Original and 4NF: %b@."
            algo.Experiment.algo_name (a = b)
      | _ -> ())
    [ Algos.foil (); Algos.castor () ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation -- bottom-clause minimization and coverage-test memoization";
  (* minimization: size reduction of Castor bottom clauses (Sec 7.5.5) *)
  let ds = Uwcse.generate () in
  let prep = Experiment.prepare ds "original" in
  let n_pos = Castor_ilp.Coverage.length prep.Experiment.all_pos in
  let problem =
    Experiment.problem_of_fold prep
      (Array.init n_pos Fun.id, [||])
      (Array.init (Castor_ilp.Coverage.length prep.Experiment.all_neg) Fun.id, [||])
      ~seed:17
  in
  let plan =
    Castor_core.Plan.build ~mode:`Equality_only
      (Instance.schema problem.Castor_learners.Problem.instance)
  in
  let prm = Castor_core.Castor.default_params in
  let total_before = ref 0 and total_after = ref 0 in
  for i = 0 to min 19 (n_pos - 1) do
    let e = problem.Castor_learners.Problem.pos_cov.Castor_ilp.Coverage.examples.(i) in
    let bc =
      Castor_ilp.Bottom.bottom_clause
        ~expand:(fun r tu ->
          Castor_core.Plan.expand plan problem.Castor_learners.Problem.instance r tu)
        ~params:
          (Castor_core.Castor.bottom_params
             ~base:problem.Castor_learners.Problem.bottom_params prm)
        problem.Castor_learners.Problem.instance e
    in
    let before, after = Minimize.reduction_ratio ~exact_below:80 bc in
    total_before := !total_before + before;
    total_after := !total_after + after
  done;
  Fmt.pr
    "bottom-clause minimization over 20 UW-CSE saturations: %d -> %d literals (%.1f%% reduction)@."
    !total_before !total_after
    (100. *. (1. -. (float_of_int !total_after /. float_of_int !total_before)));
  (* minimization on/off: learning runtime *)
  let t_min =
    timed (fun () ->
        Experiment.train_full prep
          (Algos.castor ~params:{ prm with minimize_bottom = true } ()))
  and t_nomin =
    timed (fun () ->
        Experiment.train_full prep
          (Algos.castor ~params:{ prm with minimize_bottom = false } ()))
  in
  Fmt.pr "UW-CSE learning time: minimize=on %.3fs, minimize=off %.3fs@." t_min t_nomin;
  (* coverage-test memoization on/off *)
  let time_cache enabled =
    let prep = Experiment.prepare ds "original" in
    Castor_ilp.Coverage.set_cache prep.Experiment.all_pos enabled;
    Castor_ilp.Coverage.set_cache prep.Experiment.all_neg enabled;
    timed (fun () -> Experiment.train_full prep (Algos.castor ()))
  in
  Fmt.pr "UW-CSE learning time: coverage cache on %.3fs, off %.3fs@."
    (time_cache true) (time_cache false);
  (* operation counts of one full Castor run (Sec 7.5: coverage tests
     dominate learning time) *)
  Castor_ilp.Stats.reset ();
  let _ = Experiment.train_full prep (Algos.castor ()) in
  Fmt.pr "@.operation counts for one UW-CSE Castor run:@.  %a@."
    Castor_ilp.Stats.pp
    (Castor_ilp.Stats.snapshot ())

(* ------------------------------------------------------------------ *)
(* Batched semi-join coverage kernel                                   *)
(* ------------------------------------------------------------------ *)

let coverage_batch () =
  section
    "Coverage batch -- batched semi-join kernel vs per-example subsumption";
  let ds = Uwcse.generate () in
  let prep = Experiment.prepare ds "original" in
  let pos = prep.Experiment.all_pos and neg = prep.Experiment.all_neg in
  (* the cache would turn the second measurement into pure hits *)
  Castor_ilp.Coverage.set_cache pos false;
  Castor_ilp.Coverage.set_cache neg false;
  let take k l =
    let rec go k = function
      | x :: tl when k > 0 -> x :: go (k - 1) tl
      | _ -> []
    in
    go k l
  in
  (* candidate clauses: body prefixes of variabilized saturations, the
     shapes the generalization search actually walks through *)
  let clauses =
    List.concat_map
      (fun i ->
        let bc, _ = Clause.variabilize pos.Castor_ilp.Coverage.bottoms.(i) in
        List.map
          (fun k -> Clause.make bc.Clause.head (take k bc.Clause.body))
          [ 1; 2; 3; 4; 6 ])
      (List.init (min 12 (Castor_ilp.Coverage.length pos)) Fun.id)
  in
  let run_all () =
    List.map
      (fun c ->
        ( Castor_ilp.Coverage.vector pos c,
          Castor_ilp.Coverage.vector neg c ))
      clauses
  in
  let with_batch b =
    Castor_ilp.Coverage.set_batch pos b;
    Castor_ilp.Coverage.set_batch neg b;
    let t0 = Unix.gettimeofday () in
    let vs = run_all () in
    (vs, Unix.gettimeofday () -. t0)
  in
  let _ = with_batch true (* warmup *) in
  let off, t_off = with_batch false in
  (* batched pass last, so the emitted metrics describe the kernel *)
  let on_, t_on = with_batch true in
  if not (List.for_all2 (fun (a, b) (c, d) -> a = c && b = d) on_ off) then
    failwith "coverage_batch: batched kernel disagrees with Subsume";
  let n = 2 * List.length clauses in
  Fmt.pr "%d coverage vectors over %d candidate clauses (UW-CSE original):@." n
    (List.length clauses);
  Fmt.pr "  batched semi-join kernel  %8.3f s  (%7.1f vectors/s)@." t_on
    (float_of_int n /. t_on);
  Fmt.pr "  per-example Subsume       %8.3f s  (%7.1f vectors/s)@." t_off
    (float_of_int n /. t_off);
  Fmt.pr "  speedup %.2fx; kernel batches %d, fallbacks to Subsume %d@."
    (t_off /. t_on)
    (Obs.Counter.value Algebra.c_batches)
    (Obs.Counter.value Castor_ilp.Coverage.c_batch_fallbacks);
  (* storage sweep: same vectors on the flat and columnar layouts; the
     per-backend scan work is exported under its own counter so the CI
     gate can require columnar strictly below flat in one dump *)
  let sweep spec =
    Castor_ilp.Coverage.set_backend pos spec;
    Castor_ilp.Coverage.set_backend neg spec;
    let rows0 = Obs.Counter.value Algebra.c_rows_scanned in
    let vs, t = with_batch true in
    let rows = Obs.Counter.value Algebra.c_rows_scanned - rows0 in
    if not (List.for_all2 (fun (a, b) (c, d) -> a = c && b = d) vs off) then
      failwith
        ("coverage_batch: backend " ^ Backend.spec_to_string spec
       ^ " disagrees with Subsume");
    let tag =
      String.map
        (fun c -> if c = ':' then '_' else c)
        (Backend.spec_to_string spec)
    in
    Obs.Counter.add
      (Obs.Counter.create ("bench.coverage_batch.rows_scanned." ^ tag))
      rows;
    Fmt.pr "  backend %-10s %8.3f s  %9d rows scanned@."
      (Backend.spec_to_string spec) t rows
  in
  List.iter sweep [ Backend.Flat; Backend.Columnar ]

(* ------------------------------------------------------------------ *)
(* Cost-based coverage planner                                         *)
(* ------------------------------------------------------------------ *)

let planner () =
  section
    "Planner -- cost-based coverage strategy selection across storage backends";
  let ds = Uwcse.generate () in
  let prep = Experiment.prepare ds "original" in
  let pos = prep.Experiment.all_pos and neg = prep.Experiment.all_neg in
  Castor_ilp.Coverage.set_cache pos false;
  Castor_ilp.Coverage.set_cache neg false;
  let take k l =
    let rec go k = function
      | x :: tl when k > 0 -> x :: go (k - 1) tl
      | _ -> []
    in
    go k l
  in
  let clauses =
    List.concat_map
      (fun i ->
        let bc, _ = Clause.variabilize pos.Castor_ilp.Coverage.bottoms.(i) in
        List.map
          (fun k -> Clause.make bc.Clause.head (take k bc.Clause.body))
          [ 1; 2; 3; 4; 6 ])
      (List.init (min 12 (Castor_ilp.Coverage.length pos)) Fun.id)
  in
  let run_all () =
    List.map
      (fun c ->
        ( Castor_ilp.Coverage.vector pos c,
          Castor_ilp.Coverage.vector neg c ))
      clauses
  in
  let timed_vectors () =
    let t0 = Unix.gettimeofday () in
    let vs = run_all () in
    (vs, Unix.gettimeofday () -. t0)
  in
  (* reference vectors: planner disabled, pure per-example subsumption *)
  Castor_ilp.Coverage.set_batch pos false;
  Castor_ilp.Coverage.set_batch neg false;
  let _ = timed_vectors () (* warmup *) in
  let reference, t_subs = timed_vectors () in
  Castor_ilp.Coverage.set_batch pos true;
  Castor_ilp.Coverage.set_batch neg true;
  let specs =
    [
      Backend.Flat;
      Backend.Sharded 1;
      Backend.Sharded 2;
      Backend.Sharded 4;
      Backend.Sharded 7;
      Backend.Columnar;
    ]
  in
  Fmt.pr "%d candidate clauses, planner on, per backend (UW-CSE original):@."
    (List.length clauses);
  let t_last = ref t_subs in
  (* per-backend kernel scan work, exported as its own counter so the
     CI gate can require columnar strictly below flat in one dump *)
  let scan_counter spec =
    let tag =
      String.map
        (fun c -> if c = ':' then '_' else c)
        (Backend.spec_to_string spec)
    in
    Obs.Counter.create ("bench.planner.rows_scanned." ^ tag)
  in
  List.iter
    (fun spec ->
      Castor_ilp.Coverage.set_backend pos spec;
      Castor_ilp.Coverage.set_backend neg spec;
      let rows0 = Obs.Counter.value Algebra.c_rows_scanned in
      let vs, t = timed_vectors () in
      let rows = Obs.Counter.value Algebra.c_rows_scanned - rows0 in
      Obs.Counter.add (scan_counter spec) rows;
      if vs <> reference then
        failwith
          ("planner: coverage vectors diverge from subsumption on backend "
          ^ Backend.spec_to_string spec);
      if spec = Castor_ilp.Coverage.backend_spec pos then t_last := t;
      Fmt.pr
        "  backend %-10s %8.3f s  %9d rows scanned  (matches subsumption bit-for-bit)@."
        (Backend.spec_to_string spec) t rows)
    specs;
  Fmt.pr "  pure subsumption     %8.3f s@." t_subs;
  Fmt.pr
    "planner decisions %d: semi-join %d, subsumption %d (est cost %d, actual %d)@."
    (Obs.Counter.value Castor_ilp.Planner.c_decisions)
    (Obs.Counter.value Castor_ilp.Planner.c_choice_semijoin)
    (Obs.Counter.value Castor_ilp.Planner.c_choice_subsumption)
    (Obs.Counter.value Castor_ilp.Planner.c_est_cost)
    (Obs.Counter.value Castor_ilp.Planner.c_actual_cost)

(* ------------------------------------------------------------------ *)
(* Cyclic cores: decomposed kernel vs per-example subsumption          *)
(* ------------------------------------------------------------------ *)

let cyclic () =
  section
    "Cyclic -- hypertree-decomposed kernel vs per-example subsumption on \
     cyclic candidate bodies";
  let ds = Uwcse.generate () in
  let prep = Experiment.prepare ds "original" in
  let pos = prep.Experiment.all_pos in
  Castor_ilp.Coverage.set_cache pos false;
  let take k l =
    let rec go k = function
      | x :: tl when k > 0 -> x :: go (k - 1) tl
      | _ -> []
    in
    go k l
  in
  (* cyclic candidates: close a cycle over body prefixes of the
     variabilized saturations -- exactly the shapes that used to force
     the per-example subsumption fallback *)
  let prefixes =
    List.concat_map
      (fun i ->
        let bc, _ = Clause.variabilize pos.Castor_ilp.Coverage.bottoms.(i) in
        List.map
          (fun k -> Clause.make bc.Clause.head (take k bc.Clause.body))
          [ 2; 3; 4 ])
      (List.init (min 8 (Castor_ilp.Coverage.length pos)) Fun.id)
  in
  let clauses = List.filter_map Castor_ilp.Planner.close_cycle prefixes in
  if clauses = [] then failwith "cyclic: no prefix closed into a cycle";
  Fmt.pr "%d cyclic candidates closed from %d prefixes (UW-CSE original)@."
    (List.length clauses) (List.length prefixes);
  (* reference: per-example subsumption; its work is search steps plus
     the arc-consistency candidate scans (AC refutes most cyclic
     probes before the step counter moves, so steps alone would credit
     those exits as free) *)
  Castor_ilp.Coverage.set_batch pos false;
  let subsume_work () =
    Obs.Counter.value Subsume.c_steps + Obs.Counter.value Subsume.c_ac_scans
  in
  let steps0 = subsume_work () in
  let t0 = Unix.gettimeofday () in
  let reference =
    List.map
      (fun c -> Array.to_list (Castor_ilp.Coverage.vector pos c))
      clauses
  in
  let t_subs = Unix.gettimeofday () -. t0 in
  let subs_steps = subsume_work () - steps0 in
  Obs.Counter.add (Obs.Counter.create "bench.cyclic.subsume_steps") subs_steps;
  Fmt.pr "  per-example Subsume  %8.3f s  %9d steps+scans@." t_subs subs_steps;
  (* the planner path must agree whatever strategy the cost model picks
     per clause; this also exercises the width counters for the dump *)
  Castor_ilp.Coverage.set_batch pos true;
  let fallbacks0 = Obs.Counter.value Castor_ilp.Coverage.c_batch_fallbacks in
  let planner_vs =
    List.map
      (fun c -> Array.to_list (Castor_ilp.Coverage.vector pos c))
      clauses
  in
  if planner_vs <> reference then
    failwith "cyclic: planner path diverges from subsumption";
  (* direct kernel invocation per backend: the decomposed kernel itself
     (not the planner's choice) must answer every cyclic body
     bit-for-bit like subsumption, with its work measured as scanned
     rows plus leapfrog seeks *)
  let patterns_of c =
    List.map Castor_ilp.Planner.pattern_of_atom
      (c.Clause.head :: c.Clause.body)
  in
  let eids = Array.init (Castor_ilp.Coverage.length pos) Fun.id in
  let specs =
    [
      Backend.Flat;
      Backend.Sharded 1;
      Backend.Sharded 2;
      Backend.Sharded 4;
      Backend.Sharded 7;
      Backend.Columnar;
    ]
  in
  let kernel_work spec =
    Castor_ilp.Coverage.set_backend pos spec;
    let store = Option.get (Castor_ilp.Coverage.store pos) in
    let work () =
      Obs.Counter.value Algebra.c_rows_scanned
      + Obs.Counter.value Algebra.c_leapfrog_seeks
    in
    let work0 = work () in
    let t0 = Unix.gettimeofday () in
    List.iteri
      (fun i c ->
        let direct =
          Algebra.semijoin_batch store ~patterns:(patterns_of c) ~eids
        in
        if Array.to_list direct <> List.nth reference i then
          failwith
            ("cyclic: kernel diverges from subsumption on backend "
            ^ Backend.spec_to_string spec))
      clauses;
    let t = Unix.gettimeofday () -. t0 in
    let w = work () - work0 in
    let tag =
      String.map
        (fun ch -> if ch = ':' then '_' else ch)
        (Backend.spec_to_string spec)
    in
    Obs.Counter.add (Obs.Counter.create ("bench.cyclic.rows_scanned." ^ tag)) w;
    Fmt.pr
      "  backend %-10s %8.3f s  %9d rows+seeks  (matches subsumption \
       bit-for-bit)@."
      (Backend.spec_to_string spec) t w;
    w
  in
  let works = List.map kernel_work specs in
  (* the headline kernel-work number is the best backend (columnar,
     where select/project pushdown applies): flat layouts pay extra
     scanned rows to the storage seam, not to the kernel itself. The
     CI gate requires this to undercut the subsumption work. *)
  let best = List.fold_left min max_int works in
  Obs.Counter.add (Obs.Counter.create "bench.cyclic.kernel_rows") best;
  let forced =
    Obs.Counter.value Castor_ilp.Coverage.c_batch_fallbacks - fallbacks0
  in
  Obs.Counter.add (Obs.Counter.create "bench.cyclic.forced_fallbacks") forced;
  if forced <> 0 then failwith "cyclic: forced fallback observed";
  Fmt.pr
    "  kernel best backend  %9d rows+seeks vs %d subsumption steps+scans; \
     forced fallbacks %d@."
    best subs_steps forced

(* ------------------------------------------------------------------ *)
(* Incremental: online coverage under a tuple stream                   *)
(* ------------------------------------------------------------------ *)

let incremental () =
  section
    "Incremental -- delta-driven online coverage vs from-scratch rebuild \
     (UW-CSE tuple-stream replay)";
  let take k l =
    let rec go k = function
      | x :: tl when k > 0 -> x :: go (k - 1) tl
      | _ -> []
    in
    go k l
  in
  let replay spec =
    (* fresh dataset per backend so every sweep replays the same stream
       from the same start state *)
    let ds = Uwcse.generate () in
    let prep = Experiment.prepare ~backend:spec ds "original" in
    let v = prep.Experiment.pvariant in
    let inst = v.Dataset.vinstance in
    let pos = prep.Experiment.all_pos in
    let clauses =
      List.concat_map
        (fun i ->
          let bc, _ = Clause.variabilize pos.Castor_ilp.Coverage.bottoms.(i) in
          List.map
            (fun k -> Clause.make bc.Clause.head (take k bc.Clause.body))
            [ 1; 2; 4 ])
        (List.init (min 8 (Castor_ilp.Coverage.length pos)) Fun.id)
    in
    let run_all cov =
      List.map (fun c -> Castor_ilp.Coverage.vector cov c) clauses
    in
    let _ = run_all pos (* warm the memo: the replay exercises patching *) in
    (* the tuple stream: interleaved single-tuple adds/removes over the
       non-target relations, replayed one generation at a time with
       coverage queries in between — the online-learning shape *)
    let stream =
      Castor_ilp.Examples.mutation_stream ~seed:17 ~length:32 inst
        ds.Dataset.examples
    in
    let b = Backend.of_instance inst in
    let gen0 = Backend.generation b in
    let t0 = Unix.gettimeofday () in
    List.iteri
      (fun i d ->
        Backend.apply b [ d ];
        if i mod 4 = 3 then ignore (run_all pos))
      stream;
    let final = run_all pos in
    let t_inc = Unix.gettimeofday () -. t0 in
    let effective = Backend.generation b - gen0 in
    (* the correctness pin and the cost the delta path avoids: rebuild
       the whole structure on the mutated instance, then compare *)
    let t1 = Unix.gettimeofday () in
    let plan = Castor_core.Plan.build ~mode:`Equality_only v.Dataset.vschema in
    let fresh =
      Castor_ilp.Coverage.build
        ~expand:(fun rel tu -> Castor_core.Plan.expand plan inst rel tu)
        ~backend:spec ~params:prep.Experiment.bottom_params inst
        ds.Dataset.examples.Castor_ilp.Examples.pos
    in
    let t_rebuild = Unix.gettimeofday () -. t1 in
    if final <> run_all fresh then
      failwith
        ("incremental: patched coverage diverges from rebuild on backend "
        ^ Backend.spec_to_string spec);
    let tag =
      String.map
        (fun c -> if c = ':' then '_' else c)
        (Backend.spec_to_string spec)
    in
    Obs.Counter.add
      (Obs.Counter.create ("bench.incremental.deltas." ^ tag))
      effective;
    Fmt.pr
      "  backend %-10s %3d deltas absorbed: replay %8.3f s, one rebuild \
       %8.3f s  (matches rebuild bit-for-bit)@."
      (Backend.spec_to_string spec) effective t_inc t_rebuild
  in
  List.iter replay [ Backend.Flat; Backend.Sharded 4; Backend.Columnar ];
  Fmt.pr
    "full refreshes %d (the online-update promise is zero), deltas applied \
     %d, examples re-saturated %d, cached vectors patched %d@."
    (Obs.Counter.value Castor_ilp.Coverage.c_full_refreshes)
    (Obs.Counter.value Castor_ilp.Coverage.c_delta_applied)
    (Obs.Counter.value Castor_ilp.Coverage.c_delta_rounds)
    (Obs.Counter.value Castor_ilp.Coverage.c_cache_patches)

(* ------------------------------------------------------------------ *)
(* Parameter sensitivity (Sec 9.1.2 discusses these knobs)             *)
(* ------------------------------------------------------------------ *)

let sensitivity () =
  section
    "Sensitivity -- Castor accuracy/time vs its parameters (UW-CSE, training metrics)";
  let ds = Uwcse.generate () in
  let prep = Experiment.prepare ds "original" in
  let n_pos = Castor_ilp.Coverage.length prep.Experiment.all_pos in
  let n_neg = Castor_ilp.Coverage.length prep.Experiment.all_neg in
  let run params =
    let t0 = Unix.gettimeofday () in
    let def = Experiment.train_full prep (Algos.castor ~params ()) in
    let dt = Unix.gettimeofday () -. t0 in
    let m =
      Experiment.test_metrics prep def
        (Array.init n_pos Fun.id, Array.init n_neg Fun.id)
    in
    [
      ("precision", m.Metrics.precision);
      ("recall", m.Metrics.recall);
      ("time (s)", dt);
    ]
  in
  let base = Castor_core.Castor.default_params in
  print_string
    (Report.series ~title:"beam width (N)" ~xlabel:"beam"
       (List.map
          (fun beam -> (string_of_int beam, run { base with beam }))
          [ 1; 2; 4 ]));
  print_string
    (Report.series ~title:"sample size (K)" ~xlabel:"sample"
       (List.map
          (fun sample -> (string_of_int sample, run { base with sample }))
          [ 2; 5; 10; 20 ]));
  print_string
    (Report.series ~title:"variable budget (max_terms)" ~xlabel:"max_terms"
       (List.map
          (fun max_terms -> (string_of_int max_terms, run { base with max_terms }))
          [ 20; 40; 60; 90 ]));
  print_string
    (Report.series ~title:"IND chase join limit" ~xlabel:"join_limit"
       (List.map
          (fun join_limit -> (string_of_int join_limit, run { base with join_limit }))
          [ 2; 5; 10 ]))

(* ------------------------------------------------------------------ *)
(* Schema-variant fuzzing: the independence claim on generated worlds  *)
(* ------------------------------------------------------------------ *)

let fuzz () =
  section
    "Fuzz -- zero-config schema-variant fuzzing: induced bias, generated \
     variants, independence sweep";
  let open Castor_fuzz in
  let run ds config =
    let t0 = Unix.gettimeofday () in
    let report = Fuzz.run ~config ds in
    let dt = Unix.gettimeofday () -. t0 in
    Fmt.pr "@.%s: %d generated variants, %d runs, %.1f s@."
      report.Fuzz.rp_dataset
      (List.length report.Fuzz.rp_variants)
      (List.length report.Fuzz.rp_runs)
      dt;
    List.iter
      (fun (v : Sweep.verdict) ->
        if v.Sweep.v_equivalent then
          Fmt.pr "  %-12s %-10s schema independent@." v.Sweep.v_learner
            v.Sweep.v_backend
        else
          Fmt.pr "  %-12s %-10s DIVERGES on %s@." v.Sweep.v_learner
            v.Sweep.v_backend
            (String.concat ", " v.Sweep.v_diverging))
      report.Fuzz.rp_verdicts;
    List.iter
      (fun cx -> Fmt.pr "@.%a@." Shrink.pp_counterexample cx)
      report.Fuzz.rp_counterexamples
  in
  (* family: cheap, and FOIL's schema dependence shows (with the
     shrinker reducing the failure to a minimal variant + clause) *)
  run (Family.generate ())
    { Fuzz.default_config with Fuzz.learners = [ "castor" ; "foil" ]; budget = 4 };
  (* uwcse: the full zero-config pipeline at the acceptance budget *)
  run (Uwcse.generate ())
    { Fuzz.default_config with Fuzz.learners = [ "castor" ]; budget = 8 }

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the substrate                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (Bechamel): subsumption, lgg, join, bottom clause";
  let ds = Uwcse.generate () in
  let prep = Experiment.prepare ds "original" in
  let cov = prep.Experiment.all_pos in
  let sat0 = cov.Castor_ilp.Coverage.bottoms.(0) in
  let sat1 = cov.Castor_ilp.Coverage.bottoms.(1) in
  let bc0, _ = Clause.variabilize sat0 in
  let inst = prep.Experiment.pvariant.Dataset.vinstance in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"subsume/covering"
        (Staged.stage (fun () -> Subsume.subsumes bc0 sat0));
      Test.make ~name:"subsume/failing"
        (Staged.stage (fun () -> Subsume.subsumes bc0 sat1));
      Test.make ~name:"lgg"
        (Staged.stage (fun () -> Lgg.clauses sat0 sat1));
      Test.make ~name:"natural-join(ta,taughtBy)"
        (Staged.stage (fun () ->
             Algebra.natural_join
               (Algebra.table_of_relation inst "ta")
               (Algebra.table_of_relation inst "taughtBy")));
      Test.make ~name:"bottom-clause"
        (Staged.stage (fun () ->
             Castor_ilp.Bottom.saturation
               ~params:prep.Experiment.bottom_params inst
               cov.Castor_ilp.Coverage.examples.(0)));
      Test.make ~name:"minimize(absorbed)"
        (Staged.stage (fun () -> Minimize.reduce_absorbed bc0));
      (* coverage-cache keying: the structural key vs the pretty-print
         it replaced *)
      Test.make ~name:"canonical-key"
        (Staged.stage (fun () -> Clause.canonical_key bc0));
      Test.make ~name:"clause-to-string"
        (Staged.stage (fun () -> Clause.to_string bc0));
    ]
  in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Hashtbl.iter
      (fun name ols_result ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Fmt.pr "%-28s %12.1f ns/run@." name est
        | _ -> Fmt.pr "%-28s (no estimate)@." name)
      results
  in
  benchmark (Test.make_grouped ~name:"castor" ~fmt:"%s/%s" tests)

(* ------------------------------------------------------------------ *)

let analyze () =
  section
    "Analyze -- AST-level source lint over the project tree (state table, \
     call graph, five rule passes)";
  (* dune exec runs from the project root; when invoked from elsewhere,
     the exe sits in <root>/_build/default/bench, so climb from there *)
  let root =
    if Sys.file_exists "lib" then "."
    else
      Filename.concat (Filename.dirname Sys.executable_name) "../../.."
  in
  let rec walk dir acc =
    Array.fold_left
      (fun acc entry ->
        let p = Filename.concat dir entry in
        match Sys.is_directory p with
        | true -> walk p acc
        | false -> if Filename.check_suffix p ".ml" then p :: acc else acc
        | exception Sys_error _ -> acc)
      acc (Sys.readdir dir)
  in
  let dirs =
    List.filter
      (fun d -> Sys.file_exists (Filename.concat root d))
      [ "lib"; "bin"; "bench"; "examples" ]
  in
  let files =
    List.sort compare
      (List.concat_map (fun d -> walk (Filename.concat root d) []) dirs)
  in
  let read f =
    let ic = open_in_bin f in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let t0 = Unix.gettimeofday () in
  let groups =
    Castor_analysis.Analyze.sources (List.map (fun f -> (f, read f)) files)
  in
  let dt = Unix.gettimeofday () -. t0 in
  let diags = List.concat_map snd groups in
  let count sev =
    Castor_analysis.Diagnostic.count sev diags
  in
  Fmt.pr "%d files in %.3f s: %d error(s), %d warning(s), %d info(s)@."
    (List.length files) dt
    (count Castor_analysis.Diagnostic.Error)
    (count Castor_analysis.Diagnostic.Warning)
    (count Castor_analysis.Diagnostic.Info)

(* ------------------------------------------------------------------ *)

let all =
  [
    ("table9", table9);
    ("table10", table10);
    ("table11", table11);
    ("table12", table12);
    ("table13", table13);
    ("fig2", fig2);
    ("fig3", fig3);
    ("ex11", ex11);
    ("ablation", ablation);
    ("coverage_batch", coverage_batch);
    ("planner", planner);
    ("cyclic", cyclic);
    ("incremental", incremental);
    ("sensitivity", sensitivity);
    ("fuzz", fuzz);
    ("analyze", analyze);
    ("micro", micro);
  ]

(* Every experiment runs against a zeroed Obs registry and ends with
   its metrics block: the text rendering on stdout, the JSON dump in
   BENCH_<id>.json next to the working directory, so runs can be
   diffed across commits. *)
let with_metrics id f =
  Obs.reset ();
  f ();
  Fmt.pr "@.-- Obs metrics: %s --@.%s@." id (Obs.report ());
  let path = Printf.sprintf "BENCH_%s.json" id in
  let oc = open_out path in
  Printf.fprintf oc "{\"experiment\":\"%s\",\"metrics\":%s}\n" id (Obs.to_json ());
  close_out oc;
  Fmt.pr "(metrics JSON written to %s)@." path

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ -> List.map fst all
  in
  List.iter
    (fun id ->
      match List.assoc_opt id all with
      | Some f -> with_metrics id f
      | None ->
          Fmt.epr "unknown experiment %s; available: %a@." id
            Fmt.(list ~sep:sp string)
            (List.map fst all);
          exit 1)
    requested
