(* The static-analysis pass: one firing (positive) and one clean
   (negative) case per lint rule, catalog consistency, and the
   safety property of the bottom-clause pruner — pruning redundant
   literals never changes any subsumption outcome, hence no coverage
   vector. *)

open Castor_relational
open Castor_logic
module Diagnostic = Castor_analysis.Diagnostic
module Clause_lint = Castor_analysis.Clause_lint
module Schema_lint = Castor_analysis.Schema_lint
module Modes = Castor_analysis.Modes
module Analyze = Castor_analysis.Analyze
open Helpers

let rules_of diags =
  List.sort_uniq String.compare
    (List.map (fun (d : Diagnostic.t) -> d.Diagnostic.rule) diags)

let fires rule diags = List.mem rule (rules_of diags)

let check_fires name rule diags =
  check Alcotest.bool name true (fires rule diags)

let check_clean name rule diags =
  check Alcotest.bool name false (fires rule diags)

let cl text = Parse.clause text

(* ---------------- clause lints ------------------------------------- *)

let test_unsafe () =
  check_fires "head var missing from body" "clause/unsafe"
    (Clause_lint.check (cl "t(X) :- p(Y,Z)."));
  check_clean "safe clause" "clause/unsafe"
    (Clause_lint.check (cl "t(X) :- p(X,Y)."))

let test_disconnected () =
  check_fires "dangling literal" "clause/disconnected"
    (Clause_lint.check (cl "t(X) :- p(X,Y), q(Z,W)."));
  check_clean "head-connected clause" "clause/disconnected"
    (Clause_lint.check (cl "t(X) :- p(X,Y), q(Y,Z)."))

let test_singleton () =
  check_fires "variable used once" "clause/singleton-var"
    (Clause_lint.check (cl "t(X) :- p(X,Y)."));
  check_clean "all variables shared" "clause/singleton-var"
    (Clause_lint.check (cl "t(X) :- p(X,Y), q(Y,X)."))

let test_duplicate () =
  check_fires "verbatim duplicate" "clause/duplicate-literal"
    (Clause_lint.check (cl "t(X) :- p(X,Y), p(X,Y)."));
  check_clean "distinct literals" "clause/duplicate-literal"
    (Clause_lint.check (cl "t(X) :- p(X,Y), p(Y,X)."))

let test_redundant () =
  check_fires "absorbed literal" "clause/redundant-literal"
    (Clause_lint.check (cl "t(X) :- p(X,Y), p(X,Z)."));
  check_clean "no literal absorbs another" "clause/redundant-literal"
    (Clause_lint.check (cl "t(X) :- p(X,Y), q(Y,Z)."))

let test_depth () =
  check_fires "join chain deeper than the saturation bound"
    "clause/determinacy-depth"
    (Clause_lint.check ~depth_limit:4
       (cl "t(A) :- p(A,B), p(B,C), p(C,D), p(D,E), p(E,F)."));
  check_clean "shallow clause" "clause/determinacy-depth"
    (Clause_lint.check ~depth_limit:4 (cl "t(A) :- p(A,B), p(B,C)."))

let test_unknown_relation () =
  check_fires "undeclared body relation" "clause/unknown-relation"
    (Clause_lint.check ~schema:abc_schema (cl "t(X) :- nosuch(X,Y)."));
  check_clean "declared relation" "clause/unknown-relation"
    (Clause_lint.check ~schema:abc_schema (cl "t(X) :- r(X,Y,Z)."))

let test_arity () =
  check_fires "wrong arity" "clause/arity-mismatch"
    (Clause_lint.check ~schema:abc_schema (cl "t(X) :- r(X,Y)."));
  check_clean "declared arity" "clause/arity-mismatch"
    (Clause_lint.check ~schema:abc_schema (cl "t(X) :- r(X,Y,Z)."))

let test_domain_conflict () =
  (* r(a:da, b:db, c:dc): X at both da and db can never bind *)
  check_fires "one variable at two domains" "clause/domain-conflict"
    (Clause_lint.check ~schema:abc_schema (cl "t(X) :- r(X,X,Y)."));
  check_clean "domains line up" "clause/domain-conflict"
    (Clause_lint.check ~schema:abc_schema (cl "t(X) :- r(X,Y,Z), r(X,B,C)."))

let test_parse_error () =
  let diags = Analyze.clauses_text "t(X) :- p(X,Y)\n  ;;" in
  check_fires "malformed input" "parse/error" diags;
  check Alcotest.bool "message carries the position" true
    (List.exists
       (fun (d : Diagnostic.t) -> contains ~sub:"line 2" d.Diagnostic.message)
       diags);
  check Alcotest.bool "parse errors are errors" true (Diagnostic.has_errors diags);
  check_clean "well-formed input" "parse/error"
    (Analyze.clauses_text "t(X) :- p(X,Y), q(Y,X).")

let test_spans () =
  (* the second clause starts on line 3; its lints must say so *)
  let diags =
    Analyze.clauses_text "t(X) :- p(X,Y), q(Y,X).\n\nt(X) :- p(Y,Z)."
  in
  let unsafe =
    List.find
      (fun (d : Diagnostic.t) -> d.Diagnostic.rule = "clause/unsafe")
      diags
  in
  match unsafe.Diagnostic.span with
  | Some s -> check Alcotest.int "span line" 3 s.Diagnostic.line
  | None -> Alcotest.fail "clause lint lost its source span"

(* ---------------- schema lints ------------------------------------- *)

let at = Schema.attribute

let test_duplicate_relation () =
  let s =
    Schema.make
      [ Schema.relation "r" [ at ~domain:"d" "a" ];
        Schema.relation "r" [ at ~domain:"d" "b" ] ]
  in
  check_fires "same symbol twice" "schema/duplicate-relation" (Schema_lint.check s);
  check_clean "distinct symbols" "schema/duplicate-relation"
    (Schema_lint.check abc_schema)

let test_fd_decls () =
  let bad_rel =
    Schema.make
      ~fds:[ { Schema.fd_rel = "nosuch"; fd_lhs = [ "a" ]; fd_rhs = [ "b" ] } ]
      [ Schema.relation "r" [ at ~domain:"d" "a"; at ~domain:"d" "b" ] ]
  in
  check_fires "fd on unknown relation" "schema/unknown-relation"
    (Schema_lint.check bad_rel);
  let bad_attr =
    Schema.make
      ~fds:[ { Schema.fd_rel = "r"; fd_lhs = [ "a" ]; fd_rhs = [ "zz" ] } ]
      [ Schema.relation "r" [ at ~domain:"d" "a"; at ~domain:"d" "b" ] ]
  in
  check_fires "fd attribute outside the sort" "schema/unknown-attribute"
    (Schema_lint.check bad_attr);
  let trivial =
    Schema.make
      ~fds:[ { Schema.fd_rel = "r"; fd_lhs = [ "a"; "b" ]; fd_rhs = [ "a" ] } ]
      [ Schema.relation "r" [ at ~domain:"d" "a"; at ~domain:"d" "b" ] ]
  in
  check_fires "rhs inside lhs" "schema/trivial-fd" (Schema_lint.check trivial);
  let clean = Schema_lint.check abc_schema in
  check_clean "well-formed fds (unknown-relation)" "schema/unknown-relation" clean;
  check_clean "well-formed fds (unknown-attribute)" "schema/unknown-attribute" clean;
  check_clean "well-formed fds (trivial)" "schema/trivial-fd" clean

let two_rel_schema ?fds ?inds () =
  Schema.make ?fds ?inds
    [ Schema.relation "r1" [ at ~domain:"d1" "a"; at ~domain:"d2" "b" ];
      Schema.relation "r2" [ at ~domain:"d1" "x"; at ~domain:"d3" "y" ] ]

let test_ind_decls () =
  let arity =
    two_rel_schema ~inds:[ Schema.ind_with_equality "r1" [ "a"; "b" ] "r2" [ "x" ] ] ()
  in
  check_fires "sides of different length" "schema/ind-arity-mismatch"
    (Schema_lint.check arity);
  let domains =
    two_rel_schema ~inds:[ Schema.ind_with_equality "r1" [ "b" ] "r2" [ "y" ] ] ()
  in
  check_fires "linked attributes of different domains" "schema/ind-domain-mismatch"
    (Schema_lint.check domains);
  let clean =
    Schema_lint.check
      (two_rel_schema ~inds:[ Schema.ind_with_equality "r1" [ "a" ] "r2" [ "x" ] ] ())
  in
  check_clean "well-formed ind (arity)" "schema/ind-arity-mismatch" clean;
  check_clean "well-formed ind (domains)" "schema/ind-domain-mismatch" clean

let test_cyclic_class () =
  (* r1(a,b), r2(b,c), r3(c,a) tied into one inclusion class: the
     sorts form the classic GYO-cyclic triangle *)
  let s =
    Schema.make
      ~inds:
        [ Schema.ind_with_equality "r1" [ "b" ] "r2" [ "b" ];
          Schema.ind_with_equality "r2" [ "c" ] "r3" [ "c" ];
          Schema.ind_with_equality "r3" [ "a" ] "r1" [ "a" ] ]
      [ Schema.relation "r1" [ at ~domain:"da" "a"; at ~domain:"db" "b" ];
        Schema.relation "r2" [ at ~domain:"db" "b"; at ~domain:"dc" "c" ];
        Schema.relation "r3" [ at ~domain:"dc" "c"; at ~domain:"da" "a" ] ]
  in
  check_fires "triangle of equality inds" "schema/cyclic-class" (Schema_lint.check s);
  let path =
    Schema.make
      ~inds:
        [ Schema.ind_with_equality "r1" [ "b" ] "r2" [ "b" ];
          Schema.ind_with_equality "r2" [ "c" ] "r3" [ "c" ] ]
      [ Schema.relation "r1" [ at ~domain:"da" "a"; at ~domain:"db" "b" ];
        Schema.relation "r2" [ at ~domain:"db" "b"; at ~domain:"dc" "c" ];
        Schema.relation "r3" [ at ~domain:"dc" "c"; at ~domain:"da" "d" ] ]
  in
  check_clean "path of equality inds" "schema/cyclic-class" (Schema_lint.check path)

let test_subset_cycle () =
  let s =
    two_rel_schema
      ~inds:
        [ Schema.ind_subset "r1" [ "a" ] "r2" [ "x" ];
          Schema.ind_subset "r2" [ "x" ] "r1" [ "a" ] ]
      ()
  in
  check_fires "mutual subset inds" "schema/subset-ind-cycle" (Schema_lint.check s);
  let one_way =
    two_rel_schema ~inds:[ Schema.ind_subset "r1" [ "a" ] "r2" [ "x" ] ] ()
  in
  check_clean "one-directional subset ind" "schema/subset-ind-cycle"
    (Schema_lint.check one_way)

let fd_ind_schema ~with_image_fd =
  let fds =
    { Schema.fd_rel = "r1"; fd_lhs = [ "a" ]; fd_rhs = [ "b" ] }
    :: (if with_image_fd then
          [ { Schema.fd_rel = "r2"; fd_lhs = [ "x" ]; fd_rhs = [ "y" ] } ]
        else [])
  in
  Schema.make ~fds
    ~inds:[ Schema.ind_with_equality "r1" [ "a"; "b" ] "r2" [ "x"; "y" ] ]
    [ Schema.relation "r1" [ at ~domain:"d1" "a"; at ~domain:"d2" "b" ];
      Schema.relation "r2" [ at ~domain:"d1" "x"; at ~domain:"d2" "y" ] ]

let test_fd_ind () =
  check_fires "fd not mirrored across the equality ind" "schema/fd-ind-mismatch"
    (Schema_lint.check (fd_ind_schema ~with_image_fd:false));
  check_clean "fd mirrored on the other side" "schema/fd-ind-mismatch"
    (Schema_lint.check (fd_ind_schema ~with_image_fd:true))

(* ---------------- transformation lints ------------------------------ *)

let test_transform_decompose () =
  let dec rel parts = [ Transform.Decompose { rel; parts } ] in
  check_fires "decompose unknown relation" "transform/unknown-relation"
    (Schema_lint.check_transform abc_schema (dec "nosuch" [ ("p", [ "a" ]) ]));
  check_fires "part lists a foreign attribute" "transform/unknown-attribute"
    (Schema_lint.check_transform abc_schema
       (dec "r" [ ("r1", [ "a"; "zz" ]); ("r2", [ "a"; "b"; "c" ]) ]));
  check_fires "parts do not cover the sort" "transform/parts-dont-cover"
    (Schema_lint.check_transform abc_schema
       (dec "r" [ ("r1", [ "a"; "b" ]) ]));
  check_clean "lossless decomposition"
    "transform/parts-dont-cover"
    (Schema_lint.check_transform abc_schema abc_decomposition)

let test_transform_compose () =
  let triangle =
    Schema.make
      [ Schema.relation "r1" [ at ~domain:"da" "a"; at ~domain:"db" "b" ];
        Schema.relation "r2" [ at ~domain:"db" "b"; at ~domain:"dc" "c" ];
        Schema.relation "r3" [ at ~domain:"dc" "c"; at ~domain:"da" "a" ] ]
  in
  check_fires "cyclic composition join" "transform/cyclic-join"
    (Schema_lint.check_transform triangle
       [ Transform.Compose { parts = [ "r1"; "r2"; "r3" ]; into = "big" } ]);
  let disjoint =
    Schema.make
      [ Schema.relation "r1" [ at ~domain:"da" "a" ];
        Schema.relation "r2" [ at ~domain:"db" "b" ] ]
  in
  check_fires "cartesian-product composition" "transform/disconnected-join"
    (Schema_lint.check_transform disjoint
       [ Transform.Compose { parts = [ "r1"; "r2" ]; into = "big" } ]);
  (* recomposing the abc decomposition joins r1, r2 on "a" *)
  let decomposed = Transform.apply_schema abc_schema abc_decomposition in
  let clean =
    Schema_lint.check_transform decomposed
      [ Transform.Compose { parts = [ "r1"; "r2" ]; into = "r" } ]
  in
  check_clean "well-joined composition (cyclic)" "transform/cyclic-join" clean;
  check_clean "well-joined composition (disconnected)" "transform/disconnected-join"
    clean

(* ---------------- mode lints ---------------------------------------- *)

let lint_modes ?(const_pool_domains = []) ?(no_expand_domains = []) ~target s =
  Modes.lint_config ~target ~const_pool_domains ~no_expand_domains s

let test_mode_target () =
  let target = Schema.relation "t" [ at ~domain:"nowhere" "v" ] in
  check_fires "target over an unbindable domain" "mode/target-domain-unknown"
    (lint_modes ~target abc_schema);
  let target_ok = Schema.relation "t" [ at ~domain:"da" "v" ] in
  check_clean "target over a schema domain" "mode/target-domain-unknown"
    (lint_modes ~target:target_ok abc_schema)

let test_mode_pools () =
  let target = Schema.relation "t" [ at ~domain:"da" "v" ] in
  check_fires "constant pool over an unknown domain" "mode/const-domain-unknown"
    (lint_modes ~target ~const_pool_domains:[ "nowhere" ] abc_schema);
  check_clean "constant pool over a schema domain" "mode/const-domain-unknown"
    (lint_modes ~target ~const_pool_domains:[ "db" ] abc_schema);
  check_fires "frontier filter over an unknown domain"
    "mode/no-expand-domain-unknown"
    (lint_modes ~target ~no_expand_domains:[ "nowhere" ] abc_schema);
  check_clean "frontier filter over a schema domain"
    "mode/no-expand-domain-unknown"
    (lint_modes ~target ~no_expand_domains:[ "db" ] abc_schema)

let test_mode_inputs () =
  let target = Schema.relation "t" [ at ~domain:"d" "v" ] in
  let keyless =
    Schema.make [ Schema.relation "r" [ at ~domain:"d" "a"; at ~domain:"d" "b" ] ]
  in
  check_fires "relation with neither key nor ind" "mode/no-input-positions"
    (lint_modes ~target keyless);
  check_clean "fd-derived key gives input positions" "mode/no-input-positions"
    (lint_modes ~target:(Schema.relation "t" [ at ~domain:"da" "v" ]) abc_schema)

let test_mode_budget () =
  let target = Schema.relation "t" [ at ~domain:"d" "u"; at ~domain:"d" "v" ] in
  (* five arity-8 relations: each chased constant admits literals that
     introduce seven fresh constants apiece *)
  let wide =
    Schema.make
      (List.init 5 (fun i ->
           Schema.relation
             (Printf.sprintf "r%d" i)
             (List.init 8 (fun j -> at ~domain:"d" (Printf.sprintf "a%d" j)))))
  in
  let budget max_terms =
    { Modes.depth = 2; max_terms; per_relation_cap = 10; max_steps = 10_000 }
  in
  check_fires "wide schema with a large variable budget"
    "mode/saturation-budget"
    (Modes.lint_budget ~budget:(budget (Some 500)) ~target wide);
  check_fires "unbounded saturation (no max_terms)" "mode/saturation-budget"
    (Modes.lint_budget ~budget:(budget None) ~target wide);
  check_clean "default-sized configuration" "mode/saturation-budget"
    (Modes.lint_budget
       ~budget:
         {
           Modes.depth = 2;
           max_terms = Some 60;
           per_relation_cap = 10;
           max_steps = 40_000;
         }
       ~target abc_schema)

let test_mode_inference () =
  (* abc_schema: fd a -> b,c makes "a" the key, so +a -b -c *)
  match Modes.infer abc_schema with
  | [ m ] ->
      check Alcotest.(list string) "key" [ "a" ] m.Modes.key;
      check Alcotest.string "rendered mode" "r(+a:da, -b:db, -c:dc)"
        (Modes.to_string m)
  | ms -> Alcotest.failf "expected one mode, got %d" (List.length ms)

let test_mode_polarity () =
  (* one schema exercising every polarity source: "a" is a key, "p" an
     IND position, "c"/"z" plain attributes; const_domains overrides *)
  let s =
    Schema.make
      ~fds:[ { Schema.fd_rel = "r"; fd_lhs = [ "a" ]; fd_rhs = [ "c" ] } ]
      ~inds:[ Schema.ind_subset "q" [ "p" ] "r" [ "a" ] ]
      [
        Schema.relation "r" [ at ~domain:"da" "a"; at ~domain:"dc" "c" ];
        Schema.relation "q" [ at ~domain:"da" "p"; at ~domain:"dz" "z" ];
      ]
  in
  let io rel attr const_domains =
    let ms = Modes.infer ~const_domains s in
    let m = List.find (fun (m : Modes.t) -> String.equal m.Modes.rel rel) ms in
    (List.find
       (fun (a : Modes.arg_mode) -> String.equal a.Modes.attr attr)
       m.Modes.args)
      .Modes.io
  in
  (* positive direction: keys and IND positions become inputs *)
  check Alcotest.bool "key attr is input" true (io "r" "a" [] = Modes.Input);
  check Alcotest.bool "ind attr is input" true (io "q" "p" [] = Modes.Input);
  (* negative direction: plain attributes are outputs, never inputs *)
  check Alcotest.bool "fd-rhs attr is output" true (io "r" "c" [] = Modes.Output);
  check Alcotest.bool "plain attr is output" true (io "q" "z" [] = Modes.Output);
  (* the constant override wins in both directions *)
  check Alcotest.bool "const domain beats output" true
    (io "r" "c" [ "dc" ] = Modes.Constant);
  check Alcotest.bool "const domain beats input" true
    (io "q" "p" [ "da" ] = Modes.Constant);
  check Alcotest.bool "unrelated attrs untouched by the override" true
    (io "q" "z" [ "dc" ] = Modes.Output)

(* ---------------- source lints -------------------------------------- *)

let test_source_lint () =
  let rule = "backend/direct-instance-access" in
  check_fires "Instance lookup in evaluation code" rule
    (Analyze.source ~path:"lib/logic/bad.ml"
       "let eval inst = Instance.find_matching inst \"r\" []");
  check_fires "qualified Store lookup" rule
    (Analyze.source ~path:"lib/ilp/bad.ml"
       "let probe s = Castor_relational.Store.find s \"r\" 0 v");
  check_clean "Backend seam access" rule
    (Analyze.source ~path:"lib/logic/good.ml"
       "let eval (b : Backend.t) =\n\
        \  let module B = (val b) in\n\
        \  B.find_matching \"r\" []");
  check_clean "mutation entry points stay legal" rule
    (Analyze.source ~path:"test/setup.ml"
       "let build () = Instance.add inst \"r\" [| v |]");
  check_clean "banned name inside a comment" rule
    (Analyze.source ~path:"lib/logic/doc.ml"
       "(* Instance.find is what the seam replaces (* nested \
        Store.tuples *) *) let x = 1");
  check_clean "banned name inside a string literal" rule
    (Analyze.source ~path:"lib/logic/msg.ml"
       "let m = \"use Instance.find_matching here\"");
  check_clean "the storage layer itself is exempt" rule
    (Analyze.source ~path:"lib/relational/backend.ml"
       "let f inst = Instance.find_matching inst \"r\" []");
  (* diagnostics carry positions, and the rule is catalogued *)
  (match
     Analyze.source ~path:"lib/x.ml" "let a = 1\nlet b = Instance.find i \"r\""
   with
  | [ d ] -> (
      match d.Diagnostic.span with
      | Some s ->
          check Alcotest.int "line" 2 s.Diagnostic.line;
          check Alcotest.int "col" 9 s.Diagnostic.col
      | None -> Alcotest.fail "source diagnostic lost its span")
  | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds));
  check Alcotest.bool "rule is catalogued" true (Analyze.find_rule rule <> None)

(* ---------------- AST lint: parallelism / generation / seed rules --- *)

module Ast_engine = Castor_analysis.Ast_engine
module Ast_callgraph = Castor_analysis.Ast_callgraph

let src ?(path = "lib/learners/x.ml") text = Analyze.source ~path text

let test_par_shared () =
  let rule = "par/shared-mutable-state" in
  check_fires "global Hashtbl mutated in a spawned closure" rule
    (src
       "let tbl : (int, int) Hashtbl.t = Hashtbl.create 8\n\
        let go () = Domain.spawn (fun () -> Hashtbl.replace tbl 1 1)");
  check_fires "captured mutable field read inside a Parallel fan-out" rule
    (src
       "type cfg = { mutable knob : int }\n\
        let run c = Parallel.init ~domains:2 4 (fun i -> i + c.knob)");
  check_clean "Atomic globals are domain-safe" rule
    (src
       "let hits = Atomic.make 0\n\
        let go () = Domain.spawn (fun () -> Atomic.incr hits)");
  check_clean "mutable global untouched by worker code" rule
    (src "let tbl = Hashtbl.create 8\nlet bump () = Hashtbl.replace tbl 1 1");
  check_clean "snapshot taken before the fan-out" rule
    (src
       "type cfg = { mutable knob : int }\n\
        let run c =\n\
       \  let knob = c.knob in\n\
       \  Parallel.init ~domains:2 4 (fun i -> i + knob)");
  check_clean "lock-disciplined access" rule
    (src
       "let tbl = Hashtbl.create 8\n\
        let m = Mutex.create ()\n\
        let go () =\n\
       \  Domain.spawn (fun () ->\n\
       \      Mutex.lock m;\n\
       \      Hashtbl.replace tbl 1 1;\n\
       \      Mutex.unlock m)")

let test_par_shared_cross_module () =
  let rule = "par/shared-mutable-state" in
  (* the worker closure lives in beta.ml; the racy global and the
     firing access live in alpha.ml — only a whole-set run sees it *)
  let groups =
    Analyze.sources
      [
        ( "lib/a/alpha.ml",
          "let shared : int list ref = ref []\n\
           let note x = shared := x :: !shared" );
        ( "lib/b/beta.ml",
          "let run () = Parallel.map ~domains:2 (fun i -> Alpha.note i) [| 1 |]"
        );
      ]
  in
  check_fires "cross-module reachability implicates alpha.ml" rule
    (List.assoc "lib/a/alpha.ml" groups);
  check_clean "the spawning module itself is clean" rule
    (List.assoc "lib/b/beta.ml" groups);
  (* same pair, single-file runs: the race is invisible by design *)
  check_clean "single-file run cannot see the cross-module race" rule
    (src ~path:"lib/a/alpha.ml"
       "let shared : int list ref = ref []\n\
        let note x = shared := x :: !shared")

let test_par_fatal () =
  let rule = "par/swallowed-fatal" in
  check_fires "wildcard handler in a spawning module" rule
    (src
       "let go f = Parallel.map ~domains:2 f [| 1 |]\n\
        let safe f = try f () with _ -> None");
  check_clean "fatal exceptions screened first" rule
    (src
       "let is_fatal = function Out_of_memory | Stack_overflow -> true | _ -> \
        false\n\
        let go f = Parallel.map ~domains:2 f [| 1 |]\n\
        let safe f = try f () with e when is_fatal e -> raise e | _ -> None");
  check_clean "re-raising wildcard is not a swallow" rule
    (src
       "let go f = Parallel.map ~domains:2 f [| 1 |]\n\
        let safe f = try f () with e -> raise e");
  check_clean "wildcard handler outside spawning modules" rule
    (src "let safe f = try f () with _ -> None")

let test_gen_unchecked () =
  let rule = "gen/unchecked-mutation" in
  check_fires "mutation beside cached coverage reads" rule
    (src
       "let stale cov inst c =\n\
       \  let v = Coverage.vector cov c in\n\
       \  Instance.add inst \"r\" [| v |];\n\
       \  Coverage.covered_count cov c");
  check_clean "refresh consulted after the mutation" rule
    (src
       "let fresh cov inst c =\n\
       \  Instance.add inst \"r\" [||];\n\
       \  Coverage.refresh cov;\n\
       \  Coverage.covered_count cov c");
  check_clean "mutation without coverage reads" rule
    (src "let load inst = Instance.add inst \"r\" [||]")

let test_seed_ambient () =
  let rule = "seed/ambient-randomness" in
  check_fires "global-state Random.int" rule
    (src "let pick xs = List.nth xs (Random.int (List.length xs))");
  check_fires "Random.self_init" rule (src "let () = Random.self_init ()");
  check_clean "explicit Random.State is reproducible" rule
    (src "let pick st xs = List.nth xs (Random.State.int st (List.length xs))");
  check_clean "the CASTOR_TEST_SEED plumbing is exempt" rule
    (src
       "let seed =\n\
       \  match Sys.getenv_opt \"CASTOR_TEST_SEED\" with\n\
       \  | Some s -> int_of_string s\n\
       \  | None -> 42\n\
        let roll () = Random.int 6")

let test_suppression () =
  let rule = "par/shared-mutable-state" in
  let body =
    "let go () = Domain.spawn (fun () -> Hashtbl.replace tbl 1 1)"
  in
  let tbl = "let tbl : (int, int) Hashtbl.t = Hashtbl.create 8\n" in
  check_fires "unsuppressed baseline" rule (src (tbl ^ body));
  check_clean "line-above suppression" rule
    (src (tbl ^ "(* castor-lint: disable=par/shared-mutable-state *)\n" ^ body));
  check_clean "trailing same-line disable=all" rule
    (src (tbl ^ body ^ " (* castor-lint: disable=all *)"));
  check_fires "suppressing another rule does not mute this one" rule
    (src (tbl ^ "(* castor-lint: disable=gen/unchecked-mutation *)\n" ^ body))

let test_callgraph () =
  let ctx =
    Ast_engine.context
      [
        ( "alpha.ml",
          "let helper x = x + 1\nlet entry y = helper (Beta.shared y)" );
        ("beta.ml", "let shared z = z * 2\nlet lonely = 3");
      ]
  in
  let calls = Ast_callgraph.calls ctx.Ast_engine.graph "Alpha.entry" in
  check Alcotest.bool "entry calls its module-local helper" true
    (List.mem "Alpha.helper" calls);
  check Alcotest.bool "entry calls the cross-module function" true
    (List.mem "Beta.shared" calls);
  let reach = Ast_callgraph.reachable ctx.Ast_engine.graph [ "Alpha.entry" ] in
  check Alcotest.bool "reachability crosses modules" true
    (Hashtbl.mem reach "Beta.shared");
  check Alcotest.bool "unreferenced bindings stay unreachable" false
    (Hashtbl.mem reach "Beta.lonely")

(* the real sources the satellite fixes touched: the detector must run
   clean over them (regression for the n_workers race, the swallowed
   caller-side fatal, and the unsnapshotted fan-out knobs) *)

let lib_source rel =
  let candidates = [ "../" ^ rel; rel ] in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.failf "source %s not reachable from the test cwd" rel
  | Some f ->
      let ic = open_in_bin f in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> (rel, really_input_string ic (in_channel_length ic)))

let test_fixed_sources_clean () =
  let groups =
    Analyze.sources
      (List.map lib_source
         [ "lib/ilp/parallel.ml"; "lib/ilp/coverage.ml"; "lib/fuzz/sweep.ml" ])
  in
  List.iter
    (fun (path, diags) ->
      check Alcotest.int
        (Fmt.str "%s is diagnostic-free" path)
        0 (List.length diags))
    groups

let test_seeded_race_detected () =
  let _, orig = lib_source "lib/ilp/parallel.ml" in
  let text =
    orig
    ^ "\nlet seeded : (int, int) Hashtbl.t = Hashtbl.create 16\n\
       let _kick () = Domain.spawn (fun () -> Hashtbl.replace seeded 1 1)\n"
  in
  let diags = Analyze.source ~path:"lib/ilp/parallel.ml" text in
  check_fires "seeded unprotected Hashtbl is caught" "par/shared-mutable-state"
    diags;
  check Alcotest.bool "finding is error severity (CLI exits nonzero)" true
    (Diagnostic.has_errors diags);
  (* the span must point at the [seeded] use inside the closure *)
  let needle = "Hashtbl.replace seeded" in
  let rec find i =
    if i + String.length needle > String.length text then
      Alcotest.fail "seeded marker not found"
    else if String.sub text i (String.length needle) = needle then i
    else find (i + 1)
  in
  let at = find 0 + String.length "Hashtbl.replace " in
  let line = ref 1 and bol = ref 0 in
  String.iteri
    (fun i c ->
      if i < at && c = '\n' then begin
        incr line;
        bol := i + 1
      end)
    text;
  let d =
    List.find
      (fun (d : Diagnostic.t) ->
        d.Diagnostic.rule = "par/shared-mutable-state")
      diags
  in
  match d.Diagnostic.span with
  | None -> Alcotest.fail "seeded race diagnostic lost its span"
  | Some s ->
      check Alcotest.int "span line" !line s.Diagnostic.line;
      check Alcotest.int "span col" (at - !bol + 1) s.Diagnostic.col

(* ---------------- catalog ------------------------------------------- *)

let test_catalog () =
  let ids = List.map (fun (r : Analyze.rule) -> r.Analyze.id) Analyze.rules in
  check Alcotest.int "catalog ids are unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  check Alcotest.bool "catalog has at least 8 rules" true (List.length ids >= 8);
  (* everything the analyzers can emit is documented in the catalog *)
  let fired =
    rules_of
      (Schema_lint.check (fd_ind_schema ~with_image_fd:false)
      @ Clause_lint.check ~schema:abc_schema
          (cl "t(W) :- r(X,X,Y), r(Z), nosuch(Y).")
      @ lint_modes
          ~target:(Schema.relation "t" [ at ~domain:"nowhere" "v" ])
          ~const_pool_domains:[ "ghost" ] abc_schema
      @ Analyze.clauses_text "t(X :-")
  in
  List.iter
    (fun id ->
      check Alcotest.bool (Fmt.str "%s is in the catalog" id) true
        (Analyze.find_rule id <> None))
    fired;
  check Alcotest.bool "a single broken config trips 8+ distinct rules" true
    (List.length fired >= 8)

(* ---------------- pre-learning gate --------------------------------- *)

let test_problem_gate () =
  let module Problem = Castor_learners.Problem in
  let module Examples = Castor_ilp.Examples in
  let inst = abc_instance () in
  let train =
    Examples.make ~pos:[ Atom.make "t" [ Term.Const (Value.str "a0") ] ] ~neg:[]
  in
  let bad_target = Schema.relation "t" [ at ~domain:"nowhere" "v" ] in
  (match Problem.make ~gate:`Strict inst bad_target train with
  | exception Problem.Rejected diags ->
      check Alcotest.bool "rejection carries the mode diagnostic" true
        (fires "mode/target-domain-unknown" diags)
  | _ -> Alcotest.fail "`Strict gate let a broken target through");
  let p = Problem.make ~gate:`Off inst bad_target train in
  check Alcotest.int "`Off skips the analysis" 1 (Examples.n_pos p.Problem.train);
  let good_target = Schema.relation "t" [ at ~domain:"da" "v" ] in
  let p2 = Problem.make ~gate:`Strict inst good_target train in
  check Alcotest.int "`Strict passes a clean config" 1
    (Examples.n_pos p2.Problem.train)

(* ---------------- pruner safety ------------------------------------- *)

let test_prune_counts () =
  (* p(X,Y) is absorbed by p(X,Z) — Y is private to it — while p(X,Z)
     is pinned by q(Z,W) *)
  let c = cl "t(X) :- p(X,Y), p(X,Z), q(Z,W)." in
  let pruned, n = Clause_lint.prune_redundant c in
  check Alcotest.int "one absorbed literal pruned" 1 n;
  check Alcotest.int "two body literals left" 2 (List.length pruned.Clause.body);
  let c2 = cl "t(X) :- p(X,Y), q(Y,W)." in
  let pruned2, n2 = Clause_lint.prune_redundant c2 in
  check Alcotest.int "nothing prunable" 0 n2;
  check Alcotest.int "body intact" 2 (List.length pruned2.Clause.body)

let test_prune_fixpoint () =
  let c = cl "t(X) :- p(X,A), p(X,B), p(X,C), p(X,D)." in
  let pruned, n = Clause_lint.prune_redundant c in
  check Alcotest.int "chain collapses in one pass" 3 n;
  let again, m = Clause_lint.prune_redundant pruned in
  check Alcotest.int "pruning is idempotent" 0 m;
  check Alcotest.int "stable body" (List.length pruned.Clause.body)
    (List.length again.Clause.body)

let prop_prune_preserves_coverage =
  qt ~count:300 "pruning never changes a coverage outcome"
    QCheck2.Gen.(pair clause_gen ground_clause_gen)
    (fun (c, d) ->
      let pruned, _ = Clause_lint.prune_redundant c in
      Subsume.subsumes c d = Subsume.subsumes pruned d)

let prop_prune_equivalent =
  qt ~count:200 "the pruned clause is θ-equivalent to the original"
    clause_gen
    (fun c ->
      let pruned, _ = Clause_lint.prune_redundant c in
      Subsume.equivalent c pruned)

let prop_prune_clean =
  qt ~count:200 "the pruned clause has no redundant literals left"
    clause_gen
    (fun c ->
      let pruned, _ = Clause_lint.prune_redundant c in
      Clause_lint.redundant_literal_indices pruned = [])

(* ---------------- suite --------------------------------------------- *)

let suite =
  [
    tc "clause/unsafe fires and stays quiet" test_unsafe;
    tc "clause/disconnected fires and stays quiet" test_disconnected;
    tc "clause/singleton-var fires and stays quiet" test_singleton;
    tc "clause/duplicate-literal fires and stays quiet" test_duplicate;
    tc "clause/redundant-literal fires and stays quiet" test_redundant;
    tc "clause/determinacy-depth fires and stays quiet" test_depth;
    tc "clause/unknown-relation fires and stays quiet" test_unknown_relation;
    tc "clause/arity-mismatch fires and stays quiet" test_arity;
    tc "clause/domain-conflict fires and stays quiet" test_domain_conflict;
    tc "parse errors become positioned diagnostics" test_parse_error;
    tc "clause lints carry the clause's source span" test_spans;
    tc "schema/duplicate-relation fires and stays quiet" test_duplicate_relation;
    tc "fd declaration lints fire and stay quiet" test_fd_decls;
    tc "ind declaration lints fire and stay quiet" test_ind_decls;
    tc "schema/cyclic-class fires and stays quiet" test_cyclic_class;
    tc "schema/subset-ind-cycle fires and stays quiet" test_subset_cycle;
    tc "schema/fd-ind-mismatch fires and stays quiet" test_fd_ind;
    tc "decomposition lints fire and stay quiet" test_transform_decompose;
    tc "composition lints fire and stay quiet" test_transform_compose;
    tc "mode/target-domain-unknown fires and stays quiet" test_mode_target;
    tc "mode pool lints fire and stay quiet" test_mode_pools;
    tc "mode/no-input-positions fires and stays quiet" test_mode_inputs;
    tc "mode/saturation-budget fires and stays quiet" test_mode_budget;
    tc "modes are inferred from the schema's fds" test_mode_inference;
    tc "inferred polarity: inputs, outputs and the constant override"
      test_mode_polarity;
    tc "backend/direct-instance-access fires and stays quiet" test_source_lint;
    tc "par/shared-mutable-state fires and stays quiet" test_par_shared;
    tc "par/shared-mutable-state crosses modules in whole-set runs"
      test_par_shared_cross_module;
    tc "par/swallowed-fatal fires and stays quiet" test_par_fatal;
    tc "gen/unchecked-mutation fires and stays quiet" test_gen_unchecked;
    tc "seed/ambient-randomness fires and stays quiet" test_seed_ambient;
    tc "castor-lint suppression comments mute matching rules"
      test_suppression;
    tc "the call graph links module-local and cross-module references"
      test_callgraph;
    tc "the fixed parallel/coverage/sweep sources lint clean"
      test_fixed_sources_clean;
    tc "a seeded unprotected Hashtbl in a worker closure is caught, with span"
      test_seeded_race_detected;
    tc "the rule catalog is consistent and 8+ rules fire" test_catalog;
    tc "the pre-learning gate rejects, warns and can be disabled"
      test_problem_gate;
    tc "the pruner counts what it removes" test_prune_counts;
    tc "the pruner reaches a fixpoint in one call" test_prune_fixpoint;
    prop_prune_preserves_coverage;
    prop_prune_equivalent;
    prop_prune_clean;
  ]
