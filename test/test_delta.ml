(* The delta-API battery: the explicit mutation surface of Backend
   (apply / subscribe / generation-from-log) on every substrate, the
   incrementally maintained Datalog views, the planner's statistics
   invalidation on re-base, and the online coverage path — a
   single-tuple add/remove on a non-target relation must patch the
   coverage structure without a full refresh, and random interleaved
   mutation streams must leave the incremental structure bit-for-bit
   equal to a from-scratch rebuild on every backend. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Helpers
module Obs = Castor_obs.Obs
module Examples = Castor_ilp.Examples

let specs = [ Backend.Flat; Backend.Sharded 3; Backend.Columnar ]

let itu a b = Tuple.of_list [ Value.int a; Value.int b ]

(* ---------------- substrate delta units ---------------------------- *)

let substrate_case spec =
  tc
    (Fmt.str "%s: apply logs effective deltas and notifies once"
       (Backend.spec_to_string spec))
    (fun () ->
      let b = Backend.create spec [ ("p", 2) ] in
      let seen = ref [] in
      Backend.subscribe b (fun ds -> seen := !seen @ [ ds ]);
      check Alcotest.int "fresh store at generation 0" 0 (Backend.generation b);
      Backend.apply b [] ;
      check Alcotest.int "empty batch is a no-op" 0 (Backend.generation b);
      check Alcotest.int "empty batch not delivered" 0 (List.length !seen);
      (* duplicate add and absent remove are ineffective: dropped from
         the log and from the notified sub-batch *)
      Backend.apply b
        [
          Delta.add "p" (itu 1 2);
          Delta.add "p" (itu 1 2);
          Delta.remove "p" (itu 3 4);
          Delta.add "p" (itu 5 6);
        ];
      check Alcotest.int "generation = effective deltas" 2
        (Backend.generation b);
      check Alcotest.int "one notification per batch" 1 (List.length !seen);
      check Alcotest.int "only the effective sub-batch delivered" 2
        (List.length (List.hd !seen));
      let module B = (val b : Backend.S) in
      (* the singleton forms are [apply] of one delta *)
      check Alcotest.bool "add of a new tuple" true (B.add "p" (itu 7 8));
      check Alcotest.bool "re-add is ineffective" false (B.add "p" (itu 7 8));
      check Alcotest.bool "remove of a stored tuple" true
        (B.remove "p" (itu 1 2));
      check Alcotest.bool "re-remove is ineffective" false
        (B.remove "p" (itu 1 2));
      check Alcotest.int "only effective singletons logged" 4
        (Backend.generation b);
      check Alcotest.int "one notification per effective singleton" 3
        (List.length !seen);
      check Alcotest.bool "store state reflects the log" true
        (B.mem "p" (itu 5 6) && B.mem "p" (itu 7 8)
        && not (B.mem "p" (itu 1 2))))

let capabilities_suite =
  [
    tc "capabilities describe each substrate honestly" (fun () ->
        let caps spec = Backend.capabilities (Backend.create spec [ ("p", 2) ]) in
        let open Backend in
        check Alcotest.bool "flat: subscription only" true
          (caps Flat = { pushdown = false; partitioned = false; subscription = true });
        check Alcotest.bool "sharded: partitioned + subscription" true
          (caps (Sharded 4)
          = { pushdown = false; partitioned = true; subscription = true });
        check Alcotest.bool "columnar: pushdown + subscription" true
          (caps Columnar
          = { pushdown = true; partitioned = false; subscription = true }));
  ]

let substrate_suite = List.map substrate_case specs @ capabilities_suite

(* ---------------- incrementally maintained Datalog views ------------ *)

let at = Schema.attribute

let edge_schema =
  Schema.make [ Schema.relation "edge" [ at ~domain:"v" "x"; at ~domain:"v" "y" ] ]

let c i = Value.str (Printf.sprintf "c%d" i)

let etu i j = Tuple.of_list [ c i; c j ]

(* path(X,Y) :- edge(X,Y).  path(X,Z) :- edge(X,Y), path(Y,Z). *)
let path_program =
  let va x = Term.Var x in
  [
    Clause.make (Atom.make "path" [ va "X"; va "Y" ])
      [ Atom.make "edge" [ va "X"; va "Y" ] ];
    Clause.make
      (Atom.make "path" [ va "X"; va "Z" ])
      [ Atom.make "edge" [ va "X"; va "Y" ]; Atom.make "path" [ va "Y"; va "Z" ] ];
  ]

let path_set v =
  Datalog.view_facts v "path" |> List.map Atom.to_string |> List.sort compare

let expect_paths pairs =
  List.map (fun (i, j) -> Atom.to_string (Atom.of_tuple "path" (etu i j))) pairs
  |> List.sort compare

let view_suite =
  [
    tc "a watched view absorbs insertions semi-naively" (fun () ->
        let inst = Instance.create edge_schema in
        Instance.add inst "edge" (etu 0 1);
        Instance.add inst "edge" (etu 1 2);
        let v = Datalog.materialize inst path_program in
        check Alcotest.(list string) "initial fixpoint"
          (expect_paths [ (0, 1); (1, 2); (0, 2) ])
          (path_set v);
        let b = Backend.of_instance inst in
        Datalog.watch v b;
        let rec0 = Obs.Counter.value Datalog.c_view_recomputes in
        Backend.apply b [ Delta.add "edge" (etu 2 3) ];
        check Alcotest.(list string) "extended with the new edge's closure"
          (expect_paths [ (0, 1); (1, 2); (0, 2); (2, 3); (1, 3); (0, 3) ])
          (path_set v);
        check Alcotest.int "adds-only maintenance never recomputes" rec0
          (Obs.Counter.value Datalog.c_view_recomputes));
    tc "a deletion falls back to a full recomputation" (fun () ->
        let inst = Instance.create edge_schema in
        Instance.add inst "edge" (etu 0 1);
        Instance.add inst "edge" (etu 1 2);
        let v = Datalog.materialize inst path_program in
        let b = Backend.of_instance inst in
        Datalog.watch v b;
        let rec0 = Obs.Counter.value Datalog.c_view_recomputes in
        Backend.apply b [ Delta.remove "edge" (etu 0 1); Delta.add "edge" (etu 2 3) ];
        check Alcotest.(list string) "retracted paths are gone"
          (expect_paths [ (1, 2); (2, 3); (1, 3) ])
          (path_set v);
        check Alcotest.int "one recompute counted" (rec0 + 1)
          (Obs.Counter.value Datalog.c_view_recomputes));
  ]

(* ---------------- the pq world (mirrors test_batch) ----------------- *)

let pq_schema =
  Schema.make
    [
      Schema.relation "p" [ at ~domain:"d" "x"; at ~domain:"d" "y" ];
      Schema.relation "q" [ at ~domain:"d" "x"; at ~domain:"d" "y" ];
    ]

let random_problem seed =
  let rng = Random.State.make [| seed |] in
  let inst = Instance.create pq_schema in
  let n_tuples = 10 + Random.State.int rng 20 in
  for _ = 1 to n_tuples do
    let rel = if Random.State.bool rng then "p" else "q" in
    Instance.add inst rel
      (Tuple.of_list
         [ c (Random.State.int rng 8); c (Random.State.int rng 8) ])
  done;
  let examples =
    Array.init 8 (fun i -> Atom.of_tuple "t" (Tuple.of_list [ c i ]))
  in
  (inst, examples)

let candidates inst params (examples : Atom.t array) n =
  let take k l =
    let rec go k = function
      | x :: tl when k > 0 -> x :: go (k - 1) tl
      | _ -> []
    in
    go k l
  in
  List.concat_map
    (fun i ->
      let bc = Bottom.bottom_clause ~params inst examples.(i) in
      List.map
        (fun k -> Clause.make bc.Clause.head (take k bc.Clause.body))
        [ 0; 1; 2; 4; List.length bc.Clause.body ])
    (List.init (min n (Array.length examples)) Fun.id)

let va x = Term.Var x

let p_clause =
  Clause.make (Atom.make "t" [ va "A" ]) [ Atom.make "p" [ va "A"; va "B" ] ]

(* ---------------- planner statistics invalidation ------------------- *)

let planner_suite =
  [
    tc "set_backend drops the planner's memoized statistics" (fun () ->
        Planner.invalidate_statistics ();
        check Alcotest.int "clean slate" 0 (Planner.statistics_size ());
        let inst, examples = random_problem 3 in
        let cov =
          Coverage.build ~params:Bottom.default_params
            ~backend:(Backend.Sharded 2) inst examples
        in
        (* a constant-bearing pattern makes cost estimation probe
           [distinct_count] on the (hash, non-pushdown) example store,
           which lands in the planner's global memo *)
        let with_const =
          Clause.make (Atom.make "t" [ va "A" ])
            [ Atom.make "p" [ va "A"; Term.Const (c 1) ] ]
        in
        ignore
          (Planner.choose ~batch_enabled:true ~ex_store:(Coverage.store cov)
             ~n_undecided:4 ~avg_bottom_len:3.0 with_const);
        check Alcotest.bool "memo populated by estimation" true
          (Planner.statistics_size () > 0);
        let inv0 = Obs.Counter.value Planner.c_stat_invalidations in
        Coverage.set_backend cov (Backend.Sharded 4);
        check Alcotest.int "re-base drops every memoized statistic" 0
          (Planner.statistics_size ());
        check Alcotest.int "and counts the invalidation" (inv0 + 1)
          (Obs.Counter.value Planner.c_stat_invalidations));
  ]

(* ---------------- online coverage: the acceptance path -------------- *)

let online_suite =
  [
    tc "single-tuple add/remove on a non-target relation never full-refreshes"
      (fun () ->
        let inst = Instance.create pq_schema in
        Instance.add inst "p" (Tuple.of_list [ c 0; c 1 ]);
        let examples =
          [|
            Atom.of_tuple "t" (Tuple.of_list [ c 0 ]);
            Atom.of_tuple "t" (Tuple.of_list [ c 1 ]);
          |]
        in
        let cov =
          Coverage.build ~params:Bottom.default_params inst examples
        in
        check Alcotest.(list bool) "baseline" [ true; false ]
          (Array.to_list (Coverage.vector cov p_clause));
        let full0 = Obs.Counter.value Coverage.c_full_refreshes in
        let applied0 = Obs.Counter.value Coverage.c_delta_applied in
        Instance.add inst "p" (Tuple.of_list [ c 1; c 0 ]);
        check Alcotest.(list bool) "add patched in" [ true; true ]
          (Array.to_list (Coverage.vector cov p_clause));
        ignore (Instance.remove inst "p" (Tuple.of_list [ c 0; c 1 ]));
        check Alcotest.(list bool) "remove patched in" [ false; true ]
          (Array.to_list (Coverage.vector cov p_clause));
        check Alcotest.int "zero full refreshes" full0
          (Obs.Counter.value Coverage.c_full_refreshes);
        check Alcotest.int "both deltas absorbed incrementally"
          (applied0 + 2)
          (Obs.Counter.value Coverage.c_delta_applied));
    tc "memoized vectors are lazily patched, not recomputed" (fun () ->
        let inst = Instance.create pq_schema in
        Instance.add inst "p" (Tuple.of_list [ c 0; c 1 ]);
        Instance.add inst "q" (Tuple.of_list [ c 2; c 2 ]);
        let examples =
          Array.init 3 (fun i -> Atom.of_tuple "t" (Tuple.of_list [ c i ]))
        in
        let cov =
          Coverage.build ~params:Bottom.default_params inst examples
        in
        ignore (Coverage.vector cov p_clause);
        let patches0 = Obs.Counter.value Coverage.c_cache_patches in
        let misses0 = Obs.Counter.value Coverage.c_cache_misses in
        (* this delta only touches example 2's neighborhood (constant
           c2): the cached p-vector must be patched at that position
           alone, not recomputed as a miss *)
        Instance.add inst "p" (Tuple.of_list [ c 2; c 0 ]);
        check Alcotest.(list bool) "patched bits are right"
          [ true; false; true ]
          (Array.to_list (Coverage.vector cov p_clause));
        check Alcotest.int "served by the patch path" (patches0 + 1)
          (Obs.Counter.value Coverage.c_cache_patches);
        check Alcotest.int "not by a cache miss" misses0
          (Obs.Counter.value Coverage.c_cache_misses));
  ]

(* ---------------- mutation-stream differential ---------------------- *)

(* The tentpole's pin: after an interleaved add/remove stream through
   the delta API, the incrementally maintained structure answers every
   candidate exactly like a from-scratch rebuild of the mutated
   instance — on every backend, with zero full refreshes. *)
let differential backend seed ~interleave =
  let params = Bottom.default_params in
  let inst, examples = random_problem seed in
  let ex_t = Examples.make ~pos:(Array.to_list examples) ~neg:[] in
  let cov = Coverage.build ~params ~backend inst examples in
  let cands = candidates inst params examples 3 in
  (* warm the memo so the stream also exercises lazy patching *)
  List.iter (fun cl -> ignore (Coverage.vector cov cl)) cands;
  let stream = Examples.mutation_stream ~seed:(seed + 1) ~length:10 inst ex_t in
  let full0 = Obs.Counter.value Coverage.c_full_refreshes in
  let b = Backend.of_instance inst in
  if interleave then
    (* one delta per generation, queries interleaved with mutations *)
    List.iteri
      (fun i d ->
        Backend.apply b [ d ];
        if i mod 3 = 0 then
          ignore (Coverage.vector cov (List.nth cands (i mod List.length cands))))
      stream
  else Backend.apply b stream;
  let fresh = Coverage.build ~params ~backend inst examples in
  Obs.Counter.value Coverage.c_full_refreshes = full0
  && List.for_all
       (fun cl ->
         Array.to_list (Coverage.vector cov cl)
         = Array.to_list (Coverage.vector fresh cl))
       cands

let stream_suite =
  [
    qt ~count:12 "batched mutation stream: incremental == rebuilt, no full refresh"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        List.for_all
          (fun backend -> differential backend seed ~interleave:false)
          specs);
    qt ~count:12 "interleaved mutation stream: incremental == rebuilt, no full refresh"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        List.for_all
          (fun backend -> differential backend seed ~interleave:true)
          specs);
  ]

let suite =
  substrate_suite @ view_suite @ planner_suite @ online_suite @ stream_suite
