(* Tests for the ILP substrate: examples, bottom clauses, coverage,
   parallel map, scoring, the covering loop, armg, negative
   reduction. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Helpers

let v s = Term.Var s

let k s = Term.Const (Value.str s)

(* family fixture *)
let family = Castor_datasets.Family.generate ()

let family_inst = family.Castor_datasets.Dataset.instance

let first_pos = family.Castor_datasets.Dataset.examples.Examples.pos.(0)

(* ------------------------------ examples --------------------------- *)

let examples_suite =
  [
    tc "folds partition the data" (fun () ->
        let ex = family.Castor_datasets.Dataset.examples in
        let folds = Examples.folds ~seed:1 5 ex in
        check Alcotest.int "five folds" 5 (List.length folds);
        List.iter
          (fun (train, test) ->
            check Alcotest.int "pos partition" (Examples.n_pos ex)
              (Examples.n_pos train + Examples.n_pos test);
            check Alcotest.int "neg partition" (Examples.n_neg ex)
              (Examples.n_neg train + Examples.n_neg test))
          folds);
    tc "subsample bounds sizes" (fun () ->
        let ex = family.Castor_datasets.Dataset.examples in
        let s = Examples.subsample ~seed:2 ~pos:5 ~neg:7 ex in
        check Alcotest.int "pos" 5 (Examples.n_pos s);
        check Alcotest.int "neg" 7 (Examples.n_neg s));
    qt ~count:20 "shuffle permutes" QCheck2.Gen.(int_range 1 50) (fun n ->
        let rng = Random.State.make [| n |] in
        let arr = Array.init n (fun i -> i) in
        let sh = Examples.shuffle rng arr in
        List.sort compare (Array.to_list sh) = List.init n Fun.id);
    tc "closed-world negatives avoid the positives" (fun () ->
        let ds = family in
        let neg =
          Examples.closed_world_negatives ~seed:5 family_inst
            ds.Castor_datasets.Dataset.target
            ds.Castor_datasets.Dataset.examples.Examples.pos
        in
        check Alcotest.bool "nonempty" true (Array.length neg > 0);
        Array.iter
          (fun n ->
            check Alcotest.bool "not positive" false
              (Array.exists (Atom.equal n)
                 ds.Castor_datasets.Dataset.examples.Examples.pos);
            check Alcotest.string "target relation"
              ds.Castor_datasets.Dataset.target.Castor_relational.Schema.rname
              n.Atom.rel)
          neg);
    tc "closed-world negatives respect the ratio" (fun () ->
        let ds = family in
        let pos = ds.Castor_datasets.Dataset.examples.Examples.pos in
        let neg =
          Examples.closed_world_negatives ~seed:5 ~ratio:3 family_inst
            ds.Castor_datasets.Dataset.target pos
        in
        check Alcotest.int "3x" (3 * Array.length pos) (Array.length neg));
  ]

(* ---------------------------- bottom clause ------------------------- *)

let bottom_suite =
  [
    tc "saturation head is the example" (fun () ->
        let sat = Bottom.saturation ~params:Bottom.default_params family_inst first_pos in
        check Alcotest.bool "head" true (Atom.equal sat.Clause.head first_pos));
    tc "saturation body is ground" (fun () ->
        let sat = Bottom.saturation ~params:Bottom.default_params family_inst first_pos in
        check Alcotest.bool "ground" true (List.for_all Atom.is_ground sat.Clause.body));
    tc "depth 0 gives empty body" (fun () ->
        let sat =
          Bottom.saturation
            ~params:{ Bottom.default_params with depth = 0 }
            family_inst first_pos
        in
        check Alcotest.int "empty" 0 (Clause.length sat));
    tc "deeper saturations contain shallower ones" (fun () ->
        let p d = { Bottom.default_params with depth = d } in
        let s1 = Bottom.saturation ~params:(p 1) family_inst first_pos in
        let s2 = Bottom.saturation ~params:(p 2) family_inst first_pos in
        check Alcotest.bool "monotone" true
          (List.for_all
             (fun a -> List.exists (Atom.equal a) s2.Clause.body)
             s1.Clause.body));
    tc "max_terms budget caps constants" (fun () ->
        let growths0 = Castor_obs.Obs.Counter.value Bottom.c_budget_growths in
        let sat =
          Bottom.saturation
            ~params:{ Bottom.default_params with max_terms = Some 8; depth = 5 }
            family_inst first_pos
        in
        let consts =
          List.fold_left
            (fun acc a -> List.fold_left (fun acc c -> Value.Set.add c acc) acc (Atom.constants a))
            Value.Set.empty sat.Clause.body
        in
        (* a truncated saturation retries with a doubled budget (at
           most Bottom.max_budget_growths times), and the budget is
           checked between iterations — so the bound is the maximally
           grown budget plus a modest final-iteration overshoot *)
        check Alcotest.bool "budget grew on truncation" true
          (Castor_obs.Obs.Counter.value Bottom.c_budget_growths > growths0);
        check Alcotest.bool "bounded" true (Value.Set.cardinal consts < 128));
    tc "a grown budget reaches the untruncated saturation" (fun () ->
        (* family saturates at ~103 constants from this example; a
           budget of 20 is cut, but two doublings reach 80 and the
           pass completes — bit-for-bit the unbounded result, which is
           what makes Lemma 7.5 unconditional in practice *)
        let bounded =
          Bottom.saturation
            ~params:{ Bottom.default_params with max_terms = Some 20; depth = 5 }
            family_inst first_pos
        in
        let unbounded =
          Bottom.saturation
            ~params:{ Bottom.default_params with max_terms = None; depth = 5 }
            family_inst first_pos
        in
        check Alcotest.string "adaptively grown == unbounded"
          (Clause.to_string unbounded)
          (Clause.to_string bounded));
    tc "no_expand_domains keeps attribute constants off the frontier" (fun () ->
        let with_filter =
          Bottom.saturation
            ~params:
              { Bottom.default_params with no_expand_domains = [ "gender"; "age" ] }
            family_inst first_pos
        in
        let without =
          Bottom.saturation ~params:Bottom.default_params family_inst first_pos
        in
        check Alcotest.bool "filtered is smaller" true
          (Clause.length with_filter <= Clause.length without));
    tc "variabilize keeps const_domains constants (Example 6.5)" (fun () ->
        let params =
          { Bottom.default_params with const_domains = [ "gender"; "age" ] }
        in
        let bc = Bottom.bottom_clause ~params family_inst first_pos in
        (* gender literals keep their constant second argument *)
        check Alcotest.bool "has gender constant" true
          (List.exists
             (fun (a : Atom.t) ->
               String.equal a.Atom.rel "gender" && Term.is_const a.Atom.args.(1))
             bc.Clause.body));
    tc "bottom clause subsumes its own saturation" (fun () ->
        let params = Bottom.default_params in
        let sat = Bottom.saturation ~params family_inst first_pos in
        let bc = Bottom.bottom_clause ~params family_inst first_pos in
        check Alcotest.bool "covers seed" true (Subsume.subsumes bc sat));
    tc "expand hook literals are admitted" (fun () ->
        (* chase hook that injects a marker tuple for every parent tuple *)
        let expand rel _tu =
          if String.equal rel "parent" then
            [ ("gender", Tuple.of_list [ Value.str "marker"; Value.str "male" ]) ]
          else []
        in
        let sat =
          Bottom.saturation ~expand ~params:Bottom.default_params family_inst first_pos
        in
        check Alcotest.bool "marker admitted" true
          (List.exists
             (fun (a : Atom.t) ->
               String.equal a.Atom.rel "gender"
               && Term.equal a.Atom.args.(0) (k "marker"))
             sat.Clause.body));
  ]

(* ------------------------------ coverage ---------------------------- *)

let coverage_fixture () =
  let ex = family.Castor_datasets.Dataset.examples in
  Coverage.build ~params:Bottom.default_params family_inst ex.Examples.pos

let grandparent_clause =
  Clause.make
    (Atom.make "grandparent" [ v "x"; v "z" ])
    [ Atom.make "parent" [ v "x"; v "y" ]; Atom.make "parent" [ v "y"; v "z" ] ]

let coverage_suite =
  [
    tc "golden clause covers every positive" (fun () ->
        let cov = coverage_fixture () in
        check Alcotest.int "all covered" (Coverage.length cov)
          (Coverage.covered_count cov grandparent_clause));
    tc "golden clause covers no negative" (fun () ->
        let ex = family.Castor_datasets.Dataset.examples in
        let ncov = Coverage.build ~params:Bottom.default_params family_inst ex.Examples.neg in
        check Alcotest.int "none covered" 0 (Coverage.covered_count ncov grandparent_clause));
    tc "cache returns stable vectors" (fun () ->
        let cov = coverage_fixture () in
        let v1 = Coverage.vector cov grandparent_clause in
        let v2 = Coverage.vector cov grandparent_clause in
        check Alcotest.bool "equal" true (v1 = v2));
    tc "within restricts testing" (fun () ->
        let cov = coverage_fixture () in
        Coverage.set_cache cov false;
        let mask = Array.make (Coverage.length cov) false in
        let v = Coverage.vector ~within:mask cov grandparent_clause in
        check Alcotest.int "nothing" 0 (Coverage.count v));
    tc "assume short-circuits to true" (fun () ->
        let cov = coverage_fixture () in
        Coverage.set_cache cov false;
        let known = Array.make (Coverage.length cov) true in
        let bogus = Clause.make (Atom.make "grandparent" [ v "x"; v "y" ])
            [ Atom.make "parent" [ v "x"; v "x" ] ] in
        let vec = Coverage.vector ~assume:known cov bogus in
        check Alcotest.int "all assumed" (Coverage.length cov) (Coverage.count vec));
    tc "sub shares saturations" (fun () ->
        let cov = coverage_fixture () in
        let sub = Coverage.sub cov [| 0; 2; 4 |] in
        check Alcotest.int "three" 3 (Coverage.length sub);
        check Alcotest.bool "same bottoms" true
          (sub.Coverage.bottoms.(1) == cov.Coverage.bottoms.(2)));
    tc "masked vectors agree with the unmasked vector, cache on and off"
      (fun () ->
        (* gender restriction gives a clause with mixed coverage *)
        let grandfather =
          Clause.make
            (Atom.make "grandparent" [ v "x"; v "z" ])
            (grandparent_clause.Clause.body
            @ [ Atom.make "gender" [ v "x"; k "male" ] ])
        in
        let cov = coverage_fixture () in
        let n = Coverage.length cov in
        List.iter
          (fun cache_on ->
            Coverage.set_cache cov cache_on;
            Coverage.clear_cache cov;
            let full = Coverage.vector cov grandfather in
            let covered = Coverage.count full in
            check Alcotest.bool "coverage is mixed" true
              (covered > 0 && covered < n);
            let mask = Array.init n (fun i -> i mod 3 <> 1) in
            check
              Alcotest.(array bool)
              "within = unmasked restricted to mask"
              (Array.mapi (fun i b -> b && mask.(i)) full)
              (Coverage.vector ~within:mask cov grandfather);
            (* assuming a subset of the truly covered examples must not
               change the answer, only skip their tests *)
            let known = Array.mapi (fun i b -> b && i mod 2 = 0) full in
            check
              Alcotest.(array bool)
              "assume subset gives the exact vector" full
              (Coverage.vector ~assume:known cov grandfather))
          [ true; false ]);
    tc "covers answers from a cached full vector" (fun () ->
        (* regression: covers used to bypass the memo cache and re-run
           a subsumption test per call *)
        Stats.reset ();
        let cov = coverage_fixture () in
        let full = Coverage.vector cov grandparent_clause in
        let s0 = Stats.snapshot () in
        for i = 0 to Coverage.length cov - 1 do
          check Alcotest.bool
            (Printf.sprintf "covers %d agrees with the vector" i)
            full.(i)
            (Coverage.covers cov grandparent_clause i)
        done;
        let d = Stats.diff (Stats.snapshot ()) s0 in
        check Alcotest.int "no new subsumption tests" 0 d.Stats.subsumption_tests;
        check Alcotest.int "every answer was a cache hit" (Coverage.length cov)
          d.Stats.cache_hits);
    tc "α-equivalent clauses share one cache entry" (fun () ->
        Stats.reset ();
        let cov = coverage_fixture () in
        let full = Coverage.vector cov grandparent_clause in
        (* same clause up to variable renaming and body order *)
        let renamed =
          Clause.make
            (Atom.make "grandparent" [ v "gp"; v "gc" ])
            [
              Atom.make "parent" [ v "mid"; v "gc" ];
              Atom.make "parent" [ v "gp"; v "mid" ];
            ]
        in
        let s0 = Stats.snapshot () in
        check Alcotest.(array bool) "same vector" full
          (Coverage.vector cov renamed);
        let d = Stats.diff (Stats.snapshot ()) s0 in
        check Alcotest.int "answered by the cache" 1 d.Stats.cache_hits;
        check Alcotest.int "no new subsumption tests" 0 d.Stats.subsumption_tests);
    tc "subsumption-test counter is exact with 4 forced domains" (fun () ->
        let cov = coverage_fixture () in
        Coverage.set_cache cov false;
        let n = Coverage.length cov in
        let seq = Coverage.vector cov grandparent_clause in
        Coverage.set_domains cov 4;
        Coverage.set_force_parallel cov true;
        for round = 1 to 20 do
          let before = Stats.snapshot () in
          let par = Coverage.vector cov grandparent_clause in
          let d = Stats.diff (Stats.snapshot ()) before in
          check Alcotest.(array bool)
            (Printf.sprintf "round %d: parallel vector = sequential" round)
            seq par;
          check Alcotest.int
            (Printf.sprintf "round %d: exactly one test per example" round)
            n d.Stats.subsumption_tests
        done);
  ]

(* ------------------------------ parallel ---------------------------- *)

let parallel_suite =
  [
    tc "init equals sequential map" (fun () ->
        let f i = (i * 7) mod 13 in
        check Alcotest.(array int) "same" (Array.init 100 f)
          (Parallel.init ~domains:4 100 f));
    tc "tiny arrays run sequentially" (fun () ->
        check Alcotest.(array int) "same" (Array.init 3 Fun.id)
          (Parallel.init ~domains:8 3 Fun.id));
    qt ~count:20 "map equals Array.map" QCheck2.Gen.(list_size (int_bound 40) (int_bound 100))
      (fun l ->
        let arr = Array.of_list l in
        Parallel.map ~domains:3 (fun x -> x * x) arr = Array.map (fun x -> x * x) arr);
    tc "forced init equals Array.init across sizes and domain counts"
      (fun () ->
        let f i = (i * 31) mod 17 in
        List.iter
          (fun n ->
            List.iter
              (fun domains ->
                check Alcotest.(array int)
                  (Printf.sprintf "n=%d domains=%d" n domains)
                  (Array.init n f)
                  (Parallel.init ~force:true ~domains n f))
              [ 1; 2; 4; 8 ])
          [ 0; 1; 7; 8; 1000 ]);
    tc "a raising f propagates and does not poison the pool" (fun () ->
        Alcotest.check_raises "first exception re-raised" (Failure "boom")
          (fun () ->
            ignore
              (Parallel.init ~force:true ~domains:4 100 (fun i ->
                   if i = 50 then failwith "boom" else i)));
        (* the workers survived the failed batch and still compute *)
        check Alcotest.(array int) "pool still works" (Array.init 100 Fun.id)
          (Parallel.init ~force:true ~domains:4 100 Fun.id));
    tc "force overrides the small-array fallback" (fun () ->
        (* regression: ~force:true used to fall back to sequential for
           n < 8, so forced-parallel tests over small arrays never
           exercised worker domains; worker-task submissions are
           observable as ilp.parallel.tasks *)
        let tasks = Parallel.c_tasks in
        let before = Castor_obs.Obs.Counter.value tasks in
        let f i = (i * 5) + 1 in
        check Alcotest.(array int) "small forced init is correct"
          (Array.init 3 f)
          (Parallel.init ~force:true ~domains:4 3 f);
        check Alcotest.bool "worker tasks were submitted" true
          (Castor_obs.Obs.Counter.value tasks > before));
    tc "fatal exceptions propagate and the pool recovers" (fun () ->
        Alcotest.check_raises "Out_of_memory re-raised" Out_of_memory
          (fun () ->
            ignore
              (Parallel.init ~force:true ~domains:4 100 (fun i ->
                   if i = 50 then raise Out_of_memory else i)));
        (* the domain that hit the fatal exception died; the pool
           respawns workers on the next call *)
        check Alcotest.(array int) "pool recovers" (Array.init 100 Fun.id)
          (Parallel.init ~force:true ~domains:4 100 Fun.id));
    tc "worker accounting survives repeated fatal deaths" (fun () ->
        (* regression for the n_workers race flagged by
           par/shared-mutable-state: the caller's unlocked check in
           ensure_workers raced the dying worker's decrement, so a
           fatal batch could leave the pool under- or over-counted.
           With the CAS loop, pools stay correct through repeated
           kill/respawn cycles. *)
        for round = 1 to 5 do
          (try
             ignore
               (Parallel.init ~force:true ~domains:4 64 (fun i ->
                    if i mod 16 = 7 then raise Out_of_memory else i))
           with Out_of_memory -> ());
          check Alcotest.(array int)
            (Printf.sprintf "round %d: pool recovered and is exact" round)
            (Array.init 64 Fun.id)
            (Parallel.init ~force:true ~domains:4 64 Fun.id)
        done);
  ]

(* ------------------------------ scoring ----------------------------- *)

let scoring_suite =
  [
    tc "precision and acceptance thresholds" (fun () ->
        let s = { Scoring.pos_covered = 8; neg_covered = 4 } in
        check (Alcotest.float 1e-9) "precision" (8. /. 12.) (Scoring.precision s);
        check Alcotest.bool "not acceptable at 0.67" false
          (Scoring.acceptable ~min_precision:0.67 ~minpos:2 s);
        check Alcotest.bool "acceptable at 0.5" true
          (Scoring.acceptable ~min_precision:0.5 ~minpos:2 s));
    tc "coverage and compression" (fun () ->
        let s = { Scoring.pos_covered = 10; neg_covered = 3 } in
        check Alcotest.int "coverage" 7 (Scoring.coverage s);
        check Alcotest.int "compression" 5 (Scoring.compression ~len:2 s));
    tc "foil gain positive for purifying literal" (fun () ->
        let before = { Scoring.pos_covered = 10; neg_covered = 10 } in
        let after = { Scoring.pos_covered = 8; neg_covered = 1 } in
        check Alcotest.bool "gain > 0" true (Scoring.foil_gain ~before ~after > 0.));
    tc "foil gain zero when proportions unchanged" (fun () ->
        let before = { Scoring.pos_covered = 8; neg_covered = 8 } in
        let after = { Scoring.pos_covered = 4; neg_covered = 4 } in
        check (Alcotest.float 1e-9) "zero" 0. (Scoring.foil_gain ~before ~after));
  ]

(* --------------------------- covering loop -------------------------- *)

let covering_suite =
  [
    tc "covering loop stops when all positives are covered" (fun () ->
        let calls = ref 0 in
        let learn_clause uncovered =
          incr calls;
          (* one clause covering everything *)
          Some (grandparent_clause, Array.map (fun _ -> true) uncovered)
        in
        let out = Covering.run ~target:"t" ~learn_clause 10 in
        check Alcotest.int "one call" 1 !calls;
        check Alcotest.int "one clause" 1 (List.length out.Covering.definition.Clause.clauses);
        check Alcotest.int "none left" 0 out.Covering.uncovered_pos);
    tc "covering loop stops on no progress" (fun () ->
        let learn_clause uncovered =
          (* claims a clause but covers nothing new *)
          Some (grandparent_clause, Array.map (fun _ -> false) uncovered)
        in
        let out = Covering.run ~target:"t" ~learn_clause 5 in
        check Alcotest.int "no clause kept" 0
          (List.length out.Covering.definition.Clause.clauses));
    tc "covering loop respects max_clauses" (fun () ->
        let i = ref 0 in
        let learn_clause uncovered =
          incr i;
          (* each clause covers exactly one new positive *)
          let vec = Array.make (Array.length uncovered) false in
          if !i - 1 < Array.length vec then vec.(!i - 1) <- true;
          Some (grandparent_clause, vec)
        in
        let out = Covering.run ~target:"t" ~learn_clause ~max_clauses:3 10 in
        check Alcotest.int "capped" 3 (List.length out.Covering.definition.Clause.clauses);
        check Alcotest.int "seven left" 7 out.Covering.uncovered_pos);
  ]

(* ------------------------------- armg ------------------------------- *)

let armg_suite =
  [
    tc "armg output covers the target example" (fun () ->
        let cov = coverage_fixture () in
        let bc =
          Bottom.bottom_clause ~params:Bottom.default_params family_inst first_pos
        in
        match Armg.generalize cov bc 1 with
        | None -> Alcotest.fail "expected a generalization"
        | Some g -> check Alcotest.bool "covers e1" true (Coverage.covers cov g 1));
    tc "armg only removes literals" (fun () ->
        let cov = coverage_fixture () in
        let bc =
          Bottom.bottom_clause ~params:Bottom.default_params family_inst first_pos
        in
        match Armg.generalize cov bc 2 with
        | None -> Alcotest.fail "expected a generalization"
        | Some g ->
            check Alcotest.bool "subset of bottom" true
              (List.for_all
                 (fun l -> List.exists (fun l' -> l == l' || Atom.equal l l') bc.Clause.body)
                 g.Clause.body));
    tc "armg keeps coverage of already-covered example" (fun () ->
        let cov = coverage_fixture () in
        let bc =
          Bottom.bottom_clause ~params:Bottom.default_params family_inst first_pos
        in
        match Armg.generalize cov bc 3 with
        | None -> Alcotest.fail "expected"
        | Some g -> check Alcotest.bool "still covers seed" true (Coverage.covers cov g 0));
  ]

(* -------------------------- negative reduction ---------------------- *)

let negreduce_suite =
  [
    tc "plain reduction drops junk without increasing negatives" (fun () ->
        let ex = family.Castor_datasets.Dataset.examples in
        let ncov = Coverage.build ~params:Bottom.default_params family_inst ex.Examples.neg in
        let junky =
          {
            grandparent_clause with
            Clause.body =
              grandparent_clause.Clause.body
              @ [ Atom.make "gender" [ v "x"; v "g" ] ];
          }
        in
        let baseline = Coverage.covered_count ncov junky in
        let red = Negreduce.reduce ncov junky in
        check Alcotest.bool "shorter or equal" true (Clause.length red <= Clause.length junky);
        check Alcotest.bool "negatives not increased" true
          (Coverage.covered_count ncov red <= baseline));
    tc "safe reduction keeps head variables bound" (fun () ->
        let ex = family.Castor_datasets.Dataset.examples in
        let ncov = Coverage.build ~params:Bottom.default_params family_inst ex.Examples.neg in
        let red = Negreduce.reduce ~require_safe:true ncov grandparent_clause in
        check Alcotest.bool "safe" true (Clause.is_safe red));
  ]

let stats_suite =
  [
    tc "stats counters track coverage work" (fun () ->
        Stats.reset ();
        let before = Stats.snapshot () in
        let cov = coverage_fixture () in
        Coverage.set_cache cov false;
        ignore (Coverage.vector cov grandparent_clause);
        ignore (Coverage.vector cov grandparent_clause);
        let d = Stats.diff (Stats.snapshot ()) before in
        check Alcotest.int "two vectors" 2 d.Stats.coverage_vectors;
        check Alcotest.int "tests = 2n" (2 * Coverage.length cov) d.Stats.subsumption_tests;
        check Alcotest.bool "saturations counted" true (d.Stats.saturations > 0));
    tc "cache hits are counted" (fun () ->
        Stats.reset ();
        let cov = coverage_fixture () in
        ignore (Coverage.vector cov grandparent_clause);
        ignore (Coverage.vector cov grandparent_clause);
        check Alcotest.int "one hit" 1 (Stats.snapshot ()).Stats.cache_hits);
  ]

let suite =
  examples_suite @ bottom_suite @ coverage_suite @ parallel_suite
  @ scoring_suite @ covering_suite @ armg_suite @ negreduce_suite @ stats_suite
