(* Differential battery for the planner-dispatched coverage kernel:
   whatever the backend (flat instance or sharded store, any shard
   count), Coverage.vector with the kernel enabled must agree
   bit-for-bit with the per-example Subsume path, on both a real
   dataset (family) and seeded random problems. Also checks the GYO
   join-forest builder, the semi-join kernel's edge cases, and that
   source-instance mutation invalidates the coverage memo. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Helpers
module Obs = Castor_obs.Obs

let family = Castor_datasets.Family.generate ()

let family_inst = family.Castor_datasets.Dataset.instance

let family_ex = family.Castor_datasets.Dataset.examples

(* every substrate the acceptance battery pins: the flat instance, the
   sharded store at 1/2/4/7 shards, and the interned columnar engine *)
let specs =
  [
    Backend.Flat;
    Backend.Sharded 1;
    Backend.Sharded 2;
    Backend.Sharded 4;
    Backend.Sharded 7;
    Backend.Columnar;
  ]

(* body prefixes of each example's variabilized bottom clause — the
   shapes ARMG actually walks through *)
let candidates inst params (examples : Atom.t array) n =
  let take k l =
    let rec go k = function
      | x :: tl when k > 0 -> x :: go (k - 1) tl
      | _ -> []
    in
    go k l
  in
  List.concat_map
    (fun i ->
      let bc = Bottom.bottom_clause ~params inst examples.(i) in
      List.map
        (fun k -> Clause.make bc.Clause.head (take k bc.Clause.body))
        [ 0; 1; 2; 3; 5; 8; List.length bc.Clause.body ])
    (List.init (min n (Array.length examples)) Fun.id)

(* the kernel answer vs the Subsume answer for one clause, cache off *)
let both cov clause =
  Coverage.set_cache cov false;
  Coverage.set_batch cov true;
  let vb = Coverage.vector cov clause in
  Coverage.set_batch cov false;
  let vs = Coverage.vector cov clause in
  Coverage.set_batch cov true;
  (Array.to_list vb, Array.to_list vs)

let differential_on cov clauses =
  List.iteri
    (fun i clause ->
      let vb, vs = both cov clause in
      check
        Alcotest.(list bool)
        (Fmt.str "clause %d: %s" i (Clause.to_string clause))
        vs vb)
    clauses

let family_suite =
  [
    tc "family: planner coverage == Subsume coverage on every backend"
      (fun () ->
        let params = Bottom.default_params in
        let cands = candidates family_inst params family_ex.Examples.pos 3 in
        let before = Obs.Counter.value Algebra.c_batches in
        List.iter
          (fun backend ->
            let pos =
              Coverage.build ~params ~backend family_inst
                family_ex.Examples.pos
            in
            let neg =
              Coverage.build ~params ~backend family_inst
                family_ex.Examples.neg
            in
            differential_on pos cands;
            differential_on neg cands)
          [ Backend.Flat; Backend.Sharded 4; Backend.Columnar ];
        check Alcotest.bool "kernel actually ran" true
          (Obs.Counter.value Algebra.c_batches > before));
    tc "family: the backend is invisible in coverage vectors" (fun () ->
        let params = Bottom.default_params in
        let cands = candidates family_inst params family_ex.Examples.pos 2 in
        let vectors backend =
          let cov =
            Coverage.build ~params ~backend family_inst
              family_ex.Examples.pos
          in
          Coverage.set_cache cov false;
          List.map (fun c -> Array.to_list (Coverage.vector cov c)) cands
        in
        let v1 = vectors (Backend.Sharded 1) in
        List.iter
          (fun backend ->
            check
              Alcotest.(list (list bool))
              (Backend.spec_to_string backend)
              v1 (vectors backend))
          specs);
  ]

(* ---------------- seeded random problems -------------------------- *)

let at = Schema.attribute

let pq_schema =
  Schema.make
    [
      Schema.relation "p" [ at ~domain:"d" "x"; at ~domain:"d" "y" ];
      Schema.relation "q" [ at ~domain:"d" "x"; at ~domain:"d" "y" ];
    ]

(* a random world over 8 constants plus target examples t(c) for every
   constant, so positives and negatives both occur *)
let random_problem seed =
  let rng = Random.State.make [| seed |] in
  let inst = Instance.create pq_schema in
  let const i = Value.str (Printf.sprintf "c%d" i) in
  let n_tuples = 10 + Random.State.int rng 20 in
  for _ = 1 to n_tuples do
    let rel = if Random.State.bool rng then "p" else "q" in
    Instance.add inst rel
      (Tuple.of_list [ const (Random.State.int rng 8); const (Random.State.int rng 8) ])
  done;
  let examples =
    Array.init 8 (fun i -> Atom.of_tuple "t" (Tuple.of_list [ const i ]))
  in
  (inst, examples)

let random_suite =
  [
    qt ~count:25 "random problems: planner == Subsume on every backend"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        let inst, examples = random_problem seed in
        let params = Bottom.default_params in
        let cands = candidates inst params examples 4 in
        List.for_all
          (fun backend ->
            let cov = Coverage.build ~params ~backend inst examples in
            List.for_all
              (fun clause ->
                let vb, vs = both cov clause in
                vb = vs)
              cands)
          specs);
    qt ~count:25 "random problems: backend invariance of the kernel"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        let inst, examples = random_problem seed in
        let params = Bottom.default_params in
        let cands = candidates inst params examples 3 in
        let vectors backend =
          let cov = Coverage.build ~params ~backend inst examples in
          Coverage.set_cache cov false;
          List.map (fun c -> Array.to_list (Coverage.vector cov c)) cands
        in
        let v1 = vectors (Backend.Sharded 1) in
        List.for_all (fun s -> vectors s = v1) specs);
  ]

(* ---------------- join forest ------------------------------------- *)

let hyper_gen =
  QCheck2.Gen.(
    list_size (int_range 0 6)
      (list_size (int_range 0 4) (map (fun i -> Printf.sprintf "x%d" i) (int_bound 5))))

let forest_suite =
  [
    qt ~count:500 "join_forest succeeds exactly on GYO-acyclic hypergraphs"
      hyper_gen
      (fun h -> Hypergraph.join_forest h <> None = Hypergraph.is_acyclic h);
    qt ~count:500 "join_forest is a permutation with children before parents"
      hyper_gen
      (fun h ->
        match Hypergraph.join_forest h with
        | None -> true
        | Some order ->
            let n = List.length h in
            let edges = List.map fst order in
            let idx x =
              let rec go i = function
                | [] -> -1
                | y :: tl -> if y = x then i else go (i + 1) tl
              in
              go 0 edges
            in
            List.sort compare edges = List.init n Fun.id
            && List.for_all
                 (fun (e, parent) ->
                   match parent with
                   | None -> true
                   | Some f ->
                       (* the parent must still be alive when e is
                          removed: f appears after e in removal order *)
                       f <> e && idx e < idx f)
                 order);
  ]

let kernel_fallback_suite =
  [
    tc "cyclic clause falls back to Subsume and still agrees" (fun () ->
        let params = Bottom.default_params in
        let inst, examples = random_problem 7 in
        let cov = Coverage.build ~params inst examples in
        (* p(A,B), p(B,C), p(C,A) is the classic GYO-cyclic triangle *)
        let va x = Term.Var x in
        let clause =
          Clause.make
            (Atom.make "t" [ va "A" ])
            [
              Atom.make "p" [ va "A"; va "B" ];
              Atom.make "p" [ va "B"; va "C" ];
              Atom.make "p" [ va "C"; va "A" ];
            ]
        in
        let before = Obs.Counter.value Coverage.c_batch_fallbacks in
        let vb, vs = both cov clause in
        check Alcotest.(list bool) "agree" vs vb;
        check Alcotest.bool "fallback counted" true
          (Obs.Counter.value Coverage.c_batch_fallbacks > before));
  ]

(* ---------------- semi-join kernel edge cases ---------------------- *)

let va x = Term.Var x

(* t(A) :- p(A,B): the simplest acyclic join over the pq world *)
let p_clause =
  Clause.make (Atom.make "t" [ va "A" ]) [ Atom.make "p" [ va "A"; va "B" ] ]

let patterns_of clause =
  List.map Planner.pattern_of_atom (clause.Clause.head :: clause.Clause.body)

let edge_suite =
  [
    tc "semijoin_batch: empty example list yields an empty answer"
      (fun () ->
        let inst, examples = random_problem 11 in
        let cov = Coverage.build ~params:Bottom.default_params inst examples in
        let store = Option.get (Coverage.store cov) in
        let res =
          Algebra.semijoin_batch store ~patterns:(patterns_of p_clause)
            ~eids:[||]
        in
        check Alcotest.(list bool) "no answers" [] (Array.to_list res));
    tc "semijoin_batch: duplicate example ids answer like singletons"
      (fun () ->
        let inst, examples = random_problem 13 in
        let cov = Coverage.build ~params:Bottom.default_params inst examples in
        let store = Option.get (Coverage.store cov) in
        let patterns = patterns_of p_clause in
        let single e =
          (Algebra.semijoin_batch store ~patterns ~eids:[| e |]).(0)
        in
        let res =
          Algebra.semijoin_batch store ~patterns ~eids:[| 0; 1; 0; 2; 0 |]
        in
        check
          Alcotest.(list bool)
          "each duplicate slot answered independently"
          [ single 0; single 1; single 0; single 2; single 0 ]
          (Array.to_list res);
        (* and the duplicates pin against the subsumption oracle *)
        Coverage.set_cache cov false;
        check Alcotest.bool "slot 0 == Subsume" (Coverage.covers cov p_clause 0)
          res.(0));
    tc "semijoin_batch: zero-tuple body relation matches subsumption"
      (fun () ->
        (* a world where q is empty: any clause mentioning q covers
           nothing, on both evaluation paths *)
        let inst = Instance.create pq_schema in
        let c i = Value.str (Printf.sprintf "c%d" i) in
        Instance.add inst "p" (Tuple.of_list [ c 0; c 1 ]);
        Instance.add inst "p" (Tuple.of_list [ c 1; c 2 ]);
        let examples =
          Array.init 3 (fun i -> Atom.of_tuple "t" (Tuple.of_list [ c i ]))
        in
        let cov = Coverage.build ~params:Bottom.default_params inst examples in
        let clause =
          Clause.make
            (Atom.make "t" [ va "A" ])
            [ Atom.make "p" [ va "A"; va "B" ]; Atom.make "q" [ va "A"; va "B" ] ]
        in
        let vb, vs = both cov clause in
        check Alcotest.(list bool) "agree" vs vb;
        check Alcotest.(list bool) "all uncovered" [ false; false; false ] vb);
  ]

(* ---------------- mutation invalidates the memo -------------------- *)

let mutation_suite =
  [
    tc "instance mutation between covers calls invalidates the memo"
      (fun () ->
        let inst = Instance.create pq_schema in
        let c i = Value.str (Printf.sprintf "c%d" i) in
        Instance.add inst "p" (Tuple.of_list [ c 0; c 1 ]);
        let examples =
          [| Atom.of_tuple "t" (Tuple.of_list [ c 0 ]);
             Atom.of_tuple "t" (Tuple.of_list [ c 1 ]) |]
        in
        let cov = Coverage.build ~params:Bottom.default_params inst examples in
        (* cache stays ON: the stale-memo bug this regresses was the
           cached vector surviving a mutation of the source instance *)
        check Alcotest.(list bool) "before mutation" [ true; false ]
          (Array.to_list (Coverage.vector cov p_clause));
        check Alcotest.bool "covers agrees" true (Coverage.covers cov p_clause 0);
        (* mutate: now c1 also has an outgoing p edge *)
        Instance.add inst "p" (Tuple.of_list [ c 1; c 0 ]);
        check Alcotest.(list bool) "after add" [ true; true ]
          (Array.to_list (Coverage.vector cov p_clause));
        check Alcotest.bool "covers sees the new tuple" true
          (Coverage.covers cov p_clause 1);
        (* and deletion flows through too *)
        ignore (Instance.remove_tuple inst "p" (Tuple.of_list [ c 0; c 1 ]));
        check Alcotest.(list bool) "after remove" [ false; true ]
          (Array.to_list (Coverage.vector cov p_clause));
        check Alcotest.bool "covers sees the deletion" false
          (Coverage.covers cov p_clause 0));
    tc "store-backed coverage refreshes from the live instance too"
      (fun () ->
        let inst = Instance.create pq_schema in
        let c i = Value.str (Printf.sprintf "c%d" i) in
        Instance.add inst "p" (Tuple.of_list [ c 0; c 1 ]);
        let examples = [| Atom.of_tuple "t" (Tuple.of_list [ c 1 ]) |] in
        let cov =
          Coverage.build ~params:Bottom.default_params
            ~backend:(Backend.Sharded 2) inst examples
        in
        check Alcotest.bool "uncovered before" false
          (Coverage.covers cov p_clause 0);
        Instance.add inst "p" (Tuple.of_list [ c 1; c 2 ]);
        check Alcotest.bool "covered after the shard-backed refresh" true
          (Coverage.covers cov p_clause 0));
  ]

let suite =
  family_suite @ random_suite @ forest_suite @ kernel_fallback_suite
  @ edge_suite @ mutation_suite
