(* Differential battery for the batched semi-join coverage kernel:
   whatever the shard count, Coverage.vector with the kernel enabled
   must agree bit-for-bit with the per-example Subsume path, on both a
   real dataset (family) and seeded random problems. Also checks the
   GYO join-forest builder against the existing acyclicity test. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Helpers
module Obs = Castor_obs.Obs

let family = Castor_datasets.Family.generate ()

let family_inst = family.Castor_datasets.Dataset.instance

let family_ex = family.Castor_datasets.Dataset.examples

(* body prefixes of each example's variabilized bottom clause — the
   shapes ARMG actually walks through *)
let candidates inst params (examples : Atom.t array) n =
  let take k l =
    let rec go k = function
      | x :: tl when k > 0 -> x :: go (k - 1) tl
      | _ -> []
    in
    go k l
  in
  List.concat_map
    (fun i ->
      let bc = Bottom.bottom_clause ~params inst examples.(i) in
      List.map
        (fun k -> Clause.make bc.Clause.head (take k bc.Clause.body))
        [ 0; 1; 2; 3; 5; 8; List.length bc.Clause.body ])
    (List.init (min n (Array.length examples)) Fun.id)

(* the kernel answer vs the Subsume answer for one clause, cache off *)
let both cov clause =
  Coverage.set_cache cov false;
  Coverage.set_batch cov true;
  let vb = Coverage.vector cov clause in
  Coverage.set_batch cov false;
  let vs = Coverage.vector cov clause in
  Coverage.set_batch cov true;
  (Array.to_list vb, Array.to_list vs)

let differential_on cov clauses =
  List.iteri
    (fun i clause ->
      let vb, vs = both cov clause in
      check
        Alcotest.(list bool)
        (Fmt.str "clause %d: %s" i (Clause.to_string clause))
        vs vb)
    clauses

let family_suite =
  [
    tc "family: batched coverage == Subsume coverage (pos and neg)" (fun () ->
        let params = Bottom.default_params in
        let pos = Coverage.build ~params family_inst family_ex.Examples.pos in
        let neg = Coverage.build ~params family_inst family_ex.Examples.neg in
        let cands = candidates family_inst params family_ex.Examples.pos 3 in
        let before = Obs.Counter.value Algebra.c_batches in
        differential_on pos cands;
        differential_on neg cands;
        check Alcotest.bool "kernel actually ran" true
          (Obs.Counter.value Algebra.c_batches > before));
    tc "family: shard count is invisible in coverage vectors" (fun () ->
        let params = Bottom.default_params in
        let cands = candidates family_inst params family_ex.Examples.pos 2 in
        let vectors shards =
          let cov =
            Coverage.build ~params ~shards family_inst family_ex.Examples.pos
          in
          Coverage.set_cache cov false;
          List.map (fun c -> Array.to_list (Coverage.vector cov c)) cands
        in
        let v1 = vectors 1 in
        check Alcotest.(list (list bool)) "2 shards" v1 (vectors 2);
        check Alcotest.(list (list bool)) "4 shards" v1 (vectors 4);
        check Alcotest.(list (list bool)) "7 shards" v1 (vectors 7));
  ]

(* ---------------- seeded random problems -------------------------- *)

let at = Schema.attribute

let pq_schema =
  Schema.make
    [
      Schema.relation "p" [ at ~domain:"d" "x"; at ~domain:"d" "y" ];
      Schema.relation "q" [ at ~domain:"d" "x"; at ~domain:"d" "y" ];
    ]

(* a random world over 8 constants plus target examples t(c) for every
   constant, so positives and negatives both occur *)
let random_problem seed =
  let rng = Random.State.make [| seed |] in
  let inst = Instance.create pq_schema in
  let const i = Value.str (Printf.sprintf "c%d" i) in
  let n_tuples = 10 + Random.State.int rng 20 in
  for _ = 1 to n_tuples do
    let rel = if Random.State.bool rng then "p" else "q" in
    Instance.add inst rel
      (Tuple.of_list [ const (Random.State.int rng 8); const (Random.State.int rng 8) ])
  done;
  let examples =
    Array.init 8 (fun i -> Atom.of_tuple "t" (Tuple.of_list [ const i ]))
  in
  (inst, examples)

let random_suite =
  [
    qt ~count:25 "random problems: batched == Subsume across 1/2/4 shards"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        let inst, examples = random_problem seed in
        let params = Bottom.default_params in
        let cands = candidates inst params examples 4 in
        List.for_all
          (fun shards ->
            let cov = Coverage.build ~params ~shards inst examples in
            List.for_all
              (fun clause ->
                let vb, vs = both cov clause in
                vb = vs)
              cands)
          [ 1; 2; 4 ]);
    qt ~count:25 "random problems: shard count invariance of the kernel"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        let inst, examples = random_problem seed in
        let params = Bottom.default_params in
        let cands = candidates inst params examples 3 in
        let vectors shards =
          let cov = Coverage.build ~params ~shards inst examples in
          Coverage.set_cache cov false;
          List.map (fun c -> Array.to_list (Coverage.vector cov c)) cands
        in
        let v1 = vectors 1 in
        List.for_all (fun s -> vectors s = v1) [ 2; 3; 4; 5 ]);
  ]

(* ---------------- join forest ------------------------------------- *)

let hyper_gen =
  QCheck2.Gen.(
    list_size (int_range 0 6)
      (list_size (int_range 0 4) (map (fun i -> Printf.sprintf "x%d" i) (int_bound 5))))

let forest_suite =
  [
    qt ~count:500 "join_forest succeeds exactly on GYO-acyclic hypergraphs"
      hyper_gen
      (fun h -> Hypergraph.join_forest h <> None = Hypergraph.is_acyclic h);
    qt ~count:500 "join_forest is a permutation with children before parents"
      hyper_gen
      (fun h ->
        match Hypergraph.join_forest h with
        | None -> true
        | Some order ->
            let n = List.length h in
            let edges = List.map fst order in
            let idx x =
              let rec go i = function
                | [] -> -1
                | y :: tl -> if y = x then i else go (i + 1) tl
              in
              go 0 edges
            in
            List.sort compare edges = List.init n Fun.id
            && List.for_all
                 (fun (e, parent) ->
                   match parent with
                   | None -> true
                   | Some f ->
                       (* the parent must still be alive when e is
                          removed: f appears after e in removal order *)
                       f <> e && idx e < idx f)
                 order);
  ]

let kernel_fallback_suite =
  [
    tc "cyclic clause falls back to Subsume and still agrees" (fun () ->
        let params = Bottom.default_params in
        let inst, examples = random_problem 7 in
        let cov = Coverage.build ~params inst examples in
        (* p(A,B), p(B,C), p(C,A) is the classic GYO-cyclic triangle *)
        let va x = Term.Var x in
        let clause =
          Clause.make
            (Atom.make "t" [ va "A" ])
            [
              Atom.make "p" [ va "A"; va "B" ];
              Atom.make "p" [ va "B"; va "C" ];
              Atom.make "p" [ va "C"; va "A" ];
            ]
        in
        let before = Obs.Counter.value Coverage.c_batch_fallbacks in
        let vb, vs = both cov clause in
        check Alcotest.(list bool) "agree" vs vb;
        check Alcotest.bool "fallback counted" true
          (Obs.Counter.value Coverage.c_batch_fallbacks > before));
  ]

let suite = family_suite @ random_suite @ forest_suite @ kernel_fallback_suite
