(* Differential battery for the planner-dispatched coverage kernel:
   whatever the backend (flat instance or sharded store, any shard
   count), Coverage.vector with the kernel enabled must agree
   bit-for-bit with the per-example Subsume path, on both a real
   dataset (family) and seeded random problems. Also checks the GYO
   join-forest builder, the semi-join kernel's edge cases, and that
   source-instance mutation invalidates the coverage memo. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Helpers
module Obs = Castor_obs.Obs

let family = Castor_datasets.Family.generate ()

let family_inst = family.Castor_datasets.Dataset.instance

let family_ex = family.Castor_datasets.Dataset.examples

(* every substrate the acceptance battery pins: the flat instance, the
   sharded store at 1/2/4/7 shards, and the interned columnar engine *)
let specs =
  [
    Backend.Flat;
    Backend.Sharded 1;
    Backend.Sharded 2;
    Backend.Sharded 4;
    Backend.Sharded 7;
    Backend.Columnar;
  ]

(* body prefixes of each example's variabilized bottom clause — the
   shapes ARMG actually walks through *)
let candidates inst params (examples : Atom.t array) n =
  let take k l =
    let rec go k = function
      | x :: tl when k > 0 -> x :: go (k - 1) tl
      | _ -> []
    in
    go k l
  in
  List.concat_map
    (fun i ->
      let bc = Bottom.bottom_clause ~params inst examples.(i) in
      List.map
        (fun k -> Clause.make bc.Clause.head (take k bc.Clause.body))
        [ 0; 1; 2; 3; 5; 8; List.length bc.Clause.body ])
    (List.init (min n (Array.length examples)) Fun.id)

(* the kernel answer vs the Subsume answer for one clause, cache off *)
let both cov clause =
  Coverage.set_cache cov false;
  Coverage.set_batch cov true;
  let vb = Coverage.vector cov clause in
  Coverage.set_batch cov false;
  let vs = Coverage.vector cov clause in
  Coverage.set_batch cov true;
  (Array.to_list vb, Array.to_list vs)

let differential_on cov clauses =
  List.iteri
    (fun i clause ->
      let vb, vs = both cov clause in
      check
        Alcotest.(list bool)
        (Fmt.str "clause %d: %s" i (Clause.to_string clause))
        vs vb)
    clauses

let family_suite =
  [
    tc "family: planner coverage == Subsume coverage on every backend"
      (fun () ->
        let params = Bottom.default_params in
        let cands = candidates family_inst params family_ex.Examples.pos 3 in
        let before = Obs.Counter.value Algebra.c_batches in
        List.iter
          (fun backend ->
            let pos =
              Coverage.build ~params ~backend family_inst
                family_ex.Examples.pos
            in
            let neg =
              Coverage.build ~params ~backend family_inst
                family_ex.Examples.neg
            in
            differential_on pos cands;
            differential_on neg cands)
          [ Backend.Flat; Backend.Sharded 4; Backend.Columnar ];
        check Alcotest.bool "kernel actually ran" true
          (Obs.Counter.value Algebra.c_batches > before));
    tc "family: the backend is invisible in coverage vectors" (fun () ->
        let params = Bottom.default_params in
        let cands = candidates family_inst params family_ex.Examples.pos 2 in
        let vectors backend =
          let cov =
            Coverage.build ~params ~backend family_inst
              family_ex.Examples.pos
          in
          Coverage.set_cache cov false;
          List.map (fun c -> Array.to_list (Coverage.vector cov c)) cands
        in
        let v1 = vectors (Backend.Sharded 1) in
        List.iter
          (fun backend ->
            check
              Alcotest.(list (list bool))
              (Backend.spec_to_string backend)
              v1 (vectors backend))
          specs);
  ]

(* ---------------- seeded random problems -------------------------- *)

let at = Schema.attribute

let pq_schema =
  Schema.make
    [
      Schema.relation "p" [ at ~domain:"d" "x"; at ~domain:"d" "y" ];
      Schema.relation "q" [ at ~domain:"d" "x"; at ~domain:"d" "y" ];
    ]

(* a random world over 8 constants plus target examples t(c) for every
   constant, so positives and negatives both occur *)
let random_problem seed =
  let rng = Random.State.make [| seed |] in
  let inst = Instance.create pq_schema in
  let const i = Value.str (Printf.sprintf "c%d" i) in
  let n_tuples = 10 + Random.State.int rng 20 in
  for _ = 1 to n_tuples do
    let rel = if Random.State.bool rng then "p" else "q" in
    Instance.add inst rel
      (Tuple.of_list [ const (Random.State.int rng 8); const (Random.State.int rng 8) ])
  done;
  let examples =
    Array.init 8 (fun i -> Atom.of_tuple "t" (Tuple.of_list [ const i ]))
  in
  (inst, examples)

let random_suite =
  [
    qt ~count:25 "random problems: planner == Subsume on every backend"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        let inst, examples = random_problem seed in
        let params = Bottom.default_params in
        let cands = candidates inst params examples 4 in
        List.for_all
          (fun backend ->
            let cov = Coverage.build ~params ~backend inst examples in
            List.for_all
              (fun clause ->
                let vb, vs = both cov clause in
                vb = vs)
              cands)
          specs);
    qt ~count:25 "random problems: backend invariance of the kernel"
      QCheck2.Gen.(int_bound 10_000)
      (fun seed ->
        let inst, examples = random_problem seed in
        let params = Bottom.default_params in
        let cands = candidates inst params examples 3 in
        let vectors backend =
          let cov = Coverage.build ~params ~backend inst examples in
          Coverage.set_cache cov false;
          List.map (fun c -> Array.to_list (Coverage.vector cov c)) cands
        in
        let v1 = vectors (Backend.Sharded 1) in
        List.for_all (fun s -> vectors s = v1) specs);
  ]

(* ---------------- join forest & hypertree decomposition ----------- *)

let hyper_gen =
  QCheck2.Gen.(
    list_size (int_range 0 6)
      (list_size (int_range 0 4) (map (fun i -> Printf.sprintf "x%d" i) (int_bound 5))))

module SS = Hypergraph.SS

(* The classical GYO reduction (repeatedly delete attributes unique to
   one hyperedge and hyperedges contained in another), kept here as an
   independent oracle: Hypergraph.is_acyclic is now defined through
   [decompose], so pinning it against this separately-maintained loop
   is what keeps the two characterizations honest. *)
let gyo_acyclic_oracle (sorts : string list list) =
  let edges = ref (List.map SS.of_list sorts) in
  let changed = ref true in
  while !changed do
    changed := false;
    let counts = Hashtbl.create 16 in
    List.iter
      (fun e ->
        SS.iter
          (fun a ->
            Hashtbl.replace counts a
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts a)))
          e)
      !edges;
    let edges' =
      List.map
        (fun e -> SS.filter (fun a -> Hashtbl.find counts a > 1) e)
        !edges
    in
    if edges' <> !edges then begin
      edges := edges';
      changed := true
    end;
    let rec drop_contained acc = function
      | [] -> List.rev acc
      | e :: rest ->
          let contained =
            SS.is_empty e
            || List.exists (fun f -> SS.subset e f) rest
            || List.exists (fun f -> SS.subset e f) acc
          in
          if contained then drop_contained acc rest
          else drop_contained (e :: acc) rest
    in
    let edges'' = drop_contained [] !edges in
    if List.length edges'' <> List.length !edges then begin
      edges := edges'';
      changed := true
    end
  done;
  List.length !edges <= 1

let forest_suite =
  [
    qt ~count:500 "is_acyclic matches the classical GYO reduction" hyper_gen
      (fun h -> Hypergraph.is_acyclic h = gyo_acyclic_oracle h);
    qt ~count:500 "decompose: width <= 1 exactly on acyclic hypergraphs"
      hyper_gen
      (fun h -> (Hypergraph.decompose h).Hypergraph.width <= 1 = gyo_acyclic_oracle h);
    qt ~count:500 "join_forest is a permutation with children before parents"
      hyper_gen
      (fun h ->
        match Hypergraph.join_forest h with
        | None -> true
        | Some order ->
            let n = List.length h in
            let edges = List.map fst order in
            let idx x =
              let rec go i = function
                | [] -> -1
                | y :: tl -> if y = x then i else go (i + 1) tl
              in
              go 0 edges
            in
            List.sort compare edges = List.init n Fun.id
            && List.for_all
                 (fun (e, parent) ->
                   match parent with
                   | None -> true
                   | Some f ->
                       (* the parent must still be alive when e is
                          removed: f appears after e in removal order *)
                       f <> e && idx e < idx f)
                 order);
    qt ~count:500 "decompose: bags partition the hyperedges" hyper_gen
      (fun h ->
        let d = Hypergraph.decompose h in
        List.sort compare (List.concat (Array.to_list d.Hypergraph.bags))
        = List.init (List.length h) Fun.id);
    qt ~count:500 "decompose: bag vars are the union of member sorts"
      hyper_gen
      (fun h ->
        let sorts = Array.of_list (List.map SS.of_list h) in
        let d = Hypergraph.decompose h in
        Array.for_all Fun.id
          (Array.mapi
             (fun b members ->
               SS.equal d.Hypergraph.bag_vars.(b)
                 (List.fold_left
                    (fun acc e -> SS.union acc sorts.(e))
                    SS.empty members))
             d.Hypergraph.bags));
    qt ~count:500
      "decompose: forest is a bag permutation, children before parents"
      hyper_gen
      (fun h ->
        let d = Hypergraph.decompose h in
        let n = Array.length d.Hypergraph.bags in
        let bags = List.map fst d.Hypergraph.forest in
        let idx x =
          let rec go i = function
            | [] -> -1
            | y :: tl -> if y = x then i else go (i + 1) tl
          in
          go 0 bags
        in
        List.sort compare bags = List.init n Fun.id
        && List.for_all
             (fun (b, parent) ->
               match parent with
               | None -> true
               | Some f -> f <> b && idx b < idx f)
             d.Hypergraph.forest);
    qt ~count:500 "decompose: running-intersection property" hyper_gen
      (fun h ->
        (* for every attribute, the bags containing it form one
           connected subtree: at most one of them hangs off a parent
           outside the set *)
        let d = Hypergraph.decompose h in
        let n = Array.length d.Hypergraph.bags in
        let parent = Hashtbl.create 16 in
        List.iter
          (fun (b, p) -> Hashtbl.replace parent b p)
          d.Hypergraph.forest;
        let attrs =
          List.sort_uniq compare (List.concat h)
        in
        List.for_all
          (fun a ->
            let holds b = SS.mem a d.Hypergraph.bag_vars.(b) in
            let bags_with = List.filter holds (List.init n Fun.id) in
            let tops =
              List.filter
                (fun b ->
                  match Hashtbl.find parent b with
                  | None -> true
                  | Some p -> not (holds p))
                bags_with
            in
            List.length tops <= 1)
          attrs);
    qt ~count:500 "decompose: width-1 reproduces join_forest exactly"
      hyper_gen
      (fun h ->
        let d = Hypergraph.decompose h in
        d.Hypergraph.width > 1
        || Hypergraph.join_forest h
           = Some
               (List.map
                  (fun (b, p) ->
                    ( List.hd d.Hypergraph.bags.(b),
                      Option.map (fun q -> List.hd d.Hypergraph.bags.(q)) p ))
                  d.Hypergraph.forest));
  ]

(* ---------------- cyclic bodies ride the kernel -------------------- *)

let va x = Term.Var x

(* t(A) :- p(A,B): the simplest acyclic join over the pq world *)
let p_clause =
  Clause.make (Atom.make "t" [ va "A" ]) [ Atom.make "p" [ va "A"; va "B" ] ]

let patterns_of clause =
  List.map Planner.pattern_of_atom (clause.Clause.head :: clause.Clause.body)

(* the classic GYO-cyclic triangle over the pq world *)
let triangle =
  let va x = Term.Var x in
  Clause.make
    (Atom.make "t" [ va "A" ])
    [
      Atom.make "p" [ va "A"; va "B" ];
      Atom.make "p" [ va "B"; va "C" ];
      Atom.make "p" [ va "C"; va "A" ];
    ]

(* a 4-cycle alternating both relations *)
let square =
  let va x = Term.Var x in
  Clause.make
    (Atom.make "t" [ va "A" ])
    [
      Atom.make "p" [ va "A"; va "B" ];
      Atom.make "q" [ va "B"; va "C" ];
      Atom.make "p" [ va "C"; va "D" ];
      Atom.make "q" [ va "D"; va "A" ];
    ]

let kernel_cyclic_suite =
  [
    tc "cyclic clause rides the kernel: no fallback, agrees with Subsume"
      (fun () ->
        let params = Bottom.default_params in
        let inst, examples = random_problem 7 in
        let cov = Coverage.build ~params inst examples in
        let store = Option.get (Coverage.store cov) in
        let fallbacks0 = Obs.Counter.value Coverage.c_batch_fallbacks in
        let wide0 = Obs.Counter.value Algebra.c_wide_bags in
        (* the planner path must agree regardless of which strategy the
           cost model picks... *)
        let vb, vs = both cov triangle in
        check Alcotest.(list bool) "planner agrees" vs vb;
        (* ...and the kernel itself, invoked directly, must answer the
           cyclic body bit-for-bit like subsumption *)
        let direct =
          Algebra.semijoin_batch store ~patterns:(patterns_of triangle)
            ~eids:(Array.init (Array.length examples) Fun.id)
        in
        check Alcotest.(list bool) "direct kernel agrees" vs
          (Array.to_list direct);
        check Alcotest.bool "wide bag materialized" true
          (Obs.Counter.value Algebra.c_wide_bags > wide0);
        check Alcotest.int "no forced fallback" fallbacks0
          (Obs.Counter.value Coverage.c_batch_fallbacks));
    tc "planner prices the triangle as a width-2 decomposition" (fun () ->
        let sorts =
          List.map Algebra.pattern_vars (patterns_of triangle)
        in
        let d = Hypergraph.decompose sorts in
        check Alcotest.int "width" 2 d.Hypergraph.width);
    tc "cyclic bodies: direct kernel == Subsume on all six backends"
      (fun () ->
        let params = Bottom.default_params in
        List.iter
          (fun seed ->
            let inst, examples = random_problem seed in
            let closed =
              List.filter_map Planner.close_cycle
                (candidates inst params examples 2)
            in
            let clauses = triangle :: square :: closed in
            let reference =
              let cov = Coverage.build ~params inst examples in
              Coverage.set_cache cov false;
              Coverage.set_batch cov false;
              List.map
                (fun c -> Array.to_list (Coverage.vector cov c))
                clauses
            in
            List.iter
              (fun backend ->
                let cov = Coverage.build ~params ~backend inst examples in
                let store = Option.get (Coverage.store cov) in
                let eids = Array.init (Array.length examples) Fun.id in
                List.iteri
                  (fun i clause ->
                    let direct =
                      Algebra.semijoin_batch store
                        ~patterns:(patterns_of clause) ~eids
                    in
                    check
                      Alcotest.(list bool)
                      (Fmt.str "%s clause %d"
                         (Backend.spec_to_string backend)
                         i)
                      (List.nth reference i)
                      (Array.to_list direct))
                  clauses)
              specs)
          [ 3; 17 ]);
    tc "decomposition memo: α-equivalent probes hit, order changes miss"
      (fun () ->
        let params = Bottom.default_params in
        let inst, examples = random_problem 23 in
        let cov = Coverage.build ~params inst examples in
        Coverage.set_cache cov false;
        let hits0 = Obs.Counter.value Coverage.c_decomp_hits in
        ignore (Coverage.vector cov triangle);
        ignore (Coverage.vector cov triangle);
        check Alcotest.bool "second probe served from the memo" true
          (Obs.Counter.value Coverage.c_decomp_hits > hits0);
        (* same canonical key, different literal order: the memoized
           positional bag indexes would be unsound, so the entry must
           be recomputed — and the vectors must agree either way *)
        let rotated =
          Clause.make triangle.Clause.head
            (match triangle.Clause.body with
            | a :: rest -> rest @ [ a ]
            | [] -> [])
        in
        check Alcotest.string "rotation is α-equivalent"
          (Clause.canonical_key triangle)
          (Clause.canonical_key rotated);
        let vb, vs = both cov rotated in
        check Alcotest.(list bool) "rotated body agrees" vs vb);
  ]

(* ---------------- semi-join kernel edge cases ---------------------- *)

let edge_suite =
  [
    tc "semijoin_batch: empty example list yields an empty answer"
      (fun () ->
        let inst, examples = random_problem 11 in
        let cov = Coverage.build ~params:Bottom.default_params inst examples in
        let store = Option.get (Coverage.store cov) in
        let res =
          Algebra.semijoin_batch store ~patterns:(patterns_of p_clause)
            ~eids:[||]
        in
        check Alcotest.(list bool) "no answers" [] (Array.to_list res));
    tc "semijoin_batch: duplicate example ids answer like singletons"
      (fun () ->
        let inst, examples = random_problem 13 in
        let cov = Coverage.build ~params:Bottom.default_params inst examples in
        let store = Option.get (Coverage.store cov) in
        let patterns = patterns_of p_clause in
        let single e =
          (Algebra.semijoin_batch store ~patterns ~eids:[| e |]).(0)
        in
        let res =
          Algebra.semijoin_batch store ~patterns ~eids:[| 0; 1; 0; 2; 0 |]
        in
        check
          Alcotest.(list bool)
          "each duplicate slot answered independently"
          [ single 0; single 1; single 0; single 2; single 0 ]
          (Array.to_list res);
        (* and the duplicates pin against the subsumption oracle *)
        Coverage.set_cache cov false;
        check Alcotest.bool "slot 0 == Subsume" (Coverage.covers cov p_clause 0)
          res.(0));
    tc "semijoin_batch: zero-tuple body relation matches subsumption"
      (fun () ->
        (* a world where q is empty: any clause mentioning q covers
           nothing, on both evaluation paths *)
        let inst = Instance.create pq_schema in
        let c i = Value.str (Printf.sprintf "c%d" i) in
        Instance.add inst "p" (Tuple.of_list [ c 0; c 1 ]);
        Instance.add inst "p" (Tuple.of_list [ c 1; c 2 ]);
        let examples =
          Array.init 3 (fun i -> Atom.of_tuple "t" (Tuple.of_list [ c i ]))
        in
        let cov = Coverage.build ~params:Bottom.default_params inst examples in
        let clause =
          Clause.make
            (Atom.make "t" [ va "A" ])
            [ Atom.make "p" [ va "A"; va "B" ]; Atom.make "q" [ va "A"; va "B" ] ]
        in
        let vb, vs = both cov clause in
        check Alcotest.(list bool) "agree" vs vb;
        check Alcotest.(list bool) "all uncovered" [ false; false; false ] vb);
  ]

(* ---------------- mutation invalidates the memo -------------------- *)

let mutation_suite =
  [
    tc "instance mutation between covers calls invalidates the memo"
      (fun () ->
        let inst = Instance.create pq_schema in
        let c i = Value.str (Printf.sprintf "c%d" i) in
        Instance.add inst "p" (Tuple.of_list [ c 0; c 1 ]);
        let examples =
          [| Atom.of_tuple "t" (Tuple.of_list [ c 0 ]);
             Atom.of_tuple "t" (Tuple.of_list [ c 1 ]) |]
        in
        let cov = Coverage.build ~params:Bottom.default_params inst examples in
        (* cache stays ON: the stale-memo bug this regresses was the
           cached vector surviving a mutation of the source instance *)
        check Alcotest.(list bool) "before mutation" [ true; false ]
          (Array.to_list (Coverage.vector cov p_clause));
        check Alcotest.bool "covers agrees" true (Coverage.covers cov p_clause 0);
        (* mutate: now c1 also has an outgoing p edge *)
        Instance.add inst "p" (Tuple.of_list [ c 1; c 0 ]);
        check Alcotest.(list bool) "after add" [ true; true ]
          (Array.to_list (Coverage.vector cov p_clause));
        check Alcotest.bool "covers sees the new tuple" true
          (Coverage.covers cov p_clause 1);
        (* and deletion flows through too *)
        ignore (Instance.remove_tuple inst "p" (Tuple.of_list [ c 0; c 1 ]));
        check Alcotest.(list bool) "after remove" [ false; true ]
          (Array.to_list (Coverage.vector cov p_clause));
        check Alcotest.bool "covers sees the deletion" false
          (Coverage.covers cov p_clause 0));
    tc "store-backed coverage refreshes from the live instance too"
      (fun () ->
        let inst = Instance.create pq_schema in
        let c i = Value.str (Printf.sprintf "c%d" i) in
        Instance.add inst "p" (Tuple.of_list [ c 0; c 1 ]);
        let examples = [| Atom.of_tuple "t" (Tuple.of_list [ c 1 ]) |] in
        let cov =
          Coverage.build ~params:Bottom.default_params
            ~backend:(Backend.Sharded 2) inst examples
        in
        check Alcotest.bool "uncovered before" false
          (Coverage.covers cov p_clause 0);
        Instance.add inst "p" (Tuple.of_list [ c 1; c 2 ]);
        check Alcotest.bool "covered after the shard-backed refresh" true
          (Coverage.covers cov p_clause 0));
  ]

let suite =
  family_suite @ random_suite @ forest_suite @ kernel_cyclic_suite
  @ edge_suite @ mutation_suite
