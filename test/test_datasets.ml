(* Tests for the synthetic dataset generators: constraints hold,
   variants are information equivalent, examples are consistent with
   the planted concepts. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Castor_datasets
open Helpers

let datasets =
  [
    ("family", lazy (Family.generate ()));
    ("uwcse", lazy (Uwcse.generate ()));
    ("hiv", lazy (Hiv.generate ()));
    ("imdb", lazy (Imdb.generate ()));
  ]

let per_dataset name (dsl : Dataset.t Lazy.t) =
  [
    tc (name ^ ": base instance satisfies its constraints") (fun () ->
        let ds = Lazy.force dsl in
        check Alcotest.(list string) "no violations" [] (Instance.violations ds.Dataset.instance));
    tc (name ^ ": every variant satisfies its constraints") (fun () ->
        let ds = Lazy.force dsl in
        List.iter
          (fun (vname, _) ->
            let v = Dataset.variant_named ds vname in
            check Alcotest.(list string) (vname ^ " ok") []
              (Instance.violations v.Dataset.vinstance))
          ds.Dataset.variants);
    tc (name ^ ": every variant transformation round-trips") (fun () ->
        let ds = Lazy.force dsl in
        List.iter
          (fun (vname, tr) ->
            check Alcotest.bool (vname ^ " roundtrip") true
              (Transform.round_trips ds.Dataset.instance tr))
          ds.Dataset.variants);
    tc (name ^ ": positive and negative examples are disjoint") (fun () ->
        let ds = Lazy.force dsl in
        let ex = ds.Dataset.examples in
        Array.iter
          (fun p ->
            check Alcotest.bool "not negative" false
              (Array.exists (Atom.equal p) ex.Examples.neg))
          ex.Examples.pos);
    tc (name ^ ": generation is deterministic") (fun () ->
        let ds1 = Lazy.force dsl in
        let regenerate () =
          match name with
          | "family" -> Family.generate ()
          | "uwcse" -> Uwcse.generate ()
          | "hiv" -> Hiv.generate ()
          | _ -> Imdb.generate ()
        in
        let ds2 = regenerate () in
        check Alcotest.bool "same instance" true
          (Instance.equal ds1.Dataset.instance ds2.Dataset.instance);
        check Alcotest.int "same #pos"
          (Array.length ds1.Dataset.examples.Examples.pos)
          (Array.length ds2.Dataset.examples.Examples.pos));
  ]

let golden_suite =
  [
    tc "family golden definition separates the examples" (fun () ->
        let ds = Family.generate () in
        match ds.Dataset.golden with
        | None -> Alcotest.fail "family has a golden definition"
        | Some g ->
            let inst = ds.Dataset.instance in
            Array.iter
              (fun e ->
                check Alcotest.bool "covers positive" true (Eval.definition_covers inst g e))
              ds.Dataset.examples.Examples.pos;
            Array.iter
              (fun e ->
                check Alcotest.bool "rejects negative" false (Eval.definition_covers inst g e))
              ds.Dataset.examples.Examples.neg);
    tc "imdb golden definition separates the examples" (fun () ->
        let ds = Imdb.generate () in
        match ds.Dataset.golden with
        | None -> Alcotest.fail "imdb has a golden definition"
        | Some g ->
            let inst = ds.Dataset.instance in
            Array.iter
              (fun e ->
                check Alcotest.bool "covers positive" true (Eval.definition_covers inst g e))
              ds.Dataset.examples.Examples.pos;
            Array.iter
              (fun e ->
                check Alcotest.bool "rejects negative" false (Eval.definition_covers inst g e))
              ds.Dataset.examples.Examples.neg);
    tc "imdb golden definition maps across every variant" (fun () ->
        let ds = Imdb.generate () in
        match ds.Dataset.golden with
        | None -> Alcotest.fail "golden"
        | Some g ->
            List.iter
              (fun (vname, tr) ->
                let v = Dataset.variant_named ds vname in
                let g' = Rewrite.definition ds.Dataset.schema tr g in
                Array.iter
                  (fun e ->
                    check Alcotest.bool (vname ^ " covers positive") true
                      (Eval.definition_covers v.Dataset.vinstance g' e))
                  ds.Dataset.examples.Examples.pos)
              ds.Dataset.variants);
    tc "uwcse schemas follow Table 1" (fun () ->
        let ds = Uwcse.generate () in
        let v4 = Dataset.variant_named ds "4nf" in
        check Alcotest.(list string) "student sort" [ "stud"; "phase"; "years" ]
          (Schema.sort v4.Dataset.vschema "student");
        check Alcotest.(list string) "professor sort" [ "prof"; "position" ]
          (Schema.sort v4.Dataset.vschema "professor"));
    tc "hiv 4nf-1 composes the bond relations (Table 3)" (fun () ->
        let ds = Hiv.generate () in
        let v = Dataset.variant_named ds "4nf-1" in
        check Alcotest.(list string) "bonds sort" [ "bd"; "atm1"; "atm2"; "t1"; "t2"; "t3" ]
          (Schema.sort v.Dataset.vschema "bonds"));
    tc "hiv 4nf-2 splits the bond endpoints (Table 3)" (fun () ->
        let ds = Hiv.generate () in
        let v = Dataset.variant_named ds "4nf-2" in
        check Alcotest.(list string) "source" [ "bd"; "atm1" ]
          (Schema.sort v.Dataset.vschema "bondSource");
        check Alcotest.(list string) "target" [ "bd"; "atm2" ]
          (Schema.sort v.Dataset.vschema "bondTarget"));
    tc "imdb stanford schema composes the movie star (Table 6)" (fun () ->
        let ds = Imdb.generate () in
        let v = Dataset.variant_named ds "stanford" in
        check Alcotest.(list string) "movie sort" [ "id"; "title"; "year"; "gid"; "did" ]
          (Schema.sort v.Dataset.vschema "movie"));
  ]

let derive_suite =
  [
    tc "derive_value_domains separates categorical from entity domains" (fun () ->
        let ds = Family.generate () in
        let cat, ent = Dataset.derive_value_domains ds.Dataset.instance in
        (* gender has 2 values -> categorical; person has many -> entity *)
        check Alcotest.bool "gender categorical" true (List.mem_assoc "gender" cat);
        check Alcotest.bool "person entity" true (List.mem "person" ent));
    tc "of_instance wraps a raw problem with derived modes" (fun () ->
        let ds = Family.generate () in
        let wrapped =
          Dataset.of_instance ~name:"w" ~target:ds.Dataset.target ds.Dataset.instance
            ds.Dataset.examples
        in
        check Alcotest.bool "has const pool" true (wrapped.Dataset.const_pool <> []);
        check Alcotest.int "one base variant" 1 (List.length wrapped.Dataset.variants));
  ]

(* ---------------- import-time lint -------------------------------- *)

module Analyze = Castor_analysis.Analyze
module Diagnostic = Castor_analysis.Diagnostic

let temp_dataset_dir () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "castor_import_%d_%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Sys.mkdir dir 0o755;
  dir

let append_file path lines =
  let oc = open_out_gen [ Open_append ] 0o644 path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc

let import_lint_suite =
  [
    tc "Analyze.import_examples flags shape, duplicate and label faults"
      (fun () ->
        let target =
          Schema.relation "t"
            [ Schema.attribute ~domain:"d" "a"; Schema.attribute ~domain:"d" "b" ]
        in
        let schema = Schema.make [ Schema.relation "t" [ Schema.attribute ~domain:"d" "a" ] ] in
        let atom rel vs = Atom.of_tuple rel (Tuple.of_list (List.map Value.str vs)) in
        let span = Some { Diagnostic.line = 3; col = 1 } in
        let diags =
          Analyze.import_examples ~schema ~target
            [
              (true, atom "t" [ "x"; "y" ], span);
              (true, atom "t" [ "x"; "y" ], span) (* duplicate *);
              (false, atom "t" [ "x"; "y" ], span) (* conflicting *);
              (true, atom "u" [ "x"; "y" ], span) (* wrong relation *);
              (true, atom "t" [ "x" ], span) (* wrong arity *);
            ]
        in
        let rules = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.rule) diags in
        List.iter
          (fun r -> check Alcotest.bool r true (List.mem r rules))
          [
            "import/target-shadows-relation"; "import/duplicate-example";
            "import/conflicting-label"; "import/example-relation";
            "import/example-arity";
          ];
        check Alcotest.bool "spans kept" true
          (List.for_all (fun (d : Diagnostic.t) -> d.Diagnostic.span <> None)
             (List.filter
                (fun (d : Diagnostic.t) ->
                  not (String.equal d.Diagnostic.rule "import/target-shadows-relation"))
                diags)));
    tc "clean export/import round trip passes the `Strict gate" (fun () ->
        let dir = temp_dataset_dir () in
        Dataset.export (Lazy.force (List.assoc "family" datasets)) dir;
        let ds = Dataset.import ~name:"family" ~gate:`Strict dir in
        check Alcotest.bool "examples kept" true
          (Array.length ds.Dataset.examples.Examples.pos > 0));
    tc "corrupted examples are rejected by `Strict but pass `Off" (fun () ->
        let dir = temp_dataset_dir () in
        Dataset.export (Lazy.force (List.assoc "family" datasets)) dir;
        append_file
          (Filename.concat dir "examples.castor")
          [ "pos grandparent(p1)."; "neg nosuchrel(p1, p2)." ];
        (match Dataset.import ~name:"family" ~gate:`Strict dir with
        | exception Diagnostic.Rejected errs ->
            let rules = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.rule) errs in
            check Alcotest.bool "arity error" true
              (List.mem "import/example-arity" rules);
            check Alcotest.bool "relation error" true
              (List.mem "import/example-relation" rules);
            check Alcotest.bool "spans attached" true
              (List.for_all (fun (d : Diagnostic.t) -> d.Diagnostic.span <> None) errs)
        | _ -> Alcotest.fail "expected Diagnostic.Rejected");
        let ds = Dataset.import ~name:"family" ~gate:`Off dir in
        check Alcotest.bool "`Off imports anyway" true
          (Array.length ds.Dataset.examples.Examples.pos > 0));
  ]

let suite =
  List.concat_map (fun (n, d) -> per_dataset n d) datasets
  @ golden_suite @ derive_suite @ import_lint_suite
