(* Tests for the Obs observability layer: counter exactness across
   domains, span timing, histogram quantiles, reservoirs, renderers. *)

open Helpers
module Obs = Castor_obs.Obs

(* ------------------------- JSON validity ------------------------- *)

(* A minimal JSON reader, enough to validate Obs.to_json output:
   objects, arrays, strings with escapes, numbers, true/false/null. *)
module Json_check = struct
  exception Bad of string

  let parse (s : string) =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal w =
      String.iter (fun c -> expect c) w
    in
    let string_lit () =
      expect '"';
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
                advance ();
                go ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  match peek () with
                  | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                  | _ -> fail "bad \\u escape"
                done;
                go ()
            | _ -> fail "bad escape")
        | Some c when Char.code c < 0x20 -> fail "raw control char"
        | Some _ ->
            advance ();
            go ()
      in
      go ()
    in
    let number () =
      let digits () =
        let had = ref false in
        let rec go () =
          match peek () with
          | Some '0' .. '9' ->
              had := true;
              advance ();
              go ()
          | _ -> ()
        in
        go ();
        if not !had then fail "expected digit"
      in
      (match peek () with Some '-' -> advance () | _ -> ());
      digits ();
      (match peek () with
      | Some '.' ->
          advance ();
          digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with Some ('+' | '-') -> advance () | _ -> ());
          digits ()
      | _ -> ()
    in
    let rec value () =
      skip_ws ();
      (match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then advance ()
          else begin
            let rec members () =
              skip_ws ();
              string_lit ();
              skip_ws ();
              expect ':';
              value ();
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ()
              | Some '}' -> advance ()
              | _ -> fail "expected , or }"
            in
            members ()
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then advance ()
          else begin
            let rec elements () =
              value ();
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements ()
              | Some ']' -> advance ()
              | _ -> fail "expected , or ]"
            in
            elements ()
          end
      | Some '"' -> string_lit ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail "expected value");
      skip_ws ()
    in
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage"

  let valid s = match parse s with () -> true | exception Bad _ -> false
end

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ----------------------------- suites ---------------------------- *)

let counter_suite =
  [
    tc "counter incr/add/value/reset" (fun () ->
        let c = Obs.Counter.create "test.counter_basic" in
        Obs.Counter.reset c;
        Obs.Counter.incr c;
        Obs.Counter.add c 41;
        check Alcotest.int "42" 42 (Obs.Counter.value c);
        Obs.Counter.reset c;
        check Alcotest.int "0 after reset" 0 (Obs.Counter.value c));
    tc "create is idempotent per name" (fun () ->
        let a = Obs.Counter.create "test.counter_same" in
        let b = Obs.Counter.create "test.counter_same" in
        Obs.Counter.reset a;
        Obs.Counter.incr a;
        Obs.Counter.incr b;
        check Alcotest.int "shared" 2 (Obs.Counter.value a));
    tc "increments from a spawned domain are counted exactly" (fun () ->
        let c = Obs.Counter.create "test.counter_domains" in
        Obs.Counter.reset c;
        let worker () =
          for _ = 1 to 1000 do
            Obs.Counter.incr c
          done;
          Obs.flush ()
        in
        let d1 = Domain.spawn worker in
        let d2 = Domain.spawn worker in
        for _ = 1 to 500 do
          Obs.Counter.incr c
        done;
        Domain.join d1;
        Domain.join d2;
        check Alcotest.int "2500 exactly" 2500 (Obs.Counter.value c));
  ]

let span_suite =
  [
    tc "with_span counts calls and accumulates time" (fun () ->
        let s = Obs.Span.create "test.span_basic" in
        Obs.Span.reset s;
        let r = Obs.Span.with_span s (fun () -> 6 * 7) in
        check Alcotest.int "result" 42 r;
        Obs.Span.with_span s (fun () -> Unix.sleepf 0.002);
        check Alcotest.int "two calls" 2 (Obs.Span.count s);
        check Alcotest.bool "time accumulated" true (Obs.Span.total_s s > 0.001);
        check Alcotest.bool "max >= 2ms" true (Obs.Span.max_s s >= 0.002));
    tc "with_span records when f raises" (fun () ->
        let s = Obs.Span.create "test.span_raise" in
        Obs.Span.reset s;
        (try Obs.Span.with_span s (fun () -> failwith "boom")
         with Failure _ -> ());
        check Alcotest.int "recorded" 1 (Obs.Span.count s));
    tc "quantiles are within the log-bucket factor" (fun () ->
        let s = Obs.Span.create "test.span_quantile" in
        Obs.Span.reset s;
        (* 90 fast events at ~1us, 10 slow at ~1ms *)
        for _ = 1 to 90 do
          Obs.Span.record_ns s 1_000
        done;
        for _ = 1 to 10 do
          Obs.Span.record_ns s 1_000_000
        done;
        let p50 = Obs.Span.quantile s 0.5 in
        let p99 = Obs.Span.quantile s 0.99 in
        (* log-bucketed estimates: within a factor sqrt(2) of truth *)
        check Alcotest.bool "p50 ~ 1us" true (p50 > 0.4e-6 && p50 < 2.5e-6);
        check Alcotest.bool "p99 ~ 1ms" true (p99 > 0.4e-3 && p99 < 2.5e-3);
        check (Alcotest.float 1e-12) "max exact" 1e-3 (Obs.Span.max_s s));
    tc "quantile of empty span is NaN" (fun () ->
        let s = Obs.Span.create "test.span_empty" in
        Obs.Span.reset s;
        check Alcotest.bool "nan" true (Float.is_nan (Obs.Span.quantile s 0.5)));
  ]

let reservoir_suite =
  [
    tc "keeps the K slowest, sorted" (fun () ->
        let r = Obs.Reservoir.create ~capacity:3 "test.res_topk" in
        Obs.Reservoir.reset r;
        List.iter
          (fun (d, l) -> Obs.Reservoir.note r d l)
          [ (0.1, "a"); (0.5, "b"); (0.2, "c"); (0.9, "d"); (0.05, "e") ];
        check
          Alcotest.(list (pair (float 1e-9) string))
          "top3 desc"
          [ (0.9, "d"); (0.5, "b"); (0.2, "c") ]
          (Obs.Reservoir.slowest r));
    tc "reset empties" (fun () ->
        let r = Obs.Reservoir.create ~capacity:3 "test.res_reset" in
        Obs.Reservoir.note r 1.0 "x";
        Obs.Reservoir.reset r;
        check Alcotest.int "empty" 0 (List.length (Obs.Reservoir.slowest r));
        (* events slower than the old floor are accepted again *)
        Obs.Reservoir.note r 0.5 "y";
        check Alcotest.int "one" 1 (List.length (Obs.Reservoir.slowest r)));
  ]

let render_suite =
  [
    tc "to_json is valid JSON (quiescent registry)" (fun () ->
        Obs.reset ();
        check Alcotest.bool "valid" true (Json_check.valid (Obs.to_json ())));
    tc "to_json is valid JSON with data, incl. label escaping" (fun () ->
        Obs.reset ();
        let c = Obs.Counter.create "test.render_counter" in
        Obs.Counter.add c 7;
        let s = Obs.Span.create "test.render_span" in
        Obs.Span.record_ns s 123_456;
        let r = Obs.Reservoir.create ~capacity:4 "test.render_res" in
        Obs.Reservoir.note r 0.25 "label with \"quotes\",\nnewline \\ backslash";
        let json = Obs.to_json () in
        check Alcotest.bool "valid" true (Json_check.valid json);
        check Alcotest.bool "counter present" true
          (contains ~sub:"\"test.render_counter\":7" json));
    tc "report lists active instruments" (fun () ->
        Obs.reset ();
        let c = Obs.Counter.create "test.report_counter" in
        Obs.Counter.add c 3;
        let text = Obs.report () in
        check Alcotest.bool "mentions counter" true
          (contains ~sub:"test.report_counter" text));
  ]

let suite = counter_suite @ span_suite @ reservoir_suite @ render_suite
