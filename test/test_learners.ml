(* Tests for the baseline learners: FOIL, Progol/Aleph emulation,
   Golem, ProGolem. Learning runs use the small family dataset so the
   suite stays fast. *)

open Castor_relational
open Castor_logic
open Castor_ilp
open Castor_learners
open Helpers

let family = Castor_datasets.Family.generate ()

let problem () =
  let ds = family in
  Problem.make
    ~bottom_params:
      {
        Bottom.default_params with
        no_expand_domains = ds.Castor_datasets.Dataset.no_expand_domains;
        const_domains = List.map fst ds.Castor_datasets.Dataset.const_pool;
      }
    ~const_pool:ds.Castor_datasets.Dataset.const_pool
    ds.Castor_datasets.Dataset.instance ds.Castor_datasets.Dataset.target
    ds.Castor_datasets.Dataset.examples

let train_metrics (p : Problem.t) def =
  let pos = Coverage.vector p.Problem.pos_cov (List.hd def.Clause.clauses) in
  ignore pos;
  let cover cov =
    List.fold_left
      (fun acc c ->
        let v = Coverage.vector cov c in
        Array.mapi (fun i b -> b || acc.(i)) v)
      (Array.make (Coverage.length cov) false)
      def.Clause.clauses
  in
  let tp = Coverage.count (cover p.Problem.pos_cov) in
  let fp = Coverage.count (cover p.Problem.neg_cov) in
  (tp, fp)

let learns_well name learn =
  tc name (fun () ->
      let p = problem () in
      let def = learn p in
      check Alcotest.bool "some clause" true (def.Clause.clauses <> []);
      let tp, fp = train_metrics p def in
      let n_pos = Coverage.length p.Problem.pos_cov in
      check Alcotest.bool "recall > 0.8" true
        (float_of_int tp /. float_of_int n_pos > 0.8);
      check Alcotest.bool "precision > 0.8" true
        (float_of_int tp /. float_of_int (tp + fp) > 0.8))

let problem_suite =
  [
    tc "Problem.head is most general" (fun () ->
        let p = problem () in
        let h = Problem.head p in
        check Alcotest.string "head" "grandparent(X0,X1)" (Atom.to_string h));
    tc "Problem.head_domains follow the target declaration" (fun () ->
        let p = problem () in
        check Alcotest.(list string) "domains" [ "person"; "person" ]
          (Problem.head_domains p));
  ]

let foil_suite =
  [
    learns_well "FOIL learns grandparent on family" (fun p -> Foil.learn p);
    tc "FOIL candidate generation types variables" (fun () ->
        let p = problem () in
        let schema = Instance.schema p.Problem.instance in
        let cands =
          Foil.candidates schema p.Problem.const_pool
            [ ("X0", "person"); ("X1", "person") ]
            "s0" 1000
        in
        check Alcotest.bool "nonempty" true (cands <> []);
        (* no candidate puts a person variable in a gender slot *)
        check Alcotest.bool "no type confusion" true
          (List.for_all
             (fun (a : Atom.t) ->
               not
                 (String.equal a.Atom.rel "gender"
                 && (Term.equal a.Atom.args.(1) (Term.Var "X0")
                    || Term.equal a.Atom.args.(1) (Term.Var "X1"))))
             cands);
        (* constant pool produces gender constants *)
        check Alcotest.bool "gender constants offered" true
          (List.exists
             (fun (a : Atom.t) ->
               String.equal a.Atom.rel "gender" && Term.is_const a.Atom.args.(1))
             cands));
    tc "FOIL respects clauselength" (fun () ->
        let p = problem () in
        let def = Foil.learn ~params:{ Foil.default_params with clauselength = 2 } p in
        check Alcotest.bool "clauses short" true
          (List.for_all (fun c -> Clause.length c <= 2) def.Clause.clauses));
  ]

let progol_suite =
  [
    learns_well "Aleph-Progol learns grandparent" (fun p ->
        Progol.learn ~params:(Progol.aleph_progol ~clauselength:4) p);
    learns_well "Aleph-FOIL (greedy) learns grandparent" (fun p ->
        Progol.learn ~params:(Progol.aleph_foil ~clauselength:4) p);
    tc "clauselength bounds learned clause length" (fun () ->
        let p = problem () in
        let def = Progol.learn ~params:(Progol.aleph_progol ~clauselength:3) p in
        check Alcotest.bool "bounded" true
          (List.for_all (fun c -> Clause.length c <= 3) def.Clause.clauses));
    tc "learned clauses come from the bottom clause" (fun () ->
        let p = problem () in
        let def = Progol.learn ~params:(Progol.aleph_progol ~clauselength:4) p in
        (* every learned clause only uses schema relations *)
        let rels = List.map (fun (r : Schema.relation) -> r.Schema.rname)
            (Instance.schema p.Problem.instance).Schema.relations in
        check Alcotest.bool "known relations" true
          (List.for_all
             (fun c ->
               List.for_all (fun (a : Atom.t) -> List.mem a.Atom.rel rels) c.Clause.body)
             def.Clause.clauses));
  ]

let golem_suite =
  [
    learns_well "Golem learns grandparent" (fun p -> Golem.learn p);
    tc "rlgg of two saturations generalizes both (Thm 6.4 core)" (fun () ->
        let p = problem () in
        let s0 = p.Problem.pos_cov.Coverage.bottoms.(0) in
        let s1 = p.Problem.pos_cov.Coverage.bottoms.(1) in
        match Lgg.rlgg s0 s1 with
        | None -> Alcotest.fail "compatible saturations"
        | Some g ->
            check Alcotest.bool "subsumes s0" true (Subsume.subsumes g s0);
            check Alcotest.bool "subsumes s1" true (Subsume.subsumes g s1));
  ]

let progolem_suite =
  [
    learns_well "ProGolem learns grandparent" (fun p -> Progolem.learn p);
    tc "require_safe yields only safe clauses" (fun () ->
        let p = problem () in
        let def =
          Progolem.learn ~params:{ Progolem.default_params with require_safe = true } p
        in
        check Alcotest.bool "all safe" true
          (List.for_all Clause.is_safe def.Clause.clauses));
    tc "seed retry skips dead seeds" (fun () ->
        let p = problem () in
        (* force a dead first seed by masking: learn_clause_generic is
           exercised indirectly; with all seeds alive learning works *)
        let uncovered = Array.make (Coverage.length p.Problem.pos_cov) true in
        let bottom e =
          Bottom.bottom_clause ~params:p.Problem.bottom_params p.Problem.instance e
        in
        match
          Progolem.learn_clause_generic ~seed_tries:3 ~bottom ~armg_repair:Fun.id
            ~reduce:Fun.id Progolem.default_params p uncovered
        with
        | Some (c, _) -> check Alcotest.bool "found" true (c.Clause.body <> [])
        | None -> Alcotest.fail "expected a clause");
  ]

(* ---------------- unified Learner API ----------------------------- *)

let registry_suite =
  [
    tc "all five learners are registered (eight names)" (fun () ->
        List.iter
          (fun n ->
            let module L = (val Learner.find n) in
            check Alcotest.string (n ^ " resolves to itself") n L.name)
          [
            "foil"; "aleph-foil"; "aleph-progol"; "golem"; "progolem";
            "castor"; "castor-safe"; "castor-subset";
          ]);
    tc "find is case-insensitive, Unknown_learner otherwise" (fun () ->
        let module L = (val Learner.find "FOIL") in
        check Alcotest.string "case folded" "foil" L.name;
        check Alcotest.bool "unknown is None" true
          (Learner.find_opt "no-such-learner" = None);
        match Learner.find "no-such-learner" with
        | exception Learner.Unknown_learner "no-such-learner" -> ()
        | _ -> Alcotest.fail "expected Unknown_learner");
    tc "names lists every registration" (fun () ->
        let ns = Learner.names () in
        check Alcotest.bool "sorted" true (List.sort compare ns = ns);
        List.iter
          (fun n -> check Alcotest.bool n true (List.mem n ns))
          [ "foil"; "golem"; "progolem"; "castor" ]);
    tc "unified FOIL run equals the direct entry point" (fun () ->
        let p = problem () in
        let r = Learner.learn ~name:"foil" p in
        let direct = Foil.learn ~params:(Foil.params_of_config Learner.default_config) p in
        check Alcotest.string "same learner" "foil" r.Learner.Report.learner;
        check Alcotest.bool "nonnegative time" true (r.Learner.Report.seconds >= 0.);
        check
          Alcotest.(list string)
          "same definition"
          (List.map Clause.to_string direct.Clause.clauses)
          (List.map Clause.to_string r.Learner.Report.definition.Clause.clauses));
    tc "config flows through the shared record" (fun () ->
        let p = problem () in
        let r =
          Learner.learn ~name:"foil"
            ~config:{ Learner.default_config with Learner.max_clauses = 1 }
            p
        in
        check Alcotest.bool "at most one clause" true
          (List.length r.Learner.Report.definition.Clause.clauses <= 1));
    tc "learn ?gate re-runs the analysis gate" (fun () ->
        let p = problem () in
        (* the family problem is clean, so even `Strict passes *)
        let r = Learner.learn ~name:"golem" ~gate:`Strict p in
        check Alcotest.bool "learned" true
          (r.Learner.Report.definition.Clause.clauses <> []));
    tc "registry entry agrees with the direct entry point" (fun () ->
        let p = problem () in
        let def = (Learner.learn ~name:"foil" p).Learner.Report.definition in
        let def' = Foil.learn p in
        check
          Alcotest.(list string)
          "registry == direct"
          (List.map Clause.to_string def'.Clause.clauses)
          (List.map Clause.to_string def.Clause.clauses));
    tc "config.backend re-bases the run without changing the result"
      (fun () ->
        let p = problem () in
        let on backend =
          let r =
            Learner.learn ~name:"foil"
              ~config:{ Learner.default_config with Learner.backend }
              p
          in
          List.map Clause.to_string r.Learner.Report.definition.Clause.clauses
        in
        let base = on None in
        check Alcotest.(list string) "flat instance" base
          (on (Some Castor_relational.Backend.Flat));
        check Alcotest.(list string) "store:2" base
          (on (Some (Castor_relational.Backend.Sharded 2))));
  ]

let suite =
  problem_suite @ foil_suite @ progol_suite @ golem_suite @ progolem_suite
  @ registry_suite
