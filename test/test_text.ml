(* Tests for the text formats: lexer, schema/fact parsing and
   round-tripping, Datalog clause parsing, SQL rendering. *)

open Castor_relational
open Castor_logic
open Helpers

let lexer_suite =
  [
    tc "tokenize basic punctuation and idents" (fun () ->
        let open Lexer in
        check Alcotest.bool "tokens" true
          (List.map (fun s -> s.tok) (tokenize "foo(X, 42) :- bar.") =
           [ Ident "foo"; Lparen; Ident "X"; Comma; Int 42; Rparen; Turnstile;
             Ident "bar"; Dot; Eof ]));
    tc "comments are skipped" (fun () ->
        let open Lexer in
        check Alcotest.bool "tokens" true
          (List.map (fun s -> s.tok) (tokenize "a % comment here\nb")
          = [ Ident "a"; Ident "b"; Eof ]));
    tc "operators" (fun () ->
        let open Lexer in
        check Alcotest.bool "tokens" true
          (List.map (fun s -> s.tok) (tokenize "x -> y <= z = [w]")
          = [ Ident "x"; Arrow; Ident "y"; Subset; Ident "z"; Eq; Lbracket;
              Ident "w"; Rbracket; Eof ]));
    tc "tokens carry 1-based line/column positions" (fun () ->
        let open Lexer in
        match tokenize "ab cd\n  ef" with
        | [ a; c; e; eof ] ->
            check Alcotest.(pair int int) "ab" (1, 1) (a.pos.line, a.pos.col);
            check Alcotest.(pair int int) "cd" (1, 4) (c.pos.line, c.pos.col);
            check Alcotest.(pair int int) "ef" (2, 3) (e.pos.line, e.pos.col);
            check Alcotest.(pair int int) "eof" (2, 5) (eof.pos.line, eof.pos.col)
        | _ -> Alcotest.fail "expected four tokens");
    tc "lexical errors carry line/column" (fun () ->
        match Lexer.tokenize "ok\n   ;" with
        | exception Lexer.Error msg ->
            check Alcotest.bool ("mentions position: " ^ msg) true
              (Helpers.contains ~sub:"line 2, column 4" msg)
        | _ -> Alcotest.fail "expected a lexer error");
    tc "bad character raises" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Lexer.tokenize "a ; b");
             false
           with Lexer.Error _ -> true));
  ]

let schema_text =
  {|
  % UW-CSE-ish fragment
  relation student(stud: person).
  relation inPhase(stud: person, phase: phase).
  fd inPhase: stud -> phase.
  ind student[stud] = inPhase[stud].
  ind inPhase[stud] <= student[stud].
  |}

let text_suite =
  [
    tc "parse_schema reads relations, fds and inds" (fun () ->
        let s = Text.parse_schema schema_text in
        check Alcotest.int "two relations" 2 (List.length s.Schema.relations);
        check Alcotest.int "one fd" 1 (List.length s.Schema.fds);
        check Alcotest.int "two inds" 2 (List.length s.Schema.inds);
        check Alcotest.bool "first ind equality" true
          (List.hd s.Schema.inds).Schema.equality);
    tc "parse_facts loads typed tuples" (fun () ->
        let s = Text.parse_schema schema_text in
        let inst =
          Text.parse_facts s "student(ann). inPhase(ann, post_quals)."
        in
        check Alcotest.int "one student" 1 (Instance.cardinality inst "student");
        check Alcotest.bool "constraints ok" true (Instance.satisfies_constraints inst));
    tc "schema print/parse round trip" (fun () ->
        let s = Text.parse_schema schema_text in
        let s' = Text.parse_schema (Text.schema_to_string s) in
        check Alcotest.bool "same relations" true
          (List.map (fun (r : Schema.relation) -> r.Schema.rname) s.Schema.relations
          = List.map (fun (r : Schema.relation) -> r.Schema.rname) s'.Schema.relations);
        check Alcotest.bool "same inds" true (s.Schema.inds = s'.Schema.inds));
    tc "facts print/parse round trip on a real dataset" (fun () ->
        let ds = Castor_datasets.Family.generate () in
        let dumped = Text.facts_to_string ds.Castor_datasets.Dataset.instance in
        let inst' = Text.parse_facts ds.Castor_datasets.Dataset.schema dumped in
        check Alcotest.bool "equal instances" true
          (Instance.equal ds.Castor_datasets.Dataset.instance inst'));
    tc "integers parse as int constants" (fun () ->
        let s =
          Text.parse_schema "relation years(stud: person, n: years)."
        in
        let inst = Text.parse_facts s "years(ann, 4)." in
        let tu = List.hd (Instance.tuples inst "years") in
        check Alcotest.bool "int" true (Value.equal tu.(1) (Value.int 4)));
  ]

let parse_suite =
  [
    tc "parse a clause with variables and constants" (fun () ->
        let c = Parse.clause "adv(X, Y) :- pub(P, X), pub(P, Y), phase(X, post_quals)." in
        check Alcotest.int "three literals" 3 (Clause.length c);
        check Alcotest.(list string) "vars" [ "X"; "Y"; "P" ] (Clause.variables c));
    tc "parse a fact clause" (fun () ->
        let c = Parse.clause "adv(ann, bob)." in
        check Alcotest.int "empty body" 0 (Clause.length c);
        check Alcotest.bool "ground head" true (Atom.is_ground c.Clause.head));
    tc "print/parse round trip" (fun () ->
        let c = Parse.clause "t(X) :- p(X, Y), q(Y, k1)." in
        let c' = Parse.clause (Clause.to_string c) in
        check Alcotest.bool "equivalent" true (Subsume.equivalent c c'));
    qt ~count:60 "generated clauses round trip through print/parse" clause_gen
      (fun c ->
        (* our generator uses lowercase 'x0'... variable names; print
           them via a renaming that parses back as variables *)
        let renamed =
          Clause.apply_subst
            (List.fold_left
               (fun s v -> Subst.bind v (Term.Var (String.capitalize_ascii v)) s)
               Subst.empty (Clause.variables c))
            c
        in
        let c' = Parse.clause (Clause.to_string renamed) in
        Subsume.equivalent renamed c');
    tc "definition parser groups clauses and checks the target" (fun () ->
        let d = Parse.definition "t(X) :- p(X, Y).\n t(X) :- q(X, X)." in
        check Alcotest.int "two clauses" 2 (List.length d.Clause.clauses);
        check Alcotest.string "target" "t" d.Clause.target);
    tc "definition parser rejects mixed heads" (fun () ->
        check Alcotest.bool "raises" true
          (try
             ignore (Parse.definition "t(X) :- p(X, Y). u(X) :- q(X, X).");
             false
           with Lexer.Error _ -> true));
  ]

let sql_suite =
  let schema =
    Text.parse_schema
      {|
      relation parent(x: person, y: person).
      relation gender(p: person, g: gender).
      |}
  in
  [
    tc "clause renders joins and equality conditions" (fun () ->
        let c = Parse.clause "grandparent(X, Z) :- parent(X, Y), parent(Y, Z)." in
        let sql = Sql.clause_to_sql schema c in
        check Alcotest.bool "select" true (String.length sql > 0);
        let has needle =
          let nl = String.length needle and tl = String.length sql in
          let rec go i = i + nl <= tl && (String.sub sql i nl = needle || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "two aliases" true (has "parent AS t0" && has "parent AS t1");
        check Alcotest.bool "join condition" true (has "t1.x = t0.y"));
    tc "constants become literal predicates" (fun () ->
        let c = Parse.clause "adults(X) :- gender(X, male)." in
        let sql = Sql.clause_to_sql schema c in
        let has needle =
          let nl = String.length needle and tl = String.length sql in
          let rec go i = i + nl <= tl && (String.sub sql i nl = needle || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "literal" true (has "t0.g = 'male'"));
    tc "unsafe clauses are rejected" (fun () ->
        let c = Parse.clause "t(X, W) :- parent(X, Y)." in
        check Alcotest.bool "raises" true
          (try
             ignore (Sql.clause_to_sql schema c);
             false
           with Invalid_argument _ -> true));
    tc "definitions render as UNION and views" (fun () ->
        let d = Parse.definition "t(X) :- parent(X, Y).\n t(X) :- parent(Y, X)." in
        let sql = Sql.definition_to_sql schema d in
        let has needle =
          let nl = String.length needle and tl = String.length sql in
          let rec go i = i + nl <= tl && (String.sub sql i nl = needle || go (i + 1)) in
          go 0
        in
        check Alcotest.bool "union" true (has "UNION");
        check Alcotest.bool "view" true
          (let v = Sql.create_view schema d in
           String.length v > 0 && String.sub v 0 11 = "CREATE VIEW"));
  ]

let error_suite =
  let raises_lexer f =
    try
      ignore (f ());
      false
    with Lexer.Error _ -> true
  in
  [
    tc "unterminated atom is rejected" (fun () ->
        check Alcotest.bool "raises" true
          (raises_lexer (fun () -> Parse.clause "t(X :- p(X).")));
    tc "missing dot is rejected" (fun () ->
        check Alcotest.bool "raises" true
          (raises_lexer (fun () -> Parse.clause "t(X) :- p(X, Y)")));
    tc "facts for unknown relations are rejected" (fun () ->
        let s = Text.parse_schema "relation p(x: d)." in
        check Alcotest.bool "raises" true
          (try
             ignore (Text.parse_facts s "q(a).");
             false
           with Schema.Unknown_relation _ -> true));
    tc "arity mismatches in facts are rejected" (fun () ->
        let s = Text.parse_schema "relation p(x: d)." in
        check Alcotest.bool "raises" true
          (try
             ignore (Text.parse_facts s "p(a, b).");
             false
           with Instance.Arity_mismatch _ -> true));
    tc "bad ind operator is rejected" (fun () ->
        check Alcotest.bool "raises" true
          (raises_lexer (fun () ->
               Text.parse_schema "relation p(x: d). ind p[x] : p[x].")));
  ]

let suite = lexer_suite @ text_suite @ parse_suite @ sql_suite @ error_suite
