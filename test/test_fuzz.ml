(* Schema-variant fuzzing harness tests.

   The heavyweight cases drive the whole pipeline zero-config: strip
   the hand-written bias from a benchmark dataset, re-induce it
   (AutoMode-style), generate a seeded family of schema variants, and
   assert Castor's learned definitions are data-equivalent across all
   of them — the paper's headline claim checked on machine-generated
   worlds instead of the curated variant lists. FOIL's divergence and
   the shrinking of its failure to a minimal (variant, clause)
   counterexample are pinned as well.

   All randomness derives from Helpers.test_seed (CASTOR_TEST_SEED),
   so a failing generated variant reproduces locally. *)

open Castor_relational
open Castor_datasets
open Castor_fuzz
open Helpers

let seed = test_seed

(* -------- zero-config pipeline on the three large datasets -------- *)

let zero_config name generate =
  tc
    (Printf.sprintf
       "%s: zero-config fuzz — bias induced, >= 8 variants, Castor \
        data-equivalent"
       name)
    (fun () ->
      let config =
        {
          Fuzz.default_config with
          Fuzz.seed;
          budget = 8;
          learners = [ "castor" ];
          shrink = false;
        }
      in
      let report = Fuzz.run ~config (generate ()) in
      (match report.Fuzz.rp_bias with
      | None -> Alcotest.fail "no bias induced"
      | Some b ->
          check Alcotest.bool "some mode inferred" true (b.Bias.modes <> []);
          check Alcotest.bool "join domains found" true (b.Bias.join_domains <> []));
      check Alcotest.bool "at least 8 generated variants" true
        (List.length report.Fuzz.rp_variants >= 8);
      check Alcotest.bool "Castor data-equivalent on every variant" true
        (Fuzz.independent report ~learner:"castor");
      check Alcotest.bool "no shrink needed" true
        (report.Fuzz.rp_counterexamples = []))

let pipeline_suite =
  [
    zero_config "uwcse" (fun () -> Uwcse.generate ());
    zero_config "imdb" (fun () -> Imdb.generate ());
    zero_config "hiv" (fun () -> Hiv.generate ());
  ]

(* ------------- divergence, shrinking, backend sweeps -------------- *)

let divergence_suite =
  [
    tc
      "family: FOIL diverges on a generated variant and shrinks to a minimal \
       counterexample"
      (fun () ->
        let ds = Family.generate () in
        let config =
          {
            Fuzz.default_config with
            Fuzz.seed;
            budget = 4;
            learners = [ "castor"; "foil" ];
          }
        in
        let report = Fuzz.run ~config ds in
        check Alcotest.bool "Castor independent" true
          (Fuzz.independent report ~learner:"castor");
        check Alcotest.bool "FOIL diverges" false
          (Fuzz.independent report ~learner:"foil");
        match report.Fuzz.rp_counterexamples with
        | [] -> Alcotest.fail "divergence produced no counterexample"
        | cx :: _ ->
            check Alcotest.string "counterexample names the diverger" "foil"
              cx.Shrink.cx_learner;
            check Alcotest.int "reproducing seed recorded" seed cx.Shrink.cx_seed;
            check Alcotest.bool "shrink steps counted" true (cx.Shrink.cx_steps > 0);
            check Alcotest.bool "non-empty minimal transformation" true
              (cx.Shrink.cx_ops <> []);
            (* the minimal transformation must itself be a valid variant *)
            let raw, _ = Bias.induce (Dataset.strip_bias ds) in
            (match Vargen.validate raw cx.Shrink.cx_ops with
            | Ok _ -> ()
            | Error r ->
                Alcotest.fail
                  ("shrunk ops invalid: " ^ Vargen.rejection_to_string r));
            (* the JSON report round-trips the essentials *)
            let doc = Fuzz.report_to_json report in
            check Alcotest.bool "report carries the seed" true
              (contains ~sub:(Printf.sprintf "\"seed\":%d" seed) doc);
            check Alcotest.bool "report carries the counterexample" true
              (contains ~sub:"\"counterexamples\":[{" doc));
    tc "family: storage backend never changes any learner's output" (fun () ->
        let config =
          {
            Fuzz.default_config with
            Fuzz.seed;
            budget = 2;
            learners = [ "castor"; "foil" ];
            backends =
              [ Some Backend.Flat; Some (Backend.Sharded 3);
                Some Backend.Columnar ];
            shrink = false;
          }
        in
        let report = Fuzz.run ~config (Family.generate ()) in
        check
          Alcotest.(list (pair string string))
          "no backend mismatches" [] report.Fuzz.rp_backend_mismatches;
        check Alcotest.bool "all three backends swept" true
          (List.length report.Fuzz.rp_verdicts = 6));
  ]

(* ------------- generator: determinism and consistency ------------- *)

let generator_suite =
  [
    tc "generation is deterministic in the seed and valid under any seed"
      (fun () ->
        let ds, _ = Bias.induce (Dataset.strip_bias (Uwcse.generate ())) in
        let a = Vargen.generate ~seed ~budget:6 ds in
        let b = Vargen.generate ~seed ~budget:6 ds in
        check Alcotest.bool "same seed, same family" true (a = b);
        let c = Vargen.generate ~seed:(seed + 1) ~budget:6 ds in
        check Alcotest.bool "other seed still yields variants" true (c <> []);
        List.iter
          (fun (name, ops) ->
            match Vargen.validate ds ops with
            | Ok _ -> ()
            | Error r ->
                Alcotest.fail (name ^ " invalid: " ^ Vargen.rejection_to_string r))
          (a @ c));
    tc "generated variants are pairwise distinct by schema signature" (fun () ->
        let ds, _ = Bias.induce (Dataset.strip_bias (Hiv.generate ())) in
        let fam = Vargen.generate ~seed ~budget:8 ds in
        let sigs =
          List.map
            (fun (_, ops) ->
              Vargen.schema_signature
                (Transform.apply_schema ds.Dataset.schema ops))
            fam
        in
        check Alcotest.int "no duplicate signatures"
          (List.length sigs)
          (List.length (List.sort_uniq compare sigs));
        check Alcotest.bool "base signature not regenerated" true
          (not
             (List.mem (Vargen.schema_signature ds.Dataset.schema) sigs)));
    tc "schema signatures are name-insensitive but structure-preserving"
      (fun () ->
        let attr = Schema.attribute in
        let s1 =
          Schema.make
            [
              Schema.relation "advise"
                [ attr ~domain:"person" "prof"; attr ~domain:"person" "stud" ];
              Schema.relation "teach"
                [ attr ~domain:"person" "prof"; attr ~domain:"course" "c" ];
            ]
        in
        (* same structure, relations and attributes renamed; the shared
           attribute (prof ↦ p) stays shared so joins are preserved *)
        let s2 =
          Schema.make
            [
              Schema.relation "t2"
                [ attr ~domain:"person" "p"; attr ~domain:"course" "k" ];
              Schema.relation "r9"
                [ attr ~domain:"person" "p"; attr ~domain:"person" "s" ];
            ]
        in
        check Alcotest.string "renaming preserves the signature"
          (Vargen.schema_signature s1)
          (Vargen.schema_signature s2);
        (* structurally different: no renaming maps a person-course
           bridge onto a course-course relation — must NOT collapse *)
        let s3 =
          Schema.make
            [
              Schema.relation "advise"
                [ attr ~domain:"person" "prof"; attr ~domain:"person" "stud" ];
              Schema.relation "teach"
                [ attr ~domain:"course" "c1"; attr ~domain:"course" "c2" ];
            ]
        in
        check Alcotest.bool "structure still distinguishes" true
          (Vargen.schema_signature s1 <> Vargen.schema_signature s3));
    tc "depth-3 generation prunes duplicate chains before validation"
      (fun () ->
        let ds, _ = Bias.induce (Dataset.strip_bias (Family.generate ())) in
        let before = Castor_obs.Obs.Counter.value Vargen.c_dup_pruned in
        let fam = Vargen.generate ~seed ~budget:6 ~max_depth:3 ds in
        let pruned = Castor_obs.Obs.Counter.value Vargen.c_dup_pruned - before in
        check Alcotest.bool "variants produced" true (fam <> []);
        check Alcotest.bool "duplicate chains pruned early" true (pruned > 0);
        let sigs =
          List.map
            (fun (_, ops) ->
              Vargen.schema_signature
                (Transform.apply_schema ds.Dataset.schema ops))
            fam
        in
        check Alcotest.int "accepted variants stay pairwise distinct"
          (List.length sigs)
          (List.length (List.sort_uniq compare sigs)));
  ]

(* every hand-coded variant of the benchmark datasets lies in the
   generator's fragment: its transformation is replayed op by op, and
   at each step some candidate op produces the same schema signature *)
let consistency_suite =
  List.map
    (fun (name, gen) ->
      tc (name ^ ": every hand-coded variant is reproducible by the generator")
        (fun () ->
          let ds : Dataset.t = gen () in
          List.iter
            (fun (vname, tr) ->
              if tr <> [] then
                check Alcotest.bool (vname ^ " in fragment") true
                  (Vargen.reproduces ds tr))
            ds.Dataset.variants))
    [
      ("family", fun () -> Family.generate ());
      ("uwcse", fun () -> Uwcse.generate ());
      ("imdb", fun () -> Imdb.generate ());
      ("hiv", fun () -> Hiv.generate ());
      ("collaborated", fun () -> Uwcse.collaborated (Uwcse.generate ()));
    ]

(* --------------- bias induction: mode agreement ------------------- *)

(* induced modes must agree with (or safely over-approximate) the
   hand-written bias. Over-approximation means the induced bias may
   only RELAX the hand one: every domain the curator kept expandable
   stays expandable, and a hand-filtered domain may escape the filter
   only by promotion to a join domain (an IND position — imdb's
   [country] is the live example). Constants appear exactly at
   frontier-filtered domains, and induced pools draw their values
   from the hand vocabulary. *)
let mode_agreement name gen =
  tc (name ^ ": induced bias safely over-approximates the hand-written bias")
    (fun () ->
      let ds : Dataset.t = gen () in
      let ds', bias = Bias.induce (Dataset.strip_bias ds) in
      (* join-capable: occurs at >= 2 attribute positions, so filtering
         it could actually sever a join path (uwcse's [title] occurs
         once — filtering it is vacuous and induction is free to) *)
      let positions d =
        List.fold_left
          (fun n (r : Schema.relation) ->
            n
            + List.length
                (List.filter
                   (fun (a : Schema.attribute) -> String.equal a.Schema.domain d)
                   r.Schema.attrs))
          0 ds.Dataset.schema.Schema.relations
      in
      List.iter
        (fun d ->
          if (not (List.mem d ds.Dataset.no_expand_domains)) && positions d >= 2
          then
            check Alcotest.bool
              ("hand-expandable domain " ^ d ^ " stays expandable") false
              (List.mem d ds'.Dataset.no_expand_domains))
        (Castor_analysis.Modes.all_domains ds.Dataset.schema);
      List.iter
        (fun d ->
          check Alcotest.bool
            ("hand-filtered domain " ^ d ^ " is filtered or a join domain")
            true
            (List.mem d ds'.Dataset.no_expand_domains
            || List.mem d bias.Bias.join_domains))
        ds.Dataset.no_expand_domains;
      List.iter
        (fun (m : Castor_analysis.Modes.t) ->
          List.iter
            (fun (a : Castor_analysis.Modes.arg_mode) ->
              let io = a.Castor_analysis.Modes.io in
              if List.mem a.Castor_analysis.Modes.domain bias.Bias.no_expand_domains
              then
                check Alcotest.bool
                  (m.Castor_analysis.Modes.rel ^ "." ^ a.Castor_analysis.Modes.attr
                 ^ " is constant")
                  true
                  (io = Castor_analysis.Modes.Constant)
              else
                check Alcotest.bool
                  (m.Castor_analysis.Modes.rel ^ "." ^ a.Castor_analysis.Modes.attr
                 ^ " is not constant")
                  true
                  (io <> Castor_analysis.Modes.Constant))
            m.Castor_analysis.Modes.args)
        bias.Bias.modes;
      (* hand-written constant pools are recovered; the induced values
         are the ones present in the data, a subset of the hand
         vocabulary (the curator lists values the generator may not
         have sampled) *)
      List.iter
        (fun (dom, vals) ->
          if not (List.mem dom bias.Bias.join_domains) then
            match List.assoc_opt dom ds'.Dataset.const_pool with
            | None -> Alcotest.fail ("hand pool for " ^ dom ^ " not recovered")
            | Some vals' ->
                let strs l = List.map Value.to_string l in
                check Alcotest.bool (dom ^ " induced pool non-empty") true
                  (vals' <> []);
                check Alcotest.bool (dom ^ " pool within hand vocabulary") true
                  (List.for_all (fun v -> List.mem v (strs vals)) (strs vals')))
        ds.Dataset.const_pool)

let bias_suite =
  [
    mode_agreement "uwcse" (fun () -> Uwcse.generate ());
    mode_agreement "imdb" (fun () -> Imdb.generate ());
    mode_agreement "hiv" (fun () -> Hiv.generate ());
    tc "constraint-less data: dependencies are discovered before inference"
      (fun () ->
        (* abc without its declared FD: discovery must find a -> b, c *)
        let at = Schema.attribute in
        let bare =
          Schema.make
            [
              Schema.relation "r"
                [ at ~domain:"da" "a"; at ~domain:"db" "b"; at ~domain:"dc" "c" ];
            ]
        in
        let inst = Instance.create bare in
        for i = 0 to 11 do
          Instance.add_list inst "r"
            [
              Value.str (Printf.sprintf "a%d" i);
              Value.str (Printf.sprintf "b%d" (i mod 4));
              Value.str (Printf.sprintf "c%d" (i mod 3));
            ]
        done;
        let target = Schema.relation "t" [ at ~domain:"da" "a" ] in
        let ds =
          Dataset.of_instance ~name:"bare" ~target inst
            (Castor_ilp.Examples.make ~pos:[] ~neg:[])
        in
        let _, bias = Bias.induce (Dataset.strip_bias ds) in
        check Alcotest.bool "FDs discovered" true (bias.Bias.discovered_fds > 0));
  ]

let suite =
  pipeline_suite @ divergence_suite @ generator_suite @ consistency_suite
  @ bias_suite
